//! # pypim
//!
//! End-to-end digital processing-in-memory (PIM) stack in Rust — a
//! reproduction of *PyPIM: Integrating Digital Processing-in-Memory from
//! Microarchitectural Design to Python Tensors* (MICRO 2024).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`arch`] — micro-operation model: configuration, range masks,
//!   half-gate partition encoding, 64-bit wire format, H-tree addressing.
//! * [`sim`] — bit-accurate PIM simulator (drop-in replacement for a chip).
//! * [`isa`] — warps-of-threads instruction set architecture.
//! * [`driver`] — host driver translating macro-instructions into
//!   micro-operations (gate-level AritPIM arithmetic, IEEE-754 floats).
//! * [`cluster`] — sharded multi-chip execution engine: `N` driver+chip
//!   pairs on worker threads behind one flat address space, with batched
//!   job submission (blocking *and* pollable — job tickets are futures)
//!   and cross-shard gather/scatter/reduce.
//! * [`serve`] — async multi-client serving gateway: one host thread
//!   drives many in-flight client sessions, each with its own placement
//!   window, through an admission controller that coalesces their steps
//!   into shared cluster submissions ([`Gateway`], [`ClusterClient`]).
//! * [`fleet`] — multi-host serving: `N` in-process gateway hosts behind
//!   one router with lease-based leader election on the modeled clock and
//!   deterministic failover — sessions re-place onto survivors and
//!   in-flight results from dead placements are discarded and re-issued
//!   ([`Fleet`], [`FleetSession`]).
//! * [`telemetry`] — unified tracing + metrics: a lock-cheap registry
//!   (counters/gauges/log-bucketed histograms behind one
//!   `MetricsSnapshot`), windowed time series (`WindowSampler`), and
//!   span/counter-track tracing on the modeled clock with per-request
//!   attribution (`RequestId`) and Chrome/Perfetto trace export.
//!   Zero-cost when disabled (the default).
//! * [`loadgen`] — open-loop traffic harness: seeded Poisson/burst/ramp
//!   arrival schedules drive gateway sessions at scheduled modeled
//!   cycles, producing windowed SLO reports and latency-vs-load sweeps
//!   (knee and collapse points) — see `examples/loadgen_demo.rs`.
//! * The development library ([`Tensor`], [`Device`], …) — NumPy-like
//!   tensors with views, reductions, sorting, and CORDIC routines.
//!
//! # Quickstart
//!
//! The example program from Figure 12 of the paper:
//!
//! ```
//! use pypim::{Device, PimConfig, Tensor};
//!
//! fn my_func(a: &Tensor, b: &Tensor) -> pypim::Result<Tensor> {
//!     // Parallel multiplication and addition across every element.
//!     Ok((&(a * b)? + a)?)
//! }
//!
//! # fn main() -> pypim::Result<()> {
//! let dev = Device::new(PimConfig::small())?;
//! let mut x = dev.zeros_f32(64)?;
//! let mut y = dev.zeros_f32(64)?;
//! x.set_f32(4, 8.0)?;  y.set_f32(4, 0.5)?;
//! x.set_f32(5, 20.0)?; y.set_f32(5, 1.0)?;
//! x.set_f32(8, 10.0)?; y.set_f32(8, 1.0)?;
//!
//! let z = my_func(&x, &y)?;
//! // Logarithmic-time reduction of the even indices.
//! assert_eq!(z.slice_step(0, 64, 2)?.sum_f32()?, 32.0); // 8*1.5 + 10*2
//! # Ok(())
//! # }
//! ```
//!
//! # Sharded quickstart
//!
//! [`Device::cluster`] swaps the single simulated chip for a sharded
//! multi-chip cluster (`pim-cluster`): the same tensor program runs
//! unchanged — and bit-identically — while element-parallel work fans out
//! across one worker thread per chip. The device is `Send + Sync`, so many
//! client threads can serve requests against one cluster concurrently (see
//! `examples/cluster_serve.rs`).
//!
//! ```
//! use pypim::{Device, PimConfig};
//!
//! # fn main() -> pypim::Result<()> {
//! // Four chips of 16 crossbars each: one 4096-thread logical memory.
//! let dev = Device::cluster(PimConfig::small(), 4)?;
//! assert_eq!(dev.shards(), 4);
//!
//! let x = dev.from_slice_f32(&[1.5; 1024])?;
//! let y = dev.full_f32(1024, 2.0)?;
//! let z = (&x * &y)?; // each chip multiplies its slice concurrently
//! assert_eq!(z.sum_f32()?, 3072.0);
//!
//! // Per-shard telemetry: chip cycles, issued cycles, cache hit rates.
//! let stats = dev.cluster_stats()?.expect("cluster-backed");
//! assert_eq!(stats.shards.len(), 4);
//! # Ok(())
//! # }
//! ```
//!
//! # Serving quickstart
//!
//! [`DeviceServeExt::serve`] puts an async gateway in front of the
//! cluster: each client opens a [`ClusterClient`] session with a private
//! placement window, and one `block_on(join_all(…))` host thread keeps
//! every request in flight at once — no thread per client, no in-flight
//! bound to protect the allocator (see `examples/cluster_serve.rs`).
//!
//! ```
//! use futures::executor::block_on;
//! use futures::future::join_all;
//! use pypim::{Device, DeviceServeExt, PimConfig, Result, ServeConfig};
//!
//! # fn main() -> Result<()> {
//! let dev = Device::cluster(PimConfig::small().with_crossbars(4), 4)?;
//! let gateway = dev.serve(ServeConfig::default());
//! let clients: Vec<_> = (0..4)
//!     .map(|_| gateway.session())
//!     .collect::<Result<_>>()?;
//!
//! let sums = block_on(join_all(clients.iter().map(|client| async move {
//!     let x = client.upload_f32(&[1.0, 2.0, 3.0]).await?;
//!     let y = client.full_f32(3, 2.0).await?;
//!     let z = client.mul(&x, &y).await?;
//!     client.sum_f32(&z).await
//! })));
//! for s in sums {
//!     assert_eq!(s?, 12.0);
//! }
//! # Ok(())
//! # }
//! ```

pub use pim_arch as arch;
pub use pim_cluster as cluster;
pub use pim_driver as driver;
pub use pim_fleet as fleet;
pub use pim_func as func;
pub use pim_isa as isa;
pub use pim_loadgen as loadgen;
pub use pim_serve as serve;
pub use pim_sim as sim;
pub use pim_telemetry as telemetry;

pub use pim_arch::{PimConfig, RangeMask};
pub use pim_cluster::{
    ClusterStats, Coalesce, Combine, CrossingMove, DrainPolicy, GatherTicket, GlobalWrite,
    Interconnect, InterconnectConfig, JobSet, JobTicket, MoveCoalescer, PimCluster, ShardPlan,
    Staging, Submission, TrafficStats,
};
pub use pim_fleet::{Fleet, FleetConfig, FleetSession, FleetStats, Lease, LeaseStore};
pub use pim_serve::{
    ClusterClient, DeviceServeExt, Gateway, GatewayHost, GatewayStats, ServeConfig,
};
pub use pypim_core::*;
