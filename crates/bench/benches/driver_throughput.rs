//! Host-driver throughput (Figure 13 "Host Driver" series; Artifact
//! Appendix E): how fast the software driver can translate macro-
//! instructions into micro-operations rerouted to a memory buffer. The
//! measured rate divided by the 300 MHz PIM clock is the driver headroom
//! the paper quotes as 9.5× on average.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pim_arch::PimConfig;
use pim_driver::{Driver, SinkBackend};
use pim_isa::{DType, Instruction, RegOp, ThreadRange};

fn bench_driver(c: &mut Criterion) {
    let cfg = PimConfig::small();
    let ops: [(RegOp, DType, &str); 6] = [
        (RegOp::Add, DType::Int32, "int_add"),
        (RegOp::Mul, DType::Int32, "int_mul"),
        (RegOp::Div, DType::Int32, "int_div"),
        (RegOp::Add, DType::Float32, "fp_add"),
        (RegOp::Mul, DType::Float32, "fp_mul"),
        (RegOp::Div, DType::Float32, "fp_div"),
    ];
    let mut group = c.benchmark_group("driver_throughput");
    for (op, dtype, name) in ops {
        let mut driver = Driver::new(SinkBackend::new(cfg.clone()).unwrap());
        let instr = Instruction::RType {
            op,
            dtype,
            dst: 2,
            srcs: [0, 1, 0],
            target: ThreadRange::all(&cfg),
        };
        driver.execute_streamed(&instr).unwrap(); // warm the caches
        let before = driver.backend().total_ops();
        driver.execute_streamed(&instr).unwrap();
        let ops_per_instr = driver.backend().total_ops() - before;
        group.throughput(Throughput::Elements(ops_per_instr));
        group.bench_function(name, |b| {
            b.iter(|| driver.execute_streamed(&instr).unwrap());
        });
        std::hint::black_box(driver.backend().digest());
    }
    group.finish();
}

criterion_group!(benches, bench_driver);
criterion_main!(benches);
