//! Micro-operation wire-format performance (Figure 5 / Table I): encode
//! and decode rates for the 64-bit operation words, which bound the
//! driver→controller interface bandwidth.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pim_arch::{encode, GateKind, HLogic, MicroOp, MoveOp, PimConfig, RangeMask, VGate};

fn sample_ops(cfg: &PimConfig) -> Vec<MicroOp> {
    vec![
        MicroOp::XbMask(RangeMask::new(0, 12, 4).unwrap()),
        MicroOp::RowMask(RangeMask::new(1, 63, 2).unwrap()),
        MicroOp::Write {
            index: 7,
            value: 0xDEAD_BEEF,
        },
        MicroOp::LogicH(HLogic::parallel(GateKind::Nor, 0, 1, 2, cfg).unwrap()),
        MicroOp::LogicH(HLogic::init_reg(true, 5, cfg).unwrap()),
        MicroOp::LogicV {
            gate: VGate::Not,
            row_in: 3,
            row_out: 60,
            index: 5,
        },
        MicroOp::Move(MoveOp {
            dist: -12,
            row_src: 1,
            row_dst: 2,
            index_src: 3,
            index_dst: 4,
        }),
    ]
}

fn bench_encoding(c: &mut Criterion) {
    let cfg = PimConfig::small();
    let ops = sample_ops(&cfg);
    let words: Vec<u64> = ops.iter().map(encode::encode).collect();
    let mut group = c.benchmark_group("wire_format");
    group.throughput(Throughput::Elements(ops.len() as u64));
    group.bench_function("encode", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for op in &ops {
                acc ^= encode::encode(op);
            }
            acc
        });
    });
    group.bench_function("decode", |b| {
        b.iter(|| {
            for &w in &words {
                std::hint::black_box(encode::decode(w).unwrap());
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_encoding);
criterion_main!(benches);
