//! Routine compilation cost: how long the gate-level compiler takes to
//! lower each macro-operation the first time (cache misses). Steady-state
//! execution replays cached routines, so this is a cold-start metric —
//! together with `driver_throughput` it shows why the routine cache makes
//! the software driver viable (§V-B).

use criterion::{criterion_group, criterion_main, Criterion};
use pim_arch::PimConfig;
use pim_driver::{routines, ParallelismMode};
use pim_isa::{DType, RegOp};

fn bench_compile(c: &mut Criterion) {
    let cfg = PimConfig::small();
    let cases: [(RegOp, DType, &str); 7] = [
        (RegOp::Add, DType::Int32, "int_add_serial"),
        (RegOp::Mul, DType::Int32, "int_mul"),
        (RegOp::Div, DType::Int32, "int_div"),
        (RegOp::Add, DType::Float32, "fp_add"),
        (RegOp::Mul, DType::Float32, "fp_mul"),
        (RegOp::Div, DType::Float32, "fp_div"),
        (RegOp::Lt, DType::Float32, "fp_lt"),
    ];
    let mut group = c.benchmark_group("routine_compile");
    for (op, dtype, name) in cases {
        group.bench_function(name, |b| {
            b.iter(|| {
                routines::compile_rtype(
                    &cfg,
                    ParallelismMode::BitSerial,
                    op,
                    dtype,
                    2,
                    &[0, 1][..op.arity().min(2)],
                )
                .unwrap()
            });
        });
    }
    // The partition-parallel adder (ablation counterpart).
    group.bench_function("int_add_parallel", |b| {
        b.iter(|| {
            routines::compile_rtype(
                &cfg,
                ParallelismMode::BitParallel,
                RegOp::Add,
                DType::Int32,
                2,
                &[0, 1],
            )
            .unwrap()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_compile);
criterion_main!(benches);
