//! Serving-gateway throughput: the same multi-client request workload
//! driven (a) concurrently through the `pim-serve` gateway — one host
//! thread, every session in flight at once, each fused request pipeline in
//! its own chip-local placement window — and (b) sequentially, one request
//! at a time through the blocking tensor API.
//!
//! The headline numbers are **modeled-clock** (`PimConfig::clock_hz`,
//! 300 MHz): requests/s against the cluster's modeled end-to-end latency
//! (`ClusterStats::modeled_latency_cycles` — the busiest chip plus link
//! cycles). Under the model the chips genuinely run in parallel, so
//! concurrent chip-local sessions finish in ~1/shards the cycles of a
//! sequential client that drives one chip at a time; the wall-clock groups
//! (`wall_*`) track host overhead and show real speedups only on hosts
//! with enough cores to run the shard workers concurrently (see the
//! cluster bench's scaling note).
//!
//! Per-request modeled latency percentiles (p50/p99) model all requests
//! arriving at once: request `j` of the `R` hosted on a chip whose run
//! took `C` cycles completes at `(j+1)·C/R` — queueing included, so
//! oversubscribing chips (8 sessions on 4 chips) visibly stretches p99.
//! The per-request cycle counts land in a `pim-telemetry` log-bucketed
//! [`Histogram`], whose p50/p99/p999 are what the JSON report carries —
//! every latency entry now has real tail fields, not a collapsed point.
//!
//! The `degraded_crash` group reruns the gateway workload under a
//! deterministic 1-shard-crash fault schedule (`pim-fault`): shard 0's
//! worker is killed mid-stream after one request has committed, respawned
//! from checkpoint+journal (the replayed suffix is charged to the shard's
//! modeled clock), and the gateway's retry machinery re-submits the
//! failed batches. Its modeled requests/s against the fault-free
//! `gateway` row quantifies the throughput cost of one crash-and-recover
//! cycle.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, SampleStats, Throughput};
use futures::executor::block_on;
use futures::future::join_all;
use pim_arch::PimConfig;
use pim_cluster::{BackendKind, ClusterOptions, RecoveryConfig, ShardBackends};
use pim_fault::{FaultInjector, FaultPlan};
use pim_serve::{ClusterClient, DeviceServeExt, ServeConfig};
use pim_telemetry::Histogram;
use pypim_core::{Device, ErrorClass, RegOp, Result, Tensor};
use std::sync::Arc;

const SHARDS: usize = 4;
const REQUESTS_PER_SESSION: usize = 2;

/// Per-chip geometry: 4 crossbars x 64 rows -> a 16-warp, 1024-thread
/// cluster (small enough for the full sampling loop).
fn shard_cfg() -> PimConfig {
    PimConfig::small().with_crossbars(4)
}

fn cluster_dev() -> Device {
    Device::cluster(shard_cfg(), SHARDS).unwrap()
}

fn payload(cid: usize, req: usize, elems: usize) -> Vec<f32> {
    (0..elems)
        .map(|i| ((cid * 31 + req * 7 + i) % 13) as f32 * 0.25)
        .collect()
}

/// The request program, fused into one gateway submission plus one read:
/// `sum(x * y + x)` (Figure 12 plus a reduction).
async fn request_fused(client: &ClusterClient, values: &[f32]) -> Result<f32> {
    let mut plan = client.plan();
    let x = plan.upload_f32(values)?;
    let y = plan.full_f32(values.len(), 2.0)?;
    let xy = plan.mul(&x, &y)?;
    let z = plan.add(&xy, &x)?;
    let s = plan.reduce(&z, RegOp::Add)?;
    plan.run().await?;
    Ok(client.to_vec_f32(&s).await?[0])
}

fn request_sync(dev: &Device, values: &[f32]) -> Result<f32> {
    let x = dev.from_slice_f32(values)?;
    let y = dev.full_f32(values.len(), 2.0)?;
    let z: Tensor = (&(&x * &y)? + &x)?;
    z.sum_f32()
}

/// Serves `sessions x REQUESTS_PER_SESSION` requests concurrently through
/// the gateway.
fn run_gateway(clients: &[ClusterClient], elems: usize) {
    block_on(join_all(clients.iter().enumerate().map(
        |(cid, client)| async move {
            for req in 0..REQUESTS_PER_SESSION {
                let sum = request_fused(client, &payload(cid, req, elems))
                    .await
                    .unwrap();
                assert!(sum.is_finite());
            }
        },
    )));
}

/// Like [`run_gateway`], but a request that resolves to a transient fault
/// is re-issued, as a real client would (the gateway retries failed exec
/// batches internally, but a crash landing on a request's trailing read
/// surfaces to the client). Each request is self-contained (fresh uploads,
/// fresh destinations), so the re-issue is value-safe, and the modeled
/// clock keeps counting across the retry — the recovery cost stays in the
/// measurement.
fn run_gateway_degraded(clients: &[ClusterClient], elems: usize) {
    block_on(join_all(clients.iter().enumerate().map(
        |(cid, client)| async move {
            for req in 0..REQUESTS_PER_SESSION {
                let values = payload(cid, req, elems);
                let mut attempts = 0;
                loop {
                    match request_fused(client, &values).await {
                        Ok(sum) => {
                            assert!(sum.is_finite());
                            break;
                        }
                        Err(e) if e.class() == ErrorClass::Transient && attempts < 3 => {
                            attempts += 1;
                        }
                        Err(e) => panic!("degraded request failed non-transiently: {e}"),
                    }
                }
            }
        },
    )));
}

fn run_sequential(dev: &Device, sessions: usize, elems: usize) {
    for cid in 0..sessions {
        for req in 0..REQUESTS_PER_SESSION {
            let sum = request_sync(dev, &payload(cid, req, elems)).unwrap();
            assert!(sum.is_finite());
        }
    }
}

/// Per-request modeled completion latencies (cycles), recorded into a
/// telemetry histogram: the `R_k` requests hosted on chip `k` complete at
/// `(j+1)·C_k/R_k` cycles, `j = 0..R_k` (all requests arrive at once).
fn modeled_latency_hist(shard_cycles: &[(u64, usize)]) -> Histogram {
    let hist = Histogram::new();
    for &(cycles, hosted) in shard_cycles {
        for j in 0..hosted {
            hist.record((cycles as f64 * (j + 1) as f64 / hosted as f64).round() as u64);
        }
    }
    hist
}

fn bench_serve(c: &mut Criterion) {
    let clock_hz = shard_cfg().clock_hz;
    let mut group = c.benchmark_group("serve");
    for sessions in [4usize, 8] {
        let dev = cluster_dev();
        let total_warps = dev.config().crossbars as u32;
        let session_warps = total_warps / sessions as u32;
        let warps_per_shard = (total_warps as usize / SHARDS) as u32;
        let elems = session_warps as usize * dev.config().rows;
        let requests = (sessions * REQUESTS_PER_SESSION) as u64;

        // --- Concurrent serving through the gateway (fused pipelines,
        //     chip-local session windows).
        let gateway = dev.serve(ServeConfig {
            session_warps,
            ..ServeConfig::default()
        });
        let clients: Vec<ClusterClient> =
            (0..sessions).map(|_| gateway.session().unwrap()).collect();
        run_gateway(&clients, elems); // warm routine caches
        dev.reset_counters().unwrap();
        run_gateway(&clients, elems);
        let stats = dev.cluster_stats().unwrap().unwrap();
        let gw_modeled_s = stats.modeled_latency_cycles() as f64 / clock_hz;

        // --- The identical gateway workload on functional-backend shards
        //     (`pim-func`): bit-identical results and identical modeled
        //     cycles by construction (backend_equivalence tests), so the
        //     modeled `gateway_func` row must match `gateway` — what moves
        //     is the wall-clock row, which measures how much faster the
        //     host can turn the same modeled machine.
        let func_dev = Device::cluster_with_options(
            shard_cfg(),
            SHARDS,
            ClusterOptions {
                backends: ShardBackends::Uniform(BackendKind::Functional),
                ..ClusterOptions::default()
            },
        )
        .unwrap();
        let func_gateway = func_dev.serve(ServeConfig {
            session_warps,
            ..ServeConfig::default()
        });
        let func_clients: Vec<ClusterClient> = (0..sessions)
            .map(|_| func_gateway.session().unwrap())
            .collect();
        run_gateway(&func_clients, elems); // warm routine caches
        func_dev.reset_counters().unwrap();
        run_gateway(&func_clients, elems);
        let func_stats = func_dev.cluster_stats().unwrap().unwrap();
        let func_modeled_s = func_stats.modeled_latency_cycles() as f64 / clock_hz;

        // --- The same workload, one request at a time, blocking API.
        let seq_dev = cluster_dev();
        run_sequential(&seq_dev, 1, elems); // warm routine caches
        seq_dev.reset_counters().unwrap();
        run_sequential(&seq_dev, sessions, elems);
        let seq_stats = seq_dev.cluster_stats().unwrap().unwrap();
        let seq_modeled_s = seq_stats.modeled_latency_cycles() as f64 / clock_hz;

        // --- Degraded mode: the identical gateway workload under a
        //     deterministic 1-shard-crash schedule — shard 0's worker dies
        //     on its third job (the second request's fused exec batch, a
        //     retryable gateway submission; by then the first request has
        //     committed, so the respawn replays a real journal suffix),
        //     the supervisor rebuilds it from checkpoint+journal, and the
        //     gateway retries the failed batches. The gap to the
        //     fault-free `gateway` row is the recovery tax — the replayed
        //     span is charged to the shard's modeled clock.
        let fault = Arc::new(FaultInjector::new(FaultPlan::none().crash_at(0, 2), SHARDS));
        let deg_dev = Device::cluster_with_options(
            shard_cfg(),
            SHARDS,
            ClusterOptions {
                recovery: RecoveryConfig::default(),
                fault: Some(Arc::clone(&fault)),
                ..ClusterOptions::default()
            },
        )
        .unwrap();
        let deg_gateway = deg_dev.serve(ServeConfig {
            session_warps,
            max_retries: 3,
            ..ServeConfig::default()
        });
        let deg_clients: Vec<ClusterClient> = (0..sessions)
            .map(|_| deg_gateway.session().unwrap())
            .collect();
        // No warm pass: the crash is scheduled by job index and must fire
        // inside the measured run (modeled cycles don't see host-side
        // routine-cache state, so cold vs warm is identical).
        run_gateway_degraded(&deg_clients, elems);
        assert!(
            fault.stats().worker_crashes >= 1,
            "1-shard-crash schedule never fired"
        );
        let deg_stats = deg_dev.cluster_stats().unwrap().unwrap();
        let deg_modeled_s = deg_stats.modeled_latency_cycles() as f64 / clock_hz;

        // Modeled-clock headline: requests/s on the modeled machine.
        group.report_metric(
            BenchmarkId::new("gateway", format!("{sessions}-sessions")),
            gw_modeled_s,
            Some(Throughput::Elements(requests)),
        );
        group.report_metric(
            BenchmarkId::new("gateway_func", format!("{sessions}-sessions")),
            func_modeled_s,
            Some(Throughput::Elements(requests)),
        );
        assert_eq!(
            func_stats.modeled_latency_cycles(),
            stats.modeled_latency_cycles(),
            "functional shards must model the same latency as bit-accurate"
        );
        group.report_metric(
            BenchmarkId::new("sequential", format!("{sessions}-sessions")),
            seq_modeled_s,
            Some(Throughput::Elements(requests)),
        );
        group.report_metric(
            BenchmarkId::new("degraded_crash", format!("{sessions}-sessions")),
            deg_modeled_s,
            Some(Throughput::Elements(requests)),
        );

        // Modeled per-request latency percentiles under full concurrency.
        // Map each session to the chip hosting its window, count requests
        // per chip, then spread each chip's cycles over its requests.
        let mut hosted = [0usize; SHARDS];
        for client in &clients {
            hosted[(client.window().warp_start / warps_per_shard) as usize] += REQUESTS_PER_SESSION;
        }
        let per_shard: Vec<(u64, usize)> = stats
            .shards
            .iter()
            .map(|s| (s.profiler.cycles, hosted[s.shard]))
            .filter(|&(_, h)| h > 0)
            .collect();
        let lat = modeled_latency_hist(&per_shard).snapshot();
        let to_s = |cycles: u64| cycles as f64 / clock_hz;
        let dist = SampleStats {
            min: to_s(lat.min),
            median: to_s(lat.p50),
            mean: lat.mean() / clock_hz,
            p50: to_s(lat.p50),
            p99: to_s(lat.p99),
            p999: to_s(lat.p999),
            iters: lat.count,
        };
        group.report_stats(
            BenchmarkId::new("latency_p50", format!("{sessions}-sessions")),
            dist,
            None,
        );
        group.report_stats(
            BenchmarkId::new("latency_p99", format!("{sessions}-sessions")),
            SampleStats {
                median: to_s(lat.p99),
                ..dist
            },
            None,
        );

        // The same percentile model over the degraded run: the crashed
        // chip's cycle count carries the replayed span and the retried
        // batches, so its hosted requests stretch the tail.
        let mut deg_hosted = [0usize; SHARDS];
        for client in &deg_clients {
            deg_hosted[(client.window().warp_start / warps_per_shard) as usize] +=
                REQUESTS_PER_SESSION;
        }
        let deg_per_shard: Vec<(u64, usize)> = deg_stats
            .shards
            .iter()
            .map(|s| (s.profiler.cycles, deg_hosted[s.shard]))
            .filter(|&(_, h)| h > 0)
            .collect();
        let deg_lat = modeled_latency_hist(&deg_per_shard).snapshot();
        group.report_stats(
            BenchmarkId::new("degraded_latency_p99", format!("{sessions}-sessions")),
            SampleStats {
                min: to_s(deg_lat.min),
                median: to_s(deg_lat.p99),
                mean: deg_lat.mean() / clock_hz,
                p50: to_s(deg_lat.p50),
                p99: to_s(deg_lat.p99),
                p999: to_s(deg_lat.p999),
                iters: deg_lat.count,
            },
            None,
        );

        // --- Wall-clock trajectory (host-bound; shard workers need real
        //     cores to overlap — see the module docs).
        group.throughput(Throughput::Elements(requests));
        group.bench_with_input(
            BenchmarkId::new("wall_gateway", format!("{sessions}-sessions")),
            &sessions,
            |b, _| b.iter(|| run_gateway(&clients, elems)),
        );
        group.bench_with_input(
            BenchmarkId::new("wall_gateway_func", format!("{sessions}-sessions")),
            &sessions,
            |b, _| b.iter(|| run_gateway(&func_clients, elems)),
        );
        group.bench_with_input(
            BenchmarkId::new("wall_sequential", format!("{sessions}-sessions")),
            &sessions,
            |b, _| b.iter(|| run_sequential(&seq_dev, sessions, elems)),
        );
    }
    group.finish();
}

/// Open-loop latency-vs-load sweep (`pim-loadgen`): seeded Poisson
/// traffic against a fresh single-chip functional-backend gateway per
/// operating point, walking offered load from well under to well past the
/// service's knee. Rows:
///
/// * `open_loop_knee` — highest offered load (requests per **modeled**
///   second, 1 cycle = 1 µs) still achieving ≥ 95% goodput, carried in
///   `per_sec_median`;
/// * `open_loop_collapse` — lowest offered load whose windowed gateway
///   queue-wait p99 diverged (falls back to the highest swept load when
///   no point collapsed);
/// * `open_loop_p99_70` — end-to-end latency distribution (modeled
///   seconds) at the ~70%-of-peak healthy operating point.
///
/// Single-chip execution is inline and deterministic, so these rows are
/// stable across runs of the same code — modeled values, not wall noise.
fn bench_open_loop(c: &mut Criterion) {
    use pim_func::BackendKind;
    use pim_loadgen::{
        latency_vs_load, run, ArrivalProfile, ClassSpec, LoadgenConfig, RequestShape, SloConfig,
        MODELED_CYCLES_PER_SEC,
    };

    let make_gateway = || -> Result<pim_serve::Gateway> {
        let dev = Device::with_backend(
            PimConfig::small().with_crossbars(8),
            BackendKind::Functional,
        )?;
        Ok(dev.serve(ServeConfig {
            max_queue_depth: 0, // open loop: overload must queue, not reject
            ..ServeConfig::default()
        }))
    };
    let base_cfg = |rate: f64| LoadgenConfig {
        seed: 2024,
        horizon_cycles: 200_000,
        window_cycles: 40_000,
        classes: vec![
            ClassSpec::new(
                "elementwise",
                RequestShape::Elementwise,
                ArrivalProfile::Poisson { rate: rate * 0.6 },
                16,
            ),
            ClassSpec::new(
                "fused",
                RequestShape::Fused,
                ArrivalProfile::Poisson { rate: rate * 0.4 },
                16,
            ),
        ],
        sessions_per_class: 1,
        latency_target_cycles: 0,
        drain: false,
    };

    // Calibration: a heavily saturated probe's goodput is the service
    // capacity; the sweep brackets it.
    let probe = run(&make_gateway().unwrap(), &base_cfg(30_000.0)).unwrap();
    let mu_max = probe.achieved_rps.max(1.0);
    let sweep = latency_vs_load(
        make_gateway,
        &base_cfg(mu_max),
        &[0.3, 0.5, 0.7, 0.9, 1.1, 1.5],
        SloConfig::default(),
    )
    .unwrap();

    let mut group = c.benchmark_group("serve");
    group.report_metric(
        "open_loop_knee",
        1.0,
        Some(Throughput::Elements(sweep.knee_rps.round() as u64)),
    );
    let max_offered = sweep
        .points
        .iter()
        .map(|p| p.offered_rps)
        .fold(0.0_f64, f64::max);
    group.report_metric(
        "open_loop_collapse",
        1.0,
        Some(Throughput::Elements(
            sweep.collapse_rps.unwrap_or(max_offered).round() as u64,
        )),
    );
    let peak = sweep
        .points
        .iter()
        .map(|p| p.achieved_rps)
        .fold(0.0_f64, f64::max);
    let healthy = sweep
        .points
        .iter()
        .min_by(|a, b| {
            let da = (a.achieved_rps - 0.7 * peak).abs();
            let db = (b.achieved_rps - 0.7 * peak).abs();
            da.partial_cmp(&db).unwrap()
        })
        .expect("sweep has points");
    let to_s = |cycles: u64| cycles as f64 / MODELED_CYCLES_PER_SEC;
    group.report_stats(
        "open_loop_p99_70",
        SampleStats {
            min: to_s(healthy.slo.p50_cycles),
            median: to_s(healthy.slo.p99_cycles),
            mean: to_s(healthy.slo.p99_cycles),
            p50: to_s(healthy.slo.p50_cycles),
            p99: to_s(healthy.slo.p99_cycles),
            p999: to_s(healthy.slo.p999_cycles),
            iters: healthy.slo.completed,
        },
        None,
    );
    group.finish();
}

/// Multi-host degraded serving (`pim-fleet` + `pim-loadgen`): seeded
/// open-loop Poisson traffic over a three-host fleet whose *leader* is
/// crashed mid-horizon. The lease elector detects the lapse on the
/// modeled clock, re-elects, and re-places the orphaned sessions;
/// in-flight results against the dead placement are discarded and
/// re-issued. Rows:
///
/// * `fleet_degraded_leader_kill` — modeled requests/s actually achieved
///   across the whole run, failover included (the gap to the fault-free
///   gateway rows is the fleet-level recovery tax);
/// * `fleet_failover_recovery_cycles` — distribution of failover
///   detection latency (modeled seconds from a host's last heartbeat to
///   the lapse being declared); the headline is the p99.
///
/// Hosts are single-chip functional-backend gateways, so execution is
/// inline and the rows replay bit-identically from the seed.
fn bench_fleet(c: &mut Criterion) {
    use pim_fault::HostFaultPlan;
    use pim_fleet::{Fleet, FleetConfig};
    use pim_loadgen::{
        run_fleet, ArrivalProfile, ClassSpec, LoadgenConfig, RequestShape, MODELED_CYCLES_PER_SEC,
    };

    let fleet = Fleet::new(FleetConfig {
        hosts: 3,
        chip: PimConfig::small().with_crossbars(8),
        serve: ServeConfig {
            max_queue_depth: 0, // open loop: overload must queue, not reject
            ..ServeConfig::default()
        },
        fault: HostFaultPlan::none().crash_at(0, 150_000),
        ..FleetConfig::default()
    })
    .unwrap();
    let cfg = LoadgenConfig {
        seed: 2024,
        horizon_cycles: 300_000,
        window_cycles: 60_000,
        classes: vec![
            ClassSpec::new(
                "fused",
                RequestShape::Fused,
                ArrivalProfile::Poisson { rate: 80.0 },
                16,
            ),
            ClassSpec::new(
                "reduction",
                RequestShape::Reduction,
                ArrivalProfile::Poisson { rate: 20.0 },
                16,
            ),
        ],
        sessions_per_class: 2,
        latency_target_cycles: 0,
        drain: true,
    };
    let report = run_fleet(&fleet, &cfg).unwrap();
    assert_eq!(report.fleet.failovers, 1, "leader-kill schedule must fire");
    assert_eq!(report.fleet.leader_changes, 1);
    assert_eq!(report.completed + report.failed, report.injected);
    assert_eq!(report.failed, 0, "two survivors must absorb the load");
    assert!(report.failover_cycles.count >= 1);

    let mut group = c.benchmark_group("serve");
    group.report_metric(
        "fleet_degraded_leader_kill",
        report.end_cycle as f64 / MODELED_CYCLES_PER_SEC,
        Some(Throughput::Elements(report.completed)),
    );
    let fo = &report.failover_cycles;
    let to_s = |cycles: u64| cycles as f64 / MODELED_CYCLES_PER_SEC;
    group.report_stats(
        "fleet_failover_recovery_cycles",
        SampleStats {
            min: to_s(fo.min),
            median: to_s(fo.p99),
            mean: fo.mean() / MODELED_CYCLES_PER_SEC,
            p50: to_s(fo.p50),
            p99: to_s(fo.p99),
            p999: to_s(fo.p999),
            iters: fo.count,
        },
        None,
    );
    group.finish();
}

criterion_group!(benches, bench_serve, bench_open_loop, bench_fleet);
criterion_main!(benches);
