//! Serving-gateway throughput: the same multi-client request workload
//! driven (a) concurrently through the `pim-serve` gateway — one host
//! thread, every session in flight at once, each fused request pipeline in
//! its own chip-local placement window — and (b) sequentially, one request
//! at a time through the blocking tensor API.
//!
//! The headline numbers are **modeled-clock** (`PimConfig::clock_hz`,
//! 300 MHz): requests/s against the cluster's modeled end-to-end latency
//! (`ClusterStats::modeled_latency_cycles` — the busiest chip plus link
//! cycles). Under the model the chips genuinely run in parallel, so
//! concurrent chip-local sessions finish in ~1/shards the cycles of a
//! sequential client that drives one chip at a time; the wall-clock groups
//! (`wall_*`) track host overhead and show real speedups only on hosts
//! with enough cores to run the shard workers concurrently (see the
//! cluster bench's scaling note).
//!
//! Per-request modeled latency percentiles (p50/p99) model all requests
//! arriving at once: request `j` of the `R` hosted on a chip whose run
//! took `C` cycles completes at `(j+1)·C/R` — queueing included, so
//! oversubscribing chips (8 sessions on 4 chips) visibly stretches p99.
//! The per-request cycle counts land in a `pim-telemetry` log-bucketed
//! [`Histogram`], whose p50/p99/p999 are what the JSON report carries —
//! every latency entry now has real tail fields, not a collapsed point.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, SampleStats, Throughput};
use futures::executor::block_on;
use futures::future::join_all;
use pim_arch::PimConfig;
use pim_serve::{ClusterClient, DeviceServeExt, ServeConfig};
use pim_telemetry::Histogram;
use pypim_core::{Device, RegOp, Result, Tensor};

const SHARDS: usize = 4;
const REQUESTS_PER_SESSION: usize = 2;

/// Per-chip geometry: 4 crossbars x 64 rows -> a 16-warp, 1024-thread
/// cluster (small enough for the full sampling loop).
fn shard_cfg() -> PimConfig {
    PimConfig::small().with_crossbars(4)
}

fn cluster_dev() -> Device {
    Device::cluster(shard_cfg(), SHARDS).unwrap()
}

fn payload(cid: usize, req: usize, elems: usize) -> Vec<f32> {
    (0..elems)
        .map(|i| ((cid * 31 + req * 7 + i) % 13) as f32 * 0.25)
        .collect()
}

/// The request program, fused into one gateway submission plus one read:
/// `sum(x * y + x)` (Figure 12 plus a reduction).
async fn request_fused(client: &ClusterClient, values: &[f32]) -> Result<f32> {
    let mut plan = client.plan();
    let x = plan.upload_f32(values)?;
    let y = plan.full_f32(values.len(), 2.0)?;
    let xy = plan.mul(&x, &y)?;
    let z = plan.add(&xy, &x)?;
    let s = plan.reduce(&z, RegOp::Add)?;
    plan.run().await?;
    Ok(client.to_vec_f32(&s).await?[0])
}

fn request_sync(dev: &Device, values: &[f32]) -> Result<f32> {
    let x = dev.from_slice_f32(values)?;
    let y = dev.full_f32(values.len(), 2.0)?;
    let z: Tensor = (&(&x * &y)? + &x)?;
    z.sum_f32()
}

/// Serves `sessions x REQUESTS_PER_SESSION` requests concurrently through
/// the gateway.
fn run_gateway(clients: &[ClusterClient], elems: usize) {
    block_on(join_all(clients.iter().enumerate().map(
        |(cid, client)| async move {
            for req in 0..REQUESTS_PER_SESSION {
                let sum = request_fused(client, &payload(cid, req, elems))
                    .await
                    .unwrap();
                assert!(sum.is_finite());
            }
        },
    )));
}

fn run_sequential(dev: &Device, sessions: usize, elems: usize) {
    for cid in 0..sessions {
        for req in 0..REQUESTS_PER_SESSION {
            let sum = request_sync(dev, &payload(cid, req, elems)).unwrap();
            assert!(sum.is_finite());
        }
    }
}

/// Per-request modeled completion latencies (cycles), recorded into a
/// telemetry histogram: the `R_k` requests hosted on chip `k` complete at
/// `(j+1)·C_k/R_k` cycles, `j = 0..R_k` (all requests arrive at once).
fn modeled_latency_hist(shard_cycles: &[(u64, usize)]) -> Histogram {
    let hist = Histogram::new();
    for &(cycles, hosted) in shard_cycles {
        for j in 0..hosted {
            hist.record((cycles as f64 * (j + 1) as f64 / hosted as f64).round() as u64);
        }
    }
    hist
}

fn bench_serve(c: &mut Criterion) {
    let clock_hz = shard_cfg().clock_hz;
    let mut group = c.benchmark_group("serve");
    for sessions in [4usize, 8] {
        let dev = cluster_dev();
        let total_warps = dev.config().crossbars as u32;
        let session_warps = total_warps / sessions as u32;
        let warps_per_shard = (total_warps as usize / SHARDS) as u32;
        let elems = session_warps as usize * dev.config().rows;
        let requests = (sessions * REQUESTS_PER_SESSION) as u64;

        // --- Concurrent serving through the gateway (fused pipelines,
        //     chip-local session windows).
        let gateway = dev.serve(ServeConfig {
            session_warps,
            ..ServeConfig::default()
        });
        let clients: Vec<ClusterClient> =
            (0..sessions).map(|_| gateway.session().unwrap()).collect();
        run_gateway(&clients, elems); // warm routine caches
        dev.reset_counters();
        run_gateway(&clients, elems);
        let stats = dev.cluster_stats().unwrap();
        let gw_modeled_s = stats.modeled_latency_cycles() as f64 / clock_hz;

        // --- The same workload, one request at a time, blocking API.
        let seq_dev = cluster_dev();
        run_sequential(&seq_dev, 1, elems); // warm routine caches
        seq_dev.reset_counters();
        run_sequential(&seq_dev, sessions, elems);
        let seq_stats = seq_dev.cluster_stats().unwrap();
        let seq_modeled_s = seq_stats.modeled_latency_cycles() as f64 / clock_hz;

        // Modeled-clock headline: requests/s on the modeled machine.
        group.report_metric(
            BenchmarkId::new("gateway", format!("{sessions}-sessions")),
            gw_modeled_s,
            Some(Throughput::Elements(requests)),
        );
        group.report_metric(
            BenchmarkId::new("sequential", format!("{sessions}-sessions")),
            seq_modeled_s,
            Some(Throughput::Elements(requests)),
        );

        // Modeled per-request latency percentiles under full concurrency.
        // Map each session to the chip hosting its window, count requests
        // per chip, then spread each chip's cycles over its requests.
        let mut hosted = [0usize; SHARDS];
        for client in &clients {
            hosted[(client.window().warp_start / warps_per_shard) as usize] += REQUESTS_PER_SESSION;
        }
        let per_shard: Vec<(u64, usize)> = stats
            .shards
            .iter()
            .map(|s| (s.profiler.cycles, hosted[s.shard]))
            .filter(|&(_, h)| h > 0)
            .collect();
        let lat = modeled_latency_hist(&per_shard).snapshot();
        let to_s = |cycles: u64| cycles as f64 / clock_hz;
        let dist = SampleStats {
            min: to_s(lat.min),
            median: to_s(lat.p50),
            mean: lat.mean() / clock_hz,
            p50: to_s(lat.p50),
            p99: to_s(lat.p99),
            iters: lat.count,
        };
        group.report_stats(
            BenchmarkId::new("latency_p50", format!("{sessions}-sessions")),
            dist,
            None,
        );
        group.report_stats(
            BenchmarkId::new("latency_p99", format!("{sessions}-sessions")),
            SampleStats {
                median: to_s(lat.p99),
                ..dist
            },
            None,
        );

        // --- Wall-clock trajectory (host-bound; shard workers need real
        //     cores to overlap — see the module docs).
        group.throughput(Throughput::Elements(requests));
        group.bench_with_input(
            BenchmarkId::new("wall_gateway", format!("{sessions}-sessions")),
            &sessions,
            |b, _| b.iter(|| run_gateway(&clients, elems)),
        );
        group.bench_with_input(
            BenchmarkId::new("wall_sequential", format!("{sessions}-sessions")),
            &sessions,
            |b, _| b.iter(|| run_sequential(&seq_dev, sessions, elems)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
