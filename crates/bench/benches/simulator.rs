//! Simulator execution speed: how many micro-operations per second the
//! bit-accurate CPU simulator sustains — the CPU stand-in for the paper's
//! GPU acceleration (§VI). Measured with the batched (parallel-across-
//! crossbars) path and the strict checker on/off.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pim_arch::{Backend, MicroOp, PimConfig, RangeMask};
use pim_bench::hlogic_ops;
use pim_driver::routines;
use pim_func::FuncBackend;
use pim_isa::{DType, RegOp};
use pim_sim::PimSimulator;

/// The simulator's horizontal-logic kernel in isolation (single-threaded,
/// strict on): dense row masks versus the strided fall-back, comparable
/// before/after any kernel change through BENCH_simulator.json.
fn bench_hlogic(c: &mut Criterion) {
    let cfg = PimConfig::small().with_crossbars(64).with_rows(256);
    let ops = hlogic_ops(&cfg, 256);
    let mut group = c.benchmark_group("hlogic");
    group.throughput(Throughput::Elements(ops.len() as u64));
    let masks = [
        ("dense", RangeMask::dense(0, cfg.rows as u32).unwrap()),
        (
            "strided",
            RangeMask::new(0, cfg.rows as u32 - 2, 2).unwrap(),
        ),
    ];
    for (name, row_mask) in masks {
        let mut sim = PimSimulator::new(cfg.clone()).unwrap();
        sim.set_threads(1);
        let mut batch = vec![MicroOp::RowMask(row_mask)];
        batch.extend(ops.iter().cloned());
        group.bench_function(name, |b| {
            b.iter(|| sim.execute_batch(&batch).unwrap());
        });
    }
    group.finish();
}

/// The identical micro-op streams on the vectorized functional backend
/// (`pim-func`): same geometry, same batches, same masks as the `hlogic`
/// and `simulator` groups, so `func/*` vs `hlogic/*`/`simulator/*` rows in
/// BENCH_simulator.json measure the word-level fast path directly against
/// the bit-accurate kernel.
fn bench_func(c: &mut Criterion) {
    let cfg = PimConfig::small().with_crossbars(64).with_rows(256);
    let ops = hlogic_ops(&cfg, 256);
    let mut group = c.benchmark_group("func");
    group.throughput(Throughput::Elements(ops.len() as u64));
    let masks = [
        ("dense", RangeMask::dense(0, cfg.rows as u32).unwrap()),
        (
            "strided",
            RangeMask::new(0, cfg.rows as u32 - 2, 2).unwrap(),
        ),
    ];
    for (name, row_mask) in masks {
        let mut func = FuncBackend::new(cfg.clone()).unwrap();
        let mut batch = vec![MicroOp::RowMask(row_mask)];
        batch.extend(ops.iter().cloned());
        group.bench_function(name, |b| {
            b.iter(|| func.execute_batch(&batch).unwrap());
        });
    }
    let routine = routines::compile_rtype(
        &cfg,
        pim_driver::ParallelismMode::BitSerial,
        RegOp::Add,
        DType::Int32,
        2,
        &[0, 1],
    )
    .unwrap();
    group.throughput(Throughput::Elements(routine.ops.len() as u64));
    let mut func = FuncBackend::new(cfg).unwrap();
    group.bench_function("int_add", |b| {
        b.iter(|| func.execute_batch(&routine.ops).unwrap());
    });
    group.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let cfg = PimConfig::small().with_crossbars(64).with_rows(256);
    let routine = routines::compile_rtype(
        &cfg,
        pim_driver::ParallelismMode::BitSerial,
        RegOp::Add,
        DType::Int32,
        2,
        &[0, 1],
    )
    .unwrap();
    let mut group = c.benchmark_group("simulator");
    group.throughput(Throughput::Elements(routine.ops.len() as u64));
    for strict in [true, false] {
        let mut sim = PimSimulator::new(cfg.clone()).unwrap();
        sim.set_strict(strict);
        let name = if strict {
            "int_add_strict"
        } else {
            "int_add_fast"
        };
        group.bench_function(name, |b| {
            b.iter(|| sim.execute_batch(&routine.ops).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulator, bench_hlogic, bench_func);
criterion_main!(benches);
