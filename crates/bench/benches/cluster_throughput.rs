//! Sharded-cluster element throughput: the same element-parallel workload
//! on 1, 2, and 4 chips. Per-shard geometry is fixed, so the tensor grows
//! with the shard count — ideal scaling is constant wall time per
//! invocation, i.e. element-throughput proportional to the shard count.
//!
//! Besides the criterion groups, the bench prints an explicit 4-vs-1 shard
//! scaling summary with per-shard issued-cycle and routine-cache telemetry
//! (the production observability of the cluster subsystem).
//!
//! Interconnect groups: `move_cross` A/Bs batched burst staging against the
//! PR-1 per-word path for a chip-crossing `MoveWarps`; `move_mixed` A/Bs
//! the dependency-aware drain rule (only touched shards wait at a crossing
//! move) against the PR-1 global barrier on a batch that interleaves heavy
//! shard-local work with cross-chip transfers; `move_shift` A/Bs the
//! cross-chip move coalescer (`Coalesce::On` vs `Off`) on a whole-memory
//! shift whose decomposition otherwise reaches the links as one message
//! and one barrier per warp.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pim_arch::{MicroOp, PimConfig, RangeMask};
use pim_bench::{hlogic_ops, random_ints};
use pim_cluster::{Coalesce, DrainPolicy, InterconnectConfig, PimCluster, Staging};
use pim_driver::ParallelismMode;
use pim_isa::{DType, Instruction, RegOp, ThreadRange};
use pypim_core::{shifted, Device, Tensor};

/// Per-chip geometry: 16 crossbars × 64 rows (1024 threads per shard).
fn shard_cfg() -> PimConfig {
    PimConfig::small()
}

fn inputs(dev: &Device) -> (Tensor, Tensor) {
    let n = dev.config().total_threads() as usize;
    let a = dev.from_slice_i32(&random_ints(n, 1)).unwrap();
    let b = dev.from_slice_i32(&random_ints(n, 2)).unwrap();
    (a, b)
}

fn bench_cluster(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_throughput");
    for shards in [1usize, 2, 4] {
        let dev = Device::cluster(shard_cfg(), shards).unwrap();
        let (a, b) = inputs(&dev);
        group.throughput(Throughput::Elements(a.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("int_add", format!("{shards}-shard")),
            &shards,
            |bench, _| {
                bench.iter(|| a.binary(RegOp::Add, &b).unwrap());
            },
        );
    }
    group.finish();
    scaling_summary();
}

/// Manual 4-vs-1 shard measurement with telemetry, printed after the
/// criterion groups.
///
/// Shard workers are OS threads, so the achievable element-throughput
/// speedup is `min(shards, host cores)`: a 4-shard cluster needs 4 cores
/// to show its ~4x; on fewer cores the workers time-slice and the ratio
/// degrades toward 1x (with only per-shard queueing overhead on top).
fn scaling_summary() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("\nhost parallelism: {cores} core(s); ideal 4-shard speedup = min(4, cores)");
    let reps = 20;
    let mut rates = Vec::new();
    for shards in [1usize, 4] {
        let dev = Device::cluster(shard_cfg(), shards).unwrap();
        let (a, b) = inputs(&dev);
        a.binary(RegOp::Add, &b).unwrap(); // warm routine caches
        dev.reset_counters().unwrap();
        let start = std::time::Instant::now();
        for _ in 0..reps {
            a.binary(RegOp::Add, &b).unwrap();
        }
        let dt = start.elapsed().as_secs_f64();
        let elems = (a.len() * reps) as f64;
        let rate = elems / dt;
        rates.push(rate);
        println!("\n== {shards}-shard cluster: {rate:.3e} elements/s ==");
        if let Some(stats) = dev.cluster_stats().unwrap() {
            let (hits, misses) = stats.cache_stats();
            println!(
                "   issued cycles (all shards): logic {} / total {}; \
                 routine cache {hits} hits / {misses} misses",
                stats.issued().logic,
                stats.issued().total,
            );
            for s in &stats.shards {
                println!(
                    "   shard {}: {} chip cycles, issued {} ({} logic), \
                     cache {}h/{}m, {} sim thread(s)",
                    s.shard,
                    s.profiler.cycles,
                    s.issued.total,
                    s.issued.logic,
                    s.cache_hits,
                    s.cache_misses,
                    s.sim_threads,
                );
            }
        }
    }
    let speedup = rates[1] / rates[0];
    println!("\n== element-throughput scaling, 4 shards vs 1: {speedup:.2}x ==");
    if cores < 4 {
        // 4 workers time-slicing on `cores` core(s): the interesting
        // number is how little the sharding layer costs, not the speedup.
        println!(
            "   ({cores}-core host serializes the shard workers; \
             sharding overhead vs perfect time-slicing: {:.1}%)\n",
            (1.0 / speedup.max(f64::EPSILON) - 1.0).max(0.0) * 100.0 / 4.0
        );
    } else {
        println!();
    }
}

/// Builds a 4-chip cluster with an explicit interconnect policy.
fn cluster_with(staging: Staging, drain: DrainPolicy) -> PimCluster {
    PimCluster::with_interconnect(
        shard_cfg(),
        4,
        ParallelismMode::default(),
        InterconnectConfig {
            staging,
            drain,
            ..InterconnectConfig::default()
        },
    )
    .unwrap()
}

/// Cross-shard move staging: the same 32-warp chip-crossing `MoveWarps`
/// with batched burst staging (one message per shard pair) vs the PR-1
/// per-word path (one host round trip per word pair). Batched staging
/// should win clearly — that is the interconnect's reason to exist.
fn bench_move_cross(c: &mut Criterion) {
    let mut group = c.benchmark_group("move_cross");
    // Warps 0..=31 (shards 0 and 1) -> warps 32..=63 (shards 2 and 3):
    // every pair crosses a chip boundary.
    let mv = Instruction::MoveWarps {
        src: 0,
        dst: 1,
        row_src: 0,
        row_dst: 0,
        warps: RangeMask::new(0, 31, 1).unwrap(),
        dist: 32,
    };
    group.throughput(Throughput::Elements(32));
    for (name, staging) in [
        ("batched", Staging::Batched),
        ("per_word", Staging::PerWord),
    ] {
        let cluster = cluster_with(staging, DrainPolicy::Touched);
        group.bench_function(name, |b| {
            b.iter(|| cluster.execute_batch(std::slice::from_ref(&mv)).unwrap());
        });
    }
    group.finish();
}

/// Dependency-aware drain: a mixed batch interleaving heavy element work on
/// shards 2/3 with chip-crossing moves between shards 0/1. Under the
/// dependency scheduler only the touched shards (0, 1) drain at each
/// crossing move — shards 2/3 stream their queued work concurrently with
/// the transfers; the PR-1 global barrier serializes the two.
fn bench_move_mixed(c: &mut Criterion) {
    const SEGMENTS: u64 = 6;
    let rows = RangeMask::dense(0, 8).unwrap();
    let work = Instruction::RType {
        op: RegOp::Add,
        dtype: DType::Int32,
        dst: 2,
        srcs: [0, 1, 0],
        target: ThreadRange::new(RangeMask::new(32, 63, 1).unwrap(), rows),
    };
    let mv = Instruction::MoveWarps {
        src: 0,
        dst: 1,
        row_src: 0,
        row_dst: 0,
        warps: RangeMask::new(0, 15, 1).unwrap(),
        dist: 16,
    };
    let batch: Vec<Instruction> = (0..SEGMENTS)
        .flat_map(|_| [work.clone(), mv.clone()])
        .collect();
    let mut group = c.benchmark_group("move_mixed");
    // Untouched-shard work per batch: SEGMENTS x 32 warps x 8 rows.
    group.throughput(Throughput::Elements(SEGMENTS * 32 * 8));
    for (name, drain) in [
        ("dep_sched", DrainPolicy::Touched),
        ("global_barrier", DrainPolicy::Global),
    ] {
        let cluster = cluster_with(Staging::Batched, drain);
        group.bench_function(name, |b| {
            b.iter(|| cluster.execute_batch(&batch).unwrap());
        });
    }
    group.finish();
    drain_summary(&batch);
}

/// Prints the scheduler telemetry behind `move_mixed`: how many shard
/// queues each policy drains at the crossing-move barriers. The wall-clock
/// gap between the two is the transfer/compute overlap, which — like the
/// shard-scaling numbers — only materializes when the host has spare cores
/// for the untouched shards' workers to stream on; the drained-queue
/// counters show the scheduling difference on any host.
fn drain_summary(batch: &[Instruction]) {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("\nmove_mixed drain telemetry (host parallelism: {cores} core(s)):");
    for (name, drain) in [
        ("dep_sched", DrainPolicy::Touched),
        ("global_barrier", DrainPolicy::Global),
    ] {
        let cluster = cluster_with(Staging::Batched, drain);
        cluster.execute_batch(batch).unwrap();
        let t = cluster.stats().unwrap().traffic;
        println!(
            "   {name}: {} barriers drained {} shard queue(s); {} messages, \
             {} cross-chip words, {} modeled link cycles",
            t.barriers, t.drained_queues, t.messages, t.cross_words, t.link_cycles,
        );
    }
    if cores < 2 {
        println!(
            "   (single-core host: untouched shards cannot stream during \
             transfers, so the wall-clock gap shrinks to the synchronization \
             overhead the global barrier adds)\n"
        );
    } else {
        println!();
    }
}

/// A cluster-backed device with an explicit move-coalescing policy.
fn shift_dev(shards: usize, coalesce: Coalesce) -> Device {
    Device::cluster_with_interconnect(
        shard_cfg(),
        shards,
        ParallelismMode::default(),
        InterconnectConfig {
            coalesce,
            ..InterconnectConfig::default()
        },
    )
    .unwrap()
}

/// Move coalescing: a whole-memory shift by one chip's worth of elements,
/// so every moved warp crosses a shard boundary. The movement layer
/// decomposes the shift into one single-warp crossing `MoveWarps` per
/// (row class x phase); `per_move` (`Coalesce::Off`) pays one barrier and
/// one message for each of them, `coalesced` (`Coalesce::On`) merges the
/// whole run into one barrier and one burst per `(src, dst)` shard pair —
/// O(shard pairs) instead of O(warps).
fn bench_move_shift(c: &mut Criterion) {
    let mut group = c.benchmark_group("move_shift");
    for shards in [2usize, 4] {
        for (name, coalesce) in [("coalesced", Coalesce::On), ("per_move", Coalesce::Off)] {
            let dev = shift_dev(shards, coalesce);
            let n = dev.config().total_threads() as usize;
            let dist = (n / shards) as i64;
            let t = dev.arange_i32(n).unwrap();
            group.throughput(Throughput::Elements((n as i64 - dist) as u64));
            group.bench_with_input(
                BenchmarkId::new(name, format!("{shards}-shard")),
                &shards,
                |b, _| {
                    b.iter(|| shifted(&t, dist).unwrap());
                },
            );
        }
    }
    // Modeled link traffic of one shift per policy, written into the JSON
    // report so the A/B is machine-checkable: `link_seconds` is the
    // modeled link time at a 1 GHz link clock (throughput = moved
    // elements per modeled second); `messages` and `barriers` are raw
    // counts stashed in the seconds field (compare `coalesced` vs
    // `per_move` — they scale with shard pairs vs warp count).
    const LINK_HZ: f64 = 1e9;
    for shards in [2usize, 4] {
        for (name, coalesce) in [("coalesced", Coalesce::On), ("per_move", Coalesce::Off)] {
            let dev = shift_dev(shards, coalesce);
            let n = dev.config().total_threads() as usize;
            let dist = (n / shards) as i64;
            let t = dev.arange_i32(n).unwrap();
            dev.reset_counters().unwrap();
            shifted(&t, dist).unwrap();
            let traffic = dev.cluster_stats().unwrap().unwrap().traffic;
            let moved = (n as i64 - dist) as u64;
            group.report_metric(
                BenchmarkId::new(format!("link_seconds_{name}"), format!("{shards}-shard")),
                traffic.link_cycles as f64 / LINK_HZ,
                Some(Throughput::Elements(moved)),
            );
            group.report_metric(
                BenchmarkId::new(format!("messages_{name}"), format!("{shards}-shard")),
                traffic.messages as f64,
                None,
            );
            group.report_metric(
                BenchmarkId::new(format!("barriers_{name}"), format!("{shards}-shard")),
                traffic.barriers as f64,
                None,
            );
        }
    }
    group.finish();
    shift_summary();
}

/// Prints the coalescer telemetry behind `move_shift`: messages, barriers,
/// link cycles, and merged-run counters for the same whole-memory shift
/// under both policies.
fn shift_summary() {
    println!("\nmove_shift coalescer telemetry (4 shards, whole-memory shift):");
    for (name, coalesce) in [("coalesced", Coalesce::On), ("per_move", Coalesce::Off)] {
        let dev = shift_dev(4, coalesce);
        let n = dev.config().total_threads() as usize;
        let t = dev.arange_i32(n).unwrap();
        dev.reset_counters().unwrap();
        shifted(&t, (n / 4) as i64).unwrap();
        let tr = dev.cluster_stats().unwrap().unwrap().traffic;
        println!(
            "   {name}: {} messages, {} barriers, {} cross-chip words, \
             {} modeled link cycles; {} runs merged {} moves (saving {} \
             messages)",
            tr.messages,
            tr.barriers,
            tr.cross_words,
            tr.link_cycles,
            tr.runs_merged,
            tr.moves_merged,
            tr.bursts_saved,
        );
    }
    println!();
}

/// The horizontal-logic kernel through the shard micro-batch path: the
/// same strict-safe INIT1+NOR mix as the simulator bench, pushed to all
/// four shards in turn under a dense and a strided row mask.
fn bench_hlogic(c: &mut Criterion) {
    let cfg = shard_cfg();
    let ops = hlogic_ops(&cfg, 256);
    let shards = 4;
    let cluster = PimCluster::new(cfg.clone(), shards).unwrap();
    let mut group = c.benchmark_group("hlogic");
    group.throughput(Throughput::Elements((ops.len() * shards) as u64));
    let masks = [
        ("dense", RangeMask::dense(0, cfg.rows as u32).unwrap()),
        (
            "strided",
            RangeMask::new(0, cfg.rows as u32 - 2, 2).unwrap(),
        ),
    ];
    for (name, row_mask) in masks {
        let mut batch = vec![MicroOp::RowMask(row_mask)];
        batch.extend(ops.iter().cloned());
        group.bench_function(name, |b| {
            b.iter(|| {
                for shard in 0..shards {
                    cluster.execute_micro_batch(shard, batch.clone()).unwrap();
                }
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_cluster,
    bench_move_cross,
    bench_move_mixed,
    bench_move_shift,
    bench_hlogic
);
criterion_main!(benches);
