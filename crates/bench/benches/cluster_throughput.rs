//! Sharded-cluster element throughput: the same element-parallel workload
//! on 1, 2, and 4 chips. Per-shard geometry is fixed, so the tensor grows
//! with the shard count — ideal scaling is constant wall time per
//! invocation, i.e. element-throughput proportional to the shard count.
//!
//! Besides the criterion groups, the bench prints an explicit 4-vs-1 shard
//! scaling summary with per-shard issued-cycle and routine-cache telemetry
//! (the production observability of the cluster subsystem).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pim_arch::{MicroOp, PimConfig, RangeMask};
use pim_bench::{hlogic_ops, random_ints};
use pim_cluster::PimCluster;
use pim_isa::RegOp;
use pypim_core::{Device, Tensor};

/// Per-chip geometry: 16 crossbars × 64 rows (1024 threads per shard).
fn shard_cfg() -> PimConfig {
    PimConfig::small()
}

fn inputs(dev: &Device) -> (Tensor, Tensor) {
    let n = dev.config().total_threads() as usize;
    let a = dev.from_slice_i32(&random_ints(n, 1)).unwrap();
    let b = dev.from_slice_i32(&random_ints(n, 2)).unwrap();
    (a, b)
}

fn bench_cluster(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_throughput");
    for shards in [1usize, 2, 4] {
        let dev = Device::cluster(shard_cfg(), shards).unwrap();
        let (a, b) = inputs(&dev);
        group.throughput(Throughput::Elements(a.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("int_add", format!("{shards}-shard")),
            &shards,
            |bench, _| {
                bench.iter(|| a.binary(RegOp::Add, &b).unwrap());
            },
        );
    }
    group.finish();
    scaling_summary();
}

/// Manual 4-vs-1 shard measurement with telemetry, printed after the
/// criterion groups.
///
/// Shard workers are OS threads, so the achievable element-throughput
/// speedup is `min(shards, host cores)`: a 4-shard cluster needs 4 cores
/// to show its ~4x; on fewer cores the workers time-slice and the ratio
/// degrades toward 1x (with only per-shard queueing overhead on top).
fn scaling_summary() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("\nhost parallelism: {cores} core(s); ideal 4-shard speedup = min(4, cores)");
    let reps = 20;
    let mut rates = Vec::new();
    for shards in [1usize, 4] {
        let dev = Device::cluster(shard_cfg(), shards).unwrap();
        let (a, b) = inputs(&dev);
        a.binary(RegOp::Add, &b).unwrap(); // warm routine caches
        dev.reset_counters();
        let start = std::time::Instant::now();
        for _ in 0..reps {
            a.binary(RegOp::Add, &b).unwrap();
        }
        let dt = start.elapsed().as_secs_f64();
        let elems = (a.len() * reps) as f64;
        let rate = elems / dt;
        rates.push(rate);
        println!("\n== {shards}-shard cluster: {rate:.3e} elements/s ==");
        if let Some(stats) = dev.cluster_stats() {
            let (hits, misses) = stats.cache_stats();
            println!(
                "   issued cycles (all shards): logic {} / total {}; \
                 routine cache {hits} hits / {misses} misses",
                stats.issued().logic,
                stats.issued().total,
            );
            for s in &stats.shards {
                println!(
                    "   shard {}: {} chip cycles, issued {} ({} logic), \
                     cache {}h/{}m, {} sim thread(s)",
                    s.shard,
                    s.profiler.cycles,
                    s.issued.total,
                    s.issued.logic,
                    s.cache_hits,
                    s.cache_misses,
                    s.sim_threads,
                );
            }
        }
    }
    let speedup = rates[1] / rates[0];
    println!("\n== element-throughput scaling, 4 shards vs 1: {speedup:.2}x ==");
    if cores < 4 {
        // 4 workers time-slicing on `cores` core(s): the interesting
        // number is how little the sharding layer costs, not the speedup.
        println!(
            "   ({cores}-core host serializes the shard workers; \
             sharding overhead vs perfect time-slicing: {:.1}%)\n",
            (1.0 / speedup.max(f64::EPSILON) - 1.0).max(0.0) * 100.0 / 4.0
        );
    } else {
        println!();
    }
}

/// The horizontal-logic kernel through the shard micro-batch path: the
/// same strict-safe INIT1+NOR mix as the simulator bench, pushed to all
/// four shards in turn under a dense and a strided row mask.
fn bench_hlogic(c: &mut Criterion) {
    let cfg = shard_cfg();
    let ops = hlogic_ops(&cfg, 256);
    let shards = 4;
    let cluster = PimCluster::new(cfg.clone(), shards).unwrap();
    let mut group = c.benchmark_group("hlogic");
    group.throughput(Throughput::Elements((ops.len() * shards) as u64));
    let masks = [
        ("dense", RangeMask::dense(0, cfg.rows as u32).unwrap()),
        (
            "strided",
            RangeMask::new(0, cfg.rows as u32 - 2, 2).unwrap(),
        ),
    ];
    for (name, row_mask) in masks {
        let mut batch = vec![MicroOp::RowMask(row_mask)];
        batch.extend(ops.iter().cloned());
        group.bench_function(name, |b| {
            b.iter(|| {
                for shard in 0..shards {
                    cluster.execute_micro_batch(shard, batch.clone()).unwrap();
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cluster, bench_hlogic);
criterion_main!(benches);
