//! Benchmark harness reproducing the PyPIM evaluation (§VI, Figure 13):
//! workload generators, cycle measurement against the theoretical-PIM
//! baseline, and the host-driver throughput methodology of Artifact
//! Appendix E.
//!
//! Binaries:
//!
//! * `figure13` — regenerates both panels of Figure 13 (throughput of the
//!   fundamental/comparison operations and of the library-level benchmarks,
//!   for PyPIM vs theoretical PIM vs the host driver) plus the §VI-B
//!   summary statistics.
//! * `table2` — regenerates Table II as a coverage/cost matrix, including
//!   the serial-vs-partition-parallel addition ablation (§III-D).

use pim_arch::PimConfig;
use pim_driver::{Driver, ParallelismMode, SinkBackend};
use pim_isa::{DType, Instruction, RegOp, ThreadRange};
use pypim_core::{Device, Result, Tensor};
use rand::{Rng, SeedableRng};

/// One measured benchmark: everything needed for a Figure 13 bar group.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark label (Figure 13 x-axis).
    pub name: String,
    /// Element operations performed per invocation (the parallelism term).
    pub elements: u64,
    /// PIM cycles measured by the simulator profiler.
    pub measured_cycles: u64,
    /// Pure-logic cycles issued by the driver (theoretical-PIM latency).
    pub theoretical_cycles: u64,
    /// Host-driver micro-operation streaming rate (ops/second), measured
    /// with the rerouted-buffer methodology; `None` if not measured.
    pub driver_rate: Option<f64>,
    /// PIM clock (Hz) of the measured configuration.
    pub clock_hz: f64,
}

impl BenchResult {
    /// PyPIM throughput (element ops/second): Eq. (1) with the measured
    /// latency.
    pub fn pypim_tput(&self) -> f64 {
        self.elements as f64 * self.clock_hz / self.measured_cycles as f64
    }

    /// Theoretical PIM throughput: Eq. (1) with the pure-logic latency.
    pub fn theoretical_tput(&self) -> f64 {
        self.elements as f64 * self.clock_hz / self.theoretical_cycles as f64
    }

    /// Maximal throughput the host driver can sustain: the chip consumes
    /// one micro-operation per cycle, so a driver streaming `R` ops/s
    /// supports `elements × R / measured_cycles`.
    pub fn driver_tput(&self) -> Option<f64> {
        self.driver_rate
            .map(|r| self.elements as f64 * r / self.measured_cycles as f64)
    }

    /// Distance from theoretical PIM (`measured/theoretical − 1`).
    pub fn distance_from_theory(&self) -> f64 {
        self.measured_cycles as f64 / self.theoretical_cycles as f64 - 1.0
    }

    /// Driver headroom: `driver_rate / clock` (the paper's "the host driver
    /// is N× faster than PyPIM" metric).
    pub fn driver_headroom(&self) -> Option<f64> {
        self.driver_rate.map(|r| r / self.clock_hz)
    }
}

/// The benchmark suite of §VI-A.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Fundamental arithmetic / comparison on random tensors.
    RType(RegOp, DType),
    /// CORDIC sine on random angles in `[-π/2, π/2]`.
    CordicSine,
    /// Logarithmic summation reduction (float).
    SumReduce,
    /// Logarithmic multiplication reduction (float).
    MulReduce,
    /// Bitonic sort of `n` random floats.
    Sort(usize),
}

impl Workload {
    /// The Figure 13 label.
    pub fn name(&self) -> String {
        match self {
            Workload::RType(op, DType::Int32) => match op {
                RegOp::Lt => "Int <".into(),
                _ => format!("Int {op}"),
            },
            Workload::RType(op, DType::Float32) => format!("FP {op}"),
            Workload::CordicSine => "CORDIC Sine".into(),
            Workload::SumReduce => "FP Sum Reduce".into(),
            Workload::MulReduce => "FP Mult Reduce".into(),
            Workload::Sort(n) => format!("FP Sort {}", human(*n)),
        }
    }
}

fn human(n: usize) -> String {
    if n.is_multiple_of(1024) {
        format!("{}k", n / 1024)
    } else {
        n.to_string()
    }
}

/// Random finite floats with moderate magnitudes.
pub fn random_floats(n: usize, seed: u64) -> Vec<f32> {
    let mut r = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n).map(|_| r.gen_range(-1000.0f32..1000.0)).collect()
}

/// Random ints.
pub fn random_ints(n: usize, seed: u64) -> Vec<i32> {
    let mut r = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n).map(|_| r.gen()).collect()
}

/// A strict-safe horizontal-logic batch: `pairs` repetitions of
/// whole-register INIT1 followed by a partition-parallel NOR — the
/// micro-operation mix dominating every compiled routine. Shared by the
/// `simulator` and `cluster` benches so their `hlogic` groups stay
/// comparable.
pub fn hlogic_ops(cfg: &PimConfig, pairs: usize) -> Vec<pim_arch::MicroOp> {
    use pim_arch::{GateKind, HLogic, MicroOp};
    let mut ops = Vec::with_capacity(2 * pairs);
    for _ in 0..pairs {
        ops.push(MicroOp::LogicH(HLogic::init_reg(true, 2, cfg).unwrap()));
        ops.push(MicroOp::LogicH(
            HLogic::parallel(GateKind::Nor, 0, 1, 2, cfg).unwrap(),
        ));
    }
    ops
}

fn input_tensors(dev: &Device, w: &Workload, n: usize) -> Result<(Tensor, Option<Tensor>)> {
    match w {
        Workload::RType(_, DType::Int32) => Ok((
            dev.from_slice_i32(&random_ints(n, 11))?,
            Some(dev.from_slice_i32(&random_ints(n, 22))?),
        )),
        Workload::RType(_, DType::Float32) => Ok((
            dev.from_slice_f32(&random_floats(n, 33))?,
            Some(dev.from_slice_f32(&random_floats(n, 44))?),
        )),
        Workload::CordicSine => {
            let mut r = rand::rngs::StdRng::seed_from_u64(55);
            let half_pi = std::f32::consts::FRAC_PI_2;
            let angles: Vec<f32> = (0..n).map(|_| r.gen_range(-half_pi..half_pi)).collect();
            Ok((dev.from_slice_f32(&angles)?, None))
        }
        Workload::SumReduce | Workload::MulReduce => {
            // Values near 1 so the running product stays finite.
            let mut r = rand::rngs::StdRng::seed_from_u64(66);
            let vals: Vec<f32> = (0..n).map(|_| r.gen_range(0.5f32..1.5)).collect();
            Ok((dev.from_slice_f32(&vals)?, None))
        }
        Workload::Sort(sn) => Ok((dev.from_slice_f32(&random_floats(*sn, 77))?, None)),
    }
}

/// Runs one workload on `dev` over `n` elements (ignored for `Sort`, which
/// carries its own size) and returns the measured result. Inputs are
/// loaded *before* the measurement region, as in the paper's tests.
///
/// # Errors
///
/// Propagates library errors.
pub fn run_workload(dev: &Device, w: Workload, n: usize) -> Result<BenchResult> {
    let (a, b) = input_tensors(dev, &w, n)?;
    dev.reset_counters()?;
    let elements = match w {
        Workload::RType(op, _) => {
            let _out = a.binary(op, b.as_ref().expect("binary workload"))?;
            a.len() as u64
        }
        Workload::CordicSine => {
            let _s = a.sin()?;
            a.len() as u64
        }
        Workload::SumReduce => {
            let _v = a.sum_f32()?;
            a.len() as u64
        }
        Workload::MulReduce => {
            let _v = a.prod_f32()?;
            a.len() as u64
        }
        Workload::Sort(_) => {
            let _s = a.sorted()?;
            a.len() as u64
        }
    };
    let measured = dev.profiler()?.cycles;
    let issued = dev.issued()?;
    Ok(BenchResult {
        name: w.name(),
        elements,
        measured_cycles: measured.max(1),
        theoretical_cycles: issued.logic.max(1),
        driver_rate: None,
        clock_hz: dev.config().clock_hz,
    })
}

/// Measures the host driver's micro-operation streaming rate for one
/// R-type operation — the paper's Appendix E methodology: micro-operations
/// are rerouted to a memory buffer ([`SinkBackend`]) instead of the chip,
/// timing only the CPU-side translation work.
pub fn measure_driver_rate(cfg: &PimConfig, op: RegOp, dtype: DType, iters: u64) -> f64 {
    let sink = SinkBackend::new(cfg.clone()).expect("valid config");
    let mut driver = Driver::new(sink);
    let instr = Instruction::RType {
        op,
        dtype,
        dst: 2,
        srcs: [0, 1, 0],
        target: ThreadRange::all(cfg),
    };
    // Warm the routine cache (compilation excluded: the paper's driver has
    // its translation fixed in code).
    driver.execute_streamed(&instr).expect("warmup");
    let before = driver.backend().total_ops();
    let start = std::time::Instant::now();
    let mut done = 0u64;
    // Run at least `iters` iterations and at least 20 ms for a stable rate.
    while done < iters || start.elapsed().as_secs_f64() < 0.02 {
        driver.execute_streamed(&instr).expect("sink never fails");
        done += 1;
    }
    let dt = start.elapsed().as_secs_f64().max(1e-9);
    let ops = driver.backend().total_ops() - before;
    std::hint::black_box(driver.backend().digest());
    ops as f64 / dt
}

/// The quick benchmark geometry: 16 crossbars × 256 rows (4k threads).
/// Latency in cycles is geometry-independent for element-parallel
/// operations, so Figure 13's *shape* is preserved; throughput is reported
/// at the measured scale and additionally rescaled to Table III.
pub fn quick_config() -> PimConfig {
    PimConfig::small().with_crossbars(16).with_rows(256)
}

/// The full benchmark geometry (64 × 1024 = 64k threads); slow under the
/// bit-accurate simulator.
pub fn full_config() -> PimConfig {
    PimConfig::small().with_crossbars(64).with_rows(1024)
}

/// Cycle counts for the serial-vs-partition-parallel addition ablation
/// (total cycles including initialization overhead).
///
/// # Errors
///
/// Propagates compilation errors.
pub fn ablation_add_cycles(cfg: &PimConfig) -> Result<(u64, u64)> {
    let serial =
        pim_driver::theory::rtype_stats(cfg, ParallelismMode::BitSerial, RegOp::Add, DType::Int32)
            .map_err(pypim_core::CoreError::from)?;
    let parallel = pim_driver::theory::rtype_stats(
        cfg,
        ParallelismMode::BitParallel,
        RegOp::Add,
        DType::Int32,
    )
    .map_err(pypim_core::CoreError::from)?;
    Ok((serial.total_cycles(), parallel.total_cycles()))
}

/// Formats a throughput in engineering notation.
pub fn eng(x: f64) -> String {
    format!("{x:10.3e}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtype_workload_measures_cycles() {
        // Bit-serial mode: the AritPIM-style logic-cycle bound is tight
        // (the partition-parallel adder trades extra INIT cycles for fewer
        // logic cycles, so its distance metric is larger by construction).
        let dev = Device::with_mode(PimConfig::small(), ParallelismMode::BitSerial).unwrap();
        let r = run_workload(&dev, Workload::RType(RegOp::Add, DType::Int32), 64).unwrap();
        assert!(r.measured_cycles >= r.theoretical_cycles);
        assert!(
            r.distance_from_theory() < 0.25,
            "distance {}",
            r.distance_from_theory()
        );
        assert!(r.pypim_tput() <= r.theoretical_tput());
    }

    #[test]
    fn library_workloads_run() {
        let dev = Device::new(PimConfig::small()).unwrap();
        for w in [Workload::SumReduce, Workload::MulReduce, Workload::Sort(32)] {
            let r = run_workload(&dev, w, 48).unwrap();
            assert!(r.measured_cycles > 0, "{}", r.name);
            assert!(r.theoretical_cycles > 0);
        }
    }

    #[test]
    fn driver_rate_is_positive() {
        let rate = measure_driver_rate(&PimConfig::small(), RegOp::Add, DType::Int32, 50);
        assert!(rate > 1e5, "rate {rate}");
    }

    #[test]
    fn ablation_shows_partition_benefit() {
        let (serial, parallel) = ablation_add_cycles(&PimConfig::small()).unwrap();
        assert!(parallel < serial, "parallel {parallel} vs serial {serial}");
    }

    #[test]
    fn workload_names_match_figure13() {
        assert_eq!(Workload::RType(RegOp::Add, DType::Int32).name(), "Int add");
        assert_eq!(Workload::RType(RegOp::Lt, DType::Int32).name(), "Int <");
        assert_eq!(Workload::Sort(1024).name(), "FP Sort 1k");
        assert_eq!(Workload::Sort(65536).name(), "FP Sort 64k");
    }
}
