//! Regression gate over the criterion stub's `BENCH_*.json` reports:
//! compares a freshly generated report against the committed baseline,
//! row by row, and exits nonzero when a row regressed past its tolerance.
//!
//! Usage: `bench-diff <baseline.json> <fresh.json> [<baseline> <fresh>]...`
//!
//! Each row is keyed by `(group, id)`. Rows with a throughput annotation
//! compare `per_sec_median` (higher is better); rows without compare
//! `median_s` (lower is better). Tolerances are per-row-kind, because the
//! rows mix deterministic modeled-clock measurements with noisy
//! wall-clock ones:
//!
//! * `wall_*` ids and every row of the timed (non-`serve`) reports are
//!   wall-clock on a shared CI runner — only order-of-magnitude
//!   regressions are actionable (tolerance 2.0, i.e. 3× worse fails);
//! * `open_loop_*` rows come from seeded modeled-clock sweeps whose knee
//!   detection quantizes to the swept factors (tolerance 0.4);
//! * remaining `serve` rows are modeled-clock with mild scheduling
//!   nondeterminism from the threaded cluster (tolerance 0.2).
//!
//! New rows in the fresh report pass (they have no baseline yet); rows
//! *missing* from the fresh report fail — a silently vanished benchmark
//! is how regressions hide.
//!
//! The parser is deliberately line-based: the stub writes one benchmark
//! object per line, and this gate must not grow a JSON dependency.

use std::collections::BTreeMap;
use std::process::ExitCode;

#[derive(Debug, Clone)]
struct Row {
    group: String,
    id: String,
    median_s: f64,
    per_sec_median: f64,
    has_throughput: bool,
}

fn field_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')?;
    Some(line[start..start + end].to_string())
}

fn field_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn parse_report(path: &str) -> Result<Vec<Row>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut rows = Vec::new();
    for line in text.lines() {
        if !line.contains("\"group\":") {
            continue;
        }
        let (Some(group), Some(id)) = (field_str(line, "group"), field_str(line, "id")) else {
            return Err(format!("{path}: malformed row: {line}"));
        };
        let median_s = field_num(line, "median_s")
            .ok_or_else(|| format!("{path}: row {group}/{id} lacks median_s"))?;
        let per_sec_median = field_num(line, "per_sec_median").unwrap_or(0.0);
        let has_throughput = !line.contains("\"throughput_kind\": null");
        rows.push(Row {
            group,
            id,
            median_s,
            per_sec_median,
            has_throughput,
        });
    }
    if rows.is_empty() {
        return Err(format!("{path}: no benchmark rows found"));
    }
    Ok(rows)
}

/// Allowed relative degradation for a row (0.2 = 20% worse still passes).
fn tolerance(row: &Row) -> f64 {
    if row.id.starts_with("open_loop") {
        0.4
    } else if row.id.starts_with("wall_") || row.group != "serve" {
        2.0
    } else {
        0.2
    }
}

fn diff(baseline_path: &str, fresh_path: &str) -> Result<Vec<String>, String> {
    let baseline = parse_report(baseline_path)?;
    let fresh: BTreeMap<(String, String), Row> = parse_report(fresh_path)?
        .into_iter()
        .map(|r| ((r.group.clone(), r.id.clone()), r))
        .collect();
    let mut failures = Vec::new();
    for base in &baseline {
        let key = (base.group.clone(), base.id.clone());
        let Some(new) = fresh.get(&key) else {
            failures.push(format!(
                "{}/{}: present in {baseline_path} but missing from {fresh_path}",
                base.group, base.id
            ));
            continue;
        };
        let tol = tolerance(base);
        // Throughput rows: higher per_sec_median is better. Time rows:
        // lower median_s is better. Either way `ratio < 1 / (1 + tol)`
        // marks a regression past tolerance.
        let (kind, ratio) = if base.has_throughput && base.per_sec_median > 0.0 {
            ("per_sec_median", new.per_sec_median / base.per_sec_median)
        } else if base.median_s > 0.0 {
            (
                "median_s",
                base.median_s / new.median_s.max(f64::MIN_POSITIVE),
            )
        } else {
            continue; // degenerate zero baseline: nothing to hold to
        };
        if ratio < 1.0 / (1.0 + tol) {
            failures.push(format!(
                "{}/{}: {kind} regressed to {:.1}% of baseline (tolerance {:.0}%)",
                base.group,
                base.id,
                ratio * 100.0,
                100.0 / (1.0 + tol),
            ));
        }
    }
    let new_rows = fresh
        .values()
        .filter(|r| !baseline.iter().any(|b| b.group == r.group && b.id == r.id))
        .count();
    println!(
        "{baseline_path} vs {fresh_path}: {} baseline rows checked, {} new rows, {} regressions",
        baseline.len(),
        new_rows,
        failures.len()
    );
    Ok(failures)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || !args.len().is_multiple_of(2) {
        eprintln!("usage: bench-diff <baseline.json> <fresh.json> [<baseline> <fresh>]...");
        return ExitCode::from(2);
    }
    let mut failures = Vec::new();
    for pair in args.chunks(2) {
        match diff(&pair[0], &pair[1]) {
            Ok(mut f) => failures.append(&mut f),
            Err(e) => {
                eprintln!("bench-diff: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if failures.is_empty() {
        println!("bench-diff: OK");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("REGRESSION {f}");
        }
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "benchmarks": [
    {"group": "serve", "id": "gateway/4-sessions", "min_s": 1e-3, "median_s": 1e-3, "mean_s": 1e-3, "p50_s": 1e-3, "p99_s": 1e-3, "p999_s": 1e-3, "iters": 8, "throughput_kind": "elements", "throughput_per_iter": 8, "per_sec_median": 8e3},
    {"group": "serve", "id": "latency_p99/4-sessions", "min_s": 2e-3, "median_s": 2e-3, "mean_s": 2e-3, "p50_s": 2e-3, "p99_s": 2e-3, "p999_s": 2e-3, "iters": 8, "throughput_kind": null, "throughput_per_iter": 0, "per_sec_median": 0e0}
  ]
}
"#;

    #[test]
    fn parses_both_row_kinds() {
        let dir = std::env::temp_dir().join("bench_diff_parse_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("b.json");
        std::fs::write(&p, SAMPLE).unwrap();
        let rows = parse_report(p.to_str().unwrap()).unwrap();
        assert_eq!(rows.len(), 2);
        assert!(rows[0].has_throughput);
        assert_eq!(rows[0].per_sec_median, 8e3);
        assert!(!rows[1].has_throughput);
        assert_eq!(rows[1].median_s, 2e-3);
    }

    #[test]
    fn flags_regressions_and_accepts_new_rows() {
        let dir = std::env::temp_dir().join("bench_diff_diff_test");
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.json");
        let fresh = dir.join("fresh.json");
        std::fs::write(&base, SAMPLE).unwrap();
        // Throughput halved (beyond 20% tolerance), latency unchanged, one
        // new row.
        std::fs::write(
            &fresh,
            SAMPLE.replace("\"per_sec_median\": 8e3", "\"per_sec_median\": 4e3")
                + "{\"group\": \"serve\", \"id\": \"open_loop_knee\", \"median_s\": 1e0, \"throughput_kind\": \"elements\", \"per_sec_median\": 5e2},\n",
        )
        .unwrap();
        let failures = diff(base.to_str().unwrap(), fresh.to_str().unwrap()).unwrap();
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("gateway/4-sessions"), "{failures:?}");

        // Identical reports pass.
        let failures = diff(base.to_str().unwrap(), base.to_str().unwrap()).unwrap();
        assert!(failures.is_empty(), "{failures:?}");

        // A vanished row fails.
        let failures = diff(fresh.to_str().unwrap(), base.to_str().unwrap()).unwrap();
        assert!(
            failures.iter().any(|f| f.contains("open_loop_knee")),
            "{failures:?}"
        );
    }
}
