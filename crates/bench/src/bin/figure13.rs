//! Regenerates Figure 13 of the PyPIM paper: throughput of the benchmark
//! suite for (1) PyPIM as measured by the cycle-accurate simulator,
//! (2) theoretical PIM, and (3) the maximal throughput supported by the
//! host driver — plus the §VI-B summary claims (average/worst distance
//! from theoretical PIM and driver headroom).
//!
//! Usage: `cargo run --release -p pim-bench --bin figure13 [--full]`
//!
//! `--full` uses the 64k-thread geometry and sorts 64k elements (slow);
//! the default quick mode uses 4k threads and additionally reports results
//! rescaled to the paper's Table III geometry (cycle counts are
//! geometry-independent for element-parallel operations).

use pim_bench::{
    eng, full_config, measure_driver_rate, quick_config, run_workload, BenchResult, Workload,
};
use pim_isa::{DType, RegOp};
use pypim_core::{Device, ParallelismMode};

fn print_panel(title: &str, rows: &[BenchResult], paper_threads: u64, threads: u64) {
    println!("\n{title}");
    println!("{:-<100}", "");
    println!(
        "{:<16} {:>12} {:>12} {:>11} {:>11} {:>11} {:>8} {:>11}",
        "Benchmark", "cycles", "theory cyc", "PyPIM", "Theo. PIM", "Driver", "dist.", "@TableIII"
    );
    for r in rows {
        let scale = paper_threads as f64 / threads as f64;
        println!(
            "{:<16} {:>12} {:>12} {:>11} {:>11} {:>11} {:>7.1}% {:>11}",
            r.name,
            r.measured_cycles,
            r.theoretical_cycles,
            eng(r.pypim_tput()),
            eng(r.theoretical_tput()),
            r.driver_tput().map(eng).unwrap_or_else(|| "-".into()),
            100.0 * r.distance_from_theory(),
            eng(r.pypim_tput() * scale),
        );
    }
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let cfg = if full { full_config() } else { quick_config() };
    let threads = cfg.total_threads();
    let paper_threads = pim_arch::PimConfig::paper().total_threads();
    println!(
        "PyPIM Figure 13 reproduction — geometry: {} crossbars x {} rows ({} threads), {} MHz",
        cfg.crossbars,
        cfg.rows,
        threads,
        cfg.clock_hz / 1e6
    );
    println!("(strict stateful-logic checking disabled for speed; enable in tests)");

    let n = threads as usize;
    // Bit-serial mode: the mode the AritPIM-style theoretical bounds are
    // defined for (the partition-parallel ablation is reported separately).
    let dev = Device::with_mode(cfg.clone(), ParallelismMode::BitSerial).expect("device");
    dev.set_strict(false).unwrap();

    // ---- Top panel: fundamental operations --------------------------------
    let top_ops = [
        Workload::RType(RegOp::Add, DType::Int32),
        Workload::RType(RegOp::Mul, DType::Int32),
        Workload::RType(RegOp::Lt, DType::Int32),
        Workload::RType(RegOp::Add, DType::Float32),
        Workload::RType(RegOp::Mul, DType::Float32),
    ];
    let mut top = Vec::new();
    for w in top_ops {
        let mut r = run_workload(&dev, w, n).expect("workload");
        if let Workload::RType(op, dtype) = w {
            r.driver_rate = Some(measure_driver_rate(&cfg, op, dtype, 300));
        }
        eprintln!("  measured {}", r.name);
        top.push(r);
    }
    print_panel(
        "Throughput Comparison (Figure 13, top)",
        &top,
        paper_threads,
        threads,
    );

    // ---- Bottom panel: library-level benchmarks ---------------------------
    let sort_sizes: &[usize] = if full { &[1024, 65536] } else { &[1024, 4096] };
    let mut bottom = Vec::new();
    for w in [
        Workload::CordicSine,
        Workload::SumReduce,
        Workload::MulReduce,
    ] {
        let r = run_workload(&dev, w, n).expect("workload");
        eprintln!("  measured {}", r.name);
        bottom.push(r);
    }
    for &s in sort_sizes {
        let r = run_workload(&dev, Workload::Sort(s), n).expect("workload");
        eprintln!("  measured {}", r.name);
        bottom.push(r);
    }
    print_panel(
        "Library benchmarks (Figure 13, bottom)",
        &bottom,
        paper_threads,
        threads,
    );

    // ---- §VI-B summary -----------------------------------------------------
    let all: Vec<&BenchResult> = top.iter().chain(bottom.iter()).collect();
    let avg_dist = all.iter().map(|r| r.distance_from_theory()).sum::<f64>() / all.len() as f64;
    let worst_dist = all
        .iter()
        .map(|r| r.distance_from_theory())
        .fold(f64::MIN, f64::max);
    println!("\nSummary (paper §VI-B claims: avg 5%, worst 16% from theoretical PIM;");
    println!("         host driver avg 9.5x / worst-case 6.8x faster than PyPIM)");
    println!(
        "  PyPIM distance from theoretical PIM: average {:.1}%, worst {:.1}%",
        100.0 * avg_dist,
        100.0 * worst_dist
    );
    let headrooms: Vec<f64> = top.iter().filter_map(|r| r.driver_headroom()).collect();
    if !headrooms.is_empty() {
        let avg = headrooms.iter().sum::<f64>() / headrooms.len() as f64;
        let worst = headrooms.iter().fold(f64::MAX, |a, &b| a.min(b));
        println!(
            "  Host driver vs PIM clock: average {avg:.1}x, worst {worst:.1}x \
             (>1x means the driver is not a bottleneck)"
        );
    }

    // ---- Ablation -----------------------------------------------------------
    let (serial, parallel) = pim_bench::ablation_add_cycles(&cfg).expect("ablation");
    println!(
        "\nPartition ablation (int add): bit-serial {serial} cycles vs \
         bit-parallel {parallel} cycles ({:.2}x speedup from partitions)",
        serial as f64 / parallel as f64
    );
}
