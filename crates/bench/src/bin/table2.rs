//! Regenerates Table II of the PyPIM paper as a coverage and cost matrix:
//! every R-type operation × datatype, whether it is supported, and its
//! measured vs theoretical PIM cycle counts under both parallelism modes
//! where applicable.
//!
//! Usage: `cargo run --release -p pim-bench --bin table2`

use pim_arch::PimConfig;
use pim_driver::{theory, ParallelismMode};
use pim_isa::{DType, RegOp};

fn main() {
    let cfg = PimConfig::small();
    println!("Table II reproduction — supported R-type operations and cycle costs");
    println!("{:-<78}", "");
    println!(
        "{:<14} {:<10} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "Operation", "Category", "int32", "theory", "float32", "theory", "ovh%"
    );
    for op in RegOp::ALL {
        let int = theory::rtype_stats(&cfg, ParallelismMode::BitSerial, op, DType::Int32).ok();
        let flt = theory::rtype_stats(&cfg, ParallelismMode::BitSerial, op, DType::Float32).ok();
        let fmt = |s: Option<&pim_driver::RoutineStats>, which: usize| match s {
            Some(st) => {
                if which == 0 {
                    format!("{}", st.total_cycles())
                } else {
                    format!("{}", st.logic_cycles)
                }
            }
            None => "✗".into(),
        };
        let ovh = int
            .as_ref()
            .map(|s| format!("{:.1}", 100.0 * s.overhead_fraction()))
            .unwrap_or_default();
        println!(
            "{:<14} {:<10} {:>9} {:>9} {:>9} {:>9} {:>9}",
            op.to_string(),
            op.category(),
            fmt(int.as_ref(), 0),
            fmt(int.as_ref(), 1),
            fmt(flt.as_ref(), 0),
            fmt(flt.as_ref(), 1),
            ovh,
        );
    }
    println!("\nParallelism-mode ablation (integer addition):");
    for mode in [ParallelismMode::BitSerial, ParallelismMode::BitParallel] {
        let s = theory::rtype_stats(&cfg, mode, RegOp::Add, DType::Int32).expect("add compiles");
        println!(
            "  {:?}: {} cycles ({} logic + {} init overhead)",
            mode,
            s.total_cycles(),
            s.logic_cycles,
            s.overhead_cycles
        );
    }
}
