/// Per-type micro-operation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpTypeCounts {
    /// Crossbar-mask operations.
    pub xb_mask: u64,
    /// Row-mask operations.
    pub row_mask: u64,
    /// Write operations.
    pub write: u64,
    /// Read operations.
    pub read: u64,
    /// Horizontal logic operations.
    pub logic_h: u64,
    /// Vertical logic operations.
    pub logic_v: u64,
    /// Inter-crossbar move operations.
    pub mv: u64,
}

impl OpTypeCounts {
    /// Total micro-operations across all types.
    pub fn total(&self) -> u64 {
        self.xb_mask
            + self.row_mask
            + self.write
            + self.read
            + self.logic_h
            + self.logic_v
            + self.mv
    }
}

/// Profiling metrics kept by the simulator (§VI: "the simulator keeps track
/// of basic profiling metrics (e.g., the number of micro-operations
/// performed from each micro-operation type)").
///
/// Under the microarchitectural model, each micro-operation occupies one PIM
/// clock cycle, except distributed moves whose transfers share H-tree links
/// (those serialize — see [`pim_arch::htree::plan_move`]). [`cycles`]
/// therefore measures latency directly; throughput follows from the paper's
/// Eq. (1).
///
/// [`cycles`]: Profiler::cycles
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    /// PIM cycles consumed.
    pub cycles: u64,
    /// Micro-operations executed, by type.
    pub ops: OpTypeCounts,
    /// Individual logic-gate instances fired (summed over the partition
    /// pattern, but not over rows/crossbars).
    pub gates: u64,
    /// Gate instances × active rows × active crossbars — a proxy for
    /// switching energy.
    pub row_gates: u64,
    /// Source→destination pairs moved over the H-tree.
    pub move_pairs: u64,
    /// Highest H-tree level climbed by any move.
    pub max_move_level: u32,
}

impl Profiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Profiler::default()
    }

    /// Clears all counters.
    pub fn reset(&mut self) {
        *self = Profiler::default();
    }

    /// Adds `other`'s counters into `self` — aggregation across simulators
    /// (e.g. the per-shard chips of `pim-cluster`). All counters sum;
    /// `max_move_level` takes the maximum. Lives next to the struct so a
    /// new counter cannot be forgotten by an external aggregator.
    pub fn absorb(&mut self, other: &Profiler) {
        let Profiler {
            cycles,
            ops,
            gates,
            row_gates,
            move_pairs,
            max_move_level,
        } = other;
        self.cycles += cycles;
        self.ops.xb_mask += ops.xb_mask;
        self.ops.row_mask += ops.row_mask;
        self.ops.write += ops.write;
        self.ops.read += ops.read;
        self.ops.logic_h += ops.logic_h;
        self.ops.logic_v += ops.logic_v;
        self.ops.mv += ops.mv;
        self.gates += gates;
        self.row_gates += row_gates;
        self.move_pairs += move_pairs;
        self.max_move_level = self.max_move_level.max(*max_move_level);
    }

    /// Difference between `self` and an earlier `snapshot` — used to
    /// attribute cycles to a region of execution (the library's `Profiler`
    /// scope in the paper's Figure 12 example).
    ///
    /// Counters subtract saturating: if `reset` raced the snapshot (the
    /// snapshot is "ahead" of `self`), the region reads as empty rather
    /// than panicking in debug builds or wrapping in release builds.
    /// `max_move_level` is **carried, not differenced** — it is a
    /// high-water mark, so the region inherits the current peak; a move in
    /// the region can only raise it.
    pub fn since(&self, snapshot: &Profiler) -> Profiler {
        Profiler {
            cycles: self.cycles.saturating_sub(snapshot.cycles),
            ops: OpTypeCounts {
                xb_mask: self.ops.xb_mask.saturating_sub(snapshot.ops.xb_mask),
                row_mask: self.ops.row_mask.saturating_sub(snapshot.ops.row_mask),
                write: self.ops.write.saturating_sub(snapshot.ops.write),
                read: self.ops.read.saturating_sub(snapshot.ops.read),
                logic_h: self.ops.logic_h.saturating_sub(snapshot.ops.logic_h),
                logic_v: self.ops.logic_v.saturating_sub(snapshot.ops.logic_v),
                mv: self.ops.mv.saturating_sub(snapshot.ops.mv),
            },
            gates: self.gates.saturating_sub(snapshot.gates),
            row_gates: self.row_gates.saturating_sub(snapshot.row_gates),
            move_pairs: self.move_pairs.saturating_sub(snapshot.move_pairs),
            max_move_level: self.max_move_level,
        }
    }
}

impl pim_telemetry::MetricsSource for Profiler {
    fn fill_metrics(&self, snap: &mut pim_telemetry::MetricsSnapshot) {
        snap.set_counter("sim.cycles", self.cycles);
        snap.set_counter("sim.op.xb_mask", self.ops.xb_mask);
        snap.set_counter("sim.op.row_mask", self.ops.row_mask);
        snap.set_counter("sim.op.write", self.ops.write);
        snap.set_counter("sim.op.read", self.ops.read);
        snap.set_counter("sim.op.logic_h", self.ops.logic_h);
        snap.set_counter("sim.op.logic_v", self.ops.logic_v);
        snap.set_counter("sim.op.mv", self.ops.mv);
        snap.set_counter("sim.gates", self.gates);
        snap.set_counter("sim.row_gates", self.row_gates);
        snap.set_counter("sim.move_pairs", self.move_pairs);
        snap.set_gauge("sim.max_move_level", i64::from(self.max_move_level));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_reset() {
        let mut p = Profiler::new();
        p.ops.logic_h = 10;
        p.ops.write = 2;
        p.cycles = 12;
        assert_eq!(p.ops.total(), 12);
        p.reset();
        assert_eq!(p.ops.total(), 0);
        assert_eq!(p.cycles, 0);
    }

    #[test]
    fn absorb_sums_counters() {
        let mut a = Profiler::new();
        a.cycles = 5;
        a.ops.logic_h = 3;
        a.max_move_level = 2;
        let mut b = Profiler::new();
        b.cycles = 7;
        b.ops.logic_h = 4;
        b.ops.read = 1;
        b.gates = 9;
        b.max_move_level = 1;
        a.absorb(&b);
        assert_eq!(a.cycles, 12);
        assert_eq!(a.ops.logic_h, 7);
        assert_eq!(a.ops.read, 1);
        assert_eq!(a.gates, 9);
        assert_eq!(a.max_move_level, 2);
    }

    #[test]
    fn since_subtracts() {
        let mut p = Profiler::new();
        p.cycles = 5;
        p.ops.logic_h = 5;
        let snap = p.clone();
        p.cycles += 7;
        p.ops.logic_h += 6;
        p.ops.read += 1;
        let d = p.since(&snap);
        assert_eq!(d.cycles, 7);
        assert_eq!(d.ops.logic_h, 6);
        assert_eq!(d.ops.read, 1);
    }

    #[test]
    fn since_saturates_when_reset_races_snapshot() {
        // A reset between snapshot and readout leaves the snapshot "ahead";
        // the region must read empty, not panic or wrap.
        let mut p = Profiler::new();
        p.cycles = 5;
        p.ops.write = 3;
        p.gates = 4;
        let snap = p.clone();
        p.reset();
        p.cycles = 2;
        p.max_move_level = 1;
        let d = p.since(&snap);
        assert_eq!(d.cycles, 0);
        assert_eq!(d.ops.write, 0);
        assert_eq!(d.gates, 0);
        // max_move_level is carried, not differenced.
        assert_eq!(d.max_move_level, 1);
    }

    #[test]
    fn profiler_is_a_metrics_source() {
        use pim_telemetry::{MetricsSnapshot, MetricsSource as _};
        let mut p = Profiler::new();
        p.cycles = 11;
        p.ops.logic_h = 7;
        p.max_move_level = 3;
        let mut snap = MetricsSnapshot::new();
        p.fill_metrics(&mut snap);
        assert_eq!(snap.counters["sim.cycles"], 11);
        assert_eq!(snap.counters["sim.op.logic_h"], 7);
        assert_eq!(snap.gauges["sim.max_move_level"], 3);
    }
}
