//! # pim-sim
//!
//! A bit-accurate simulator for the PyPIM digital PIM microarchitecture — a
//! drop-in replacement for a physical chip (§VI of the paper). The simulator
//! interacts with the host driver *only* through the micro-operation
//! interface ([`pim_arch::Backend`]), models every operation cycle-by-cycle,
//! and keeps profiling metrics (micro-operation counts per type, which are
//! cycle counts under the 1-op/cycle model).
//!
//! Two of the paper's GPU optimizations are reproduced on the CPU:
//!
//! * **Memory**: rows are stored in a condensed 32-bit format defined by the
//!   strided data layout — word `k` of a row holds the 32 bits at
//!   intra-partition offset `k`, i.e. word `k` *is* register `k`. Storage
//!   is **register-major** (`words[reg * rows + row]`): a horizontal
//!   micro-operation reads/writes the *same* registers of many rows, so
//!   each register is one contiguous column slice in host memory.
//! * **Logic**: partition-parallel stateful logic evaluates as three bitwise
//!   word operations (shift, mask, and-not) instead of iterating over
//!   partitions. Under a **dense row mask** (step 1 — the shape of
//!   whole-tensor operations) a gate is a straight-line loop over one, two,
//!   or three contiguous `&[u32]` slices with the strict-mode check hoisted
//!   out as a pre-scan; LLVM autovectorizes these loops, so the host
//!   exploits the same row-parallelism the chip executes in a single cycle.
//!   Strided masks take a row-indexed fall-back. Batches replay
//!   **crossbar-major** (each crossbar runs the whole micro-op run while
//!   its words are cache-hot) and execute in parallel across crossbars
//!   (std scoped threads stand in for the paper's CUDA kernel).
//!
//! A *strict mode* (default on) additionally checks the stateful-logic
//! discipline: every `NOT`/`NOR` output cell must hold logical 1 when the
//! gate fires, catching missing initializations in driver routines.
//!
//! # Example
//!
//! ```
//! use pim_arch::{Backend, GateKind, HLogic, MicroOp, PimConfig, RangeMask};
//! use pim_sim::PimSimulator;
//!
//! let cfg = PimConfig::small();
//! let mut sim = PimSimulator::new(cfg.clone())?;
//!
//! // Select crossbar 0, row 3; write 0xFFFF_FFFF to register 1.
//! sim.execute(&MicroOp::XbMask(RangeMask::single(0)))?;
//! sim.execute(&MicroOp::RowMask(RangeMask::single(3)))?;
//! sim.execute(&MicroOp::Write { index: 1, value: 0xFFFF_FFFF })?;
//!
//! // NOT register 1 into register 2 in every partition at once.
//! sim.execute(&MicroOp::LogicH(HLogic::init_reg(true, 2, &cfg)?))?;
//! sim.execute(&MicroOp::LogicH(HLogic::parallel(GateKind::Not, 1, 1, 2, &cfg)?))?;
//! assert_eq!(sim.execute(&MicroOp::Read { index: 2 })?, Some(0));
//! # Ok::<(), pim_arch::ArchError>(())
//! ```

mod cost;
mod crossbar;
mod profiler;
mod simulator;

pub use cost::charge_op;
pub use crossbar::Crossbar;
pub use profiler::{OpTypeCounts, Profiler};
pub use simulator::{PimSimulator, SimSnapshot};
