use crate::{Crossbar, Profiler};
use pim_arch::{ArchError, Backend, HLogic, MicroOp, PimConfig, RangeMask, VGate};

/// Minimum amount of per-batch work (crossbars × operations) before the
/// simulator fans a batch out across threads.
const PARALLEL_WORK_THRESHOLD: usize = 1 << 14;

/// The bit-accurate digital PIM simulator (§VI) — a drop-in replacement for
/// a physical chip behind the [`Backend`] micro-operation interface.
///
/// State: one [`Crossbar`] per array, the stored crossbar mask, and the
/// stored row mask (start/stop/step, §III-B). A [`Profiler`] records
/// micro-operation counts per type; under the 1-op/cycle model these are
/// latency measurements.
///
/// See the crate-level docs for an end-to-end example.
#[derive(Debug)]
pub struct PimSimulator {
    cfg: PimConfig,
    xbars: Vec<Crossbar>,
    xb_mask: RangeMask,
    row_mask: RangeMask,
    strict: bool,
    profiler: Profiler,
    threads: usize,
}

/// A point-in-time copy of a simulator's complete architectural state:
/// every crossbar's cells, the stored masks, the strict flag, and the
/// profiling counters. Taken with [`PimSimulator::snapshot`] and applied
/// with [`PimSimulator::restore`]; `pim-cluster` uses these as shard
/// checkpoints for crash recovery (restore + replay of the instruction
/// suffix since the snapshot).
#[derive(Debug, Clone)]
pub struct SimSnapshot {
    xbars: Vec<Crossbar>,
    xb_mask: RangeMask,
    row_mask: RangeMask,
    strict: bool,
    profiler: Profiler,
}

impl PimSimulator {
    /// Creates a simulator with all cells at logical 0, both masks covering
    /// the whole memory, and strict stateful-logic checking enabled.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidConfig`] if `cfg` fails validation.
    pub fn new(cfg: PimConfig) -> Result<Self, ArchError> {
        cfg.validate()?;
        let xbars = (0..cfg.crossbars)
            .map(|_| Crossbar::new(cfg.rows, cfg.regs))
            .collect();
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(16);
        Ok(PimSimulator {
            xb_mask: RangeMask::dense(0, cfg.crossbars as u32).expect("validated nonzero"),
            row_mask: RangeMask::dense(0, cfg.rows as u32).expect("validated nonzero"),
            cfg,
            xbars,
            strict: true,
            profiler: Profiler::new(),
            threads,
        })
    }

    /// Enables or disables strict stateful-logic checking (output cells of
    /// `NOT`/`NOR` gates must be 1 when the gate fires). Strict mode is on
    /// by default; benchmarks may disable it for speed.
    pub fn set_strict(&mut self, strict: bool) {
        self.strict = strict;
    }

    /// Overrides the number of worker threads used for batch execution.
    ///
    /// [`new`](PimSimulator::new) defaults to the host's available
    /// parallelism capped at 16; callers embedding many simulators in one
    /// process (e.g. the shard workers of `pim-cluster`) pin this to 1 so
    /// the host is not oversubscribed. Values are clamped to at least 1.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// The effective number of worker threads used for batch execution.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether strict stateful-logic checking is enabled.
    pub fn strict(&self) -> bool {
        self.strict
    }

    /// The profiling counters accumulated so far.
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// Resets the profiling counters.
    pub fn reset_profiler(&mut self) {
        self.profiler.reset();
    }

    /// Direct state inspection for tests and debugging: the word (register
    /// value) at `(crossbar, row, reg)`. Bypasses the micro-operation
    /// interface — production code must use [`MicroOp::Read`].
    pub fn peek(&self, xb: usize, row: usize, reg: usize) -> u32 {
        self.xbars[xb].word(row, reg)
    }

    /// Direct state mutation for tests and debugging; see [`peek`].
    ///
    /// [`peek`]: PimSimulator::peek
    pub fn poke(&mut self, xb: usize, row: usize, reg: usize, value: u32) {
        self.xbars[xb].set_word(row, reg, value);
    }

    /// The crossbar state, for test inspection.
    pub fn crossbar(&self, xb: usize) -> &Crossbar {
        &self.xbars[xb]
    }

    /// Captures the complete architectural state (cells, masks, strict
    /// flag, profiler) as a [`SimSnapshot`]. The thread count is host
    /// policy, not architectural state, and is not captured.
    pub fn snapshot(&self) -> SimSnapshot {
        SimSnapshot {
            xbars: self.xbars.clone(),
            xb_mask: self.xb_mask,
            row_mask: self.row_mask,
            strict: self.strict,
            profiler: self.profiler.clone(),
        }
    }

    /// Restores the state captured by [`snapshot`](PimSimulator::snapshot).
    /// The snapshot must come from a simulator with the same [`PimConfig`]
    /// geometry (same crossbar count and dimensions).
    pub fn restore(&mut self, snap: &SimSnapshot) {
        debug_assert_eq!(
            snap.xbars.len(),
            self.xbars.len(),
            "snapshot geometry mismatch"
        );
        self.xbars.clone_from(&snap.xbars);
        self.xb_mask = snap.xb_mask;
        self.row_mask = snap.row_mask;
        self.strict = snap.strict;
        self.profiler = snap.profiler.clone();
    }

    /// Charges `cycles` modeled cycles without executing anything — the
    /// chip is alive but making no progress (used by fault injection to
    /// model a stalled shard worker). Data and masks are unaffected.
    pub fn stall(&mut self, cycles: u64) {
        self.profiler.cycles += cycles;
    }

    /// Accounts profiling metadata for one operation given the mask state
    /// in effect, returning the operation's cycle cost. Delegates to the
    /// shared cost model ([`crate::charge_op`]) so every backend charges
    /// identical modeled cycles.
    fn account(&mut self, op: &MicroOp) -> Result<u64, ArchError> {
        crate::charge_op(
            &mut self.profiler,
            op,
            &self.xb_mask,
            &self.row_mask,
            &self.cfg,
        )
    }

    /// Applies a non-read, non-move operation to every crossbar selected by
    /// `xb_mask`, given mask state.
    fn apply_local(
        xbars: &mut [Crossbar],
        op: &MicroOp,
        xb_mask: &RangeMask,
        row_mask: &RangeMask,
        strict: bool,
    ) -> Result<(), ArchError> {
        let local = LocalOp::prepare(op);
        for xb in xb_mask.iter() {
            local.apply(&mut xbars[xb as usize], row_mask, strict)?;
        }
        Ok(())
    }

    fn execute_move(&mut self, mv: &pim_arch::MoveOp) -> Result<(), ArchError> {
        // Validation already done by `account` via plan_move.
        let transfers: Vec<(usize, u32)> = self
            .xb_mask
            .iter()
            .map(|src| {
                let value =
                    self.xbars[src as usize].word(mv.row_src as usize, mv.index_src as usize);
                ((src as i64 + mv.dist as i64) as usize, value)
            })
            .collect();
        for (dst, value) in transfers {
            self.xbars[dst].set_word(mv.row_dst as usize, mv.index_dst as usize, value);
        }
        Ok(())
    }

    fn execute_read(&mut self, index: u8) -> Result<u32, ArchError> {
        if !self.xb_mask.is_single() || !self.row_mask.is_single() {
            return Err(ArchError::Protocol {
                reason: format!(
                    "read requires masks selecting a single row of a single crossbar \
                     (crossbar mask selects {}, row mask selects {})",
                    self.xb_mask.len(),
                    self.row_mask.len()
                ),
            });
        }
        Ok(self.xbars[self.xb_mask.start() as usize]
            .word(self.row_mask.start() as usize, index as usize))
    }

    /// Executes a run of mask/write/logic operations, dispatched **per
    /// crossbar**: the run is decoded once ([`LocalOp::prepare`]), then each
    /// crossbar replays the whole run with mask operations resolved to a
    /// local `selected` flag — no per-operation re-setup, and one
    /// crossbar's storage stays cache-hot across the entire run. With
    /// `parallel`, crossbar chunks replay on scoped worker threads.
    fn execute_run(&mut self, run: &[MicroOp], parallel: bool) -> Result<(), ArchError> {
        let strict = self.strict;
        let prepared: Vec<LocalOp<'_>> = run.iter().map(LocalOp::prepare).collect();
        let (xb_mask0, row_mask0) = (self.xb_mask, self.row_mask);
        if parallel {
            let chunk_size = self.cfg.crossbars.div_ceil(self.threads);
            let prepared = &prepared;
            let results: Vec<Result<(), ArchError>> = std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for (ci, chunk) in self.xbars.chunks_mut(chunk_size).enumerate() {
                    let base = (ci * chunk_size) as u32;
                    handles.push(scope.spawn(move || {
                        for (i, xb) in chunk.iter_mut().enumerate() {
                            replay_run(xb, base + i as u32, prepared, xb_mask0, row_mask0, strict)?;
                        }
                        Ok(())
                    }));
                }
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker panicked"))
                    .collect()
            });
            for r in results {
                r?;
            }
        } else {
            for (i, xb) in self.xbars.iter_mut().enumerate() {
                replay_run(xb, i as u32, &prepared, xb_mask0, row_mask0, strict)?;
            }
        }
        // Replay mask updates on the dispatcher state.
        for op in run {
            match op {
                MicroOp::XbMask(m) => self.xb_mask = *m,
                MicroOp::RowMask(m) => self.row_mask = *m,
                _ => {}
            }
        }
        Ok(())
    }

    /// The validation/accounting pass of a batch: checks every operation,
    /// charges the profiler, and tracks the evolving mask state. Mutates
    /// masks and profiler; the caller restores them (always for masks,
    /// on error for the profiler).
    fn account_batch(&mut self, ops: &[MicroOp]) -> Result<(), ArchError> {
        for op in ops {
            if matches!(op, MicroOp::Read { .. }) {
                return Err(ArchError::Protocol {
                    reason: "read operations cannot be batched".into(),
                });
            }
            op.validate(&self.cfg)?;
            // `account` uses the mask state in effect at this op.
            self.account(op)?;
            match op {
                MicroOp::XbMask(m) => self.xb_mask = *m,
                MicroOp::RowMask(m) => self.row_mask = *m,
                _ => {}
            }
        }
        Ok(())
    }

    fn execute_serial(&mut self, op: &MicroOp) -> Result<Option<u32>, ArchError> {
        match op {
            MicroOp::XbMask(m) => {
                self.xb_mask = *m;
                Ok(None)
            }
            MicroOp::RowMask(m) => {
                self.row_mask = *m;
                Ok(None)
            }
            MicroOp::Read { index } => self.execute_read(*index).map(Some),
            MicroOp::Move(mv) => {
                self.execute_move(mv)?;
                Ok(None)
            }
            other => {
                Self::apply_local(
                    &mut self.xbars,
                    other,
                    &self.xb_mask,
                    &self.row_mask,
                    self.strict,
                )?;
                Ok(None)
            }
        }
    }
}

impl Backend for PimSimulator {
    fn config(&self) -> &PimConfig {
        &self.cfg
    }

    fn execute(&mut self, op: &MicroOp) -> Result<Option<u32>, ArchError> {
        op.validate(&self.cfg)?;
        self.account(op)?;
        self.execute_serial(op)
    }

    fn execute_batch(&mut self, ops: &[MicroOp]) -> Result<(), ArchError> {
        // Validate and account first (profiling replays the mask state).
        // On any rejection the masks and profiler roll back, so a failed
        // batch leaves the simulator exactly as it was.
        let (xb_mask0, row_mask0) = (self.xb_mask, self.row_mask);
        let profiler0 = self.profiler.clone();
        if let Err(e) = self.account_batch(ops) {
            self.xb_mask = xb_mask0;
            self.row_mask = row_mask0;
            self.profiler = profiler0;
            return Err(e);
        }
        self.xb_mask = xb_mask0;
        self.row_mask = row_mask0;

        // Execute: split into parallel runs at move boundaries.
        let mut start = 0;
        let parallel_ok = self.threads > 1
            && self.cfg.crossbars >= 2 * self.threads
            && ops.len() * self.cfg.crossbars >= PARALLEL_WORK_THRESHOLD;
        for i in 0..=ops.len() {
            let boundary = i == ops.len() || matches!(ops[i], MicroOp::Move(_));
            if !boundary {
                continue;
            }
            let run = &ops[start..i];
            if !run.is_empty() {
                self.execute_run(run, parallel_ok)?;
            }
            if i < ops.len() {
                self.execute_serial(&ops[i])?;
            }
            start = i + 1;
        }
        Ok(())
    }
}

/// A batch operation prepared for per-crossbar replay: the mask-independent
/// decode of a [`MicroOp`] (address widening, variant narrowing) done once
/// per run instead of once per operation × crossbar.
enum LocalOp<'a> {
    XbMask(RangeMask),
    RowMask(RangeMask),
    Write {
        index: usize,
        value: u32,
    },
    LogicH(&'a HLogic),
    LogicV {
        gate: VGate,
        row_in: usize,
        row_out: usize,
        index: usize,
    },
}

impl<'a> LocalOp<'a> {
    fn prepare(op: &'a MicroOp) -> Self {
        match op {
            MicroOp::XbMask(m) => LocalOp::XbMask(*m),
            MicroOp::RowMask(m) => LocalOp::RowMask(*m),
            MicroOp::Write { index, value } => LocalOp::Write {
                index: *index as usize,
                value: *value,
            },
            MicroOp::LogicH(l) => LocalOp::LogicH(l),
            MicroOp::LogicV {
                gate,
                row_in,
                row_out,
                index,
            } => LocalOp::LogicV {
                gate: *gate,
                row_in: *row_in as usize,
                row_out: *row_out as usize,
                index: *index as usize,
            },
            MicroOp::Read { .. } | MicroOp::Move(_) => {
                unreachable!("read/move ops are handled by the dispatcher")
            }
        }
    }

    fn apply(
        &self,
        xb: &mut Crossbar,
        row_mask: &RangeMask,
        strict: bool,
    ) -> Result<(), ArchError> {
        match self {
            LocalOp::Write { index, value } => {
                xb.write_rows(*index, row_mask, *value);
                Ok(())
            }
            LocalOp::LogicH(l) => xb.apply_hlogic(l, row_mask, strict),
            LocalOp::LogicV {
                gate,
                row_in,
                row_out,
                index,
            } => xb.apply_vlogic(*gate, *row_in, *row_out, *index, strict),
            LocalOp::XbMask(_) | LocalOp::RowMask(_) => {
                unreachable!("mask ops are tracked by the replay loop")
            }
        }
    }
}

/// Replays a prepared run on one crossbar. Mask operations update the local
/// selection state (`selected` flag, row mask); data operations apply when
/// this crossbar is selected. Crossbar-major iteration keeps one crossbar's
/// storage hot in cache across the whole run and turns per-operation mask
/// iteration into an O(1) membership test.
fn replay_run(
    xb: &mut Crossbar,
    global_idx: u32,
    run: &[LocalOp<'_>],
    xb_mask0: RangeMask,
    row_mask0: RangeMask,
    strict: bool,
) -> Result<(), ArchError> {
    let mut selected = xb_mask0.contains(global_idx);
    let mut row_mask = row_mask0;
    for op in run {
        match op {
            LocalOp::XbMask(m) => selected = m.contains(global_idx),
            LocalOp::RowMask(m) => row_mask = *m,
            data if selected => data.apply(xb, &row_mask, strict)?,
            _ => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_arch::{GateKind, HLogic, MoveOp, VGate};

    fn sim() -> PimSimulator {
        PimSimulator::new(PimConfig::small()).unwrap()
    }

    fn ops_write_all(value: u32, index: u8) -> Vec<MicroOp> {
        vec![MicroOp::Write { index, value }]
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut s = sim();
        s.execute(&MicroOp::XbMask(RangeMask::single(2))).unwrap();
        s.execute(&MicroOp::RowMask(RangeMask::single(5))).unwrap();
        s.execute(&MicroOp::Write {
            index: 3,
            value: 0xCAFE_BABE,
        })
        .unwrap();
        assert_eq!(
            s.execute(&MicroOp::Read { index: 3 }).unwrap(),
            Some(0xCAFE_BABE)
        );
        // Other crossbars and rows untouched.
        assert_eq!(s.peek(1, 5, 3), 0);
        assert_eq!(s.peek(2, 4, 3), 0);
    }

    #[test]
    fn read_requires_single_masks() {
        let mut s = sim();
        let err = s.execute(&MicroOp::Read { index: 0 }).unwrap_err();
        assert!(matches!(err, ArchError::Protocol { .. }));
    }

    #[test]
    fn masked_write_covers_pattern() {
        let mut s = sim();
        s.execute(&MicroOp::XbMask(RangeMask::new(0, 8, 4).unwrap()))
            .unwrap();
        s.execute(&MicroOp::RowMask(RangeMask::new(1, 61, 4).unwrap()))
            .unwrap();
        s.execute(&MicroOp::Write {
            index: 7,
            value: 42,
        })
        .unwrap();
        for xb in 0..16 {
            for row in 0..64 {
                let expect = [0, 4, 8].contains(&xb) && row % 4 == 1;
                assert_eq!(s.peek(xb, row, 7) == 42, expect, "xb {xb} row {row}");
            }
        }
    }

    #[test]
    fn logic_runs_on_masked_crossbars_only() {
        let mut s = sim();
        let cfg = s.config().clone();
        s.execute(&MicroOp::XbMask(RangeMask::single(3))).unwrap();
        s.execute(&MicroOp::LogicH(HLogic::init_reg(true, 0, &cfg).unwrap()))
            .unwrap();
        assert_eq!(s.peek(3, 0, 0), u32::MAX);
        assert_eq!(s.peek(2, 0, 0), 0);
    }

    #[test]
    fn move_transfers_between_crossbars() {
        let mut s = sim();
        s.poke(1, 9, 4, 0x1111_2222);
        s.poke(5, 9, 4, 0x3333_4444);
        // Sources {1, 5}, step 4 (power of 4), dist +1.
        s.execute(&MicroOp::XbMask(RangeMask::new(1, 5, 4).unwrap()))
            .unwrap();
        s.execute(&MicroOp::Move(MoveOp {
            dist: 1,
            row_src: 9,
            row_dst: 11,
            index_src: 4,
            index_dst: 6,
        }))
        .unwrap();
        assert_eq!(s.peek(2, 11, 6), 0x1111_2222);
        assert_eq!(s.peek(6, 11, 6), 0x3333_4444);
        assert_eq!(s.profiler().move_pairs, 2);
        // Parallel within leaf groups: one cycle.
        assert_eq!(s.profiler().cycles, 2); // 1 mask + 1 move
    }

    #[test]
    fn move_rejects_bad_patterns() {
        let mut s = sim();
        s.execute(&MicroOp::XbMask(RangeMask::new(0, 6, 2).unwrap()))
            .unwrap();
        let err = s
            .execute(&MicroOp::Move(MoveOp {
                dist: 1,
                row_src: 0,
                row_dst: 0,
                index_src: 0,
                index_dst: 0,
            }))
            .unwrap_err();
        assert!(matches!(err, ArchError::InvalidMove { .. }));
    }

    #[test]
    fn profiler_counts_types_and_gates() {
        let mut s = sim();
        let cfg = s.config().clone();
        s.execute(&MicroOp::XbMask(RangeMask::dense(0, 16).unwrap()))
            .unwrap();
        s.execute(&MicroOp::RowMask(RangeMask::dense(0, 64).unwrap()))
            .unwrap();
        s.execute(&MicroOp::LogicH(HLogic::init_reg(true, 1, &cfg).unwrap()))
            .unwrap();
        s.execute(&MicroOp::LogicH(
            HLogic::parallel(GateKind::Not, 0, 0, 1, &cfg).unwrap(),
        ))
        .unwrap();
        let p = s.profiler();
        assert_eq!(p.ops.xb_mask, 1);
        assert_eq!(p.ops.row_mask, 1);
        assert_eq!(p.ops.logic_h, 2);
        assert_eq!(p.gates, 64); // two 32-gate partition-parallel ops
        assert_eq!(p.row_gates, 64 * 64 * 16);
        assert_eq!(p.cycles, 4);
    }

    #[test]
    fn vertical_logic_applies_across_masked_crossbars() {
        let mut s = sim();
        s.poke(0, 3, 2, 77);
        s.poke(9, 3, 2, 0xFF);
        s.execute(&MicroOp::LogicV {
            gate: VGate::Init1,
            row_in: 0,
            row_out: 8,
            index: 2,
        })
        .unwrap();
        s.execute(&MicroOp::LogicV {
            gate: VGate::Not,
            row_in: 3,
            row_out: 8,
            index: 2,
        })
        .unwrap();
        assert_eq!(s.peek(0, 8, 2), !77);
        assert_eq!(s.peek(9, 8, 2), !0xFF);
    }

    #[test]
    fn batch_matches_serial_execution() {
        let cfg = PimConfig::small().with_crossbars(64); // enough for threads
        let mut batch_ops: Vec<MicroOp> = Vec::new();
        batch_ops.push(MicroOp::XbMask(RangeMask::new(0, 62, 2).unwrap()));
        batch_ops.push(MicroOp::RowMask(RangeMask::new(0, 60, 4).unwrap()));
        batch_ops.extend(ops_write_all(0xF0F0_F0F0, 0));
        batch_ops.push(MicroOp::LogicH(HLogic::init_reg(true, 1, &cfg).unwrap()));
        batch_ops.push(MicroOp::LogicH(
            HLogic::parallel(GateKind::Not, 0, 0, 1, &cfg).unwrap(),
        ));
        batch_ops.push(MicroOp::XbMask(RangeMask::new(1, 33, 4).unwrap()));
        batch_ops.push(MicroOp::Move(MoveOp {
            dist: 2,
            row_src: 0,
            row_dst: 1,
            index_src: 1,
            index_dst: 2,
        }));
        batch_ops.push(MicroOp::LogicH(HLogic::init_reg(false, 3, &cfg).unwrap()));
        // Duplicate the logic tail to cross the parallel work threshold.
        for _ in 0..600 {
            batch_ops.push(MicroOp::LogicH(HLogic::init_reg(true, 4, &cfg).unwrap()));
            batch_ops.push(MicroOp::LogicH(
                HLogic::parallel(GateKind::Not, 0, 0, 4, &cfg).unwrap(),
            ));
        }

        let mut serial = PimSimulator::new(cfg.clone()).unwrap();
        let mut batch = PimSimulator::new(cfg.clone()).unwrap();
        for op in &batch_ops {
            serial.execute(op).unwrap();
        }
        batch.execute_batch(&batch_ops).unwrap();
        for xb in 0..cfg.crossbars {
            for row in 0..cfg.rows {
                for reg in 0..8 {
                    assert_eq!(
                        serial.peek(xb, row, reg),
                        batch.peek(xb, row, reg),
                        "mismatch at xb {xb} row {row} reg {reg}"
                    );
                }
            }
        }
        assert_eq!(serial.profiler().cycles, batch.profiler().cycles);
        assert_eq!(serial.profiler().ops, batch.profiler().ops);
        assert_eq!(serial.profiler().gates, batch.profiler().gates);
    }

    #[test]
    fn batch_rejects_reads() {
        let mut s = sim();
        let err = s.execute_batch(&[MicroOp::Read { index: 0 }]).unwrap_err();
        assert!(matches!(err, ArchError::Protocol { .. }));
    }

    #[test]
    fn failed_batch_rolls_back_masks_and_profiler() {
        let mut s = sim();
        let cycles0 = s.profiler().cycles;
        // Valid mask op followed by an invalid write: the batch must fail
        // without leaving the narrowed mask or phantom cycles behind.
        let err = s
            .execute_batch(&[
                MicroOp::XbMask(RangeMask::single(2)),
                MicroOp::Write {
                    index: 99,
                    value: 0,
                },
            ])
            .unwrap_err();
        assert!(matches!(err, ArchError::AddressOutOfBounds { .. }));
        assert_eq!(s.profiler().cycles, cycles0);
        // Masks still cover the whole memory.
        s.execute(&MicroOp::Write { index: 0, value: 7 }).unwrap();
        assert_eq!(s.peek(0, 0, 0), 7);
        assert_eq!(s.peek(15, 63, 0), 7);
    }

    #[test]
    fn strict_mode_propagates_from_batches() {
        let mut s = sim();
        let cfg = s.config().clone();
        let not = MicroOp::LogicH(HLogic::parallel(GateKind::Not, 0, 0, 1, &cfg).unwrap());
        assert!(s.execute_batch(std::slice::from_ref(&not)).is_err());
        s.set_strict(false);
        assert!(s.execute_batch(std::slice::from_ref(&not)).is_ok());
    }

    #[test]
    fn rejects_out_of_geometry_ops() {
        let mut s = sim();
        assert!(s
            .execute(&MicroOp::Write {
                index: 32,
                value: 0
            })
            .is_err());
        assert!(s.execute(&MicroOp::XbMask(RangeMask::single(99))).is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use pim_arch::{ColAddr, GateKind, HLogic};
    use proptest::prelude::*;

    fn arbitrary_op(cfg: &PimConfig, seed: (u8, u8, u8, u8, u8, u8, u8)) -> Option<MicroOp> {
        let (kind, a, b, c, d, e, f) = seed;
        let regs = cfg.regs as u8;
        let rows = cfg.rows as u32;
        let xbs = cfg.crossbars as u32;
        Some(match kind % 5 {
            0 => MicroOp::XbMask(
                RangeMask::strided(a as u32 % xbs, 1 + b as u32 % 3, 1 + c as u32 % 2)
                    .ok()
                    .filter(|m| m.stop() < xbs)?,
            ),
            1 => MicroOp::RowMask(
                RangeMask::strided(a as u32 % rows, 1 + b as u32 % 4, 1 + c as u32 % 3)
                    .ok()
                    .filter(|m| m.stop() < rows)?,
            ),
            2 => MicroOp::Write {
                index: a % regs,
                value: u32::from_le_bytes([b, c, d, e]),
            },
            3 => MicroOp::LogicH(
                HLogic::strided(
                    [
                        GateKind::Init0,
                        GateKind::Init1,
                        GateKind::Not,
                        GateKind::Nor,
                    ][f as usize % 4],
                    ColAddr::new(a % 8, b % regs),
                    ColAddr::new(a % 8 + c % 4, d % regs),
                    ColAddr::new(a % 8 + e % 4, f % regs),
                    (a % 8 + e % 4) + (c % 3) * 8,
                    8,
                    cfg,
                )
                .ok()?,
            ),
            _ => MicroOp::LogicV {
                gate: [VGate::Init0, VGate::Init1, pim_arch::VGate::Not][a as usize % 3],
                row_in: b as u32 % rows,
                row_out: c as u32 % rows,
                index: d % regs,
            },
        })
    }

    use pim_arch::VGate;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Random micro-operation programs: batched (parallel) execution
        /// leaves the memory in exactly the same state as serial execution,
        /// with identical profiling counters.
        #[test]
        fn batch_equals_serial_fuzz(
            seeds in proptest::collection::vec(any::<(u8, u8, u8, u8, u8, u8, u8)>(), 1..40),
        ) {
            let cfg = PimConfig::small().with_crossbars(32).with_rows(16);
            let ops: Vec<MicroOp> =
                seeds.iter().filter_map(|&s| arbitrary_op(&cfg, s)).collect();
            prop_assume!(!ops.is_empty());
            let mut serial = PimSimulator::new(cfg.clone()).unwrap();
            let mut batch = PimSimulator::new(cfg.clone()).unwrap();
            serial.set_strict(false); // random gates may hit uninitialized cells
            batch.set_strict(false);
            for op in &ops {
                serial.execute(op).unwrap();
            }
            batch.execute_batch(&ops).unwrap();
            for xb in 0..cfg.crossbars {
                for row in 0..cfg.rows {
                    for reg in 0..cfg.regs {
                        prop_assert_eq!(
                            serial.peek(xb, row, reg),
                            batch.peek(xb, row, reg),
                            "xb {} row {} reg {}", xb, row, reg
                        );
                    }
                }
            }
            prop_assert_eq!(serial.profiler().cycles, batch.profiler().cycles);
            prop_assert_eq!(serial.profiler().ops, batch.profiler().ops);
        }
    }
}
