use pim_arch::{ArchError, GateKind, HLogic, RangeMask, VGate};

/// One simulated memristive crossbar array in the condensed 32-bit row
/// format (§VI "Memory" optimization).
///
/// The logical state of row `r` is stored as `regs` words, where word `k`
/// packs the 32 bits at intra-partition offset `k` across all partitions —
/// bit `j` of word `k` is the cell at partition `j`, offset `k`. Under the
/// strided data format of §III-C this means word `k` *is* the value of
/// register `k`.
/// (The per-crossbar activation bit of §III-B is represented by the
/// simulator's stored crossbar mask; iterating the mask's range pattern is
/// equivalent to — and faster than — testing a bit in every crossbar.)
#[derive(Debug, Clone)]
pub struct Crossbar {
    regs: usize,
    /// Row-major storage: `words[row * regs + reg]`.
    words: Vec<u32>,
}

/// Shifts word bits from input partitions to output partitions: positive
/// `s` moves bit `p` to bit `p + s`.
#[inline]
fn part_shift(x: u32, s: i32) -> u32 {
    if s >= 0 {
        x << s
    } else {
        x >> (-s)
    }
}

impl Crossbar {
    /// Creates a crossbar with `rows × regs` words, all cells at logical 0.
    pub fn new(rows: usize, regs: usize) -> Self {
        Crossbar {
            regs,
            words: vec![0; rows * regs],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.words.len() / self.regs
    }

    /// Words per row (= registers per thread).
    pub fn regs(&self) -> usize {
        self.regs
    }

    /// The word at `(row, reg)` — register `reg` of thread `row`.
    #[inline]
    pub fn word(&self, row: usize, reg: usize) -> u32 {
        self.words[row * self.regs + reg]
    }

    /// Overwrites the word at `(row, reg)` (memory write semantics — not a
    /// stateful-logic gate).
    #[inline]
    pub fn set_word(&mut self, row: usize, reg: usize, value: u32) {
        self.words[row * self.regs + reg] = value;
    }

    /// Reads the single cell at `(row, partition, offset)`.
    pub fn cell(&self, row: usize, part: u8, offset: u8) -> bool {
        self.word(row, offset as usize) >> part & 1 == 1
    }

    /// Writes the single cell at `(row, partition, offset)`.
    pub fn set_cell(&mut self, row: usize, part: u8, offset: u8, value: bool) {
        let w = &mut self.words[row * self.regs + offset as usize];
        if value {
            *w |= 1 << part;
        } else {
            *w &= !(1 << part);
        }
    }

    /// Applies a horizontal stateful-logic operation to every row selected
    /// by `row_mask`, using the word-level evaluation (three bitwise ops per
    /// row instead of per-partition iteration).
    ///
    /// # Errors
    ///
    /// In strict mode, returns [`ArchError::Protocol`] if a `NOT`/`NOR`
    /// output cell does not hold logical 1 when the gate fires (a missing
    /// initialization in the driver).
    pub fn apply_hlogic(
        &mut self,
        op: &HLogic,
        row_mask: &RangeMask,
        strict: bool,
    ) -> Result<(), ArchError> {
        let out_bits = op.out_bits();
        let out_reg = op.out.offset as usize;
        let a_reg = op.in_a.offset as usize;
        let b_reg = op.in_b.offset as usize;
        let (sa, sb) = (op.shift_a(), op.shift_b());
        for row in row_mask.iter() {
            let base = row as usize * self.regs;
            match op.gate {
                GateKind::Init0 => self.words[base + out_reg] &= !out_bits,
                GateKind::Init1 => self.words[base + out_reg] |= out_bits,
                GateKind::Not => {
                    let a = part_shift(self.words[base + a_reg], sa);
                    let out = &mut self.words[base + out_reg];
                    if strict && *out & out_bits != out_bits {
                        return Err(uninitialized(row, op));
                    }
                    *out &= !(a & out_bits);
                }
                GateKind::Nor => {
                    let a = part_shift(self.words[base + a_reg], sa);
                    let b = part_shift(self.words[base + b_reg], sb);
                    let out = &mut self.words[base + out_reg];
                    if strict && *out & out_bits != out_bits {
                        return Err(uninitialized(row, op));
                    }
                    *out &= !((a | b) & out_bits);
                }
            }
        }
        Ok(())
    }

    /// Applies a vertical stateful-logic operation: gate from `row_in` to
    /// `row_out` at the columns whose intra-partition index equals `index`
    /// (i.e. one whole register — 32 cells — per operation).
    ///
    /// # Errors
    ///
    /// In strict mode, returns [`ArchError::Protocol`] if a `NOT` output
    /// cell does not hold logical 1.
    pub fn apply_vlogic(
        &mut self,
        gate: VGate,
        row_in: usize,
        row_out: usize,
        index: usize,
        strict: bool,
    ) -> Result<(), ArchError> {
        match gate {
            VGate::Init0 => self.set_word(row_out, index, 0),
            VGate::Init1 => self.set_word(row_out, index, u32::MAX),
            VGate::Not => {
                let src = self.word(row_in, index);
                let dst = self.word(row_out, index);
                if strict && dst != u32::MAX {
                    return Err(ArchError::Protocol {
                        reason: format!(
                            "vertical NOT into row {row_out}, register {index}: output cells \
                             not initialized to 1 (found {dst:#010x})"
                        ),
                    });
                }
                self.set_word(row_out, index, dst & !src);
            }
        }
        Ok(())
    }
}

fn uninitialized(row: u32, op: &HLogic) -> ArchError {
    ArchError::Protocol {
        reason: format!(
            "stateful {:?} gate in row {row} writes to partition bits {:#010x} of register \
             {} that were not initialized to 1",
            op.gate,
            op.out_bits(),
            op.out.offset
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_arch::{ColAddr, PimConfig};
    use proptest::prelude::*;

    fn cfg() -> PimConfig {
        PimConfig::small()
    }

    fn full_rows(cfg: &PimConfig) -> RangeMask {
        RangeMask::dense(0, cfg.rows as u32).unwrap()
    }

    #[test]
    fn word_layout_matches_cells() {
        let mut xb = Crossbar::new(4, 32);
        xb.set_word(2, 5, 0b1010);
        assert!(!xb.cell(2, 0, 5));
        assert!(xb.cell(2, 1, 5));
        assert!(!xb.cell(2, 2, 5));
        assert!(xb.cell(2, 3, 5));
        xb.set_cell(2, 0, 5, true);
        assert_eq!(xb.word(2, 5), 0b1011);
        xb.set_cell(2, 3, 5, false);
        assert_eq!(xb.word(2, 5), 0b0011);
    }

    #[test]
    fn init_gates_set_whole_register() {
        let c = cfg();
        let mut xb = Crossbar::new(c.rows, c.regs);
        let rows = full_rows(&c);
        let init1 = HLogic::init_reg(true, 3, &c).unwrap();
        xb.apply_hlogic(&init1, &rows, true).unwrap();
        assert!(xb.word(0, 3) == u32::MAX && xb.word(c.rows - 1, 3) == u32::MAX);
        let init0 = HLogic::init_reg(false, 3, &c).unwrap();
        xb.apply_hlogic(&init0, &rows, true).unwrap();
        assert_eq!(xb.word(5, 3), 0);
    }

    #[test]
    fn parallel_nor_computes_per_partition() {
        let c = cfg();
        let mut xb = Crossbar::new(c.rows, c.regs);
        let rows = full_rows(&c);
        xb.set_word(1, 0, 0x0F0F_3355);
        xb.set_word(1, 1, 0x00FF_0F55);
        xb.apply_hlogic(&HLogic::init_reg(true, 2, &c).unwrap(), &rows, true)
            .unwrap();
        xb.apply_hlogic(
            &HLogic::parallel(GateKind::Nor, 0, 1, 2, &c).unwrap(),
            &rows,
            true,
        )
        .unwrap();
        assert_eq!(xb.word(1, 2), !(0x0F0F_3355u32 | 0x00FF_0F55));
        // Unselected rows saw the same ops (full mask) — NOR of zeros is 1.
        assert_eq!(xb.word(0, 2), u32::MAX);
    }

    #[test]
    fn row_mask_limits_logic() {
        let c = cfg();
        let mut xb = Crossbar::new(c.rows, c.regs);
        let even = RangeMask::new(0, c.rows as u32 - 2, 2).unwrap();
        xb.apply_hlogic(&HLogic::init_reg(true, 0, &c).unwrap(), &even, true)
            .unwrap();
        assert_eq!(xb.word(0, 0), u32::MAX);
        assert_eq!(xb.word(1, 0), 0);
        assert_eq!(xb.word(2, 0), u32::MAX);
    }

    #[test]
    fn strict_mode_catches_missing_init() {
        let c = cfg();
        let mut xb = Crossbar::new(c.rows, c.regs);
        let rows = full_rows(&c);
        let not = HLogic::parallel(GateKind::Not, 0, 0, 1, &c).unwrap();
        let err = xb.apply_hlogic(&not, &rows, true).unwrap_err();
        assert!(matches!(err, ArchError::Protocol { .. }));
        // Non-strict mode performs the (possibly wrong) stateful update.
        xb.apply_hlogic(&not, &rows, false).unwrap();
    }

    #[test]
    fn stateful_not_only_clears() {
        let c = cfg();
        let mut xb = Crossbar::new(c.rows, c.regs);
        let rows = full_rows(&c);
        xb.set_word(0, 0, 0xAAAA_AAAA);
        xb.apply_hlogic(&HLogic::init_reg(true, 1, &c).unwrap(), &rows, true)
            .unwrap();
        let not = HLogic::parallel(GateKind::Not, 0, 0, 1, &c).unwrap();
        xb.apply_hlogic(&not, &rows, true).unwrap();
        assert_eq!(xb.word(0, 1), 0x5555_5555);
        // Applying the same NOT again (non-strict: outputs now partially 0)
        // cannot switch any cell back to 1.
        xb.apply_hlogic(&not, &rows, false).unwrap();
        assert_eq!(xb.word(0, 1), 0x5555_5555);
    }

    #[test]
    fn cross_partition_shift_pattern() {
        // NOT from partition p to p+1 for even p: out bits odd partitions.
        let c = cfg();
        let mut xb = Crossbar::new(c.rows, c.regs);
        let rows = full_rows(&c);
        xb.set_word(0, 0, 0x0000_FFFF);
        xb.apply_hlogic(&HLogic::init_reg(true, 1, &c).unwrap(), &rows, true)
            .unwrap();
        let op = HLogic::strided(
            GateKind::Not,
            ColAddr::new(0, 0),
            ColAddr::new(0, 0),
            ColAddr::new(1, 1),
            31,
            2,
            &c,
        )
        .unwrap();
        xb.apply_hlogic(&op, &rows, true).unwrap();
        // Output bits: odd partitions p+1 receive NOT(bit p).
        // Input bits 0,2,..,14 are 1 -> outputs 1,3,..,15 become 0.
        // Input bits 16,18,..,30 are 0 -> outputs 17,..,31 stay 1.
        // Even output bits untouched (still 1 from init).
        let w = xb.word(0, 1);
        for p in 0..32u32 {
            let expect = if p % 2 == 1 { p >= 16 } else { true };
            assert_eq!(w >> p & 1 == 1, expect, "partition {p}");
        }
    }

    #[test]
    fn vertical_ops_move_registers_between_rows() {
        let c = cfg();
        let mut xb = Crossbar::new(c.rows, c.regs);
        xb.set_word(7, 4, 0x1234_5678);
        xb.apply_vlogic(VGate::Init1, 0, 9, 4, true).unwrap();
        xb.apply_vlogic(VGate::Not, 7, 9, 4, true).unwrap();
        assert_eq!(xb.word(9, 4), !0x1234_5678);
        // Second NOT through another register restores the value.
        xb.apply_vlogic(VGate::Init1, 0, 11, 4, true).unwrap();
        xb.apply_vlogic(VGate::Not, 9, 11, 4, true).unwrap();
        assert_eq!(xb.word(11, 4), 0x1234_5678);
        // Strict vertical NOT without init fails.
        assert!(xb.apply_vlogic(VGate::Not, 7, 12, 4, true).is_err());
        xb.apply_vlogic(VGate::Init0, 0, 12, 4, true).unwrap();
        assert_eq!(xb.word(12, 4), 0);
    }

    /// The fast word-level evaluation must agree with the reference
    /// semantics: every expanded gate applied simultaneously (reading the
    /// pre-operation state).
    #[test]
    fn word_level_matches_expanded_gates() {
        let c = cfg();
        let mut runner = proptest::test_runner::TestRunner::default();
        runner
            .run(
                &(
                    0u8..8,
                    0u8..4,
                    0u8..8,
                    1u8..8,
                    0u8..4,
                    (0u8..8, 0u8..8, 0u8..8),
                    proptest::collection::vec(any::<u32>(), 8),
                    0u8..4,
                ),
                |(pa, pbd, pod, step, reps, (oa, ob, oo), data, code)| {
                    let gate = GateKind::from_code(code).unwrap();
                    let in_a = ColAddr::new(pa, oa);
                    let in_b = ColAddr::new(pa + pbd, ob);
                    let out = ColAddr::new(pod, oo);
                    let p_end = pod as u32 + reps as u32 * step as u32;
                    prop_assume!(p_end < 32);
                    let op = HLogic::strided(gate, in_a, in_b, out, p_end as u8, step, &c);
                    let op = match op {
                        Ok(op) => op,
                        Err(_) => return Ok(()), // invalid pattern — skip
                    };
                    // Load one row with random words; snapshot it.
                    let mut fast = Crossbar::new(1, c.regs);
                    for (k, w) in data.iter().enumerate() {
                        fast.set_word(0, k, *w);
                    }
                    let mut slow = fast.clone();
                    let pre = fast.clone();
                    fast.apply_hlogic(&op, &RangeMask::single(0), false)
                        .unwrap();
                    // Reference: per-gate stateful update from the snapshot.
                    for g in op.expand_gates() {
                        let inputs_high = match gate {
                            GateKind::Init0 => true, // out := 0
                            GateKind::Init1 => false,
                            GateKind::Not => pre.cell(0, g.a.part, g.a.offset),
                            GateKind::Nor => {
                                pre.cell(0, g.a.part, g.a.offset)
                                    || pre.cell(0, g.b.part, g.b.offset)
                            }
                        };
                        match gate {
                            GateKind::Init0 => slow.set_cell(0, g.out.part, g.out.offset, false),
                            GateKind::Init1 => slow.set_cell(0, g.out.part, g.out.offset, true),
                            _ => {
                                if inputs_high {
                                    slow.set_cell(0, g.out.part, g.out.offset, false);
                                }
                            }
                        }
                    }
                    for k in 0..c.regs {
                        prop_assert_eq!(
                            fast.word(0, k),
                            slow.word(0, k),
                            "register {} differs for {:?}",
                            k,
                            &op
                        );
                    }
                    Ok(())
                },
            )
            .unwrap();
    }
}
