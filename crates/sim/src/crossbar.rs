use pim_arch::{ArchError, GateKind, HLogic, RangeMask, VGate};

/// One simulated memristive crossbar array in the condensed 32-bit row
/// format (§VI "Memory" optimization).
///
/// The logical state of row `r` is stored as `regs` words, where word `k`
/// packs the 32 bits at intra-partition offset `k` across all partitions —
/// bit `j` of word `k` is the cell at partition `j`, offset `k`. Under the
/// strided data format of §III-C this means word `k` *is* the value of
/// register `k`.
///
/// Storage is **register-major**: `words[reg * rows + row]`. A horizontal
/// micro-operation touches the *same* one, two, or three registers of every
/// selected row, so each register is one contiguous column slice and a
/// dense row mask turns the gate into straight-line loops over `&[u32]`
/// slices — the shape LLVM autovectorizes (see [`apply_hlogic`]).
///
/// (The per-crossbar activation bit of §III-B is represented by the
/// simulator's stored crossbar mask; iterating the mask's range pattern is
/// equivalent to — and faster than — testing a bit in every crossbar.)
///
/// [`apply_hlogic`]: Crossbar::apply_hlogic
#[derive(Debug, Clone)]
pub struct Crossbar {
    rows: usize,
    /// Register-major storage: `words[reg * rows + row]`.
    words: Vec<u32>,
}

/// Shifts word bits from input partitions to output partitions: positive
/// `s` moves bit `p` to bit `p + s`.
#[inline]
fn part_shift(x: u32, s: i32) -> u32 {
    if s >= 0 {
        x << s
    } else {
        x >> (-s)
    }
}

impl Crossbar {
    /// Creates a crossbar with `rows × regs` words, all cells at logical 0.
    pub fn new(rows: usize, regs: usize) -> Self {
        Crossbar {
            rows,
            words: vec![0; rows * regs],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Words per row (= registers per thread).
    pub fn regs(&self) -> usize {
        self.words.len() / self.rows
    }

    /// The word at `(row, reg)` — register `reg` of thread `row`.
    #[inline]
    pub fn word(&self, row: usize, reg: usize) -> u32 {
        self.words[reg * self.rows + row]
    }

    /// Overwrites the word at `(row, reg)` (memory write semantics — not a
    /// stateful-logic gate).
    #[inline]
    pub fn set_word(&mut self, row: usize, reg: usize, value: u32) {
        self.words[reg * self.rows + row] = value;
    }

    /// Reads the single cell at `(row, partition, offset)`.
    pub fn cell(&self, row: usize, part: u8, offset: u8) -> bool {
        self.word(row, offset as usize) >> part & 1 == 1
    }

    /// Writes the single cell at `(row, partition, offset)`.
    pub fn set_cell(&mut self, row: usize, part: u8, offset: u8, value: bool) {
        let w = &mut self.words[offset as usize * self.rows + row];
        if value {
            *w |= 1 << part;
        } else {
            *w &= !(1 << part);
        }
    }

    /// The contiguous column of register `reg` (one word per row).
    #[inline]
    fn col(&self, reg: usize) -> &[u32] {
        &self.words[reg * self.rows..(reg + 1) * self.rows]
    }

    /// Mutable contiguous column of register `reg`.
    #[inline]
    fn col_mut(&mut self, reg: usize) -> &mut [u32] {
        &mut self.words[reg * self.rows..(reg + 1) * self.rows]
    }

    /// The mutable output column plus the shared input columns for a fused
    /// gate kernel. An input equal to `out` comes back as `None` — the
    /// kernel then reads the output word itself, which is exactly the
    /// pre-gate value because each row is read before it is written.
    #[allow(clippy::type_complexity)]
    fn out_and_inputs(
        &mut self,
        out: usize,
        a: usize,
        b: usize,
    ) -> (&mut [u32], Option<&[u32]>, Option<&[u32]>) {
        let rows = self.rows;
        let mut dst: Option<&mut [u32]> = None;
        let mut col_a: Option<&[u32]> = None;
        let mut col_b: Option<&[u32]> = None;
        for (i, chunk) in self.words.chunks_exact_mut(rows).enumerate() {
            if i == out {
                dst = Some(chunk);
            } else if i == a || i == b {
                let shared: &[u32] = chunk;
                if i == a {
                    col_a = Some(shared);
                }
                if i == b {
                    col_b = Some(shared);
                }
            }
        }
        let dst = dst.expect("output register validated in bounds");
        (
            dst,
            if a == out { None } else { col_a },
            if b == out { None } else { col_b },
        )
    }

    /// Writes `value` to register `reg` of every row selected by
    /// `row_mask` (memory write semantics). Dense masks fill a contiguous
    /// column slice in one pass.
    pub fn write_rows(&mut self, reg: usize, row_mask: &RangeMask, value: u32) {
        let col = self.col_mut(reg);
        if let Some(r) = row_mask.as_dense_range() {
            col[r].fill(value);
        } else {
            for row in row_mask.iter() {
                col[row as usize] = value;
            }
        }
    }

    /// Applies a horizontal stateful-logic operation to every row selected
    /// by `row_mask`, using the word-level evaluation (three bitwise ops per
    /// row instead of per-partition iteration).
    ///
    /// Dense row masks take the fast path: per-gate fused kernels over
    /// contiguous column slices, with the strict-mode check hoisted out of
    /// the gate loop as a separate pre-scan. Strided masks fall back to the
    /// row-indexed loop.
    ///
    /// # Errors
    ///
    /// In strict mode, returns [`ArchError::Protocol`] if a `NOT`/`NOR`
    /// output cell does not hold logical 1 when the gate fires (a missing
    /// initialization in the driver). On the dense path this check runs
    /// *before* any cell changes, so a strict failure leaves the crossbar
    /// untouched; the strided path reports the first offending row in mask
    /// order, with earlier rows already updated.
    pub fn apply_hlogic(
        &mut self,
        op: &HLogic,
        row_mask: &RangeMask,
        strict: bool,
    ) -> Result<(), ArchError> {
        debug_assert!((row_mask.stop() as usize) < self.rows);
        match row_mask.as_dense_range() {
            Some(range) => self.apply_hlogic_dense(op, range, strict),
            None => self.apply_hlogic_strided(op, row_mask, strict),
        }
    }

    /// Dense-mask kernels: one straight-line loop per gate/alias shape over
    /// contiguous `&[u32]` slices.
    fn apply_hlogic_dense(
        &mut self,
        op: &HLogic,
        range: std::ops::Range<usize>,
        strict: bool,
    ) -> Result<(), ArchError> {
        let bits = op.out_bits();
        let out_reg = op.out.offset as usize;
        let a_reg = op.in_a.offset as usize;
        let b_reg = op.in_b.offset as usize;
        let (sa, sb) = (op.shift_a(), op.shift_b());
        match op.gate {
            GateKind::Init0 => {
                for w in &mut self.col_mut(out_reg)[range] {
                    *w &= !bits;
                }
            }
            GateKind::Init1 => {
                for w in &mut self.col_mut(out_reg)[range] {
                    *w |= bits;
                }
            }
            GateKind::Not => {
                if strict {
                    self.strict_prescan(op, range.clone())?;
                }
                let (dst, col_a, _) = self.out_and_inputs(out_reg, a_reg, a_reg);
                let dst = &mut dst[range.clone()];
                match col_a {
                    Some(a) => {
                        for (d, &av) in dst.iter_mut().zip(&a[range]) {
                            *d &= !(part_shift(av, sa) & bits);
                        }
                    }
                    None => {
                        for d in dst.iter_mut() {
                            *d &= !(part_shift(*d, sa) & bits);
                        }
                    }
                }
            }
            GateKind::Nor => {
                if strict {
                    self.strict_prescan(op, range.clone())?;
                }
                let (dst, col_a, col_b) = self.out_and_inputs(out_reg, a_reg, b_reg);
                let dst = &mut dst[range.clone()];
                match (col_a, col_b) {
                    (Some(a), Some(b)) => {
                        let (a, b) = (&a[range.clone()], &b[range]);
                        for ((d, &av), &bv) in dst.iter_mut().zip(a).zip(b) {
                            *d &= !((part_shift(av, sa) | part_shift(bv, sb)) & bits);
                        }
                    }
                    (None, Some(b)) => {
                        for (d, &bv) in dst.iter_mut().zip(&b[range]) {
                            *d &= !((part_shift(*d, sa) | part_shift(bv, sb)) & bits);
                        }
                    }
                    (Some(a), None) => {
                        for (d, &av) in dst.iter_mut().zip(&a[range]) {
                            *d &= !((part_shift(av, sa) | part_shift(*d, sb)) & bits);
                        }
                    }
                    (None, None) => {
                        for d in dst.iter_mut() {
                            *d &= !((part_shift(*d, sa) | part_shift(*d, sb)) & bits);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// The strict stateful-logic check for a dense range, hoisted out of
    /// the gate loop: every output cell the gate touches must hold 1.
    fn strict_prescan(&self, op: &HLogic, range: std::ops::Range<usize>) -> Result<(), ArchError> {
        let bits = op.out_bits();
        let start = range.start;
        let col = &self.col(op.out.offset as usize)[range];
        if let Some(pos) = col.iter().position(|&w| w & bits != bits) {
            return Err(uninitialized((start + pos) as u32, op));
        }
        Ok(())
    }

    /// Strided fall-back: the row-indexed loop of the seed implementation,
    /// with the register bases hoisted.
    fn apply_hlogic_strided(
        &mut self,
        op: &HLogic,
        row_mask: &RangeMask,
        strict: bool,
    ) -> Result<(), ArchError> {
        let bits = op.out_bits();
        let rows = self.rows;
        let out_base = op.out.offset as usize * rows;
        let a_base = op.in_a.offset as usize * rows;
        let b_base = op.in_b.offset as usize * rows;
        let (sa, sb) = (op.shift_a(), op.shift_b());
        for row in row_mask.iter() {
            let row = row as usize;
            match op.gate {
                GateKind::Init0 => self.words[out_base + row] &= !bits,
                GateKind::Init1 => self.words[out_base + row] |= bits,
                GateKind::Not => {
                    let a = part_shift(self.words[a_base + row], sa);
                    let out = &mut self.words[out_base + row];
                    if strict && *out & bits != bits {
                        return Err(uninitialized(row as u32, op));
                    }
                    *out &= !(a & bits);
                }
                GateKind::Nor => {
                    let a = part_shift(self.words[a_base + row], sa);
                    let b = part_shift(self.words[b_base + row], sb);
                    let out = &mut self.words[out_base + row];
                    if strict && *out & bits != bits {
                        return Err(uninitialized(row as u32, op));
                    }
                    *out &= !((a | b) & bits);
                }
            }
        }
        Ok(())
    }

    /// Applies a vertical stateful-logic operation: gate from `row_in` to
    /// `row_out` at the columns whose intra-partition index equals `index`
    /// (i.e. one whole register — 32 cells — per operation).
    ///
    /// # Errors
    ///
    /// In strict mode, returns [`ArchError::Protocol`] if a `NOT` output
    /// cell does not hold logical 1.
    pub fn apply_vlogic(
        &mut self,
        gate: VGate,
        row_in: usize,
        row_out: usize,
        index: usize,
        strict: bool,
    ) -> Result<(), ArchError> {
        match gate {
            VGate::Init0 => self.set_word(row_out, index, 0),
            VGate::Init1 => self.set_word(row_out, index, u32::MAX),
            VGate::Not => {
                let src = self.word(row_in, index);
                let dst = self.word(row_out, index);
                if strict && dst != u32::MAX {
                    return Err(ArchError::Protocol {
                        reason: format!(
                            "vertical NOT into row {row_out}, register {index}: output cells \
                             not initialized to 1 (found {dst:#010x})"
                        ),
                    });
                }
                self.set_word(row_out, index, dst & !src);
            }
        }
        Ok(())
    }
}

fn uninitialized(row: u32, op: &HLogic) -> ArchError {
    ArchError::Protocol {
        reason: format!(
            "stateful {:?} gate in row {row} writes to partition bits {:#010x} of register \
             {} that were not initialized to 1",
            op.gate,
            op.out_bits(),
            op.out.offset
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_arch::{ColAddr, PimConfig};
    use proptest::prelude::*;

    fn cfg() -> PimConfig {
        PimConfig::small()
    }

    fn full_rows(cfg: &PimConfig) -> RangeMask {
        RangeMask::dense(0, cfg.rows as u32).unwrap()
    }

    #[test]
    fn word_layout_matches_cells() {
        let mut xb = Crossbar::new(4, 32);
        xb.set_word(2, 5, 0b1010);
        assert!(!xb.cell(2, 0, 5));
        assert!(xb.cell(2, 1, 5));
        assert!(!xb.cell(2, 2, 5));
        assert!(xb.cell(2, 3, 5));
        xb.set_cell(2, 0, 5, true);
        assert_eq!(xb.word(2, 5), 0b1011);
        xb.set_cell(2, 3, 5, false);
        assert_eq!(xb.word(2, 5), 0b0011);
    }

    #[test]
    fn init_gates_set_whole_register() {
        let c = cfg();
        let mut xb = Crossbar::new(c.rows, c.regs);
        let rows = full_rows(&c);
        let init1 = HLogic::init_reg(true, 3, &c).unwrap();
        xb.apply_hlogic(&init1, &rows, true).unwrap();
        assert!(xb.word(0, 3) == u32::MAX && xb.word(c.rows - 1, 3) == u32::MAX);
        let init0 = HLogic::init_reg(false, 3, &c).unwrap();
        xb.apply_hlogic(&init0, &rows, true).unwrap();
        assert_eq!(xb.word(5, 3), 0);
    }

    #[test]
    fn parallel_nor_computes_per_partition() {
        let c = cfg();
        let mut xb = Crossbar::new(c.rows, c.regs);
        let rows = full_rows(&c);
        xb.set_word(1, 0, 0x0F0F_3355);
        xb.set_word(1, 1, 0x00FF_0F55);
        xb.apply_hlogic(&HLogic::init_reg(true, 2, &c).unwrap(), &rows, true)
            .unwrap();
        xb.apply_hlogic(
            &HLogic::parallel(GateKind::Nor, 0, 1, 2, &c).unwrap(),
            &rows,
            true,
        )
        .unwrap();
        assert_eq!(xb.word(1, 2), !(0x0F0F_3355u32 | 0x00FF_0F55));
        // Unselected rows saw the same ops (full mask) — NOR of zeros is 1.
        assert_eq!(xb.word(0, 2), u32::MAX);
    }

    #[test]
    fn row_mask_limits_logic() {
        let c = cfg();
        let mut xb = Crossbar::new(c.rows, c.regs);
        let even = RangeMask::new(0, c.rows as u32 - 2, 2).unwrap();
        xb.apply_hlogic(&HLogic::init_reg(true, 0, &c).unwrap(), &even, true)
            .unwrap();
        assert_eq!(xb.word(0, 0), u32::MAX);
        assert_eq!(xb.word(1, 0), 0);
        assert_eq!(xb.word(2, 0), u32::MAX);
    }

    #[test]
    fn partial_dense_mask_limits_logic() {
        // A dense sub-range must only touch its rows (fast-path bounds).
        let c = cfg();
        let mut xb = Crossbar::new(c.rows, c.regs);
        let mid = RangeMask::dense(10, 20).unwrap();
        xb.apply_hlogic(&HLogic::init_reg(true, 0, &c).unwrap(), &mid, true)
            .unwrap();
        for row in 0..c.rows {
            let expect = (10..20).contains(&row);
            assert_eq!(xb.word(row, 0) == u32::MAX, expect, "row {row}");
        }
    }

    #[test]
    fn strict_mode_catches_missing_init() {
        let c = cfg();
        let mut xb = Crossbar::new(c.rows, c.regs);
        let rows = full_rows(&c);
        let not = HLogic::parallel(GateKind::Not, 0, 0, 1, &c).unwrap();
        let err = xb.apply_hlogic(&not, &rows, true).unwrap_err();
        assert!(matches!(err, ArchError::Protocol { .. }));
        // The dense pre-scan fails *before* mutating: state is untouched.
        assert!((0..c.rows).all(|r| xb.word(r, 1) == 0));
        // Non-strict mode performs the (possibly wrong) stateful update.
        xb.apply_hlogic(&not, &rows, false).unwrap();
    }

    #[test]
    fn strict_prescan_reports_first_bad_row() {
        let c = cfg();
        let mut xb = Crossbar::new(c.rows, c.regs);
        let rows = full_rows(&c);
        xb.apply_hlogic(&HLogic::init_reg(true, 1, &c).unwrap(), &rows, true)
            .unwrap();
        xb.set_word(13, 1, 0x7FFF_FFFF); // one cleared output cell
        let not = HLogic::parallel(GateKind::Not, 0, 0, 1, &c).unwrap();
        let err = xb.apply_hlogic(&not, &rows, true).unwrap_err();
        match err {
            ArchError::Protocol { reason } => {
                assert!(reason.contains("row 13"), "{reason}");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn stateful_not_only_clears() {
        let c = cfg();
        let mut xb = Crossbar::new(c.rows, c.regs);
        let rows = full_rows(&c);
        xb.set_word(0, 0, 0xAAAA_AAAA);
        xb.apply_hlogic(&HLogic::init_reg(true, 1, &c).unwrap(), &rows, true)
            .unwrap();
        let not = HLogic::parallel(GateKind::Not, 0, 0, 1, &c).unwrap();
        xb.apply_hlogic(&not, &rows, true).unwrap();
        assert_eq!(xb.word(0, 1), 0x5555_5555);
        // Applying the same NOT again (non-strict: outputs now partially 0)
        // cannot switch any cell back to 1.
        xb.apply_hlogic(&not, &rows, false).unwrap();
        assert_eq!(xb.word(0, 1), 0x5555_5555);
    }

    #[test]
    fn cross_partition_shift_pattern() {
        // NOT from partition p to p+1 for even p: out bits odd partitions.
        let c = cfg();
        let mut xb = Crossbar::new(c.rows, c.regs);
        let rows = full_rows(&c);
        xb.set_word(0, 0, 0x0000_FFFF);
        xb.apply_hlogic(&HLogic::init_reg(true, 1, &c).unwrap(), &rows, true)
            .unwrap();
        let op = HLogic::strided(
            GateKind::Not,
            ColAddr::new(0, 0),
            ColAddr::new(0, 0),
            ColAddr::new(1, 1),
            31,
            2,
            &c,
        )
        .unwrap();
        xb.apply_hlogic(&op, &rows, true).unwrap();
        // Output bits: odd partitions p+1 receive NOT(bit p).
        // Input bits 0,2,..,14 are 1 -> outputs 1,3,..,15 become 0.
        // Input bits 16,18,..,30 are 0 -> outputs 17,..,31 stay 1.
        // Even output bits untouched (still 1 from init).
        let w = xb.word(0, 1);
        for p in 0..32u32 {
            let expect = if p % 2 == 1 { p >= 16 } else { true };
            assert_eq!(w >> p & 1 == 1, expect, "partition {p}");
        }
    }

    #[test]
    fn self_aliased_gates_read_pre_gate_state() {
        // Output register == input register (different partitions): every
        // row must read its own pre-gate word. Exercises the in-place
        // kernels of the dense path against the strided reference.
        let c = cfg();
        let op = HLogic::strided(
            GateKind::Not,
            ColAddr::new(0, 4),
            ColAddr::new(0, 4),
            ColAddr::new(1, 4), // same offset 4: out aliases in_a
            31,
            2,
            &c,
        )
        .unwrap();
        let mut dense = Crossbar::new(c.rows, c.regs);
        for row in 0..c.rows {
            dense.set_word(row, 4, 0x9E37_79B9u32.wrapping_mul(row as u32 + 1));
        }
        let mut strided = dense.clone();
        dense
            .apply_hlogic(&op, &RangeMask::dense(0, c.rows as u32).unwrap(), false)
            .unwrap();
        // Equivalent two-step strided cover of the same rows.
        let half = (c.rows / 2) as u32;
        strided
            .apply_hlogic(
                &op,
                &RangeMask::new(0, c.rows as u32 - 2, 2).unwrap(),
                false,
            )
            .unwrap();
        strided
            .apply_hlogic(
                &op,
                &RangeMask::new(1, c.rows as u32 - 1, 2).unwrap(),
                false,
            )
            .unwrap();
        assert_eq!(half * 2, c.rows as u32);
        for row in 0..c.rows {
            assert_eq!(dense.word(row, 4), strided.word(row, 4), "row {row}");
        }
    }

    #[test]
    fn vertical_ops_move_registers_between_rows() {
        let c = cfg();
        let mut xb = Crossbar::new(c.rows, c.regs);
        xb.set_word(7, 4, 0x1234_5678);
        xb.apply_vlogic(VGate::Init1, 0, 9, 4, true).unwrap();
        xb.apply_vlogic(VGate::Not, 7, 9, 4, true).unwrap();
        assert_eq!(xb.word(9, 4), !0x1234_5678);
        // Second NOT through another register restores the value.
        xb.apply_vlogic(VGate::Init1, 0, 11, 4, true).unwrap();
        xb.apply_vlogic(VGate::Not, 9, 11, 4, true).unwrap();
        assert_eq!(xb.word(11, 4), 0x1234_5678);
        // Strict vertical NOT without init fails.
        assert!(xb.apply_vlogic(VGate::Not, 7, 12, 4, true).is_err());
        xb.apply_vlogic(VGate::Init0, 0, 12, 4, true).unwrap();
        assert_eq!(xb.word(12, 4), 0);
    }

    #[test]
    fn write_rows_covers_dense_and_strided() {
        let c = cfg();
        let mut xb = Crossbar::new(c.rows, c.regs);
        xb.write_rows(3, &RangeMask::dense(4, 10).unwrap(), 0xAB);
        xb.write_rows(5, &RangeMask::new(1, 61, 4).unwrap(), 0xCD);
        for row in 0..c.rows {
            assert_eq!(xb.word(row, 3) == 0xAB, (4..10).contains(&row), "row {row}");
            assert_eq!(xb.word(row, 5) == 0xCD, row % 4 == 1, "row {row}");
        }
    }

    /// The fast word-level evaluation must agree with the reference
    /// semantics: every expanded gate applied simultaneously (reading the
    /// pre-operation state). Both the dense fast path and the strided
    /// fall-back run on the same inputs and must match the reference and
    /// each other.
    #[test]
    fn word_level_matches_expanded_gates() {
        let c = cfg();
        let mut runner = proptest::test_runner::TestRunner::default();
        runner
            .run(
                &(
                    0u8..8,
                    0u8..4,
                    0u8..8,
                    1u8..8,
                    0u8..4,
                    (0u8..8, 0u8..8, 0u8..8),
                    proptest::collection::vec(any::<u32>(), 8),
                    0u8..4,
                ),
                |(pa, pbd, pod, step, reps, (oa, ob, oo), data, code)| {
                    let gate = GateKind::from_code(code).unwrap();
                    let in_a = ColAddr::new(pa, oa);
                    let in_b = ColAddr::new(pa + pbd, ob);
                    let out = ColAddr::new(pod, oo);
                    let p_end = pod as u32 + reps as u32 * step as u32;
                    prop_assume!(p_end < 32);
                    let op = HLogic::strided(gate, in_a, in_b, out, p_end as u8, step, &c);
                    let op = match op {
                        Ok(op) => op,
                        Err(_) => return Ok(()), // invalid pattern — skip
                    };
                    // Load rows 0 and 1 with the same random words. Row 0 is
                    // exercised through the dense kernel (step-1 single-row
                    // mask), row 1 through the strided fall-back (a step-2
                    // mask selecting only row 1).
                    let mut fast = Crossbar::new(4, c.regs);
                    for (k, w) in data.iter().enumerate() {
                        fast.set_word(0, k, *w);
                        fast.set_word(1, k, *w);
                    }
                    let mut slow = fast.clone();
                    let pre = fast.clone();
                    let dense_mask = RangeMask::dense(0, 1).unwrap();
                    assert!(dense_mask.is_dense());
                    let strided_mask = RangeMask::strided(1, 1, 2).unwrap();
                    assert!(!strided_mask.is_dense());
                    fast.apply_hlogic(&op, &dense_mask, false).unwrap();
                    fast.apply_hlogic(&op, &strided_mask, false).unwrap();
                    // Reference: per-gate stateful update from the snapshot.
                    for g in op.expand_gates() {
                        let inputs_high = match gate {
                            GateKind::Init0 => true, // out := 0
                            GateKind::Init1 => false,
                            GateKind::Not => pre.cell(0, g.a.part, g.a.offset),
                            GateKind::Nor => {
                                pre.cell(0, g.a.part, g.a.offset)
                                    || pre.cell(0, g.b.part, g.b.offset)
                            }
                        };
                        for row in [0, 1] {
                            match gate {
                                GateKind::Init0 => {
                                    slow.set_cell(row, g.out.part, g.out.offset, false)
                                }
                                GateKind::Init1 => {
                                    slow.set_cell(row, g.out.part, g.out.offset, true)
                                }
                                _ => {
                                    if inputs_high {
                                        slow.set_cell(row, g.out.part, g.out.offset, false);
                                    }
                                }
                            }
                        }
                    }
                    for row in 0..4 {
                        for k in 0..c.regs {
                            prop_assert_eq!(
                                fast.word(row, k),
                                slow.word(row, k),
                                "row {} register {} differs for {:?}",
                                row,
                                k,
                                &op
                            );
                        }
                    }
                    // Dense and strided paths agree with each other.
                    for k in 0..c.regs {
                        prop_assert_eq!(fast.word(0, k), fast.word(1, k));
                    }
                    Ok(())
                },
            )
            .unwrap();
    }
}
