//! The shared micro-operation cost model.
//!
//! Every backend — the bit-accurate [`PimSimulator`](crate::PimSimulator)
//! and the vectorized functional backend (`pim-func`) — charges modeled
//! cycles through this one function, so `Profiler` totals, telemetry
//! attribution and deadline semantics are identical regardless of how the
//! data movement is actually computed on the host.
//!
//! Under the microarchitectural model every micro-operation occupies one
//! PIM clock cycle, except distributed moves whose transfers share H-tree
//! links (those serialize; see [`pim_arch::htree::plan_move`]).

use crate::Profiler;
use pim_arch::{htree, ArchError, MicroOp, PimConfig, RangeMask};

/// Charges one micro-operation to `p` given the mask state in effect,
/// returning the operation's cycle cost.
///
/// Gate counters: a horizontal logic op fires `gate_count()` gate
/// instances per selected row per selected crossbar; a vertical logic op
/// fires one per selected crossbar. A distributed move is validated
/// against the H-tree pattern rules as a side effect.
///
/// # Errors
///
/// Returns [`ArchError::InvalidMove`] when a move violates the H-tree
/// rules (nothing is charged in that case).
pub fn charge_op(
    p: &mut Profiler,
    op: &MicroOp,
    xb_mask: &RangeMask,
    row_mask: &RangeMask,
    cfg: &PimConfig,
) -> Result<u64, ArchError> {
    let cycles = match op {
        MicroOp::XbMask(_) => {
            p.ops.xb_mask += 1;
            1
        }
        MicroOp::RowMask(_) => {
            p.ops.row_mask += 1;
            1
        }
        MicroOp::Write { .. } => {
            p.ops.write += 1;
            1
        }
        MicroOp::Read { .. } => {
            p.ops.read += 1;
            1
        }
        MicroOp::LogicH(l) => {
            p.ops.logic_h += 1;
            p.gates += l.gate_count();
            p.row_gates += l.gate_count() * row_mask.len() as u64 * xb_mask.len() as u64;
            1
        }
        MicroOp::LogicV { .. } => {
            p.ops.logic_v += 1;
            p.gates += 1;
            p.row_gates += xb_mask.len() as u64;
            1
        }
        MicroOp::Move(mv) => {
            let plan = htree::plan_move(xb_mask, mv, cfg)?;
            p.ops.mv += 1;
            p.move_pairs += plan.pairs;
            p.max_move_level = p.max_move_level.max(plan.tree_level);
            plan.cycles
        }
    };
    p.cycles += cycles;
    Ok(cycles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_arch::{GateKind, HLogic};

    #[test]
    fn charges_match_op_types() {
        let cfg = PimConfig::small();
        let xb = RangeMask::dense(0, cfg.crossbars as u32).unwrap();
        let rows = RangeMask::dense(0, cfg.rows as u32).unwrap();
        let mut p = Profiler::new();
        let gate = HLogic::parallel(GateKind::Nor, 0, 1, 2, &cfg).unwrap();
        let c = charge_op(&mut p, &MicroOp::LogicH(gate.clone()), &xb, &rows, &cfg).unwrap();
        assert_eq!(c, 1);
        assert_eq!(p.ops.logic_h, 1);
        assert_eq!(p.gates, gate.gate_count());
        assert_eq!(
            p.row_gates,
            gate.gate_count() * rows.len() as u64 * xb.len() as u64
        );
        assert_eq!(p.cycles, 1);
    }

    #[test]
    fn invalid_move_charges_nothing() {
        let cfg = PimConfig::small();
        let xb = RangeMask::single(0);
        let rows = RangeMask::dense(0, cfg.rows as u32).unwrap();
        let mut p = Profiler::new();
        let mv = pim_arch::MoveOp {
            dist: 0,
            row_src: 0,
            row_dst: 0,
            index_src: 0,
            index_dst: 0,
        };
        assert!(charge_op(&mut p, &MicroOp::Move(mv), &xb, &rows, &cfg).is_err());
        assert_eq!(p.cycles, 0);
        assert_eq!(p.ops.mv, 0);
    }
}
