//! # pim-fleet
//!
//! Multi-host serving for the PyPIM stack: `N` in-process serving hosts —
//! each a [`pim_serve::Gateway`] over its own [`Device`] — composed
//! behind one fleet router, coordinated by **lease-based leader
//! election** and recovered by **deterministic failover**.
//!
//! The paper (conf_micro_LeitersdorfRK24) models one PIM memory behind
//! one host. `pim-cluster` racked many chips behind that host; this crate
//! racks many *hosts* behind one front door, the way a serving deployment
//! would, and keeps the whole thing on the modeled clock so every
//! election and every failover replays bit-identically:
//!
//! * **Leader election** ([`LeaseStore`], [`Lease`]) — hosts heartbeat a
//!   shared lease every [`FleetConfig::heartbeat_cycles`]; whoever holds
//!   it is leader. A host that stops heartbeating lets the lease expire
//!   ([`FleetConfig::lease_ttl_cycles`]), and the next eligible
//!   heartbeat acquires it under a bumped epoch. The store is a trait:
//!   the in-process mutex arbiter ships here, an RPC-backed one can slot
//!   in without touching the router.
//! * **Host faults** ([`pim_fault::HostFaultPlan`]) — seeded crash /
//!   stall / partition schedules on the modeled clock, fired by
//!   [`Fleet::tick_now`]. A crashed or lapsed host's sessions are
//!   re-placed on the least-loaded survivor; results that arrive from a
//!   pre-failover placement are discarded by generation stamp and the
//!   request re-issued ([`FleetSession::run`]).
//! * **Host-to-host hop** — session placement and failover hand-off
//!   traffic ride a second [`Interconnect`] tier with its own latency
//!   and width ([`FleetConfig::hop`]), charged to the modeled clock and
//!   surfaced as `fleet.hop_*` counters.
//! * **Observability** — `fleet.leader_changes`, `fleet.failovers`,
//!   `fleet.orphaned_sessions`, `fleet.reissued` counters, a
//!   `fleet.failover_cycles` detection-latency histogram, election and
//!   failover spans on the `fleet/control` track (Perfetto-exportable),
//!   and per-host metric namespaces `host<i>/…` in
//!   [`Fleet::metrics_snapshot`].
//!
//! # Example
//!
//! ```
//! use futures::executor::block_on;
//! use pim_fleet::{Fleet, FleetConfig};
//!
//! # fn main() -> pypim_core::Result<()> {
//! let fleet = Fleet::new(FleetConfig::default())?;
//! let session = fleet.session()?;
//! let sum = block_on(session.run(|client| {
//!     Box::pin(async move {
//!         let x = client.upload_f32(&[1.0, 2.0, 3.0, 4.0]).await?;
//!         client.sum_f32(&x).await
//!     })
//! }))?;
//! assert_eq!(sum, 10.0);
//! assert!(fleet.leader().is_some(), "first tick elects a leader");
//! # Ok(())
//! # }
//! ```

mod lease;

pub use lease::{InProcessLeaseStore, Lease, LeaseStore};
pub use pim_fault::{HostFault, HostFaultPlan, HostFaultProfile};
pub use pim_serve::{ClusterClient, GatewayHost, ServeConfig};

use parking_lot::Mutex;
use pim_arch::PimConfig;
use pim_cluster::{Interconnect, InterconnectConfig};
use pim_serve::DeviceServeExt;
use pim_telemetry::{Counter, Histogram, MetricsSnapshot, RequestId, Telemetry, TrackHandle};
use pypim_core::{BackendKind, CoreError, Device, ErrorClass, Result};
use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;

/// Modeled words of session state shipped over the host-to-host hop per
/// placement or failover hand-off (descriptor, placement window, replay
/// cursor — not tensor data, which is re-uploaded by the re-issued
/// request itself).
const SESSION_STATE_WORDS: u64 = 64;

/// Times a session is re-placed and its request re-issued before the
/// fleet gives up and surfaces [`CoreError::Evicted`]. Bounds work under
/// pathological schedules where every host dies in turn.
const MAX_REISSUES: u32 = 8;

/// Fleet geometry, timing, and fault schedule.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Serving hosts to build (each a functional-backend single-chip
    /// device behind its own gateway). Ignored by
    /// [`Fleet::with_hosts`], which takes the hosts ready-made.
    pub hosts: usize,
    /// Chip configuration of each default host device.
    pub chip: PimConfig,
    /// Admission-control tuning of each host's gateway.
    pub serve: ServeConfig,
    /// Lease time-to-live in modeled cycles: a host that misses
    /// heartbeats for longer loses leadership, and its sessions fail
    /// over.
    pub lease_ttl_cycles: u64,
    /// Heartbeat period in modeled cycles. Must be shorter than
    /// [`lease_ttl_cycles`](FleetConfig::lease_ttl_cycles).
    pub heartbeat_cycles: u64,
    /// Geometry of the host-to-host hop (second interconnect tier:
    /// placement, hand-off, and re-admission traffic).
    pub hop: InterconnectConfig,
    /// Seeded host-level fault schedule fired on the modeled clock.
    pub fault: HostFaultPlan,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            hosts: 2,
            chip: PimConfig::small().with_crossbars(8),
            serve: ServeConfig::default(),
            lease_ttl_cycles: 30_000,
            heartbeat_cycles: 10_000,
            // The host hop is longer and narrower than the chip-to-chip
            // tier: a rack-level link, not an on-board one.
            hop: InterconnectConfig {
                link_bits: 64,
                latency: 64,
                ..InterconnectConfig::default()
            },
            fault: HostFaultPlan::none(),
        }
    }
}

impl FleetConfig {
    /// Checks the configuration is usable.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Protocol`] with a human-readable reason when
    /// a parameter is out of range.
    pub fn validate(&self) -> Result<()> {
        if self.hosts == 0 {
            return Err(CoreError::Protocol {
                reason: "fleet needs at least one host".into(),
            });
        }
        if self.heartbeat_cycles == 0 {
            return Err(CoreError::Protocol {
                reason: "heartbeat period must be at least one cycle".into(),
            });
        }
        if self.lease_ttl_cycles <= self.heartbeat_cycles {
            return Err(CoreError::Protocol {
                reason: format!(
                    "lease ttl ({}) must exceed the heartbeat period ({}) or \
                     leadership flaps on every beat",
                    self.lease_ttl_cycles, self.heartbeat_cycles
                ),
            });
        }
        self.hop
            .validate()
            .map_err(|reason| CoreError::Protocol { reason })?;
        Ok(())
    }
}

/// Counters of the fleet's control plane.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FleetStats {
    /// Leadership transitions, the initial election included.
    pub leader_changes: u64,
    /// Hosts failed over (lease lapse detected; counted once per
    /// outage).
    pub failovers: u64,
    /// Session placements orphaned by those failovers (re-placed on a
    /// survivor, or evicted when none was left).
    pub orphaned_sessions: u64,
    /// Requests whose in-flight result was discarded (stale generation)
    /// or whose placement was rebuilt after a transient failure, and
    /// which were issued again.
    pub reissued: u64,
    /// Heartbeats sent by eligible hosts.
    pub heartbeats: u64,
    /// Fleet sessions ever placed.
    pub sessions: u64,
}

/// One host behind the router.
struct HostState {
    gateway: Box<dyn GatewayHost + Send + Sync>,
    /// False once a [`HostFault::Crash`] fired; never recovers.
    alive: bool,
    /// Modeled cycle the current stall ends ([`HostFault::Stall`]).
    stalled_until: u64,
    /// Modeled cycle the current partition heals
    /// ([`HostFault::Partition`]).
    partitioned_until: u64,
    /// Modeled cycle of the last heartbeat this host sent.
    last_heartbeat: u64,
    /// Next cycle a heartbeat is due (0 = immediately).
    next_heartbeat: u64,
    /// Whether the current outage already triggered a failover; reset
    /// when the host heartbeats again, so one outage fails over once.
    failed_over: bool,
}

impl HostState {
    /// Whether the host can heartbeat, hold sessions, and take new
    /// placements at `now`.
    fn eligible(&self, now: u64) -> bool {
        self.alive && now >= self.stalled_until && now >= self.partitioned_until
    }
}

/// One fleet session's current placement.
struct SessionSlot {
    /// Host currently serving the session.
    host: usize,
    /// Live client on that host; `None` once evicted with no survivor
    /// to fail over to.
    client: Option<Arc<ClusterClient>>,
    /// Placement generation: bumps on every re-placement (and on slot
    /// reuse), so a result computed against an old placement is
    /// detectably stale.
    generation: u64,
}

struct FleetState {
    hosts: Vec<HostState>,
    sessions: Vec<SessionSlot>,
    /// Last lease observed by the router (leader-change edge detection).
    leader: Option<Lease>,
    /// Next unfired event in the (cycle-sorted) host fault schedule.
    fault_cursor: usize,
    /// Session slots freed by dropped [`FleetSession`]s, reused by the
    /// next placement.
    free_slots: Vec<usize>,
}

struct FleetInner {
    cfg: FleetConfig,
    /// The fleet's own telemetry: control-plane counters, the
    /// `fleet/control` span track, and the fleet-level modeled clock
    /// (kept in sync with every host clock by
    /// [`sync_clocks`](FleetInner::sync_clocks)).
    telemetry: Telemetry,
    /// The host-to-host interconnect tier.
    hop: Interconnect,
    store: Box<dyn LeaseStore>,
    track: TrackHandle,
    leader_changes: Counter,
    failovers: Counter,
    orphaned: Counter,
    reissued: Counter,
    heartbeats: Counter,
    sessions_placed: Counter,
    /// `fleet.failover_cycles` — modeled cycles from a failed host's
    /// last heartbeat to the tick that detected the lapse.
    failover_cycles: Histogram,
    state: Mutex<FleetState>,
}

impl FleetInner {
    /// Raises every clock — the fleet's and each host's — to the global
    /// maximum, and returns it. Hosts execute on their own telemetry
    /// handles (a [`Device`] owns its clock), so the fleet re-converges
    /// them at every control-plane step; the merged clock is what leases
    /// and fault schedules are evaluated against.
    fn sync_clocks(&self) -> u64 {
        let st = self.state.lock();
        let mut global = self.telemetry.now();
        for h in &st.hosts {
            global = global.max(h.gateway.telemetry().now());
        }
        self.telemetry.advance_clock(global);
        for h in &st.hosts {
            h.gateway.telemetry().advance_clock(global);
        }
        global
    }

    /// One control-plane step at modeled cycle `now`, in deterministic
    /// order: fire due host faults, send due heartbeats (host order),
    /// detect leadership changes, then fail over lapsed hosts.
    fn tick(&self, now: u64) {
        let mut st = self.state.lock();

        // 1. Fire every fault event due by `now` (the plan is sorted by
        //    (cycle, host); the cursor makes each event fire once).
        let events = self.cfg.fault.events();
        while st.fault_cursor < events.len() && events[st.fault_cursor].0 <= now {
            let (cycle, host, fault) = events[st.fault_cursor];
            st.fault_cursor += 1;
            let h = &mut st.hosts[host];
            match fault {
                HostFault::Crash => h.alive = false,
                HostFault::Stall { cycles } => {
                    h.stalled_until = h.stalled_until.max(cycle.saturating_add(cycles));
                }
                HostFault::Partition { cycles } => {
                    h.partitioned_until = h.partitioned_until.max(cycle.saturating_add(cycles));
                }
            }
        }

        // 2. Heartbeats, in host order (the tie-break that makes
        //    elections deterministic: the lowest eligible host index
        //    wins a free lease).
        let ttl = self.cfg.lease_ttl_cycles;
        for (h, host) in st.hosts.iter_mut().enumerate() {
            if host.eligible(now) && now >= host.next_heartbeat {
                host.last_heartbeat = now;
                host.next_heartbeat = now + self.cfg.heartbeat_cycles;
                host.failed_over = false;
                self.heartbeats.inc();
                let _ = self.store.try_acquire(h, now, ttl);
            }
        }

        // 3. Leadership-change edge detection by (holder, epoch).
        let lease = self.store.current();
        let changed = match (st.leader, lease) {
            (None, Some(_)) => true,
            (Some(a), Some(b)) => a.holder != b.holder || a.epoch != b.epoch,
            _ => false,
        };
        if changed {
            self.leader_changes.inc();
            if let Some(l) = lease {
                self.track.record_complete(
                    "election",
                    now,
                    0,
                    RequestId::UNTAGGED,
                    Some(("leader", l.holder as u64)),
                );
            }
        }
        st.leader = lease;

        // 4. Failover: a host whose lease window lapsed without a
        //    heartbeat is presumed dead; its sessions move to the
        //    least-loaded eligible survivor. Counted once per outage.
        let lapsed: Vec<usize> = (0..st.hosts.len())
            .filter(|&h| {
                let host = &st.hosts[h];
                !host.failed_over && now > host.last_heartbeat.saturating_add(ttl)
            })
            .collect();
        for h in lapsed {
            st.hosts[h].failed_over = true;
            self.failovers.inc();
            let since = st.hosts[h].last_heartbeat;
            let detect = now.saturating_sub(since);
            self.failover_cycles.record(detect);
            self.track.record_complete(
                "failover",
                since,
                detect,
                RequestId::UNTAGGED,
                Some(("host", h as u64)),
            );
            for s in 0..st.sessions.len() {
                if st.sessions[s].host == h && st.sessions[s].client.is_some() {
                    self.orphaned.inc();
                    self.replace_locked(&mut st, s, now);
                }
            }
        }
    }

    /// Re-places session `s` on the least-loaded eligible host (bumping
    /// its generation), or evicts it when no host is left. Caller holds
    /// the state lock.
    fn replace_locked(&self, st: &mut FleetState, s: usize, now: u64) {
        let target = (0..st.hosts.len())
            .filter(|&h| st.hosts[h].eligible(now))
            .min_by_key(|&h| (st.hosts[h].gateway.active_sessions(), h));
        let placed = target.and_then(|t| {
            st.hosts[t]
                .gateway
                .open_session()
                .ok()
                .map(|c| (t, Arc::new(c)))
        });
        let slot = &mut st.sessions[s];
        slot.generation += 1;
        match placed {
            Some((t, client)) => {
                slot.host = t;
                // Dropping the old Arc closes the session on the dead
                // host's gateway (harmless bookkeeping in-process; a
                // real dead host would simply never hear it).
                slot.client = Some(client);
                let cycles = self.hop.record_burst(SESSION_STATE_WORDS);
                self.telemetry.advance_clock(now.saturating_add(cycles));
            }
            None => slot.client = None,
        }
    }
}

/// The multi-host serving fleet (see the crate docs). Cloning is cheap;
/// clones share the router.
#[derive(Clone)]
pub struct Fleet {
    inner: Arc<FleetInner>,
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet")
            .field("hosts", &self.inner.state.lock().hosts.len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl Fleet {
    /// Builds a fleet of [`FleetConfig::hosts`] default hosts: each a
    /// single-chip functional-backend [`Device`] behind its own gateway,
    /// so execution is inline and deterministic on the polling thread.
    ///
    /// # Errors
    ///
    /// Fails on configuration or device-construction errors.
    pub fn new(cfg: FleetConfig) -> Result<Fleet> {
        cfg.validate()?;
        let mut hosts: Vec<Box<dyn GatewayHost + Send + Sync>> = Vec::with_capacity(cfg.hosts);
        for _ in 0..cfg.hosts {
            let dev = Device::with_backend(cfg.chip.clone(), BackendKind::Functional)?;
            hosts.push(Box::new(dev.serve(cfg.serve)));
        }
        Fleet::with_hosts(cfg, hosts)
    }

    /// Builds a fleet over ready-made hosts (e.g. cluster-backed
    /// gateways, or proxies to remote ones). `cfg.hosts` is ignored;
    /// the host count is `hosts.len()`.
    ///
    /// # Errors
    ///
    /// Fails on configuration errors or an empty host list.
    pub fn with_hosts(
        cfg: FleetConfig,
        hosts: Vec<Box<dyn GatewayHost + Send + Sync>>,
    ) -> Result<Fleet> {
        FleetConfig {
            hosts: hosts.len(),
            ..cfg.clone()
        }
        .validate()?;
        let telemetry = Telemetry::disabled();
        let track = telemetry.track("fleet/control");
        let metrics = telemetry.metrics();
        let inner = FleetInner {
            hop: Interconnect::new(cfg.hop),
            store: Box::new(InProcessLeaseStore::new()),
            track,
            leader_changes: metrics.counter("fleet.leader_changes"),
            failovers: metrics.counter("fleet.failovers"),
            orphaned: metrics.counter("fleet.orphaned_sessions"),
            reissued: metrics.counter("fleet.reissued"),
            heartbeats: metrics.counter("fleet.heartbeats"),
            sessions_placed: metrics.counter("fleet.sessions"),
            failover_cycles: metrics.histogram("fleet.failover_cycles"),
            state: Mutex::new(FleetState {
                hosts: hosts
                    .into_iter()
                    .map(|gateway| HostState {
                        gateway,
                        alive: true,
                        stalled_until: 0,
                        partitioned_until: 0,
                        last_heartbeat: 0,
                        next_heartbeat: 0,
                        failed_over: false,
                    })
                    .collect(),
                sessions: Vec::new(),
                leader: None,
                fault_cursor: 0,
                free_slots: Vec::new(),
            }),
            cfg,
            telemetry,
        };
        let fleet = Fleet {
            inner: Arc::new(inner),
        };
        // First control-plane step: fire cycle-0 faults and elect.
        fleet.tick_now();
        Ok(fleet)
    }

    /// Synchronizes every clock to the global maximum, runs one
    /// control-plane step (faults, heartbeats, election, failover) at
    /// that cycle, and returns it. Called automatically at placement and
    /// around every [`FleetSession::run`] attempt; drivers advancing the
    /// modeled clock by hand (open-loop load generators) call it after
    /// each jump.
    pub fn tick_now(&self) -> u64 {
        let now = self.inner.sync_clocks();
        self.inner.tick(now);
        now
    }

    /// Places a session on the least-loaded eligible host and returns
    /// its fleet-level handle.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Overloaded`] when no eligible host is left,
    /// or the last host's placement error (e.g.
    /// [`CoreError::OutOfMemory`]) when every eligible host refused.
    pub fn session(&self) -> Result<FleetSession> {
        let now = self.tick_now();
        let inner = &self.inner;
        let mut st = inner.state.lock();
        let mut order: Vec<usize> = (0..st.hosts.len())
            .filter(|&h| st.hosts[h].eligible(now))
            .collect();
        order.sort_by_key(|&h| (st.hosts[h].gateway.active_sessions(), h));
        if order.is_empty() {
            return Err(CoreError::Overloaded {
                session: usize::MAX,
                depth: 0,
            });
        }
        let mut last_err = None;
        for h in order {
            match st.hosts[h].gateway.open_session() {
                Ok(client) => {
                    inner.sessions_placed.inc();
                    let cycles = inner.hop.record_burst(SESSION_STATE_WORDS);
                    inner.telemetry.advance_clock(now.saturating_add(cycles));
                    let client = Some(Arc::new(client));
                    let slot = match st.free_slots.pop() {
                        Some(i) => {
                            // Reuse keeps the generation monotonic so a
                            // straggler of the previous tenant can never
                            // match the new one.
                            st.sessions[i].generation += 1;
                            st.sessions[i].host = h;
                            st.sessions[i].client = client;
                            i
                        }
                        None => {
                            st.sessions.push(SessionSlot {
                                host: h,
                                client,
                                generation: 0,
                            });
                            st.sessions.len() - 1
                        }
                    };
                    return Ok(FleetSession {
                        fleet: self.clone(),
                        slot,
                    });
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.expect("non-empty placement order"))
    }

    /// The current leadership lease, if one was granted.
    pub fn leader(&self) -> Option<Lease> {
        self.inner.store.current()
    }

    /// Hosts eligible (alive, not stalled, not partitioned) at the
    /// current modeled cycle.
    pub fn live_hosts(&self) -> usize {
        let now = self.inner.telemetry.now();
        let st = self.inner.state.lock();
        st.hosts.iter().filter(|h| h.eligible(now)).count()
    }

    /// Total hosts behind the router (dead ones included).
    pub fn hosts(&self) -> usize {
        self.inner.state.lock().hosts.len()
    }

    /// Control-plane counters.
    pub fn stats(&self) -> FleetStats {
        FleetStats {
            leader_changes: self.inner.leader_changes.get(),
            failovers: self.inner.failovers.get(),
            orphaned_sessions: self.inner.orphaned.get(),
            reissued: self.inner.reissued.get(),
            heartbeats: self.inner.heartbeats.get(),
            sessions: self.inner.sessions_placed.get(),
        }
    }

    /// The fleet's own telemetry handle: control-plane metrics, the
    /// `fleet/control` span track, and the fleet-level modeled clock.
    pub fn telemetry(&self) -> &Telemetry {
        &self.inner.telemetry
    }

    /// Arms or disarms span/attribution recording on the fleet *and*
    /// every host (counters record either way).
    pub fn set_telemetry_enabled(&self, enabled: bool) {
        self.inner.telemetry.set_enabled(enabled);
        let st = self.inner.state.lock();
        for h in &st.hosts {
            h.gateway.telemetry().set_enabled(enabled);
        }
    }

    /// One metrics snapshot across the whole fleet: the control-plane
    /// counters (`fleet.*`, including the hop-tier traffic as
    /// `fleet.hop_*`), plus every host's unified snapshot re-namespaced
    /// under `host<i>/…`.
    ///
    /// # Errors
    ///
    /// Returns a host's failure if one of its shard workers died
    /// unrecoverably.
    pub fn metrics_snapshot(&self) -> Result<MetricsSnapshot> {
        let mut snap = self.inner.telemetry.metrics().snapshot();
        let hop = self.inner.hop.traffic();
        snap.set_counter("fleet.hop_messages", hop.messages);
        snap.set_counter("fleet.hop_words", hop.cross_words);
        snap.set_counter("fleet.hop_cycles", hop.link_cycles);
        let st = self.inner.state.lock();
        for (i, host) in st.hosts.iter().enumerate() {
            let hs = host.gateway.metrics_snapshot()?;
            for (name, v) in &hs.counters {
                snap.set_counter(&format!("host{i}/{name}"), *v);
            }
            for (name, v) in &hs.gauges {
                snap.set_gauge(&format!("host{i}/{name}"), *v);
            }
            for (name, h) in &hs.histograms {
                snap.set_histogram(&format!("host{i}/{name}"), *h);
            }
        }
        Ok(snap)
    }

    /// The Perfetto-loadable trace of the fleet's control plane
    /// (election and failover spans on the `fleet/control` track).
    /// Empty unless telemetry was enabled.
    pub fn export_chrome_trace(&self) -> String {
        self.inner.telemetry.recorder().export_chrome_trace()
    }

    /// The session's current placement generation (test/driver hook for
    /// staleness checks).
    pub fn generation_of(&self, slot: usize) -> u64 {
        self.inner.state.lock().sessions[slot].generation
    }

    /// The session's current host index, or `None` once evicted.
    pub fn host_of(&self, slot: usize) -> Option<usize> {
        let st = self.inner.state.lock();
        st.sessions[slot]
            .client
            .as_ref()
            .map(|_| st.sessions[slot].host)
    }

    fn client_of(&self, slot: usize) -> Option<(Arc<ClusterClient>, u64)> {
        let st = self.inner.state.lock();
        let s = &st.sessions[slot];
        s.client.as_ref().map(|c| (Arc::clone(c), s.generation))
    }

    /// Re-places one session after a transient host-level failure.
    fn replace_session(&self, slot: usize) {
        let now = self.tick_now();
        let mut st = self.inner.state.lock();
        if st.sessions[slot].client.is_some() {
            self.inner.orphaned.inc();
            self.inner.replace_locked(&mut st, slot, now);
        }
    }
}

/// One client's session on the fleet: a placement that survives host
/// failures by moving, plus the re-issue loop that keeps results exact
/// across moves.
pub struct FleetSession {
    fleet: Fleet,
    slot: usize,
}

impl std::fmt::Debug for FleetSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetSession")
            .field("slot", &self.slot)
            .field("generation", &self.fleet.generation_of(self.slot))
            .finish()
    }
}

impl Drop for FleetSession {
    fn drop(&mut self) {
        let mut st = self.fleet.inner.state.lock();
        st.sessions[self.slot].client = None;
        st.sessions[self.slot].generation += 1;
        st.free_slots.push(self.slot);
    }
}

impl FleetSession {
    /// This session's slot index on the router (the `session` field of
    /// fleet-level [`CoreError::Evicted`] errors).
    pub fn id(&self) -> usize {
        self.slot
    }

    /// The fleet this session is placed on.
    pub fn fleet(&self) -> &Fleet {
        &self.fleet
    }

    /// The session's current placement generation.
    pub fn generation(&self) -> u64 {
        self.fleet.generation_of(self.slot)
    }

    /// Forces the session onto the least-loaded eligible host, bumping
    /// its generation. External drivers call this after a transient
    /// placement failure (the path [`run`](FleetSession::run) takes
    /// internally); in-flight work submitted against the old placement
    /// becomes stale.
    pub fn migrate(&self) {
        self.fleet.replace_session(self.slot);
    }

    /// The current host client, or `None` once the session was evicted
    /// (no live host left to re-place it on). Load drivers use this to
    /// build per-placement state; anything submitted through it is
    /// subject to the same staleness rules as [`run`](FleetSession::run).
    pub fn client(&self) -> Option<Arc<ClusterClient>> {
        self.fleet.client_of(self.slot).map(|(c, _)| c)
    }

    /// Runs one request against the session's current placement,
    /// re-issuing it on failover until it completes against a placement
    /// that is still current.
    ///
    /// `attempt` must be **self-contained and idempotent**: it receives
    /// the placement's [`ClusterClient`] and rebuilds whatever state it
    /// needs (uploads included), because a re-issue lands on a fresh
    /// session of a different host. A result that arrives from a
    /// placement the fleet has since failed over is *discarded* — even a
    /// successful one, since its session died mid-flight — and the
    /// request re-issued; `fleet.reissued` counts each discard.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Evicted`] when no live host is left (or the
    /// re-issue budget is exhausted), and otherwise surfaces the
    /// attempt's own error classes unchanged — a typed error, never a
    /// hang.
    pub async fn run<T, F>(&self, mut attempt: F) -> Result<T>
    where
        F: for<'a> FnMut(&'a ClusterClient) -> Pin<Box<dyn Future<Output = Result<T>> + 'a>>,
    {
        let mut reissues = 0u32;
        loop {
            self.fleet.tick_now();
            let Some((client, generation)) = self.fleet.client_of(self.slot) else {
                return Err(CoreError::Evicted { session: self.slot });
            };
            let result = attempt(&client).await;
            self.fleet.tick_now();
            if self.fleet.generation_of(self.slot) != generation {
                // The placement died (or moved) while the attempt was in
                // flight: whatever it produced is from a dead session.
                self.fleet.inner.reissued.inc();
                reissues += 1;
                if reissues > MAX_REISSUES {
                    return Err(CoreError::Evicted { session: self.slot });
                }
                continue;
            }
            match result {
                Err(e) if e.class() == ErrorClass::Transient && reissues < MAX_REISSUES => {
                    // The host's gateway exhausted its own retry budget:
                    // treat the placement as bad and move the session.
                    self.fleet.inner.reissued.inc();
                    reissues += 1;
                    self.fleet.replace_session(self.slot);
                    continue;
                }
                other => return other,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use futures::executor::block_on;

    fn tiny(hosts: usize) -> FleetConfig {
        FleetConfig {
            hosts,
            chip: PimConfig::small().with_crossbars(4),
            ..FleetConfig::default()
        }
    }

    async fn request(client: &ClusterClient, n: usize, seed: f32) -> Result<f32> {
        let data: Vec<f32> = (0..n).map(|i| seed + i as f32).collect();
        let x = client.upload_f32(&data).await?;
        let y = client.full_f32(n, 2.0).await?;
        let xy = client.mul(&x, &y).await?;
        let z = client.add(&xy, &x).await?;
        client.sum_f32(&z).await
    }

    fn expect(n: usize, seed: f32) -> f32 {
        (0..n).map(|i| (seed + i as f32) * 3.0).sum()
    }

    #[test]
    fn construction_elects_host_zero() {
        let fleet = Fleet::new(tiny(3)).unwrap();
        let lease = fleet.leader().expect("initial election");
        assert_eq!(lease.holder, 0, "lowest eligible index wins a free lease");
        assert_eq!(lease.epoch, 0);
        assert_eq!(fleet.stats().leader_changes, 1);
        assert_eq!(fleet.live_hosts(), 3);
    }

    #[test]
    fn validate_rejects_degenerate_timing() {
        assert!(Fleet::new(FleetConfig {
            lease_ttl_cycles: 100,
            heartbeat_cycles: 100,
            ..tiny(2)
        })
        .is_err());
        assert!(Fleet::new(FleetConfig {
            hosts: 0,
            ..FleetConfig::default()
        })
        .is_err());
    }

    #[test]
    fn sessions_balance_across_hosts() {
        let fleet = Fleet::new(tiny(2)).unwrap();
        let a = fleet.session().unwrap();
        let b = fleet.session().unwrap();
        assert_ne!(
            fleet.host_of(a.id()),
            fleet.host_of(b.id()),
            "least-loaded placement must alternate on an idle fleet"
        );
        assert_eq!(fleet.stats().sessions, 2);
    }

    #[test]
    fn run_executes_and_matches_direct_execution() {
        let fleet = Fleet::new(tiny(2)).unwrap();
        let session = fleet.session().unwrap();
        let got =
            block_on(session.run(|client| Box::pin(async move { request(client, 16, 1.5).await })))
                .unwrap();
        assert_eq!(got, expect(16, 1.5));
        assert_eq!(fleet.stats().reissued, 0);
    }

    #[test]
    fn heartbeat_renewal_keeps_the_epoch() {
        let fleet = Fleet::new(tiny(2)).unwrap();
        for step in 1..10 {
            fleet.telemetry().advance_clock(step * 10_000);
            fleet.tick_now();
        }
        let lease = fleet.leader().unwrap();
        assert_eq!((lease.holder, lease.epoch), (0, 0));
        assert_eq!(fleet.stats().leader_changes, 1);
        assert!(fleet.stats().heartbeats >= 10);
    }

    #[test]
    fn leader_crash_reelects_and_fails_over() {
        let cfg = FleetConfig {
            fault: HostFaultPlan::none().crash_at(0, 40_000),
            ..tiny(2)
        };
        let fleet = Fleet::new(cfg).unwrap();
        let session = fleet.session().unwrap();
        // Sessions alternate; slot 0 landed on host 0 (the leader).
        assert_eq!(fleet.host_of(session.id()), Some(0));
        let gen0 = session.generation();

        // Walk the modeled clock past crash + ttl detection.
        for step in 1..12 {
            fleet.telemetry().advance_clock(step * 10_000);
            fleet.tick_now();
        }
        let stats = fleet.stats();
        assert_eq!(stats.leader_changes, 2, "crash must force a re-election");
        assert_eq!(fleet.leader().unwrap().holder, 1);
        assert_eq!(stats.failovers, 1, "one outage, one failover");
        assert_eq!(stats.orphaned_sessions, 1);
        assert_eq!(fleet.host_of(session.id()), Some(1), "session re-placed");
        assert!(session.generation() > gen0);
        assert_eq!(fleet.live_hosts(), 1);

        // The re-placed session still serves, bit-identically.
        let got =
            block_on(session.run(|client| Box::pin(async move { request(client, 8, 2.0).await })))
                .unwrap();
        assert_eq!(got, expect(8, 2.0));
    }

    #[test]
    fn losing_every_host_yields_typed_eviction() {
        let cfg = FleetConfig {
            fault: HostFaultPlan::none()
                .crash_at(0, 10_000)
                .crash_at(1, 10_000),
            ..tiny(2)
        };
        let fleet = Fleet::new(cfg).unwrap();
        let session = fleet.session().unwrap();
        fleet.telemetry().advance_clock(100_000);
        fleet.tick_now();
        let err =
            block_on(session.run(|client| Box::pin(async move { request(client, 8, 1.0).await })))
                .unwrap_err();
        assert!(
            matches!(err, CoreError::Evicted { session: s } if s == session.id()),
            "{err:?}"
        );
        // New placements are refused with backpressure semantics.
        assert!(matches!(fleet.session(), Err(CoreError::Overloaded { .. })));
    }

    #[test]
    fn stall_longer_than_ttl_fails_over_then_host_rejoins() {
        let cfg = FleetConfig {
            fault: HostFaultPlan::none().stall_at(1, 5_000, 60_000),
            ..tiny(2)
        };
        let fleet = Fleet::new(cfg).unwrap();
        let a = fleet.session().unwrap(); // host 0
        let b = fleet.session().unwrap(); // host 1
        assert_eq!(fleet.host_of(b.id()), Some(1));
        // Tick inside the lapse window: host 1 stalled at 5k, ttl 30k.
        fleet.telemetry().advance_clock(40_000);
        fleet.tick_now();
        assert_eq!(fleet.stats().failovers, 1);
        assert_eq!(fleet.host_of(b.id()), Some(0), "moved to the survivor");
        // After the stall ends the host heartbeats and rejoins; no
        // second failover fires for the same outage.
        fleet.telemetry().advance_clock(70_000);
        fleet.tick_now();
        assert_eq!(fleet.stats().failovers, 1);
        assert_eq!(fleet.live_hosts(), 2);
        drop(a);
        drop(b);
    }

    #[test]
    fn metrics_snapshot_namespaces_hosts() {
        let fleet = Fleet::new(tiny(2)).unwrap();
        let session = fleet.session().unwrap();
        block_on(session.run(|client| Box::pin(async move { request(client, 8, 0.5).await })))
            .unwrap();
        let snap = fleet.metrics_snapshot().unwrap();
        assert!(snap.counters.contains_key("fleet.heartbeats"));
        assert!(snap.counters.contains_key("fleet.hop_messages"));
        assert!(snap.counters.contains_key("host0/serve.sessions"));
        assert!(snap.counters.contains_key("host1/serve.sessions"));
        assert!(snap.counters["fleet.hop_messages"] >= 1);
    }

    #[test]
    fn control_plane_spans_export_to_perfetto() {
        let cfg = FleetConfig {
            fault: HostFaultPlan::none().crash_at(0, 20_000),
            ..tiny(2)
        };
        let fleet = Fleet::new(cfg).unwrap();
        fleet.set_telemetry_enabled(true);
        let _s = fleet.session().unwrap();
        fleet.telemetry().advance_clock(80_000);
        fleet.tick_now();
        let trace = fleet.export_chrome_trace();
        assert!(trace.contains("fleet/control"), "{trace}");
        assert!(trace.contains("failover"), "{trace}");
        assert!(trace.contains("election"), "{trace}");
    }

    #[test]
    fn session_slot_reuse_bumps_generation() {
        let fleet = Fleet::new(tiny(2)).unwrap();
        let a = fleet.session().unwrap();
        let slot = a.id();
        let gen_a = a.generation();
        drop(a);
        let b = fleet.session().unwrap();
        assert_eq!(b.id(), slot, "freed slot is reused");
        assert!(
            b.generation() > gen_a,
            "reused slot must not repeat a generation"
        );
    }
}
