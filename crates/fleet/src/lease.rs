//! Lease-based leader election over a shared lease store.
//!
//! The fleet's coordination primitive is deliberately tiny: one lease,
//! held by at most one host at a time, renewed by heartbeats on the
//! modeled clock. A host that stops heartbeating (crash, stall,
//! partition) lets the lease expire; the next eligible host to heartbeat
//! acquires it under a bumped epoch. There is no consensus round —
//! correctness rests on the store being the single arbiter, which the
//! in-process implementation trivially is and which an external
//! coordination service would be behind the same trait.

use parking_lot::Mutex;

/// One leadership term: who holds the lease, until when, and under which
/// epoch. The epoch increments exactly when the holder changes, so
/// observers detect leadership transitions without comparing clocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lease {
    /// Host index currently holding the lease.
    pub holder: usize,
    /// Modeled cycle at which the lease lapses unless renewed.
    pub expires_at: u64,
    /// Leadership term counter; bumps on every holder change.
    pub epoch: u64,
}

/// The shared arbiter of the fleet's single leadership lease.
///
/// Implementations must be linearizable per call: two racing
/// `try_acquire` calls must agree on one winner. The in-process
/// [`InProcessLeaseStore`] satisfies this with a mutex; an RPC-backed
/// store would satisfy it at its service boundary — the elector does not
/// care which, so a network hop can slot in without touching the fleet.
pub trait LeaseStore: Send + Sync {
    /// One heartbeat from `candidate` at modeled cycle `now`: renews the
    /// lease if `candidate` already holds it, acquires it if it is free
    /// or expired, and otherwise leaves it alone. Returns the lease as
    /// of after the call, whoever holds it.
    fn try_acquire(&self, candidate: usize, now: u64, ttl: u64) -> Lease;

    /// The current lease, if one was ever granted (it may be expired).
    fn current(&self) -> Option<Lease>;
}

/// The in-process lease store: a mutex-guarded slot. The fleet's default
/// arbiter when every host lives in one process.
#[derive(Debug, Default)]
pub struct InProcessLeaseStore {
    state: Mutex<Option<Lease>>,
}

impl InProcessLeaseStore {
    /// An empty store (no lease granted yet).
    pub fn new() -> Self {
        InProcessLeaseStore::default()
    }
}

impl LeaseStore for InProcessLeaseStore {
    fn try_acquire(&self, candidate: usize, now: u64, ttl: u64) -> Lease {
        let mut state = self.state.lock();
        let next = match *state {
            // Renewal: the holder extends its own lease, same epoch.
            Some(l) if l.holder == candidate => Lease {
                expires_at: now.saturating_add(ttl),
                ..l
            },
            // Held by someone else and still valid: no change.
            Some(l) if now <= l.expires_at => l,
            // Expired: the candidate takes over under a new epoch.
            Some(l) => Lease {
                holder: candidate,
                expires_at: now.saturating_add(ttl),
                epoch: l.epoch + 1,
            },
            // Never granted: first election.
            None => Lease {
                holder: candidate,
                expires_at: now.saturating_add(ttl),
                epoch: 0,
            },
        };
        *state = Some(next);
        next
    }

    fn current(&self) -> Option<Lease> {
        *self.state.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_heartbeat_elects() {
        let store = InProcessLeaseStore::new();
        assert_eq!(store.current(), None);
        let l = store.try_acquire(1, 100, 50);
        assert_eq!(
            l,
            Lease {
                holder: 1,
                expires_at: 150,
                epoch: 0
            }
        );
        assert_eq!(store.current(), Some(l));
    }

    #[test]
    fn holder_renews_without_epoch_bump() {
        let store = InProcessLeaseStore::new();
        store.try_acquire(0, 0, 50);
        let l = store.try_acquire(0, 40, 50);
        assert_eq!(l.holder, 0);
        assert_eq!(l.expires_at, 90);
        assert_eq!(l.epoch, 0);
    }

    #[test]
    fn challenger_is_refused_while_lease_valid() {
        let store = InProcessLeaseStore::new();
        store.try_acquire(0, 0, 50);
        let l = store.try_acquire(1, 30, 50);
        assert_eq!(l.holder, 0, "valid lease must not change hands");
        assert_eq!(l.expires_at, 50, "refused heartbeat must not renew");
    }

    #[test]
    fn expiry_hands_over_under_new_epoch() {
        let store = InProcessLeaseStore::new();
        store.try_acquire(0, 0, 50);
        let l = store.try_acquire(1, 51, 50);
        assert_eq!(
            l,
            Lease {
                holder: 1,
                expires_at: 101,
                epoch: 1
            }
        );
        // The boundary cycle itself is still valid (`now <= expires_at`).
        let store = InProcessLeaseStore::new();
        store.try_acquire(0, 0, 50);
        assert_eq!(store.try_acquire(1, 50, 50).holder, 0);
    }
}
