//! Seeded arrival schedules: Poisson, burst, and ramp profiles generating
//! per-class request arrival times on the modeled clock.
//!
//! Schedules are materialized up front (one `Vec<Arrival>` for the whole
//! horizon) so the driving loop never consults a PRNG mid-run: the same
//! seed always produces the same schedule, independent of how execution
//! interleaves with injection. Rates are expressed per **million modeled
//! cycles** — under the export convention of 1 cycle = 1 µs, that reads
//! directly as requests per modeled second.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One scheduled request arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Modeled cycle the request must be injected at.
    pub cycle: u64,
    /// Index of the [`ClassSpec`](crate::ClassSpec) this arrival belongs to.
    pub class: usize,
    /// Per-class sequence number, in schedule order.
    pub seq: u64,
}

/// How a traffic class's arrivals are distributed over the horizon.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProfile {
    /// Poisson process: exponential inter-arrival times at `rate` arrivals
    /// per million modeled cycles.
    Poisson {
        /// Arrivals per million modeled cycles.
        rate: f64,
    },
    /// Poisson background at `base` plus `burst_size` simultaneous
    /// arrivals every `period_cycles` — the queue-depth spike shape.
    Burst {
        /// Background arrivals per million modeled cycles.
        base: f64,
        /// Arrivals injected together at each burst instant.
        burst_size: u32,
        /// Modeled cycles between bursts (first burst at one period).
        period_cycles: u64,
    },
    /// Inhomogeneous Poisson whose rate ramps linearly from `start` to
    /// `end` (per million cycles) across the horizon — walks the offered
    /// load through the knee within a single run.
    Ramp {
        /// Rate at cycle 0, per million modeled cycles.
        start: f64,
        /// Rate at the horizon, per million modeled cycles.
        end: f64,
    },
}

impl ArrivalProfile {
    /// Mean arrivals per million cycles over the horizon (for offered-load
    /// accounting).
    pub fn mean_rate(&self, horizon_cycles: u64) -> f64 {
        match *self {
            ArrivalProfile::Poisson { rate } => rate.max(0.0),
            ArrivalProfile::Burst {
                base,
                burst_size,
                period_cycles,
            } => {
                let bursts = horizon_cycles.checked_div(period_cycles).unwrap_or(0);
                base.max(0.0)
                    + (bursts * u64::from(burst_size)) as f64 * 1e6 / horizon_cycles.max(1) as f64
            }
            ArrivalProfile::Ramp { start, end } => (start.max(0.0) + end.max(0.0)) / 2.0,
        }
    }

    /// Scales every rate in the profile by `factor` (sweep parameter).
    pub fn scaled(&self, factor: f64) -> ArrivalProfile {
        match *self {
            ArrivalProfile::Poisson { rate } => ArrivalProfile::Poisson {
                rate: rate * factor,
            },
            ArrivalProfile::Burst {
                base,
                burst_size,
                period_cycles,
            } => ArrivalProfile::Burst {
                base: base * factor,
                burst_size,
                period_cycles: ((period_cycles as f64 / factor.max(1e-9)) as u64).max(1),
            },
            ArrivalProfile::Ramp { start, end } => ArrivalProfile::Ramp {
                start: start * factor,
                end: end * factor,
            },
        }
    }

    /// This class's arrival cycles over `[0, horizon_cycles)`, generated
    /// from `seed` alone. Sorted ascending; `class`/`seq` stamped by the
    /// caller.
    fn cycles(&self, seed: u64, horizon_cycles: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        // Inverse-CDF exponential sample; the PRNG's unit floats live in
        // [0, 1), so 1-u never hits 0 exactly, but clamp anyway.
        fn exp_sample(rng: &mut StdRng, lambda_per_cycle: f64) -> f64 {
            let u: f64 = rng.gen_range(0.0..1.0);
            -(1.0 - u).max(1e-300).ln() / lambda_per_cycle
        }
        let horizon = horizon_cycles as f64;
        let mut out = Vec::new();
        match *self {
            ArrivalProfile::Poisson { rate } => {
                let lambda = rate / 1e6;
                if lambda > 0.0 {
                    let mut t = 0.0;
                    loop {
                        t += exp_sample(&mut rng, lambda);
                        if t >= horizon {
                            break;
                        }
                        out.push(t as u64);
                    }
                }
            }
            ArrivalProfile::Burst {
                base,
                burst_size,
                period_cycles,
            } => {
                let lambda = base / 1e6;
                if lambda > 0.0 {
                    let mut t = 0.0;
                    loop {
                        t += exp_sample(&mut rng, lambda);
                        if t >= horizon {
                            break;
                        }
                        out.push(t as u64);
                    }
                }
                if period_cycles > 0 {
                    let mut at = period_cycles;
                    while at < horizon_cycles {
                        out.extend(std::iter::repeat_n(at, burst_size as usize));
                        at += period_cycles;
                    }
                }
                out.sort_unstable();
            }
            ArrivalProfile::Ramp { start, end } => {
                // Thinning: generate at the peak rate, accept with
                // probability rate(t)/peak. One extra PRNG draw per
                // candidate, still schedule-time only.
                let peak = start.max(end).max(0.0) / 1e6;
                if peak > 0.0 {
                    let mut t = 0.0;
                    loop {
                        t += exp_sample(&mut rng, peak);
                        if t >= horizon {
                            break;
                        }
                        let rate_t = (start + (end - start) * t / horizon).max(0.0) / 1e6;
                        let u: f64 = rng.gen_range(0.0..1.0);
                        if u < rate_t / peak {
                            out.push(t as u64);
                        }
                    }
                }
            }
        }
        out
    }
}

/// SplitMix64 finalizer — decorrelates per-class seeds derived from one
/// run seed.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The merged, deterministic schedule of every class over the horizon:
/// per-class streams generated from decorrelated sub-seeds, merged and
/// ordered by `(cycle, class, seq)` so ties break identically on every
/// run.
pub fn build_schedule(profiles: &[ArrivalProfile], seed: u64, horizon_cycles: u64) -> Vec<Arrival> {
    let mut all: Vec<Arrival> = Vec::new();
    for (class, profile) in profiles.iter().enumerate() {
        let cycles = profile.cycles(mix(seed ^ mix(class as u64)), horizon_cycles);
        all.extend(cycles.into_iter().enumerate().map(|(seq, cycle)| Arrival {
            cycle,
            class,
            seq: seq as u64,
        }));
    }
    all.sort_by_key(|a| (a.cycle, a.class, a.seq));
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_bit_deterministic_from_seed() {
        let profiles = [
            ArrivalProfile::Poisson { rate: 500.0 },
            ArrivalProfile::Burst {
                base: 100.0,
                burst_size: 4,
                period_cycles: 100_000,
            },
            ArrivalProfile::Ramp {
                start: 100.0,
                end: 1_000.0,
            },
        ];
        let a = build_schedule(&profiles, 42, 1_000_000);
        let b = build_schedule(&profiles, 42, 1_000_000);
        assert_eq!(a, b);
        let c = build_schedule(&profiles, 43, 1_000_000);
        assert_ne!(a, c, "different seeds must differ");
        // Ordered, in-horizon, and every class present.
        assert!(a.windows(2).all(|w| w[0].cycle <= w[1].cycle));
        assert!(a.iter().all(|x| x.cycle < 1_000_000));
        for class in 0..profiles.len() {
            assert!(a.iter().any(|x| x.class == class), "class {class} empty");
        }
    }

    #[test]
    fn poisson_rate_is_roughly_honored() {
        // 500 arrivals/Mcycle over 4 Mcycles => ~2000 expected.
        let n = build_schedule(&[ArrivalProfile::Poisson { rate: 500.0 }], 7, 4_000_000).len();
        assert!((1500..2500).contains(&n), "{n} arrivals");
    }

    #[test]
    fn burst_profile_injects_simultaneous_arrivals() {
        let sched = build_schedule(
            &[ArrivalProfile::Burst {
                base: 0.0,
                burst_size: 8,
                period_cycles: 1_000,
            }],
            1,
            10_000,
        );
        // 9 bursts (at 1000..=9000), 8 arrivals each, same cycle.
        assert_eq!(sched.len(), 9 * 8);
        assert!(sched
            .chunks(8)
            .all(|c| c.iter().all(|a| a.cycle == c[0].cycle)));
    }

    #[test]
    fn ramp_profile_back_loads_arrivals() {
        let sched = build_schedule(
            &[ArrivalProfile::Ramp {
                start: 0.0,
                end: 2_000.0,
            }],
            3,
            1_000_000,
        );
        let early = sched.iter().filter(|a| a.cycle < 500_000).count();
        let late = sched.len() - early;
        assert!(
            late > early * 2,
            "ramp should back-load: {early} early vs {late} late"
        );
    }

    #[test]
    fn scaled_profiles_scale_mean_rate() {
        let p = ArrivalProfile::Poisson { rate: 100.0 };
        assert!((p.scaled(3.0).mean_rate(1_000_000) - 300.0).abs() < 1e-9);
        let b = ArrivalProfile::Burst {
            base: 100.0,
            burst_size: 2,
            period_cycles: 10_000,
        };
        // Scaling a burst profile shortens the period instead of touching
        // the burst size.
        let b2 = b.scaled(2.0);
        assert!(b2.mean_rate(1_000_000) > 1.8 * b.mean_rate(1_000_000));
    }
}
