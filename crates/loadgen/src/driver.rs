//! The open-loop driver: injects requests at their scheduled modeled
//! cycles regardless of completion, polls the in-flight set from one host
//! thread, and closes windowed samples as the modeled clock crosses
//! window boundaries.
//!
//! **Open loop** means arrival times come from the schedule, not from
//! completions: when the gateway falls behind, requests keep arriving and
//! queue — which is exactly the overload behaviour (diverging queue-wait
//! tails) a closed-loop harness structurally cannot produce, because it
//! never offers more than `in-flight × 1/latency`.
//!
//! **Determinism**: on a single-chip device the whole run executes inline
//! on this thread — futures resolve during their poll, the modeled clock
//! advances only through execution and the driver's idle jumps, and the
//! schedule is materialized from the seed up front. The same seed
//! therefore produces bit-identical reports. Multi-chip clusters execute
//! on worker threads; their reports are statistically stable but not
//! bit-reproducible.

use crate::profile::{build_schedule, ArrivalProfile};
use crate::shape::{RequestShape, Template};
use pim_serve::{ClusterClient, ExecFuture, Gateway};
use pim_telemetry::{CounterHandle, HistogramSnapshot, Telemetry, WindowSample, WindowSampler};
use pypim_core::{CoreError, Device, Result};
use std::future::Future;
use std::pin::Pin;
use std::sync::{Condvar, Mutex};
use std::task::{Context, Poll, Wake, Waker};
use std::time::Duration;

/// Modeled cycles per modeled second in every `*_rps` figure — the trace
/// export's 1 cycle = 1 µs convention, so a profile rate of `n` reads as
/// `n` requests per modeled second.
pub const MODELED_CYCLES_PER_SEC: f64 = 1e6;

/// One traffic class: a request shape, its arrival process, and its
/// tensor size.
#[derive(Debug, Clone)]
pub struct ClassSpec {
    /// Class name in reports and tables.
    pub name: String,
    /// Request shape this class issues.
    pub shape: RequestShape,
    /// Arrival process over the horizon.
    pub profile: ArrivalProfile,
    /// Elements per request tensor.
    pub elems: usize,
}

impl ClassSpec {
    /// Convenience constructor.
    pub fn new(
        name: impl Into<String>,
        shape: RequestShape,
        profile: ArrivalProfile,
        elems: usize,
    ) -> Self {
        ClassSpec {
            name: name.into(),
            shape,
            profile,
            elems,
        }
    }
}

/// Full specification of one open-loop run.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Seed for every arrival schedule (same seed → same schedule).
    pub seed: u64,
    /// Modeled cycles of scheduled arrivals.
    pub horizon_cycles: u64,
    /// Window width for the time series.
    pub window_cycles: u64,
    /// Traffic classes (session pools and templates are per class).
    pub classes: Vec<ClassSpec>,
    /// Gateway sessions per class; arrivals round-robin across them by
    /// sequence number.
    pub sessions_per_class: usize,
    /// Latency SLO target in modeled cycles; completions above it count
    /// into the `loadgen.over_target` counter. `0` disables.
    pub latency_target_cycles: u64,
    /// Keep polling after the last arrival until every request resolves
    /// (`true`), or abandon outstanding work at the horizon (`false`;
    /// collapse sweeps use this so a saturated point terminates).
    pub drain: bool,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            seed: 1,
            horizon_cycles: 1_000_000,
            window_cycles: 100_000,
            classes: Vec::new(),
            sessions_per_class: 2,
            latency_target_cycles: 0,
            drain: true,
        }
    }
}

impl LoadgenConfig {
    /// Offered load over the horizon, requests per modeled second.
    pub fn offered_rps(&self) -> f64 {
        self.classes
            .iter()
            .map(|c| c.profile.mean_rate(self.horizon_cycles))
            .sum()
    }

    /// Returns the config with every class's arrival profile scaled by
    /// `factor` (the sweep knob).
    pub fn scaled(&self, factor: f64) -> LoadgenConfig {
        let mut out = self.clone();
        for c in &mut out.classes {
            c.profile = c.profile.scaled(factor);
        }
        out
    }
}

/// What one open-loop run produced: totals, final latency summaries, and
/// the windowed time series.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Seed the schedule was generated from.
    pub seed: u64,
    /// Scheduled horizon in modeled cycles.
    pub horizon_cycles: u64,
    /// Window width of [`windows`](RunReport::windows).
    pub window_cycles: u64,
    /// Requests injected (== scheduled arrivals).
    pub injected: u64,
    /// Requests that resolved successfully (including after the horizon,
    /// during drain).
    pub completed: u64,
    /// Successful completions whose completion cycle was within the
    /// horizon — the numerator of `achieved_rps`.
    pub completed_in_horizon: u64,
    /// Requests that resolved with an error (admission rejections under a
    /// bounded queue, deadline misses, shard faults).
    pub failed: u64,
    /// Successful completions above
    /// [`latency_target_cycles`](LoadgenConfig::latency_target_cycles).
    pub over_target: u64,
    /// Modeled cycle the run ended at.
    pub end_cycle: u64,
    /// Offered load: injected per modeled second of horizon.
    pub offered_rps: f64,
    /// Achieved goodput: in-horizon completions per modeled second.
    pub achieved_rps: f64,
    /// End-to-end latency (completion − *scheduled* arrival, so queueing
    /// incurred before admission is included), whole run.
    pub latency: HistogramSnapshot,
    /// Gateway queue wait (admission → submission), whole run.
    pub queue_wait: HistogramSnapshot,
    /// The windowed time series (counters are per-window deltas).
    pub windows: Vec<WindowSample>,
}

impl RunReport {
    /// Fraction of offered load achieved within the horizon.
    pub fn goodput_ratio(&self) -> f64 {
        if self.injected == 0 {
            return 1.0;
        }
        self.completed_in_horizon as f64 / self.injected as f64
    }
}

/// The condvar parker doubling as the polling loop's waker: shard workers
/// wake it through the futures' registered wakers; the driver parks with
/// a short timeout so a missed wake only costs the timeout.
pub(crate) struct Parker {
    flag: Mutex<bool>,
    cv: Condvar,
}

impl Parker {
    pub(crate) fn new() -> Self {
        Parker {
            flag: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    pub(crate) fn park_timeout(&self, dur: Duration) {
        let mut notified = self.flag.lock().unwrap_or_else(|e| e.into_inner());
        if !*notified {
            let (guard, _) = self
                .cv
                .wait_timeout(notified, dur)
                .unwrap_or_else(|e| e.into_inner());
            notified = guard;
        }
        *notified = false;
    }
}

impl Wake for Parker {
    fn wake(self: std::sync::Arc<Self>) {
        let mut notified = self.flag.lock().unwrap_or_else(|e| e.into_inner());
        *notified = true;
        self.cv.notify_one();
    }
}

struct Pending {
    fut: ExecFuture,
    scheduled: u64,
}

/// Re-disarms telemetry on drop when the harness armed it (execution only
/// charges the modeled clock while telemetry records, so an open-loop run
/// needs it on; a caller that had it off gets it back off even on error
/// paths).
struct EnabledGuard<'a> {
    telemetry: &'a Telemetry,
    prev: bool,
}

impl Drop for EnabledGuard<'_> {
    fn drop(&mut self) {
        self.telemetry.set_enabled(self.prev);
    }
}

/// Per-window observability flushed at each window close: gauge counter
/// tracks plus per-shard utilization derived from profiler cycle deltas.
struct TrackSet {
    telemetry: Telemetry,
    queue_depth: CounterHandle,
    in_flight: CounterHandle,
    shard_util: Vec<CounterHandle>,
    prev_shard_cycles: Vec<u64>,
}

impl TrackSet {
    fn new(telemetry: &Telemetry) -> Self {
        TrackSet {
            telemetry: telemetry.clone(),
            queue_depth: telemetry.counter_track("serve/queue_depth"),
            in_flight: telemetry.counter_track("serve/in_flight"),
            shard_util: Vec::new(),
            prev_shard_cycles: Vec::new(),
        }
    }

    fn flush(&mut self, dev: &Device, at: u64, window_width: u64) -> Result<()> {
        if !self.telemetry.is_enabled() {
            return Ok(());
        }
        let metrics = self.telemetry.metrics();
        self.queue_depth
            .record(at, metrics.gauge("serve.queue_depth").get() as f64);
        self.in_flight
            .record(at, metrics.gauge("serve.in_flight").get() as f64);
        if let Some(stats) = dev.cluster_stats()? {
            if self.shard_util.is_empty() {
                for s in &stats.shards {
                    self.shard_util.push(
                        self.telemetry
                            .counter_track(&format!("shard{}/util", s.shard)),
                    );
                    self.prev_shard_cycles.push(0);
                }
            }
            for (i, s) in stats.shards.iter().enumerate() {
                let delta = s.profiler.cycles.saturating_sub(self.prev_shard_cycles[i]);
                self.prev_shard_cycles[i] = s.profiler.cycles;
                let util = 100.0 * delta as f64 / window_width.max(1) as f64;
                self.shard_util[i].record(at, util);
            }
        }
        Ok(())
    }
}

/// Runs one open-loop load against `gateway` (see the module docs for the
/// loop's semantics and determinism guarantees).
///
/// Overload studies should build the gateway with
/// `max_queue_depth: 0` (unbounded session queues): with the default
/// bounded queues, offered load beyond the bound fast-fails with
/// `Overloaded` instead of queueing, and the run measures admission-loss
/// rather than queueing collapse.
///
/// # Errors
///
/// Fails on an empty/zero config, on session or template setup errors
/// (e.g. warp space too small for `classes × sessions_per_class`
/// windows), or if a stats snapshot fails mid-run. Individual request
/// failures do **not** fail the run — they count into
/// [`RunReport::failed`].
pub fn run(gateway: &Gateway, cfg: &LoadgenConfig) -> Result<RunReport> {
    let invalid = |reason: &str| CoreError::Protocol {
        reason: format!("loadgen config: {reason}"),
    };
    if cfg.classes.is_empty() {
        return Err(invalid("no traffic classes"));
    }
    if cfg.sessions_per_class == 0 {
        return Err(invalid("sessions_per_class must be at least 1"));
    }
    if cfg.horizon_cycles == 0 || cfg.window_cycles == 0 {
        return Err(invalid("horizon_cycles and window_cycles must be nonzero"));
    }

    // Session pools and replay templates, one pool per class. Building
    // templates allocates every tensor the run will touch; injection
    // itself only clones instruction vectors.
    let mut pools: Vec<Vec<(ClusterClient, Template)>> = Vec::with_capacity(cfg.classes.len());
    for class in &cfg.classes {
        let mut pool = Vec::with_capacity(cfg.sessions_per_class);
        for _ in 0..cfg.sessions_per_class {
            let client = gateway.session()?;
            let template = Template::build(&client, class.shape, class.elems)?;
            pool.push((client, template));
        }
        pools.push(pool);
    }
    let dev = pools[0][0].0.device().clone();
    let telemetry = dev.telemetry().clone();
    let _armed = EnabledGuard {
        telemetry: &telemetry,
        prev: telemetry.is_enabled(),
    };
    telemetry.set_enabled(true);

    let profiles: Vec<ArrivalProfile> = cfg.classes.iter().map(|c| c.profile).collect();
    let schedule = build_schedule(&profiles, cfg.seed, cfg.horizon_cycles);

    let metrics = telemetry.metrics();
    let injected_c = metrics.counter("loadgen.injected");
    let completed_c = metrics.counter("loadgen.completed");
    let failed_c = metrics.counter("loadgen.failed");
    let over_target_c = metrics.counter("loadgen.over_target");
    let latency_h = metrics.histogram("loadgen.latency_cycles");
    let queue_wait_h = metrics.histogram("serve.queue_wait_cycles");
    let base_latency = latency_h.state();
    let base_queue_wait = queue_wait_h.state();

    let mut sampler = WindowSampler::new(cfg.window_cycles);
    sampler.watch_histogram("loadgen.latency_cycles", &latency_h);
    sampler.watch_histogram("serve.queue_wait_cycles", &queue_wait_h);
    let mut tracks = TrackSet::new(&telemetry);

    let parker = std::sync::Arc::new(Parker::new());
    let waker = Waker::from(parker.clone());
    let mut cx = Context::from_waker(&waker);

    let start = telemetry.now();
    let horizon_end = start + cfg.horizon_cycles;
    let mut pending: Vec<Pending> = Vec::new();
    let mut next = 0usize;
    let (mut injected, mut completed, mut completed_in_horizon, mut failed, mut over_target) =
        (0u64, 0u64, 0u64, 0u64, 0u64);

    loop {
        let now = telemetry.now();

        // Inject every arrival due by the current modeled time. Late
        // injection (now past the scheduled cycle because execution
        // advanced the clock in a jump) is correct open-loop accounting:
        // latency is measured from the *scheduled* cycle, so time spent
        // waiting for the driver to reach the arrival is queueing delay.
        while next < schedule.len() && start + schedule[next].cycle <= now {
            let a = schedule[next];
            next += 1;
            let (client, template) = &pools[a.class][a.seq as usize % cfg.sessions_per_class];
            let fut = client.submit(template.instrs.clone());
            injected += 1;
            injected_c.inc();
            pending.push(Pending {
                fut,
                scheduled: start + a.cycle,
            });
        }

        // Close windows as the clock crosses boundaries.
        if sampler.ready(now) {
            let width = sampler.window_cycles();
            sampler.sample(now, dev.metrics_snapshot()?);
            tracks.flush(&dev, now, width)?;
        }

        if pending.is_empty() {
            match schedule.get(next) {
                // Idle: jump the clock to the next arrival, but stop at
                // window boundaries on the way so the series keeps its
                // grid resolution across idle gaps.
                Some(a) => {
                    let boundary = (now / cfg.window_cycles + 1) * cfg.window_cycles;
                    telemetry.advance_clock((start + a.cycle).min(boundary));
                    continue;
                }
                None => break,
            }
        }

        if !cfg.drain && next >= schedule.len() && now >= horizon_end {
            break; // Abandon outstanding work: saturated sweep points end.
        }

        // Poll the in-flight set in admission order. On a single chip
        // each poll executes queued groups inline, so this sweep both
        // advances the modeled clock and retires requests.
        let mut progressed = false;
        pending.retain_mut(|p| match Pin::new(&mut p.fut).poll(&mut cx) {
            Poll::Pending => true,
            Poll::Ready(res) => {
                progressed = true;
                // The slot's completion stamp, not the clock at poll
                // time: one pump can drain many groups before this sweep
                // resumes, and the clock has then moved past all of them.
                let done_at = p.fut.completed_at().unwrap_or_else(|| telemetry.now());
                let lat = done_at.saturating_sub(p.scheduled);
                match res {
                    Ok(()) => {
                        latency_h.record(lat);
                        completed += 1;
                        completed_c.inc();
                        if done_at <= horizon_end {
                            completed_in_horizon += 1;
                        }
                        if cfg.latency_target_cycles > 0 && lat > cfg.latency_target_cycles {
                            over_target += 1;
                            over_target_c.inc();
                        }
                    }
                    Err(_) => {
                        failed += 1;
                        failed_c.inc();
                    }
                }
                false
            }
        });

        if !progressed {
            // Cluster-only path: work is on shard threads and nothing
            // retired this sweep. Park until a completion wakes us (or a
            // short timeout guards against a missed wake).
            parker.park_timeout(Duration::from_micros(200));
        }
    }

    // Close the partial tail window so the series covers the whole run.
    let end_cycle = telemetry.now();
    let tail_start = sampler.last().map_or(start, |w| w.end);
    if end_cycle > tail_start {
        let width = sampler.window_cycles();
        sampler.sample(end_cycle, dev.metrics_snapshot()?);
        tracks.flush(&dev, end_cycle, width)?;
    }

    let horizon_secs = cfg.horizon_cycles as f64 / MODELED_CYCLES_PER_SEC;
    Ok(RunReport {
        seed: cfg.seed,
        horizon_cycles: cfg.horizon_cycles,
        window_cycles: cfg.window_cycles,
        injected,
        completed,
        completed_in_horizon,
        failed,
        over_target,
        end_cycle,
        offered_rps: injected as f64 / horizon_secs,
        achieved_rps: completed_in_horizon as f64 / horizon_secs,
        latency: latency_h.state().since(&base_latency).summary(),
        queue_wait: queue_wait_h.state().since(&base_queue_wait).summary(),
        windows: sampler.samples().cloned().collect(),
    })
}
