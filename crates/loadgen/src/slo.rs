//! SLO accounting over open-loop runs: per-window error-budget burn
//! against a latency target, and the latency-vs-load sweep that locates
//! the service's knee and collapse points.
//!
//! Reports serialize to JSON by hand (one stable field order, no
//! dependencies) so CI can validate them and bake them into dashboards;
//! with a single-chip device the JSON is bit-identical across runs of the
//! same seed.

use crate::driver::{run, LoadgenConfig, RunReport};
use pim_serve::Gateway;
use pypim_core::Result;

/// The SLO to hold a run against.
#[derive(Debug, Clone, Copy)]
pub struct SloConfig {
    /// Latency target in modeled cycles: the p99 objective.
    pub target_p99_cycles: u64,
    /// Fraction of requests allowed above the target (e.g. `0.01` — the
    /// error budget a burn rate of 1.0 consumes exactly).
    pub error_budget: f64,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            target_p99_cycles: 50_000,
            error_budget: 0.01,
        }
    }
}

/// One window of SLO accounting.
#[derive(Debug, Clone, Copy)]
pub struct WindowSlo {
    /// Window index in the run's series.
    pub index: u64,
    /// First modeled cycle of the window.
    pub start: u64,
    /// Last modeled cycle of the window (exclusive).
    pub end: u64,
    /// Requests completed in the window.
    pub completed: u64,
    /// Completions above the latency target in the window.
    pub over_target: u64,
    /// Windowed latency median (modeled cycles).
    pub p50_cycles: u64,
    /// Windowed latency p99 (modeled cycles).
    pub p99_cycles: u64,
    /// Windowed latency p999 (modeled cycles).
    pub p999_cycles: u64,
    /// Windowed gateway queue-wait p99 (modeled cycles) — the collapse
    /// signal.
    pub queue_wait_p99_cycles: u64,
    /// Error-budget burn rate: `(over_target / completed) / error_budget`.
    /// 1.0 burns the budget exactly; sustained values above 1.0 violate
    /// the SLO.
    pub burn_rate: f64,
}

/// Machine-readable SLO verdict for one open-loop run.
#[derive(Debug, Clone)]
pub struct SloReport {
    /// Seed the run's schedule came from.
    pub seed: u64,
    /// The SLO held against.
    pub slo: SloConfig,
    /// Offered load, requests per modeled second.
    pub offered_rps: f64,
    /// Achieved goodput, requests per modeled second.
    pub achieved_rps: f64,
    /// Total completions.
    pub completed: u64,
    /// Total failures.
    pub failed: u64,
    /// Total completions over target.
    pub over_target: u64,
    /// Whole-run latency p50 (modeled cycles).
    pub p50_cycles: u64,
    /// Whole-run latency p99 (modeled cycles).
    pub p99_cycles: u64,
    /// Whole-run latency p999 (modeled cycles).
    pub p999_cycles: u64,
    /// Whether the whole-run p99 met the target.
    pub met: bool,
    /// Per-window accounting.
    pub windows: Vec<WindowSlo>,
}

impl SloReport {
    fn from_run(report: &RunReport, slo: SloConfig) -> SloReport {
        let windows = report
            .windows
            .iter()
            .map(|w| {
                let completed = w.counter("loadgen.completed");
                let over = w.counter("loadgen.over_target");
                let lat = w.histogram("loadgen.latency_cycles");
                let qw = w.histogram("serve.queue_wait_cycles");
                WindowSlo {
                    index: w.index,
                    start: w.start,
                    end: w.end,
                    completed,
                    over_target: over,
                    p50_cycles: lat.map_or(0, |h| h.p50),
                    p99_cycles: lat.map_or(0, |h| h.p99),
                    p999_cycles: lat.map_or(0, |h| h.p999),
                    queue_wait_p99_cycles: qw.map_or(0, |h| h.p99),
                    burn_rate: if completed == 0 || slo.error_budget <= 0.0 {
                        0.0
                    } else {
                        (over as f64 / completed as f64) / slo.error_budget
                    },
                }
            })
            .collect();
        SloReport {
            seed: report.seed,
            slo,
            offered_rps: report.offered_rps,
            achieved_rps: report.achieved_rps,
            completed: report.completed,
            failed: report.failed,
            over_target: report.over_target,
            p50_cycles: report.latency.p50,
            p99_cycles: report.latency.p99,
            p999_cycles: report.latency.p999,
            met: report.latency.p99 <= slo.target_p99_cycles,
            windows,
        }
    }

    /// The report as one stable-field-order JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024 + 160 * self.windows.len());
        out.push_str(&format!(
            "{{\"seed\":{},\"target_p99_cycles\":{},\"error_budget\":{:.6},\
             \"offered_rps\":{:.3},\"achieved_rps\":{:.3},\"completed\":{},\
             \"failed\":{},\"over_target\":{},\"p50_cycles\":{},\
             \"p99_cycles\":{},\"p999_cycles\":{},\"met\":{},\"windows\":[",
            self.seed,
            self.slo.target_p99_cycles,
            self.slo.error_budget,
            self.offered_rps,
            self.achieved_rps,
            self.completed,
            self.failed,
            self.over_target,
            self.p50_cycles,
            self.p99_cycles,
            self.p999_cycles,
            self.met,
        ));
        for (i, w) in self.windows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"index\":{},\"start\":{},\"end\":{},\"completed\":{},\
                 \"over_target\":{},\"p50_cycles\":{},\"p99_cycles\":{},\
                 \"p999_cycles\":{},\"queue_wait_p99_cycles\":{},\
                 \"burn_rate\":{:.4}}}",
                w.index,
                w.start,
                w.end,
                w.completed,
                w.over_target,
                w.p50_cycles,
                w.p99_cycles,
                w.p999_cycles,
                w.queue_wait_p99_cycles,
                w.burn_rate,
            ));
        }
        out.push_str("]}");
        out
    }

    /// A human-readable multi-line rendering.
    pub fn render(&self) -> String {
        let mut out = format!(
            "SLO p99 ≤ {} cycles (budget {:.2}%): {} — offered {:.0} rps, \
             achieved {:.0} rps, p99 {} cycles, {}/{} over target\n",
            self.slo.target_p99_cycles,
            self.slo.error_budget * 100.0,
            if self.met { "MET" } else { "VIOLATED" },
            self.offered_rps,
            self.achieved_rps,
            self.p99_cycles,
            self.over_target,
            self.completed,
        );
        for w in &self.windows {
            out.push_str(&format!(
                "  win {:>3} [{:>9}..{:>9})  done {:>6}  p99 {:>8}  \
                 qwait p99 {:>8}  burn {:>6.2}\n",
                w.index,
                w.start,
                w.end,
                w.completed,
                w.p99_cycles,
                w.queue_wait_p99_cycles,
                w.burn_rate,
            ));
        }
        out
    }
}

/// Runs `cfg` against `gateway` with `slo`'s target as the over-target
/// threshold and returns both the raw run and its SLO verdict.
///
/// # Errors
///
/// As [`run`].
pub fn run_slo(
    gateway: &Gateway,
    cfg: &LoadgenConfig,
    slo: SloConfig,
) -> Result<(RunReport, SloReport)> {
    let mut cfg = cfg.clone();
    cfg.latency_target_cycles = slo.target_p99_cycles;
    let report = run(gateway, &cfg)?;
    let slo_report = SloReport::from_run(&report, slo);
    Ok((report, slo_report))
}

/// One operating point of a latency-vs-load sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Rate multiplier this point ran at.
    pub factor: f64,
    /// Offered load actually injected, requests per modeled second.
    pub offered_rps: f64,
    /// Achieved goodput, requests per modeled second.
    pub achieved_rps: f64,
    /// Whole-run latency p99 (modeled cycles).
    pub p99_cycles: u64,
    /// Request failures at this point.
    pub failed: u64,
    /// Whether this point showed queueing collapse: the windowed gateway
    /// queue-wait p99 diverged across the run (last ≥ 4× the first
    /// nonzero, over ≥ 3 active windows), or goodput fell below 80% of
    /// offered.
    pub collapsed: bool,
    /// The point's full SLO verdict.
    pub slo: SloReport,
}

/// Result of [`latency_vs_load`]: the sweep's points plus the derived
/// knee/collapse summary the serving benches publish.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Operating points, in the order swept (ascending offered load).
    pub points: Vec<SweepPoint>,
    /// Highest offered load still achieving ≥ 95% goodput — the knee.
    pub knee_rps: f64,
    /// Lowest offered load that collapsed (`None` if no point did).
    pub collapse_rps: Option<f64>,
    /// Latency p99 at ~70% of peak achieved load (modeled cycles) — the
    /// "healthy operating point" latency.
    pub p99_at_70pct_cycles: u64,
}

impl SweepReport {
    /// The sweep as one stable-field-order JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"points\":[");
        for (i, p) in self.points.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"factor\":{:.3},\"offered_rps\":{:.3},\"achieved_rps\":{:.3},\
                 \"p99_cycles\":{},\"failed\":{},\"collapsed\":{}}}",
                p.factor, p.offered_rps, p.achieved_rps, p.p99_cycles, p.failed, p.collapsed,
            ));
        }
        out.push_str(&format!(
            "],\"knee_rps\":{:.3},\"collapse_rps\":{},\"p99_at_70pct_cycles\":{}}}",
            self.knee_rps,
            self.collapse_rps
                .map_or("null".to_string(), |v| format!("{v:.3}")),
            self.p99_at_70pct_cycles,
        ));
        out
    }
}

/// Whether a run's windowed queue-wait p99 series diverges — the
/// signature of a queue that grows without bound under sustained
/// overload.
fn queue_wait_diverges(report: &RunReport) -> bool {
    let p99s: Vec<u64> = report
        .windows
        .iter()
        .filter_map(|w| w.histogram("serve.queue_wait_cycles"))
        .filter(|h| h.count > 0)
        .map(|h| h.p99)
        .collect();
    let Some(&first) = p99s.iter().find(|&&p| p > 0) else {
        return false;
    };
    p99s.len() >= 3 && *p99s.last().expect("nonempty") >= first.saturating_mul(4)
}

/// Sweeps offered load across `factors` (each point is `base` with every
/// arrival rate scaled by the factor, against a **fresh** gateway from
/// `make_gateway` so points don't share queues), and derives the knee and
/// collapse summary.
///
/// Pass factors in ascending order and wide enough to straddle the knee —
/// the collapse detection needs at least one overloaded point to find
/// anything.
///
/// # Errors
///
/// As [`run`]; the first failing point aborts the sweep.
pub fn latency_vs_load(
    mut make_gateway: impl FnMut() -> Result<Gateway>,
    base: &LoadgenConfig,
    factors: &[f64],
    slo: SloConfig,
) -> Result<SweepReport> {
    let mut points = Vec::with_capacity(factors.len());
    for &factor in factors {
        let gateway = make_gateway()?;
        let cfg = base.scaled(factor);
        let (report, slo_report) = run_slo(&gateway, &cfg, slo)?;
        let goodput = if report.offered_rps > 0.0 {
            report.achieved_rps / report.offered_rps
        } else {
            1.0
        };
        points.push(SweepPoint {
            factor,
            offered_rps: report.offered_rps,
            achieved_rps: report.achieved_rps,
            p99_cycles: report.latency.p99,
            failed: report.failed,
            collapsed: queue_wait_diverges(&report) || goodput < 0.8,
            slo: slo_report,
        });
    }

    let knee_rps = points
        .iter()
        .filter(|p| p.offered_rps > 0.0 && p.achieved_rps / p.offered_rps >= 0.95)
        .map(|p| p.offered_rps)
        .fold(0.0_f64, f64::max);
    let knee_rps = if knee_rps > 0.0 {
        knee_rps
    } else {
        points
            .iter()
            .map(|p| p.achieved_rps)
            .fold(0.0_f64, f64::max)
    };
    let collapse_rps = points
        .iter()
        .filter(|p| p.collapsed)
        .map(|p| p.offered_rps)
        .fold(None, |acc: Option<f64>, v| {
            Some(acc.map_or(v, |a| a.min(v)))
        });
    let peak = points
        .iter()
        .map(|p| p.achieved_rps)
        .fold(0.0_f64, f64::max);
    let p99_at_70pct_cycles = points
        .iter()
        .min_by(|a, b| {
            let da = (a.achieved_rps - 0.7 * peak).abs();
            let db = (b.achieved_rps - 0.7 * peak).abs();
            da.partial_cmp(&db).expect("finite rates")
        })
        .map_or(0, |p| p.p99_cycles);

    Ok(SweepReport {
        points,
        knee_rps,
        collapse_rps,
        p99_at_70pct_cycles,
    })
}
