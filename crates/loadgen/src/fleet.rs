//! The open-loop driver for a multi-host [`Fleet`]: the same injection
//! semantics as [`run`](crate::run) — arrivals fire at their scheduled
//! modeled cycles whether or not earlier requests finished — but sessions
//! are fleet placements that *move* when their host crashes, stalls past
//! the lease, or partitions away.
//!
//! The driver owns the staleness protocol end to end: every completion is
//! checked against the placement generation it was submitted under, and a
//! result from a failed-over placement is discarded (even a successful
//! one — its session died mid-flight) and the request re-issued against
//! the new placement with its *original* scheduled cycle, so measured
//! latency includes the full failover detection and re-placement delay.
//!
//! With the default functional single-chip hosts the whole run executes
//! inline on the driving thread, so one seed plus one fault schedule
//! reproduces bit-identical reports — the property the failover proptests
//! and the chaos CI step lean on.

use crate::driver::{LoadgenConfig, Parker, MODELED_CYCLES_PER_SEC};
use crate::profile::{build_schedule, ArrivalProfile};
use crate::shape::{RequestShape, Template};
use pim_fleet::{Fleet, FleetSession, FleetStats};
use pim_serve::{ClusterClient, ExecFuture};
use pim_telemetry::{HistogramSnapshot, WindowSample, WindowSampler};
use pypim_core::{CoreError, ErrorClass, Result};
use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll, Waker};
use std::time::Duration;

/// Times one arrival is re-issued after a failover discard or transient
/// placement failure before it counts as failed.
const MAX_REISSUES: u32 = 8;

/// What one open-loop fleet run produced: the load-side totals plus the
/// control-plane activity (elections, failovers, re-issues) the run
/// provoked.
#[derive(Debug, Clone)]
pub struct FleetRunReport {
    /// Seed the schedule was generated from.
    pub seed: u64,
    /// Scheduled horizon in modeled cycles.
    pub horizon_cycles: u64,
    /// Window width of [`windows`](FleetRunReport::windows).
    pub window_cycles: u64,
    /// Requests injected (== scheduled arrivals).
    pub injected: u64,
    /// Requests that resolved successfully against a still-current
    /// placement.
    pub completed: u64,
    /// Successful completions within the horizon — the numerator of
    /// `achieved_rps`.
    pub completed_in_horizon: u64,
    /// Requests that failed (typed errors, evicted sessions, or re-issue
    /// budget exhausted — never hangs).
    pub failed: u64,
    /// Request attempts discarded and issued again (stale generation
    /// after a failover, or a transient placement failure).
    pub reissued: u64,
    /// Modeled cycle the run ended at.
    pub end_cycle: u64,
    /// Offered load: injected per modeled second of horizon.
    pub offered_rps: f64,
    /// Achieved goodput: in-horizon completions per modeled second.
    pub achieved_rps: f64,
    /// End-to-end latency (completion − scheduled arrival; failover
    /// detection and re-issue delay included), whole run.
    pub latency: HistogramSnapshot,
    /// Failover detection latency (`fleet.failover_cycles`) during the
    /// run.
    pub failover_cycles: HistogramSnapshot,
    /// Control-plane counter deltas over the run.
    pub fleet: FleetStats,
    /// The windowed time series (counters are per-window deltas; includes
    /// the `fleet.*` counters).
    pub windows: Vec<WindowSample>,
}

impl FleetRunReport {
    /// Fraction of offered load achieved within the horizon.
    pub fn goodput_ratio(&self) -> f64 {
        if self.injected == 0 {
            return 1.0;
        }
        self.completed_in_horizon as f64 / self.injected as f64
    }
}

/// One (class, session) pool entry: the fleet placement plus the replay
/// template built against its *current* client, rebuilt whenever the
/// placement generation moves.
struct PoolEntry {
    session: FleetSession,
    client: Option<Arc<ClusterClient>>,
    template: Option<Template>,
    generation: u64,
    shape: RequestShape,
    elems: usize,
}

impl PoolEntry {
    /// Re-binds the template to the session's current placement if it
    /// moved; returns `false` once the session is evicted for good.
    fn refresh(&mut self) -> Result<bool> {
        let generation = self.session.generation();
        if self.template.is_some() && generation == self.generation {
            return Ok(true);
        }
        match self.session.client() {
            Some(client) => {
                self.template = Some(Template::build(&client, self.shape, self.elems)?);
                self.client = Some(client);
                self.generation = generation;
                Ok(true)
            }
            None => {
                self.template = None;
                self.client = None;
                Ok(false)
            }
        }
    }
}

struct Pending {
    fut: ExecFuture,
    /// Keeps the submission's session alive even if the pool entry has
    /// already re-bound to a new placement.
    _client: Arc<ClusterClient>,
    scheduled: u64,
    class: usize,
    pool: usize,
    generation: u64,
    reissues: u32,
}

/// Restores the fleet-wide telemetry arming on drop (the run needs it on
/// so execution charges the modeled clock; a caller that had it off gets
/// it back off even on error paths).
struct FleetEnabledGuard<'a> {
    fleet: &'a Fleet,
    prev: bool,
}

impl Drop for FleetEnabledGuard<'_> {
    fn drop(&mut self) {
        self.fleet.set_telemetry_enabled(self.prev);
    }
}

/// Runs one open-loop load against `fleet` (see the module docs for the
/// failover and staleness semantics).
///
/// # Errors
///
/// Fails on an empty/zero config or on initial session/template setup
/// errors. Individual request failures — including sessions evicted
/// because every host died — do **not** fail the run; they count into
/// [`FleetRunReport::failed`].
pub fn run_fleet(fleet: &Fleet, cfg: &LoadgenConfig) -> Result<FleetRunReport> {
    let invalid = |reason: &str| CoreError::Protocol {
        reason: format!("loadgen config: {reason}"),
    };
    if cfg.classes.is_empty() {
        return Err(invalid("no traffic classes"));
    }
    if cfg.sessions_per_class == 0 {
        return Err(invalid("sessions_per_class must be at least 1"));
    }
    if cfg.horizon_cycles == 0 || cfg.window_cycles == 0 {
        return Err(invalid("horizon_cycles and window_cycles must be nonzero"));
    }

    let telemetry = fleet.telemetry().clone();
    let _armed = FleetEnabledGuard {
        fleet,
        prev: telemetry.is_enabled(),
    };
    fleet.set_telemetry_enabled(true);

    // Session pools, one per class; templates bind to the initial
    // placements here and re-bind on failover.
    let mut pools: Vec<Vec<PoolEntry>> = Vec::with_capacity(cfg.classes.len());
    for class in &cfg.classes {
        let mut pool = Vec::with_capacity(cfg.sessions_per_class);
        for _ in 0..cfg.sessions_per_class {
            let mut entry = PoolEntry {
                session: fleet.session()?,
                client: None,
                template: None,
                generation: 0,
                shape: class.shape,
                elems: class.elems,
            };
            if !entry.refresh()? {
                return Err(CoreError::Evicted {
                    session: entry.session.id(),
                });
            }
            pool.push(entry);
        }
        pools.push(pool);
    }

    let profiles: Vec<ArrivalProfile> = cfg.classes.iter().map(|c| c.profile).collect();
    let schedule = build_schedule(&profiles, cfg.seed, cfg.horizon_cycles);

    let metrics = telemetry.metrics();
    let injected_c = metrics.counter("loadgen.injected");
    let completed_c = metrics.counter("loadgen.completed");
    let failed_c = metrics.counter("loadgen.failed");
    let reissued_c = metrics.counter("fleet.reissued");
    let latency_h = metrics.histogram("loadgen.latency_cycles");
    let failover_h = metrics.histogram("fleet.failover_cycles");
    let base_latency = latency_h.state();
    let base_failover = failover_h.state();
    let base_stats = fleet.stats();
    let base_reissued = reissued_c.get();

    let mut sampler = WindowSampler::new(cfg.window_cycles);
    sampler.watch_histogram("loadgen.latency_cycles", &latency_h);
    sampler.watch_histogram("fleet.failover_cycles", &failover_h);
    let live_track = telemetry.counter_track("fleet/live_hosts");

    let parker = Arc::new(Parker::new());
    let waker = Waker::from(parker.clone());
    let mut cx = Context::from_waker(&waker);

    let start = fleet.tick_now();
    let horizon_end = start + cfg.horizon_cycles;
    let mut pending: Vec<Pending> = Vec::new();
    let mut next = 0usize;
    let (mut injected, mut completed, mut completed_in_horizon, mut failed) =
        (0u64, 0u64, 0u64, 0u64);

    // Submits one attempt for (class, pool) or returns false if the
    // session is evicted with nowhere to go.
    let submit = |pools: &mut Vec<Vec<PoolEntry>>,
                  pending: &mut Vec<Pending>,
                  class: usize,
                  pool: usize,
                  scheduled: u64,
                  reissues: u32|
     -> Result<bool> {
        let entry = &mut pools[class][pool];
        if !entry.refresh()? {
            return Ok(false);
        }
        let client = entry.client.as_ref().expect("refreshed entry").clone();
        let template = entry.template.as_ref().expect("refreshed entry");
        let fut = client.submit(template.instrs.clone());
        pending.push(Pending {
            fut,
            _client: client,
            scheduled,
            class,
            pool,
            generation: entry.generation,
            reissues,
        });
        Ok(true)
    };

    loop {
        // Every iteration starts with one control-plane step: due faults
        // fire, heartbeats renew, lapsed hosts fail over (moving their
        // pool entries' placements).
        let now = fleet.tick_now();

        // Inject every arrival due by the current modeled time.
        while next < schedule.len() && start + schedule[next].cycle <= now {
            let a = schedule[next];
            next += 1;
            injected += 1;
            injected_c.inc();
            let pool = a.seq as usize % cfg.sessions_per_class;
            if !submit(&mut pools, &mut pending, a.class, pool, start + a.cycle, 0)? {
                failed += 1;
                failed_c.inc();
            }
        }

        if sampler.ready(now) {
            sampler.sample(now, fleet.metrics_snapshot()?);
            if telemetry.is_enabled() {
                live_track.record(now, fleet.live_hosts() as f64);
            }
        }

        if pending.is_empty() {
            match schedule.get(next) {
                Some(a) => {
                    // Idle: jump to the next arrival, stopping at window
                    // boundaries (and letting tick_now fire any faults
                    // that became due during the jump).
                    let boundary = (now / cfg.window_cycles + 1) * cfg.window_cycles;
                    telemetry.advance_clock((start + a.cycle).min(boundary));
                    continue;
                }
                None => break,
            }
        }

        if !cfg.drain && next >= schedule.len() && now >= horizon_end {
            break;
        }

        // Poll the in-flight set; completions are validated against the
        // placement generation they were submitted under.
        let mut progressed = false;
        let mut i = 0;
        while i < pending.len() {
            match Pin::new(&mut pending[i].fut).poll(&mut cx) {
                Poll::Pending => i += 1,
                Poll::Ready(res) => {
                    progressed = true;
                    let p = pending.swap_remove(i);
                    fleet.tick_now();
                    let stale = pools[p.class][p.pool].session.generation() != p.generation;
                    let transient = matches!(&res, Err(e) if e.class() == ErrorClass::Transient);
                    if stale || transient {
                        // A stale result (even a successful one) is from
                        // a dead placement; a transient error means the
                        // placement itself went bad — move it.
                        reissued_c.inc();
                        if transient && !stale {
                            pools[p.class][p.pool].session.migrate();
                        }
                        if p.reissues >= MAX_REISSUES
                            || !submit(
                                &mut pools,
                                &mut pending,
                                p.class,
                                p.pool,
                                p.scheduled,
                                p.reissues + 1,
                            )?
                        {
                            failed += 1;
                            failed_c.inc();
                        }
                        continue;
                    }
                    match res {
                        Ok(()) => {
                            let done_at = p.fut.completed_at().unwrap_or_else(|| telemetry.now());
                            latency_h.record(done_at.saturating_sub(p.scheduled));
                            completed += 1;
                            completed_c.inc();
                            if done_at <= horizon_end {
                                completed_in_horizon += 1;
                            }
                        }
                        Err(_) => {
                            failed += 1;
                            failed_c.inc();
                        }
                    }
                }
            }
        }

        if !progressed {
            parker.park_timeout(Duration::from_micros(200));
        }
    }

    // Close the partial tail window.
    let end_cycle = fleet.tick_now();
    let tail_start = sampler.last().map_or(start, |w| w.end);
    if end_cycle > tail_start {
        sampler.sample(end_cycle, fleet.metrics_snapshot()?);
        if telemetry.is_enabled() {
            live_track.record(end_cycle, fleet.live_hosts() as f64);
        }
    }

    let end_stats = fleet.stats();
    let horizon_secs = cfg.horizon_cycles as f64 / MODELED_CYCLES_PER_SEC;
    Ok(FleetRunReport {
        seed: cfg.seed,
        horizon_cycles: cfg.horizon_cycles,
        window_cycles: cfg.window_cycles,
        injected,
        completed,
        completed_in_horizon,
        failed,
        reissued: reissued_c.get() - base_reissued,
        end_cycle,
        offered_rps: injected as f64 / horizon_secs,
        achieved_rps: completed_in_horizon as f64 / horizon_secs,
        latency: latency_h.state().since(&base_latency).summary(),
        failover_cycles: failover_h.state().since(&base_failover).summary(),
        fleet: FleetStats {
            leader_changes: end_stats.leader_changes - base_stats.leader_changes,
            failovers: end_stats.failovers - base_stats.failovers,
            orphaned_sessions: end_stats.orphaned_sessions - base_stats.orphaned_sessions,
            reissued: end_stats.reissued - base_stats.reissued,
            heartbeats: end_stats.heartbeats - base_stats.heartbeats,
            sessions: end_stats.sessions - base_stats.sessions,
        },
        windows: sampler.samples().cloned().collect(),
    })
}

/// One operating point of a fleet latency-vs-load sweep.
#[derive(Debug, Clone)]
pub struct FleetSweepPoint {
    /// Rate multiplier this point ran at.
    pub factor: f64,
    /// Offered load, requests per modeled second.
    pub offered_rps: f64,
    /// Achieved goodput, requests per modeled second.
    pub achieved_rps: f64,
    /// Whole-run latency p99 (modeled cycles).
    pub p99_cycles: u64,
    /// Failovers the fault schedule provoked at this point.
    pub failovers: u64,
    /// Attempts discarded and re-issued at this point.
    pub reissued: u64,
    /// Requests that failed at this point.
    pub failed: u64,
}

/// Result of [`latency_vs_load_fleet`].
#[derive(Debug, Clone)]
pub struct FleetSweepReport {
    /// Operating points, in the order swept.
    pub points: Vec<FleetSweepPoint>,
    /// Highest offered load still achieving ≥ 95% goodput across the
    /// sweep's fault schedule — the *degraded* knee.
    pub knee_rps: f64,
    /// Failover detection p99 (modeled cycles) at the highest-load point
    /// that observed a failover.
    pub failover_p99_cycles: u64,
}

/// Sweeps offered load across `factors`, building a **fresh** fleet per
/// point (so fault schedules and queues restart), and derives the
/// degraded knee and the failover-detection p99 the serving benches
/// publish.
///
/// # Errors
///
/// As [`run_fleet`]; the first failing point aborts the sweep.
pub fn latency_vs_load_fleet(
    mut make_fleet: impl FnMut() -> Result<Fleet>,
    base: &LoadgenConfig,
    factors: &[f64],
) -> Result<FleetSweepReport> {
    let mut points = Vec::with_capacity(factors.len());
    let mut failover_p99_cycles = 0;
    for &factor in factors {
        let fleet = make_fleet()?;
        let cfg = base.scaled(factor);
        let report = run_fleet(&fleet, &cfg)?;
        if report.failover_cycles.count > 0 {
            failover_p99_cycles = report.failover_cycles.p99;
        }
        points.push(FleetSweepPoint {
            factor,
            offered_rps: report.offered_rps,
            achieved_rps: report.achieved_rps,
            p99_cycles: report.latency.p99,
            failovers: report.fleet.failovers,
            reissued: report.reissued,
            failed: report.failed,
        });
    }
    let knee_rps = points
        .iter()
        .filter(|p| p.offered_rps > 0.0 && p.achieved_rps / p.offered_rps >= 0.95)
        .map(|p| p.offered_rps)
        .fold(0.0_f64, f64::max);
    let knee_rps = if knee_rps > 0.0 {
        knee_rps
    } else {
        points
            .iter()
            .map(|p| p.achieved_rps)
            .fold(0.0_f64, f64::max)
    };
    Ok(FleetSweepReport {
        points,
        knee_rps,
        failover_p99_cycles,
    })
}
