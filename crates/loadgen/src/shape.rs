//! Request shapes: per-class instruction templates built **once** per
//! session and replayed by cloning — injection allocates nothing on the
//! device and never waits, which is what keeps the generator open-loop.
//!
//! Every template is write-only from the device's perspective (fills,
//! stores, element-parallel ops into planned output stripes), so replays
//! of the same template — and even interleaved replays of *different*
//! templates in one session — are safe: each replay writes the same
//! stripes, the gateway's per-session FIFO keeps replays in admission
//! order, and execution timing is value-independent, so reusing output
//! stripes across in-flight replays does not perturb the latencies being
//! measured. The template pins its planned tensors alive (`_live`) so the
//! allocator cannot recycle those stripes for anything else.

use pim_isa::{DType, Instruction, RegOp};
use pim_serve::ClusterClient;
use pypim_core::{plan_copy, Result, Tensor};

/// Which kind of request a traffic class issues. The shapes stress
/// different parts of the stack: pure element-parallel work, fused
/// multi-op pipelines, logarithmic reductions, and partition-crossing
/// movement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestShape {
    /// Two fills plus one element-parallel add — the minimal
    /// compute-dense request.
    Elementwise,
    /// A fused pipeline (two fills, a multiply, an add) built through
    /// [`pim_serve::RequestPlan`] — one coalescable batch per request.
    Fused,
    /// Fill plus a full logarithmic reduction — long dependent
    /// instruction chains on one session stream.
    Reduction,
    /// Fill plus a lower-to-upper-half copy across the tensor — movement
    /// heavy, exercising crossing paths where the layout has them.
    CrossingHeavy,
}

impl RequestShape {
    /// Stable lowercase name (used in reports and window tables).
    pub fn name(self) -> &'static str {
        match self {
            RequestShape::Elementwise => "elementwise",
            RequestShape::Fused => "fused",
            RequestShape::Reduction => "reduction",
            RequestShape::CrossingHeavy => "crossing",
        }
    }
}

/// A prebuilt instruction batch for one (session, class) pair. Cloning
/// [`instrs`](Template::instrs) is the entire per-arrival cost.
pub struct Template {
    /// The replayable batch.
    pub instrs: Vec<Instruction>,
    /// Tensors the batch writes; held so their stripes stay reserved for
    /// the template's lifetime.
    _live: Vec<Tensor>,
}

impl Template {
    /// Builds the template for `shape` over `elems`-element tensors,
    /// allocating in `client`'s session window.
    ///
    /// # Errors
    ///
    /// Fails on allocation/planning errors (e.g. a session window too
    /// small for the shape's tensors).
    pub fn build(client: &ClusterClient, shape: RequestShape, elems: usize) -> Result<Template> {
        let dev = client.device();
        match shape {
            RequestShape::Elementwise => {
                let x = dev.uninit(elems, DType::Int32)?;
                let y = dev.uninit(elems, DType::Int32)?;
                let mut instrs = x.plan_fill(3);
                instrs.extend(y.plan_fill(4));
                let (out, add) = x.plan_binary(RegOp::Add, &y)?;
                instrs.extend(add);
                Ok(Template {
                    instrs,
                    _live: vec![x, y, out],
                })
            }
            RequestShape::Fused => {
                let mut plan = client.plan();
                let a = plan.full_i32(elems, 3)?;
                let b = plan.full_i32(elems, 5)?;
                let ab = plan.mul(&a, &b)?;
                let out = plan.add(&ab, &a)?;
                Ok(Template {
                    instrs: plan.into_instrs(),
                    _live: vec![a, b, ab, out],
                })
            }
            RequestShape::Reduction => {
                let mut plan = client.plan();
                let t = plan.full_i32(elems, 2)?;
                let total = plan.reduce(&t, RegOp::Add)?;
                Ok(Template {
                    instrs: plan.into_instrs(),
                    _live: vec![t, total],
                })
            }
            RequestShape::CrossingHeavy => {
                // A tensor twice the class size; fill the lower half and
                // copy it into the upper — on multi-chip layouts the copy
                // crosses partitions. Layouts with no planned move for
                // the copy fall back to fill-only (still a valid, lighter
                // request; the class name keeps reports honest).
                let t = dev.uninit(elems * 2, DType::Int32)?;
                let lo = t.slice(0, elems)?;
                let hi = t.slice(elems, elems * 2)?;
                let mut instrs = lo.plan_fill(9);
                if let Some(mv) = plan_copy(&lo, &hi)? {
                    instrs.extend(mv);
                } else {
                    instrs.extend(hi.plan_fill(9));
                }
                Ok(Template {
                    instrs,
                    _live: vec![t],
                })
            }
        }
    }

    /// Instructions per replay.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the template is empty (never true for built shapes).
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }
}
