//! # pim-loadgen
//!
//! An **open-loop traffic harness** for the serving gateway, on the
//! modeled clock: seeded arrival schedules (Poisson / burst / ramp) drive
//! requests into [`pim_serve::Gateway`] sessions at their scheduled
//! modeled cycles *whether or not earlier requests finished*, so overload
//! actually queues — the behaviour a closed loop (fixed in-flight count,
//! inject-on-completion) structurally cannot produce, because a closed
//! loop's offered load self-throttles to `in-flight / latency`.
//!
//! The harness produces three artifacts per run:
//!
//! * a [`RunReport`] — totals, whole-run latency/queue-wait summaries,
//!   and the windowed time series ([`pim_telemetry::WindowSample`]s:
//!   per-window throughput, queue depth, in-flight, retries, and real
//!   windowed p50/p99/p999);
//! * an [`SloReport`] ([`run_slo`]) — per-window error-budget burn
//!   against a latency target, as stable machine-readable JSON;
//! * Perfetto counter tracks (queue depth, in-flight, per-shard
//!   utilization) recorded into the device's [`pim_telemetry::Telemetry`]
//!   at window boundaries, rendered by `export_chrome_trace`.
//!
//! [`latency_vs_load`] sweeps arrival-rate multipliers across fresh
//! gateways and derives the **knee** (highest offered load with ≥ 95%
//! goodput), the **collapse point** (lowest offered load whose windowed
//! queue-wait p99 diverges), and the p99 at the ~70%-of-peak healthy
//! operating point — the `open_loop_*` rows of `BENCH_serve.json`.
//!
//! [`run_fleet`] drives the same open loop against a multi-host
//! [`pim_fleet::Fleet`]: sessions are fleet placements that move on
//! failover, stale completions are discarded and re-issued against the
//! new placement, and the report carries the control-plane activity
//! (elections, failovers, re-issues) the fault schedule provoked.
//! [`latency_vs_load_fleet`] sweeps it — the `fleet_*` rows of
//! `BENCH_serve.json`.
//!
//! ## Determinism
//!
//! Arrival schedules are materialized from the seed before the run
//! starts, and on a **single-chip** device every future resolves inline
//! on the driving thread, so the same seed produces bit-identical
//! reports (including the SLO JSON). Multi-chip clusters execute on
//! worker threads: reports there are statistically stable, not
//! bit-reproducible.
//!
//! ## Zero cost when unused
//!
//! Everything here is driver-side: nothing hooks the execution path, the
//! windowed sampler only reads snapshots when the *caller* closes a
//! window, and counter tracks record only while telemetry is enabled. A
//! binary that never runs a load sees no overhead.
//!
//! ## Example
//!
//! ```
//! use pim_arch::PimConfig;
//! use pim_loadgen::{
//!     run_slo, ArrivalProfile, ClassSpec, LoadgenConfig, RequestShape, SloConfig,
//! };
//! use pim_serve::{DeviceServeExt, ServeConfig};
//! use pypim_core::Device;
//!
//! # fn main() -> pypim_core::Result<()> {
//! let dev = Device::new(PimConfig::small().with_crossbars(4))?;
//! let gateway = dev.serve(ServeConfig {
//!     max_queue_depth: 0, // unbounded: overload queues instead of failing
//!     ..ServeConfig::default()
//! });
//! let cfg = LoadgenConfig {
//!     seed: 7,
//!     horizon_cycles: 200_000,
//!     window_cycles: 50_000,
//!     classes: vec![ClassSpec::new(
//!         "elementwise",
//!         RequestShape::Elementwise,
//!         ArrivalProfile::Poisson { rate: 100.0 },
//!         16,
//!     )],
//!     sessions_per_class: 1,
//!     ..LoadgenConfig::default()
//! };
//! let (report, slo) = run_slo(&gateway, &cfg, SloConfig::default())?;
//! assert_eq!(report.completed, report.injected);
//! assert!(slo.to_json().starts_with("{\"seed\":7"));
//! # Ok(())
//! # }
//! ```

mod driver;
mod fleet;
mod profile;
mod shape;
mod slo;

pub use driver::{run, ClassSpec, LoadgenConfig, RunReport, MODELED_CYCLES_PER_SEC};
pub use fleet::{
    latency_vs_load_fleet, run_fleet, FleetRunReport, FleetSweepPoint, FleetSweepReport,
};
pub use profile::{build_schedule, Arrival, ArrivalProfile};
pub use shape::{RequestShape, Template};
pub use slo::{latency_vs_load, run_slo, SloConfig, SloReport, SweepPoint, SweepReport, WindowSlo};

#[cfg(test)]
mod tests {
    use super::*;
    use pim_arch::PimConfig;
    use pim_serve::{DeviceServeExt, ServeConfig};
    use pypim_core::{Device, Result};

    fn small_cfg() -> LoadgenConfig {
        LoadgenConfig {
            seed: 11,
            horizon_cycles: 300_000,
            window_cycles: 60_000,
            classes: vec![
                ClassSpec::new(
                    "elem",
                    RequestShape::Elementwise,
                    ArrivalProfile::Poisson { rate: 60.0 },
                    16,
                ),
                ClassSpec::new(
                    "fused",
                    RequestShape::Fused,
                    ArrivalProfile::Burst {
                        base: 20.0,
                        burst_size: 3,
                        period_cycles: 100_000,
                    },
                    16,
                ),
            ],
            sessions_per_class: 1,
            latency_target_cycles: 0,
            drain: true,
        }
    }

    fn single_chip_gateway() -> Result<pim_serve::Gateway> {
        let dev = Device::new(PimConfig::small().with_crossbars(8))?;
        Ok(dev.serve(ServeConfig {
            max_queue_depth: 0,
            ..ServeConfig::default()
        }))
    }

    #[test]
    fn open_loop_run_completes_every_request() -> Result<()> {
        let gateway = single_chip_gateway()?;
        let report = run(&gateway, &small_cfg())?;
        assert!(report.injected > 0, "schedule was empty");
        assert_eq!(report.completed + report.failed, report.injected);
        assert_eq!(report.failed, 0, "unbounded queue should not reject");
        assert!(report.latency.count == report.completed);
        assert!(!report.windows.is_empty(), "no windows closed");
        // Window counters sum back to the totals (deltas, not cumulative).
        let sum: u64 = report
            .windows
            .iter()
            .map(|w| w.counter("loadgen.injected"))
            .sum();
        assert_eq!(sum, report.injected);
        Ok(())
    }

    #[test]
    fn same_seed_same_report_single_chip() -> Result<()> {
        let slo = SloConfig {
            target_p99_cycles: 30_000,
            error_budget: 0.01,
        };
        let (ra, sa) = run_slo(&single_chip_gateway()?, &small_cfg(), slo)?;
        let (rb, sb) = run_slo(&single_chip_gateway()?, &small_cfg(), slo)?;
        assert_eq!(sa.to_json(), sb.to_json(), "SLO JSON must be bit-identical");
        assert_eq!(ra.windows, rb.windows, "window series must be identical");
        assert_eq!(ra.end_cycle, rb.end_cycle);
        Ok(())
    }

    fn fleet_cfg(fault: pim_fault::HostFaultPlan) -> pim_fleet::FleetConfig {
        pim_fleet::FleetConfig {
            hosts: 2,
            chip: PimConfig::small().with_crossbars(8),
            serve: ServeConfig {
                max_queue_depth: 0,
                ..ServeConfig::default()
            },
            fault,
            ..pim_fleet::FleetConfig::default()
        }
    }

    #[test]
    fn fleet_run_fault_free_completes_everything() -> Result<()> {
        let fleet = pim_fleet::Fleet::new(fleet_cfg(pim_fault::HostFaultPlan::none()))?;
        let report = run_fleet(&fleet, &small_cfg())?;
        assert!(report.injected > 0);
        assert_eq!(report.completed + report.failed, report.injected);
        assert_eq!(report.failed, 0, "fault-free fleet must not fail requests");
        assert_eq!(report.reissued, 0);
        assert_eq!(report.fleet.failovers, 0);
        assert_eq!(report.fleet.leader_changes, 0, "leader elected before run");
        assert!(!report.windows.is_empty());
        Ok(())
    }

    #[test]
    fn fleet_run_matches_single_host_totals_and_is_reproducible() -> Result<()> {
        let cfg = small_cfg();
        let a = run_fleet(
            &pim_fleet::Fleet::new(fleet_cfg(pim_fault::HostFaultPlan::none()))?,
            &cfg,
        )?;
        let b = run_fleet(
            &pim_fleet::Fleet::new(fleet_cfg(pim_fault::HostFaultPlan::none()))?,
            &cfg,
        )?;
        assert_eq!(a.injected, b.injected);
        assert_eq!(
            a.end_cycle, b.end_cycle,
            "same seed must replay bit-identically"
        );
        assert_eq!(a.latency.p99, b.latency.p99);
        assert_eq!(a.windows, b.windows);
        Ok(())
    }

    #[test]
    fn fleet_run_leader_kill_fails_over_and_still_completes() -> Result<()> {
        let fault = pim_fault::HostFaultPlan::none().crash_at(0, 100_000);
        let fleet = pim_fleet::Fleet::new(fleet_cfg(fault))?;
        let report = run_fleet(&fleet, &small_cfg())?;
        assert_eq!(report.fleet.failovers, 1, "one crash, one failover");
        assert_eq!(
            report.fleet.leader_changes, 1,
            "killing the leader must force exactly one re-election"
        );
        assert!(report.fleet.orphaned_sessions > 0);
        assert!(report.failover_cycles.count >= 1);
        assert_eq!(
            report.completed + report.failed,
            report.injected,
            "every request resolves — no hangs"
        );
        assert_eq!(report.failed, 0, "a survivor exists, so nothing may fail");
        Ok(())
    }

    #[test]
    fn fleet_sweep_reports_degraded_knee() -> Result<()> {
        let mut base = small_cfg();
        base.horizon_cycles = 150_000;
        base.window_cycles = 30_000;
        base.drain = false;
        let sweep = latency_vs_load_fleet(
            || {
                pim_fleet::Fleet::new(fleet_cfg(
                    pim_fault::HostFaultPlan::none().crash_at(0, 50_000),
                ))
            },
            &base,
            &[0.5, 1.0],
        )?;
        assert_eq!(sweep.points.len(), 2);
        assert!(sweep.knee_rps > 0.0);
        assert!(sweep.points.iter().all(|p| p.failovers == 1));
        assert!(sweep.failover_p99_cycles > 0);
        Ok(())
    }

    #[test]
    fn sweep_derives_knee_and_collapse_fields() -> Result<()> {
        let mut base = small_cfg();
        base.horizon_cycles = 150_000;
        base.window_cycles = 30_000;
        base.drain = false;
        let sweep = latency_vs_load(
            single_chip_gateway,
            &base,
            &[0.5, 1.0],
            SloConfig::default(),
        )?;
        assert_eq!(sweep.points.len(), 2);
        assert!(sweep.knee_rps > 0.0);
        let json = sweep.to_json();
        assert!(json.contains("\"knee_rps\""), "{json}");
        assert!(json.contains("\"collapse_rps\""), "{json}");
        assert!(json.contains("\"p99_at_70pct_cycles\""), "{json}");
        Ok(())
    }
}
