//! # pim-fault
//!
//! **Deterministic fault injection** for the PyPIM cluster: a seeded
//! schedule of shard-worker crashes, worker stalls (modeled cycles), and
//! interconnect message drops/corruption, consumed by `pim-cluster`'s
//! shard workers and transfer path through an `Option<Arc<FaultInjector>>`
//! hook — **zero-cost and bit-identical when absent**.
//!
//! Faults trigger on *logical* progress counters or on the **modeled
//! clock**, never on wall-clock time: worker faults fire on the N-th
//! executable job a shard receives, link faults on the N-th message burst
//! the interconnect stages or on every burst staged inside a modeled-cycle
//! window ([`FaultPlan::drop_window`] — how network partitions are
//! modeled). The same workload therefore hits the same faults on every
//! run, which is what makes recovery testable:
//! `FaultPlan::from_seed(seed, profile)` expands a `u64` seed into a
//! reproducible schedule, and a failing seed from a property test replays
//! exactly.
//!
//! The same philosophy extends one level up: [`HostFaultPlan`] schedules
//! **host-level** crashes, stalls, and partitions on the modeled clock for
//! `pim-fleet`'s multi-host router, seeded the same way
//! ([`HostFaultPlan::from_seed`]).
//!
//! The injector counts what it fired ([`FaultStats`]) and reports it as
//! `fault.*` metrics into every [`MetricsSnapshot`]
//! (`fault.injected`, `fault.worker_crashes`, `fault.worker_stall_cycles`,
//! `fault.link_dropped`, `fault.link_corrupted`).
//!
//! What each fault means (the fault model — see `README.md`):
//!
//! * **Crash** — the shard worker thread exits before executing the job.
//!   Every job queued to the shard (including the one that triggered the
//!   crash) fails with a typed transient error; the cluster's supervisor
//!   respawns the worker on the next submission and restores its state
//!   from the last checkpoint plus the bounded replay log.
//! * **Stall** — the shard charges `cycles` extra modeled cycles before
//!   executing the job (the worker is alive but slow). Data is unaffected;
//!   deadlines on the modeled clock observe the delay.
//! * **Drop / Corrupt** — a staged interconnect burst is lost in flight /
//!   fails its integrity check at the receiver. Either way *nothing* of
//!   the transfer lands (corruption is detected, never silent) and the
//!   batch fails with a typed transient error, so a retry re-runs it from
//!   intact state.
//!
//! [`MetricsSnapshot`]: pim_telemetry::MetricsSnapshot

use pim_telemetry::{MetricsSnapshot, MetricsSource};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// A fault injected into one shard worker, triggered by the index of the
/// executable job (macro or micro batch) the shard receives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerFault {
    /// The worker thread exits without executing the job: every job queued
    /// to the shard fails with a typed transient error and the supervisor
    /// respawns the worker on the next submission.
    Crash,
    /// The worker charges this many extra modeled cycles before executing
    /// the job (alive but slow — data is unaffected).
    Stall {
        /// Modeled cycles added to the shard's cycle counter.
        cycles: u64,
    },
}

/// A fault injected into one staged interconnect burst, triggered by the
/// global burst index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkFault {
    /// The message is lost in flight; nothing of the transfer lands.
    Drop,
    /// The message fails its integrity check at the receiver; the
    /// corrupted payload is discarded, so nothing of the transfer lands
    /// (corruption is always *detected*, never silent).
    Corrupt,
}

/// A link fault applied to **every** burst staged while the modeled clock
/// is inside `[start, end)` — the cycle-window schedule that models a
/// network partition (all traffic lost for a span of modeled time) rather
/// than a single flaky message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkWindow {
    /// First modeled cycle of the window (inclusive).
    pub start: u64,
    /// End of the window (exclusive).
    pub end: u64,
    /// Fault every in-window burst suffers.
    pub fault: LinkFault,
}

impl LinkWindow {
    /// Whether the window covers modeled cycle `now`.
    pub fn contains(&self, now: u64) -> bool {
        self.start <= now && now < self.end
    }
}

/// A deterministic schedule of faults keyed by logical progress counters.
///
/// Build one explicitly ([`crash_at`](FaultPlan::crash_at) and friends)
/// for targeted tests, or expand a seed with
/// [`from_seed`](FaultPlan::from_seed) for property-based coverage. The
/// plan is immutable once wrapped in a [`FaultInjector`].
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// `(shard, job index) -> fault`. Job indices count the executable
    /// jobs (macro/micro batches) a shard receives, starting at 0;
    /// control-plane jobs (stats snapshots, profiler resets) do not
    /// advance the counter, so observability calls never shift a schedule.
    worker: HashMap<(usize, u64), WorkerFault>,
    /// `burst index -> fault`. Burst indices count the message groups the
    /// interconnect stages cluster-wide, starting at 0.
    link: HashMap<u64, LinkFault>,
    /// Cycle-window link faults, consulted by
    /// [`FaultInjector::link_fault_at`] for every staged burst. Windows
    /// need the modeled clock to be advancing (telemetry enabled); with
    /// the clock parked at 0 only windows covering cycle 0 fire.
    link_windows: Vec<LinkWindow>,
}

/// Shape of a randomly generated [`FaultPlan`] — how many faults of each
/// kind [`FaultPlan::from_seed`] scatters over which index ranges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultProfile {
    /// Shards faults may land on (`0..shards`).
    pub shards: usize,
    /// Restrict worker faults to this one shard (the "single-shard fault
    /// schedule" of the recovery contract); `None` spreads them.
    pub single_shard: Option<usize>,
    /// Number of worker crashes to schedule.
    pub worker_crashes: usize,
    /// Number of worker stalls to schedule.
    pub worker_stalls: usize,
    /// Stall lengths are drawn from `1..=max_stall_cycles`.
    pub max_stall_cycles: u64,
    /// Number of link message drops to schedule.
    pub link_drops: usize,
    /// Number of link message corruptions to schedule.
    pub link_corruptions: usize,
    /// Worker faults land on job indices `0..job_horizon`.
    pub job_horizon: u64,
    /// Link faults land on burst indices `0..burst_horizon`.
    pub burst_horizon: u64,
}

impl Default for FaultProfile {
    fn default() -> Self {
        FaultProfile {
            shards: 1,
            single_shard: None,
            worker_crashes: 1,
            worker_stalls: 1,
            max_stall_cycles: 10_000,
            link_drops: 1,
            link_corruptions: 1,
            job_horizon: 64,
            burst_horizon: 16,
        }
    }
}

impl FaultPlan {
    /// An empty plan (attaching it must be bit-identical to attaching no
    /// injector at all — `tests/fault_recovery.rs` holds the stack to
    /// that).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Expands `seed` into a reproducible schedule shaped by `profile`.
    /// The same `(seed, profile)` pair always yields the same plan.
    pub fn from_seed(seed: u64, profile: &FaultProfile) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut plan = FaultPlan::default();
        let shards = profile.shards.max(1);
        let job_horizon = profile.job_horizon.max(1);
        let burst_horizon = profile.burst_horizon.max(1);
        let shard_of = |rng: &mut StdRng| match profile.single_shard {
            Some(s) => s.min(shards - 1),
            None => (rng.next_u64() % shards as u64) as usize,
        };
        for _ in 0..profile.worker_crashes {
            let shard = shard_of(&mut rng);
            let job = rng.next_u64() % job_horizon;
            plan.worker.insert((shard, job), WorkerFault::Crash);
        }
        for _ in 0..profile.worker_stalls {
            let shard = shard_of(&mut rng);
            let job = rng.next_u64() % job_horizon;
            let cycles = rng.next_u64() % profile.max_stall_cycles.max(1) + 1;
            // Crashes win collisions: never downgrade a scheduled crash.
            plan.worker
                .entry((shard, job))
                .or_insert(WorkerFault::Stall { cycles });
        }
        for _ in 0..profile.link_drops {
            plan.link
                .insert(rng.next_u64() % burst_horizon, LinkFault::Drop);
        }
        for _ in 0..profile.link_corruptions {
            plan.link
                .entry(rng.next_u64() % burst_horizon)
                .or_insert(LinkFault::Corrupt);
        }
        plan
    }

    /// Schedules a worker crash on `shard` at its `job`-th executable job.
    pub fn crash_at(mut self, shard: usize, job: u64) -> Self {
        self.worker.insert((shard, job), WorkerFault::Crash);
        self
    }

    /// Schedules a worker stall of `cycles` modeled cycles on `shard` at
    /// its `job`-th executable job.
    pub fn stall_at(mut self, shard: usize, job: u64, cycles: u64) -> Self {
        self.worker
            .insert((shard, job), WorkerFault::Stall { cycles });
        self
    }

    /// Schedules a message drop on the `burst`-th staged interconnect
    /// burst.
    pub fn drop_burst(mut self, burst: u64) -> Self {
        self.link.insert(burst, LinkFault::Drop);
        self
    }

    /// Schedules detected corruption on the `burst`-th staged interconnect
    /// burst.
    pub fn corrupt_burst(mut self, burst: u64) -> Self {
        self.link.insert(burst, LinkFault::Corrupt);
        self
    }

    /// Drops every burst staged while the modeled clock is in
    /// `[start, end)` — a full link outage (network partition) for that
    /// span of modeled time.
    pub fn drop_window(mut self, start: u64, end: u64) -> Self {
        self.link_windows.push(LinkWindow {
            start,
            end,
            fault: LinkFault::Drop,
        });
        self
    }

    /// Corrupts (detectably) every burst staged while the modeled clock is
    /// in `[start, end)`.
    pub fn corrupt_window(mut self, start: u64, end: u64) -> Self {
        self.link_windows.push(LinkWindow {
            start,
            end,
            fault: LinkFault::Corrupt,
        });
        self
    }

    /// The cycle-window link-fault schedules.
    pub fn link_windows(&self) -> &[LinkWindow] {
        &self.link_windows
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.worker.is_empty() && self.link.is_empty() && self.link_windows.is_empty()
    }

    /// Number of scheduled faults (worker + link + link windows).
    pub fn len(&self) -> usize {
        self.worker.len() + self.link.len() + self.link_windows.len()
    }
}

/// Counters of the faults an injector actually fired (a schedule may
/// outlive a short workload — unfired faults are not counted).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Worker crashes fired.
    pub worker_crashes: u64,
    /// Worker stalls fired.
    pub worker_stalls: u64,
    /// Total modeled cycles of all fired stalls.
    pub stall_cycles: u64,
    /// Link bursts dropped.
    pub link_dropped: u64,
    /// Link bursts corrupted (and detected).
    pub link_corrupted: u64,
}

impl FaultStats {
    /// Total faults fired.
    pub fn injected(&self) -> u64 {
        self.worker_crashes + self.worker_stalls + self.link_dropped + self.link_corrupted
    }
}

/// The live injection state wired into a cluster: an immutable
/// [`FaultPlan`] plus the per-shard job counters and the global burst
/// counter that advance as the cluster makes progress.
///
/// Thread-safe (`&self` everywhere — shard workers and the transfer path
/// consult it concurrently). Wrap it in an `Arc` and hand it to
/// `ClusterOptions::fault`; a cluster built without one pays nothing.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    /// Per-shard executable-job counters.
    jobs: Vec<AtomicU64>,
    /// Cluster-wide staged-burst counter.
    bursts: AtomicU64,
    worker_crashes: AtomicU64,
    worker_stalls: AtomicU64,
    stall_cycles: AtomicU64,
    link_dropped: AtomicU64,
    link_corrupted: AtomicU64,
}

impl FaultInjector {
    /// Builds an injector over `plan` for a cluster of `shards` shards.
    pub fn new(plan: FaultPlan, shards: usize) -> Self {
        FaultInjector {
            plan,
            jobs: (0..shards.max(1)).map(|_| AtomicU64::new(0)).collect(),
            bursts: AtomicU64::new(0),
            worker_crashes: AtomicU64::new(0),
            worker_stalls: AtomicU64::new(0),
            stall_cycles: AtomicU64::new(0),
            link_dropped: AtomicU64::new(0),
            link_corrupted: AtomicU64::new(0),
        }
    }

    /// The schedule this injector follows.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Advances `shard`'s executable-job counter and returns the fault
    /// scheduled for this job, if any. Called by the shard worker once per
    /// macro/micro job, *before* execution.
    pub fn worker_fault(&self, shard: usize) -> Option<WorkerFault> {
        let idx = self.jobs.get(shard)?.fetch_add(1, Ordering::Relaxed);
        let fault = self.plan.worker.get(&(shard, idx)).copied();
        match fault {
            Some(WorkerFault::Crash) => {
                self.worker_crashes.fetch_add(1, Ordering::Relaxed);
            }
            Some(WorkerFault::Stall { cycles }) => {
                self.worker_stalls.fetch_add(1, Ordering::Relaxed);
                self.stall_cycles.fetch_add(cycles, Ordering::Relaxed);
            }
            None => {}
        }
        fault
    }

    /// Advances the staged-burst counter and returns the fault scheduled
    /// for this burst by **index**, if any. Cycle-window schedules are not
    /// consulted — use [`link_fault_at`](FaultInjector::link_fault_at)
    /// when the modeled clock is available.
    pub fn link_fault(&self) -> Option<LinkFault> {
        let idx = self.bursts.fetch_add(1, Ordering::Relaxed);
        self.count_link(self.plan.link.get(&idx).copied())
    }

    /// Advances the staged-burst counter and returns the fault scheduled
    /// for this burst, consulting both the by-index schedule and the
    /// cycle-window schedules against modeled cycle `now`. Called by the
    /// cluster's transfer path once per `(src, dst)` message group,
    /// *before* the transfer executes. A by-index fault wins collisions
    /// with a window (one burst, one fault).
    pub fn link_fault_at(&self, now: u64) -> Option<LinkFault> {
        let idx = self.bursts.fetch_add(1, Ordering::Relaxed);
        let fault = self.plan.link.get(&idx).copied().or_else(|| {
            self.plan
                .link_windows
                .iter()
                .find(|w| w.contains(now))
                .map(|w| w.fault)
        });
        self.count_link(fault)
    }

    fn count_link(&self, fault: Option<LinkFault>) -> Option<LinkFault> {
        match fault {
            Some(LinkFault::Drop) => {
                self.link_dropped.fetch_add(1, Ordering::Relaxed);
            }
            Some(LinkFault::Corrupt) => {
                self.link_corrupted.fetch_add(1, Ordering::Relaxed);
            }
            None => {}
        }
        fault
    }

    /// Counters of the faults fired so far.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            worker_crashes: self.worker_crashes.load(Ordering::Relaxed),
            worker_stalls: self.worker_stalls.load(Ordering::Relaxed),
            stall_cycles: self.stall_cycles.load(Ordering::Relaxed),
            link_dropped: self.link_dropped.load(Ordering::Relaxed),
            link_corrupted: self.link_corrupted.load(Ordering::Relaxed),
        }
    }
}

/// A fault injected into one serving **host** (a whole `PimCluster` +
/// `Gateway` behind a fleet router), scheduled on the modeled clock. The
/// host analogue of [`WorkerFault`]: where a worker fault kills one shard
/// thread inside a cluster, a host fault takes the entire host out of the
/// fleet's routing plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostFault {
    /// The host dies permanently: its lease lapses, its sessions are
    /// orphaned, and in-flight results are lost.
    Crash,
    /// The host stops heartbeating for `cycles` modeled cycles (alive but
    /// unresponsive — a GC pause, an overloaded event loop). Its lease may
    /// lapse and its sessions fail over; the host rejoins empty afterward.
    Stall {
        /// Modeled cycles of heartbeat silence.
        cycles: u64,
    },
    /// The host is unreachable from the router (and lease store) for
    /// `cycles` modeled cycles — the host-tier network partition. Same
    /// observable effect as a stall from the fleet's side, but modeled as
    /// a link property, not a host property.
    Partition {
        /// Modeled cycles of unreachability.
        cycles: u64,
    },
}

/// A deterministic schedule of host-level faults on the modeled clock —
/// the `FaultPlan` extension consumed by `pim-fleet`. Events fire when the
/// fleet's tick first observes the modeled clock at or past their cycle.
#[derive(Debug, Clone, Default)]
pub struct HostFaultPlan {
    /// `(cycle, host, fault)` sorted by cycle (ties: host order) — the
    /// fleet consumes this with a cursor, so firing order is total.
    events: Vec<(u64, usize, HostFault)>,
}

/// Shape of a randomly generated [`HostFaultPlan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostFaultProfile {
    /// Hosts faults may land on (`0..hosts`).
    pub hosts: usize,
    /// Host this many crashes are scheduled for — `None` spreads them.
    /// A schedule that crashes *every* host leaves nothing to fail over
    /// to; keep at least one host out of the crash set via
    /// [`spare_host`](HostFaultProfile::spare_host) when the workload must
    /// finish.
    pub single_host: Option<usize>,
    /// Host crashes to schedule.
    pub crashes: usize,
    /// Host stalls to schedule.
    pub stalls: usize,
    /// Partitions to schedule.
    pub partitions: usize,
    /// Stall/partition lengths are drawn from `1..=max_outage_cycles`.
    pub max_outage_cycles: u64,
    /// Fault cycles land in `0..cycle_horizon`.
    pub cycle_horizon: u64,
    /// Never schedule a crash on this host (survivor guarantee).
    pub spare_host: Option<usize>,
}

impl Default for HostFaultProfile {
    fn default() -> Self {
        HostFaultProfile {
            hosts: 2,
            single_host: None,
            crashes: 1,
            stalls: 1,
            partitions: 1,
            max_outage_cycles: 50_000,
            cycle_horizon: 200_000,
            spare_host: None,
        }
    }
}

impl HostFaultPlan {
    /// An empty plan.
    pub fn none() -> Self {
        HostFaultPlan::default()
    }

    /// Expands `seed` into a reproducible host-fault schedule shaped by
    /// `profile`. The same `(seed, profile)` pair always yields the same
    /// plan.
    pub fn from_seed(seed: u64, profile: &HostFaultProfile) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let hosts = profile.hosts.max(1);
        let horizon = profile.cycle_horizon.max(1);
        let mut plan = HostFaultPlan::default();
        let host_of = |rng: &mut StdRng| match profile.single_host {
            Some(h) => h.min(hosts - 1),
            None => (rng.next_u64() % hosts as u64) as usize,
        };
        for _ in 0..profile.crashes {
            let mut host = host_of(&mut rng);
            if Some(host) == profile.spare_host {
                host = (host + 1) % hosts;
            }
            let cycle = rng.next_u64() % horizon;
            plan.events.push((cycle, host, HostFault::Crash));
        }
        for _ in 0..profile.stalls {
            let host = host_of(&mut rng);
            let cycle = rng.next_u64() % horizon;
            let cycles = rng.next_u64() % profile.max_outage_cycles.max(1) + 1;
            plan.events.push((cycle, host, HostFault::Stall { cycles }));
        }
        for _ in 0..profile.partitions {
            let host = host_of(&mut rng);
            let cycle = rng.next_u64() % horizon;
            let cycles = rng.next_u64() % profile.max_outage_cycles.max(1) + 1;
            plan.events
                .push((cycle, host, HostFault::Partition { cycles }));
        }
        plan.normalize();
        plan
    }

    /// Schedules a permanent host crash at modeled cycle `cycle`.
    pub fn crash_at(mut self, host: usize, cycle: u64) -> Self {
        self.events.push((cycle, host, HostFault::Crash));
        self.normalize();
        self
    }

    /// Schedules a heartbeat stall of `cycles` modeled cycles starting at
    /// `cycle`.
    pub fn stall_at(mut self, host: usize, cycle: u64, cycles: u64) -> Self {
        self.events.push((cycle, host, HostFault::Stall { cycles }));
        self.normalize();
        self
    }

    /// Schedules a router-side partition of `cycles` modeled cycles
    /// starting at `cycle`.
    pub fn partition_at(mut self, host: usize, cycle: u64, cycles: u64) -> Self {
        self.events
            .push((cycle, host, HostFault::Partition { cycles }));
        self.normalize();
        self
    }

    fn normalize(&mut self) {
        self.events.sort_by_key(|&(cycle, host, _)| (cycle, host));
    }

    /// The schedule, sorted by `(cycle, host)`.
    pub fn events(&self) -> &[(u64, usize, HostFault)] {
        &self.events
    }

    /// Crashes scheduled for `host` (the fleet's failover counters are
    /// checked against this).
    pub fn crashes_of(&self, host: usize) -> usize {
        self.events
            .iter()
            .filter(|&&(_, h, f)| h == host && f == HostFault::Crash)
            .count()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled host faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }
}

impl MetricsSource for FaultInjector {
    fn fill_metrics(&self, snap: &mut MetricsSnapshot) {
        let stats = self.stats();
        snap.set_counter("fault.injected", stats.injected());
        snap.set_counter("fault.worker_crashes", stats.worker_crashes);
        snap.set_counter("fault.worker_stalls", stats.worker_stalls);
        snap.set_counter("fault.worker_stall_cycles", stats.stall_cycles);
        snap.set_counter("fault.link_dropped", stats.link_dropped);
        snap.set_counter("fault.link_corrupted", stats.link_corrupted);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_is_reproducible() {
        let profile = FaultProfile {
            shards: 4,
            worker_crashes: 3,
            worker_stalls: 3,
            link_drops: 2,
            link_corruptions: 2,
            ..FaultProfile::default()
        };
        let a = FaultPlan::from_seed(42, &profile);
        let b = FaultPlan::from_seed(42, &profile);
        assert_eq!(a.worker, b.worker);
        assert_eq!(a.link, b.link);
        assert!(!a.is_empty());
        // A different seed yields a different schedule (overwhelmingly).
        let c = FaultPlan::from_seed(43, &profile);
        assert!(a.worker != c.worker || a.link != c.link);
    }

    #[test]
    fn single_shard_profile_confines_worker_faults() {
        let profile = FaultProfile {
            shards: 8,
            single_shard: Some(3),
            worker_crashes: 5,
            worker_stalls: 5,
            ..FaultProfile::default()
        };
        let plan = FaultPlan::from_seed(7, &profile);
        assert!(plan.worker.keys().all(|&(shard, _)| shard == 3));
    }

    #[test]
    fn injector_fires_exactly_on_schedule() {
        let plan = FaultPlan::none()
            .crash_at(1, 2)
            .stall_at(0, 1, 500)
            .drop_burst(1)
            .corrupt_burst(3);
        let inj = FaultInjector::new(plan, 2);
        // Shard 0: jobs 0, 1 (stall), 2.
        assert_eq!(inj.worker_fault(0), None);
        assert_eq!(
            inj.worker_fault(0),
            Some(WorkerFault::Stall { cycles: 500 })
        );
        assert_eq!(inj.worker_fault(0), None);
        // Shard 1 counts independently: jobs 0, 1, 2 (crash).
        assert_eq!(inj.worker_fault(1), None);
        assert_eq!(inj.worker_fault(1), None);
        assert_eq!(inj.worker_fault(1), Some(WorkerFault::Crash));
        // Bursts: 0, 1 (drop), 2, 3 (corrupt).
        assert_eq!(inj.link_fault(), None);
        assert_eq!(inj.link_fault(), Some(LinkFault::Drop));
        assert_eq!(inj.link_fault(), None);
        assert_eq!(inj.link_fault(), Some(LinkFault::Corrupt));
        let stats = inj.stats();
        assert_eq!(stats.worker_crashes, 1);
        assert_eq!(stats.worker_stalls, 1);
        assert_eq!(stats.stall_cycles, 500);
        assert_eq!(stats.link_dropped, 1);
        assert_eq!(stats.link_corrupted, 1);
        assert_eq!(stats.injected(), 4);
    }

    #[test]
    fn metrics_render_fault_counters() {
        let inj = FaultInjector::new(FaultPlan::none().crash_at(0, 0), 1);
        inj.worker_fault(0);
        let mut snap = MetricsSnapshot::new();
        snap.absorb(&inj);
        assert!(snap.to_json().contains("\"fault.injected\": 1"));
    }

    #[test]
    fn out_of_range_shard_is_inert() {
        let inj = FaultInjector::new(FaultPlan::none().crash_at(9, 0), 2);
        assert_eq!(inj.worker_fault(9), None);
    }

    #[test]
    fn cycle_window_faults_every_burst_inside_the_window() {
        let inj = FaultInjector::new(FaultPlan::none().drop_window(100, 200), 1);
        // Outside the window: clean, however many bursts are staged.
        assert_eq!(inj.link_fault_at(0), None);
        assert_eq!(inj.link_fault_at(99), None);
        // Inside: every burst drops, not just one index.
        assert_eq!(inj.link_fault_at(100), Some(LinkFault::Drop));
        assert_eq!(inj.link_fault_at(150), Some(LinkFault::Drop));
        assert_eq!(inj.link_fault_at(199), Some(LinkFault::Drop));
        // End is exclusive.
        assert_eq!(inj.link_fault_at(200), None);
        assert_eq!(inj.stats().link_dropped, 3);
    }

    #[test]
    fn index_fault_wins_collision_with_window() {
        let plan = FaultPlan::none().corrupt_burst(0).drop_window(0, 10);
        let inj = FaultInjector::new(plan, 1);
        assert_eq!(inj.link_fault_at(5), Some(LinkFault::Corrupt));
        let stats = inj.stats();
        assert_eq!(stats.link_corrupted, 1);
        assert_eq!(stats.link_dropped, 0);
    }

    #[test]
    fn by_index_link_fault_ignores_windows() {
        let inj = FaultInjector::new(FaultPlan::none().drop_window(0, u64::MAX), 1);
        assert_eq!(inj.link_fault(), None, "index-only path must skip windows");
        assert_eq!(inj.link_fault_at(0), Some(LinkFault::Drop));
    }

    #[test]
    fn host_plan_seed_is_reproducible_and_sorted() {
        let profile = HostFaultProfile {
            hosts: 4,
            crashes: 2,
            stalls: 2,
            partitions: 2,
            ..HostFaultProfile::default()
        };
        let a = HostFaultPlan::from_seed(7, &profile);
        let b = HostFaultPlan::from_seed(7, &profile);
        assert_eq!(a.events(), b.events());
        assert_eq!(a.len(), 6);
        assert!(a.events().windows(2).all(|w| w[0].0 <= w[1].0), "sorted");
        let c = HostFaultPlan::from_seed(8, &profile);
        assert_ne!(a.events(), c.events());
    }

    #[test]
    fn host_plan_spare_host_never_crashes() {
        let profile = HostFaultProfile {
            hosts: 3,
            crashes: 12,
            stalls: 0,
            partitions: 0,
            spare_host: Some(2),
            ..HostFaultProfile::default()
        };
        let plan = HostFaultPlan::from_seed(99, &profile);
        assert!(plan
            .events()
            .iter()
            .all(|&(_, host, f)| f != HostFault::Crash || host != 2));
    }

    #[test]
    fn host_plan_builders_count_crashes() {
        let plan = HostFaultPlan::none()
            .crash_at(1, 50_000)
            .stall_at(0, 10_000, 5_000)
            .partition_at(2, 20_000, 8_000);
        assert_eq!(plan.len(), 3);
        assert_eq!(plan.crashes_of(1), 1);
        assert_eq!(plan.crashes_of(0), 0);
        assert_eq!(plan.events()[0].1, 0, "sorted by cycle");
    }
}
