//! # pim-fault
//!
//! **Deterministic fault injection** for the PyPIM cluster: a seeded
//! schedule of shard-worker crashes, worker stalls (modeled cycles), and
//! interconnect message drops/corruption, consumed by `pim-cluster`'s
//! shard workers and transfer path through an `Option<Arc<FaultInjector>>`
//! hook — **zero-cost and bit-identical when absent**.
//!
//! Faults trigger on *logical* progress counters, never on wall-clock
//! time: worker faults fire on the N-th executable job a shard receives,
//! link faults on the N-th message burst the interconnect stages. The same
//! workload therefore hits the same faults on every run, which is what
//! makes recovery testable: `FaultPlan::from_seed(seed, profile)` expands
//! a `u64` seed into a reproducible schedule, and a failing seed from a
//! property test replays exactly.
//!
//! The injector counts what it fired ([`FaultStats`]) and reports it as
//! `fault.*` metrics into every [`MetricsSnapshot`]
//! (`fault.injected`, `fault.worker_crashes`, `fault.worker_stall_cycles`,
//! `fault.link_dropped`, `fault.link_corrupted`).
//!
//! What each fault means (the fault model — see `README.md`):
//!
//! * **Crash** — the shard worker thread exits before executing the job.
//!   Every job queued to the shard (including the one that triggered the
//!   crash) fails with a typed transient error; the cluster's supervisor
//!   respawns the worker on the next submission and restores its state
//!   from the last checkpoint plus the bounded replay log.
//! * **Stall** — the shard charges `cycles` extra modeled cycles before
//!   executing the job (the worker is alive but slow). Data is unaffected;
//!   deadlines on the modeled clock observe the delay.
//! * **Drop / Corrupt** — a staged interconnect burst is lost in flight /
//!   fails its integrity check at the receiver. Either way *nothing* of
//!   the transfer lands (corruption is detected, never silent) and the
//!   batch fails with a typed transient error, so a retry re-runs it from
//!   intact state.
//!
//! [`MetricsSnapshot`]: pim_telemetry::MetricsSnapshot

use pim_telemetry::{MetricsSnapshot, MetricsSource};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// A fault injected into one shard worker, triggered by the index of the
/// executable job (macro or micro batch) the shard receives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerFault {
    /// The worker thread exits without executing the job: every job queued
    /// to the shard fails with a typed transient error and the supervisor
    /// respawns the worker on the next submission.
    Crash,
    /// The worker charges this many extra modeled cycles before executing
    /// the job (alive but slow — data is unaffected).
    Stall {
        /// Modeled cycles added to the shard's cycle counter.
        cycles: u64,
    },
}

/// A fault injected into one staged interconnect burst, triggered by the
/// global burst index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkFault {
    /// The message is lost in flight; nothing of the transfer lands.
    Drop,
    /// The message fails its integrity check at the receiver; the
    /// corrupted payload is discarded, so nothing of the transfer lands
    /// (corruption is always *detected*, never silent).
    Corrupt,
}

/// A deterministic schedule of faults keyed by logical progress counters.
///
/// Build one explicitly ([`crash_at`](FaultPlan::crash_at) and friends)
/// for targeted tests, or expand a seed with
/// [`from_seed`](FaultPlan::from_seed) for property-based coverage. The
/// plan is immutable once wrapped in a [`FaultInjector`].
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// `(shard, job index) -> fault`. Job indices count the executable
    /// jobs (macro/micro batches) a shard receives, starting at 0;
    /// control-plane jobs (stats snapshots, profiler resets) do not
    /// advance the counter, so observability calls never shift a schedule.
    worker: HashMap<(usize, u64), WorkerFault>,
    /// `burst index -> fault`. Burst indices count the message groups the
    /// interconnect stages cluster-wide, starting at 0.
    link: HashMap<u64, LinkFault>,
}

/// Shape of a randomly generated [`FaultPlan`] — how many faults of each
/// kind [`FaultPlan::from_seed`] scatters over which index ranges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultProfile {
    /// Shards faults may land on (`0..shards`).
    pub shards: usize,
    /// Restrict worker faults to this one shard (the "single-shard fault
    /// schedule" of the recovery contract); `None` spreads them.
    pub single_shard: Option<usize>,
    /// Number of worker crashes to schedule.
    pub worker_crashes: usize,
    /// Number of worker stalls to schedule.
    pub worker_stalls: usize,
    /// Stall lengths are drawn from `1..=max_stall_cycles`.
    pub max_stall_cycles: u64,
    /// Number of link message drops to schedule.
    pub link_drops: usize,
    /// Number of link message corruptions to schedule.
    pub link_corruptions: usize,
    /// Worker faults land on job indices `0..job_horizon`.
    pub job_horizon: u64,
    /// Link faults land on burst indices `0..burst_horizon`.
    pub burst_horizon: u64,
}

impl Default for FaultProfile {
    fn default() -> Self {
        FaultProfile {
            shards: 1,
            single_shard: None,
            worker_crashes: 1,
            worker_stalls: 1,
            max_stall_cycles: 10_000,
            link_drops: 1,
            link_corruptions: 1,
            job_horizon: 64,
            burst_horizon: 16,
        }
    }
}

impl FaultPlan {
    /// An empty plan (attaching it must be bit-identical to attaching no
    /// injector at all — `tests/fault_recovery.rs` holds the stack to
    /// that).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Expands `seed` into a reproducible schedule shaped by `profile`.
    /// The same `(seed, profile)` pair always yields the same plan.
    pub fn from_seed(seed: u64, profile: &FaultProfile) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut plan = FaultPlan::default();
        let shards = profile.shards.max(1);
        let job_horizon = profile.job_horizon.max(1);
        let burst_horizon = profile.burst_horizon.max(1);
        let shard_of = |rng: &mut StdRng| match profile.single_shard {
            Some(s) => s.min(shards - 1),
            None => (rng.next_u64() % shards as u64) as usize,
        };
        for _ in 0..profile.worker_crashes {
            let shard = shard_of(&mut rng);
            let job = rng.next_u64() % job_horizon;
            plan.worker.insert((shard, job), WorkerFault::Crash);
        }
        for _ in 0..profile.worker_stalls {
            let shard = shard_of(&mut rng);
            let job = rng.next_u64() % job_horizon;
            let cycles = rng.next_u64() % profile.max_stall_cycles.max(1) + 1;
            // Crashes win collisions: never downgrade a scheduled crash.
            plan.worker
                .entry((shard, job))
                .or_insert(WorkerFault::Stall { cycles });
        }
        for _ in 0..profile.link_drops {
            plan.link
                .insert(rng.next_u64() % burst_horizon, LinkFault::Drop);
        }
        for _ in 0..profile.link_corruptions {
            plan.link
                .entry(rng.next_u64() % burst_horizon)
                .or_insert(LinkFault::Corrupt);
        }
        plan
    }

    /// Schedules a worker crash on `shard` at its `job`-th executable job.
    pub fn crash_at(mut self, shard: usize, job: u64) -> Self {
        self.worker.insert((shard, job), WorkerFault::Crash);
        self
    }

    /// Schedules a worker stall of `cycles` modeled cycles on `shard` at
    /// its `job`-th executable job.
    pub fn stall_at(mut self, shard: usize, job: u64, cycles: u64) -> Self {
        self.worker
            .insert((shard, job), WorkerFault::Stall { cycles });
        self
    }

    /// Schedules a message drop on the `burst`-th staged interconnect
    /// burst.
    pub fn drop_burst(mut self, burst: u64) -> Self {
        self.link.insert(burst, LinkFault::Drop);
        self
    }

    /// Schedules detected corruption on the `burst`-th staged interconnect
    /// burst.
    pub fn corrupt_burst(mut self, burst: u64) -> Self {
        self.link.insert(burst, LinkFault::Corrupt);
        self
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.worker.is_empty() && self.link.is_empty()
    }

    /// Number of scheduled faults (worker + link).
    pub fn len(&self) -> usize {
        self.worker.len() + self.link.len()
    }
}

/// Counters of the faults an injector actually fired (a schedule may
/// outlive a short workload — unfired faults are not counted).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Worker crashes fired.
    pub worker_crashes: u64,
    /// Worker stalls fired.
    pub worker_stalls: u64,
    /// Total modeled cycles of all fired stalls.
    pub stall_cycles: u64,
    /// Link bursts dropped.
    pub link_dropped: u64,
    /// Link bursts corrupted (and detected).
    pub link_corrupted: u64,
}

impl FaultStats {
    /// Total faults fired.
    pub fn injected(&self) -> u64 {
        self.worker_crashes + self.worker_stalls + self.link_dropped + self.link_corrupted
    }
}

/// The live injection state wired into a cluster: an immutable
/// [`FaultPlan`] plus the per-shard job counters and the global burst
/// counter that advance as the cluster makes progress.
///
/// Thread-safe (`&self` everywhere — shard workers and the transfer path
/// consult it concurrently). Wrap it in an `Arc` and hand it to
/// `ClusterOptions::fault`; a cluster built without one pays nothing.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    /// Per-shard executable-job counters.
    jobs: Vec<AtomicU64>,
    /// Cluster-wide staged-burst counter.
    bursts: AtomicU64,
    worker_crashes: AtomicU64,
    worker_stalls: AtomicU64,
    stall_cycles: AtomicU64,
    link_dropped: AtomicU64,
    link_corrupted: AtomicU64,
}

impl FaultInjector {
    /// Builds an injector over `plan` for a cluster of `shards` shards.
    pub fn new(plan: FaultPlan, shards: usize) -> Self {
        FaultInjector {
            plan,
            jobs: (0..shards.max(1)).map(|_| AtomicU64::new(0)).collect(),
            bursts: AtomicU64::new(0),
            worker_crashes: AtomicU64::new(0),
            worker_stalls: AtomicU64::new(0),
            stall_cycles: AtomicU64::new(0),
            link_dropped: AtomicU64::new(0),
            link_corrupted: AtomicU64::new(0),
        }
    }

    /// The schedule this injector follows.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Advances `shard`'s executable-job counter and returns the fault
    /// scheduled for this job, if any. Called by the shard worker once per
    /// macro/micro job, *before* execution.
    pub fn worker_fault(&self, shard: usize) -> Option<WorkerFault> {
        let idx = self.jobs.get(shard)?.fetch_add(1, Ordering::Relaxed);
        let fault = self.plan.worker.get(&(shard, idx)).copied();
        match fault {
            Some(WorkerFault::Crash) => {
                self.worker_crashes.fetch_add(1, Ordering::Relaxed);
            }
            Some(WorkerFault::Stall { cycles }) => {
                self.worker_stalls.fetch_add(1, Ordering::Relaxed);
                self.stall_cycles.fetch_add(cycles, Ordering::Relaxed);
            }
            None => {}
        }
        fault
    }

    /// Advances the staged-burst counter and returns the fault scheduled
    /// for this burst, if any. Called by the cluster's transfer path once
    /// per `(src, dst)` message group, *before* the transfer executes.
    pub fn link_fault(&self) -> Option<LinkFault> {
        let idx = self.bursts.fetch_add(1, Ordering::Relaxed);
        let fault = self.plan.link.get(&idx).copied();
        match fault {
            Some(LinkFault::Drop) => {
                self.link_dropped.fetch_add(1, Ordering::Relaxed);
            }
            Some(LinkFault::Corrupt) => {
                self.link_corrupted.fetch_add(1, Ordering::Relaxed);
            }
            None => {}
        }
        fault
    }

    /// Counters of the faults fired so far.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            worker_crashes: self.worker_crashes.load(Ordering::Relaxed),
            worker_stalls: self.worker_stalls.load(Ordering::Relaxed),
            stall_cycles: self.stall_cycles.load(Ordering::Relaxed),
            link_dropped: self.link_dropped.load(Ordering::Relaxed),
            link_corrupted: self.link_corrupted.load(Ordering::Relaxed),
        }
    }
}

impl MetricsSource for FaultInjector {
    fn fill_metrics(&self, snap: &mut MetricsSnapshot) {
        let stats = self.stats();
        snap.set_counter("fault.injected", stats.injected());
        snap.set_counter("fault.worker_crashes", stats.worker_crashes);
        snap.set_counter("fault.worker_stalls", stats.worker_stalls);
        snap.set_counter("fault.worker_stall_cycles", stats.stall_cycles);
        snap.set_counter("fault.link_dropped", stats.link_dropped);
        snap.set_counter("fault.link_corrupted", stats.link_corrupted);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_is_reproducible() {
        let profile = FaultProfile {
            shards: 4,
            worker_crashes: 3,
            worker_stalls: 3,
            link_drops: 2,
            link_corruptions: 2,
            ..FaultProfile::default()
        };
        let a = FaultPlan::from_seed(42, &profile);
        let b = FaultPlan::from_seed(42, &profile);
        assert_eq!(a.worker, b.worker);
        assert_eq!(a.link, b.link);
        assert!(!a.is_empty());
        // A different seed yields a different schedule (overwhelmingly).
        let c = FaultPlan::from_seed(43, &profile);
        assert!(a.worker != c.worker || a.link != c.link);
    }

    #[test]
    fn single_shard_profile_confines_worker_faults() {
        let profile = FaultProfile {
            shards: 8,
            single_shard: Some(3),
            worker_crashes: 5,
            worker_stalls: 5,
            ..FaultProfile::default()
        };
        let plan = FaultPlan::from_seed(7, &profile);
        assert!(plan.worker.keys().all(|&(shard, _)| shard == 3));
    }

    #[test]
    fn injector_fires_exactly_on_schedule() {
        let plan = FaultPlan::none()
            .crash_at(1, 2)
            .stall_at(0, 1, 500)
            .drop_burst(1)
            .corrupt_burst(3);
        let inj = FaultInjector::new(plan, 2);
        // Shard 0: jobs 0, 1 (stall), 2.
        assert_eq!(inj.worker_fault(0), None);
        assert_eq!(
            inj.worker_fault(0),
            Some(WorkerFault::Stall { cycles: 500 })
        );
        assert_eq!(inj.worker_fault(0), None);
        // Shard 1 counts independently: jobs 0, 1, 2 (crash).
        assert_eq!(inj.worker_fault(1), None);
        assert_eq!(inj.worker_fault(1), None);
        assert_eq!(inj.worker_fault(1), Some(WorkerFault::Crash));
        // Bursts: 0, 1 (drop), 2, 3 (corrupt).
        assert_eq!(inj.link_fault(), None);
        assert_eq!(inj.link_fault(), Some(LinkFault::Drop));
        assert_eq!(inj.link_fault(), None);
        assert_eq!(inj.link_fault(), Some(LinkFault::Corrupt));
        let stats = inj.stats();
        assert_eq!(stats.worker_crashes, 1);
        assert_eq!(stats.worker_stalls, 1);
        assert_eq!(stats.stall_cycles, 500);
        assert_eq!(stats.link_dropped, 1);
        assert_eq!(stats.link_corrupted, 1);
        assert_eq!(stats.injected(), 4);
    }

    #[test]
    fn metrics_render_fault_counters() {
        let inj = FaultInjector::new(FaultPlan::none().crash_at(0, 0), 1);
        inj.worker_fault(0);
        let mut snap = MetricsSnapshot::new();
        snap.absorb(&inj);
        assert!(snap.to_json().contains("\"fault.injected\": 1"));
    }

    #[test]
    fn out_of_range_shard_is_inert() {
        let inj = FaultInjector::new(FaultPlan::none().crash_at(9, 0), 2);
        assert_eq!(inj.worker_fault(9), None);
    }
}
