//! Property tests pinning the log-bucketed histogram's accuracy claim:
//! p50/p99/p999 read out within **one bucket's relative error** of the
//! exact (nearest-rank) percentiles, on adversarial sample distributions —
//! heavy tails, point masses, exponential spreads, and tiny values.
//!
//! With `SUB_BUCKETS` sub-buckets per power of two, a bucket holding value
//! `v` is at most `max(1, v / SUB_BUCKETS)` wide, so that is the error
//! budget asserted here — both for cumulative readout
//! ([`Histogram::quantile`]) and for windowed readout through a
//! [`HistogramState`] diff.

use pim_telemetry::{Histogram, SUB_BUCKETS};
use proptest::prelude::*;

/// Exact nearest-rank percentile: the sample at rank `ceil(q·n)` (1-based)
/// of the sorted data — the same rank definition the histogram walks
/// cumulative bucket counts with.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank.min(sorted.len()) - 1]
}

/// One bucket's width at value `v`: buckets below `SUB_BUCKETS` are exact
/// (width 1); above, each power of two splits into `SUB_BUCKETS` buckets.
fn bucket_error_budget(v: u64) -> u64 {
    (v / SUB_BUCKETS).max(1)
}

/// Decodes one generated `(class, magnitude)` pair into an adversarial
/// sample: tiny exact values, mid-range clusters, power-of-two heavy tails,
/// and a point mass — the shapes that stress log bucketing the most.
fn decode_sample(class: u8, magnitude: u16) -> u64 {
    match class % 4 {
        0 => u64::from(magnitude) % 40,          // tiny: exact buckets
        1 => (u64::from(magnitude) + 1) * 1_000, // mid-range spread
        2 => (1u64 << (magnitude % 40 + 10)) + u64::from(class), // heavy tail
        _ => 777_777,                            // point mass (ties)
    }
}

const QUANTILES: [f64; 3] = [0.50, 0.99, 0.999];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Cumulative readout: every headline quantile lands within one
    /// bucket's width of the exact nearest-rank percentile.
    #[test]
    fn bucketed_quantiles_match_exact_within_one_bucket(
        raw in proptest::collection::vec(any::<(u8, u16)>(), 1..512),
    ) {
        let samples: Vec<u64> = raw.iter().map(|&(c, m)| decode_sample(c, m)).collect();
        let h = Histogram::new();
        for &v in &samples {
            h.record(v);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in QUANTILES {
            let exact = exact_quantile(&sorted, q);
            let got = h.quantile(q);
            prop_assert!(
                got.abs_diff(exact) <= bucket_error_budget(exact),
                "q={q}: got {got}, exact {exact}, budget {} over {} samples",
                bucket_error_budget(exact),
                samples.len()
            );
        }
        // The summary agrees with the per-quantile readout and the exact
        // extremes (min/max are tracked exactly on the cumulative path).
        let s = h.snapshot();
        prop_assert_eq!(s.min, sorted[0]);
        prop_assert_eq!(s.max, *sorted.last().unwrap());
        prop_assert_eq!(s.p999, h.quantile(0.999));
    }

    /// Windowed readout: diffing two bucket states isolates the second
    /// half of the stream, and its quantiles hit the same one-bucket error
    /// bound against exact percentiles of that half alone.
    #[test]
    fn windowed_state_diff_quantiles_match_exact(
        first in proptest::collection::vec(any::<(u8, u16)>(), 1..256),
        second in proptest::collection::vec(any::<(u8, u16)>(), 1..256),
    ) {
        let h = Histogram::new();
        for &(c, m) in &first {
            h.record(decode_sample(c, m));
        }
        let baseline = h.state();
        let window_samples: Vec<u64> =
            second.iter().map(|&(c, m)| decode_sample(c, m)).collect();
        for &v in &window_samples {
            h.record(v);
        }
        let window = h.state().since(&baseline);
        prop_assert_eq!(window.count(), window_samples.len() as u64);
        prop_assert_eq!(window.sum(), window_samples.iter().sum::<u64>());
        let mut sorted = window_samples;
        sorted.sort_unstable();
        for q in QUANTILES {
            let exact = exact_quantile(&sorted, q);
            let got = window.quantile(q);
            // Windowed max clamps to a bucket bound (exact extremes don't
            // survive a diff), so the budget covers one bucket at the got
            // value too.
            let budget = bucket_error_budget(exact).max(bucket_error_budget(got));
            prop_assert!(
                got.abs_diff(exact) <= budget,
                "windowed q={q}: got {got}, exact {exact}, budget {budget}"
            );
        }
    }
}
