//! Windowed time-series sampling: turn the cumulative [`MetricsSnapshot`]
//! world into a ring of per-window deltas on the modeled clock.
//!
//! A [`WindowSampler`] is fed `(now, snapshot)` pairs every time the caller
//! crosses a window boundary ([`ready`](WindowSampler::ready) says when).
//! Each call closes one [`WindowSample`]: counters become deltas over the
//! window, gauges stay instantaneous, and histograms registered through
//! [`watch_histogram`](WindowSampler::watch_histogram) are diffed at full
//! bucket resolution ([`HistogramState::since`]) so per-window p50/p99/p999
//! are real windowed percentiles, not cumulative ones.
//!
//! Nothing here touches the record path: sampling cost is paid only by the
//! caller that asks for windows, which keeps the "zero-cost when unused"
//! property of the rest of the crate.

use std::collections::{BTreeMap, VecDeque};

use crate::metrics::{Histogram, HistogramSnapshot, HistogramState, MetricsSnapshot};

/// One closed window: deltas of every counter, instantaneous gauges, and
/// windowed summaries of every watched histogram over `[start, end)`
/// modeled cycles.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSample {
    /// Zero-based index of this window in the series.
    pub index: u64,
    /// First modeled cycle covered by this window.
    pub start: u64,
    /// Modeled cycle the window was closed at (exclusive).
    pub end: u64,
    /// Counter increases over the window, by metric name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values at window close, by metric name.
    pub gauges: BTreeMap<String, i64>,
    /// Windowed histogram summaries (watched histograms only).
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl WindowSample {
    /// Window width in modeled cycles (at least 1, so rates never divide
    /// by zero even for a degenerate window).
    pub fn width(&self) -> u64 {
        (self.end - self.start).max(1)
    }

    /// Delta of counter `name` over the window (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge `name` at window close (0 when absent).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Windowed summary of watched histogram `name`.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Counter `name` as a per-second rate, given the modeled clock rate.
    pub fn rate_per_sec(&self, name: &str, clock_hz: f64) -> f64 {
        self.counter(name) as f64 * clock_hz / self.width() as f64
    }
}

/// Ring of [`WindowSample`]s plus the bookkeeping to close the next one.
///
/// The sampler is passive: it never reads the clock or the registry itself.
/// The driving loop checks [`ready`](WindowSampler::ready) against its own
/// `Telemetry::now()` reads and calls [`sample`](WindowSampler::sample)
/// with a fresh snapshot, which keeps sampling deterministic under a
/// deterministic driver.
pub struct WindowSampler {
    window_cycles: u64,
    capacity: usize,
    next_boundary: u64,
    last_end: u64,
    next_index: u64,
    dropped: u64,
    baseline: MetricsSnapshot,
    watched: Vec<(String, Histogram, HistogramState)>,
    samples: VecDeque<WindowSample>,
}

impl WindowSampler {
    /// A sampler closing a window every `window_cycles` modeled cycles,
    /// keeping the most recent 1024 windows.
    pub fn new(window_cycles: u64) -> Self {
        WindowSampler::with_capacity(window_cycles, 1024)
    }

    /// A sampler keeping at most `capacity` windows (older ones drop off).
    pub fn with_capacity(window_cycles: u64, capacity: usize) -> Self {
        let window_cycles = window_cycles.max(1);
        WindowSampler {
            window_cycles,
            capacity: capacity.max(1),
            next_boundary: window_cycles,
            last_end: 0,
            next_index: 0,
            dropped: 0,
            baseline: MetricsSnapshot::new(),
            watched: Vec::new(),
            samples: VecDeque::new(),
        }
    }

    /// The configured window width in modeled cycles.
    pub fn window_cycles(&self) -> u64 {
        self.window_cycles
    }

    /// Tracks `hist` at full bucket resolution so each window reports real
    /// windowed percentiles for it under `name`. The baseline is the
    /// histogram's state *now*: samples recorded before this call never
    /// appear in a window.
    pub fn watch_histogram(&mut self, name: &str, hist: &Histogram) {
        let state = hist.state();
        self.watched.push((name.to_string(), hist.clone(), state));
    }

    /// True once the modeled clock has crossed the next window boundary.
    pub fn ready(&self, now: u64) -> bool {
        now >= self.next_boundary
    }

    /// Closes the window `[last_end, now)` from `snap` and returns it.
    /// Boundaries stay aligned to the `window_cycles` grid: if the driver
    /// sampled late the closed window is simply wider (visible in
    /// `start`/`end`), and the next boundary is the next grid line after
    /// `now`.
    pub fn sample(&mut self, now: u64, snap: MetricsSnapshot) -> &WindowSample {
        let delta = snap.since(&self.baseline);
        let mut histograms = BTreeMap::new();
        for (name, hist, base) in self.watched.iter_mut() {
            let state = hist.state();
            histograms.insert(name.clone(), state.since(base).summary());
            *base = state;
        }
        let sample = WindowSample {
            index: self.next_index,
            start: self.last_end,
            end: now.max(self.last_end),
            counters: delta.counters,
            gauges: delta.gauges,
            histograms,
        };
        self.baseline = snap;
        self.last_end = sample.end;
        self.next_index += 1;
        self.next_boundary = (now / self.window_cycles + 1) * self.window_cycles;
        if self.samples.len() == self.capacity {
            self.samples.pop_front();
            self.dropped += 1;
        }
        self.samples.push_back(sample);
        self.samples.back().expect("just pushed")
    }

    /// The retained windows, oldest first.
    pub fn samples(&self) -> impl Iterator<Item = &WindowSample> {
        self.samples.iter()
    }

    /// Number of retained windows.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no window has been closed yet.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Most recently closed window.
    pub fn last(&self) -> Option<&WindowSample> {
        self.samples.back()
    }

    /// Windows evicted from the ring because `capacity` was exceeded.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Human-readable table over the retained windows: one row per window
    /// with per-second rates for `counters` (using `clock_hz` to convert
    /// modeled cycles to seconds), instantaneous `gauges`, and
    /// `p50/p99` for watched `histograms`.
    pub fn render_table(
        &self,
        clock_hz: f64,
        counters: &[&str],
        gauges: &[&str],
        histograms: &[&str],
    ) -> String {
        let windows: Vec<WindowSample> = self.samples().cloned().collect();
        render_window_table(&windows, clock_hz, counters, gauges, histograms)
    }
}

/// [`WindowSampler::render_table`] over an already-collected series — for
/// reports (e.g. `pim-loadgen`'s `RunReport::windows`) that carry the
/// window samples without the sampler that produced them.
pub fn render_window_table(
    windows: &[WindowSample],
    clock_hz: f64,
    counters: &[&str],
    gauges: &[&str],
    histograms: &[&str],
) -> String {
    let mut header = vec!["win".to_string(), "cycles".to_string()];
    header.extend(counters.iter().map(|c| format!("{c}/s")));
    header.extend(gauges.iter().map(|g| g.to_string()));
    header.extend(histograms.iter().map(|h| format!("{h} p50/p99")));
    let mut rows = vec![header];
    for s in windows {
        let mut row = vec![s.index.to_string(), format!("{}..{}", s.start, s.end)];
        row.extend(
            counters
                .iter()
                .map(|c| format!("{:.1}", s.rate_per_sec(c, clock_hz))),
        );
        row.extend(gauges.iter().map(|g| s.gauge(g).to_string()));
        row.extend(histograms.iter().map(|h| match s.histogram(h) {
            Some(hs) => format!("{}/{}", hs.p50, hs.p99),
            None => "-".to_string(),
        }));
        rows.push(row);
    }
    let cols = rows[0].len();
    let widths: Vec<usize> = (0..cols)
        .map(|c| rows.iter().map(|r| r[c].len()).max().unwrap_or(0))
        .collect();
    let mut out = String::new();
    for row in &rows {
        out.push(' ');
        for (c, cell) in row.iter().enumerate() {
            out.push_str(&format!(" {cell:>width$}", width = widths[c]));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    #[test]
    fn windows_carry_deltas_not_cumulative_values() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("req");
        let g = reg.gauge("depth");
        let h = reg.histogram("lat");
        let mut sampler = WindowSampler::new(1000);
        sampler.watch_histogram("lat", &h);

        assert!(!sampler.ready(999));
        assert!(sampler.ready(1000));

        c.add(5);
        g.set(2);
        h.record(10);
        h.record(20);
        sampler.sample(1000, reg.snapshot());

        c.add(3);
        g.set(7);
        h.record(40_000);
        let s = sampler.sample(2000, reg.snapshot()).clone();

        assert_eq!(s.index, 1);
        assert_eq!((s.start, s.end), (1000, 2000));
        assert_eq!(s.counter("req"), 3);
        assert_eq!(s.gauge("depth"), 7);
        let lat = s.histogram("lat").unwrap();
        assert_eq!(lat.count, 1);
        assert!(lat.p99 >= 40_000, "windowed p99 {}", lat.p99);
        // Per-second rate: 3 requests over 1000 cycles at 1 MHz = 3000/s.
        assert!((s.rate_per_sec("req", 1e6) - 3000.0).abs() < 1e-9);
    }

    #[test]
    fn boundaries_stay_grid_aligned_after_late_samples() {
        let reg = MetricsRegistry::new();
        let mut sampler = WindowSampler::new(100);
        assert!(sampler.ready(100));
        sampler.sample(100, reg.snapshot());
        assert!(!sampler.ready(199));
        // Driver was busy and samples late, mid-window 3.
        sampler.sample(350, reg.snapshot());
        // Next boundary is the next grid line, not 350 + 100.
        assert!(sampler.ready(400));
        let s = sampler.sample(400, reg.snapshot()).clone();
        assert_eq!((s.start, s.end), (350, 400));
        assert_eq!(sampler.len(), 3);
    }

    #[test]
    fn ring_capacity_evicts_oldest() {
        let reg = MetricsRegistry::new();
        let mut sampler = WindowSampler::with_capacity(10, 2);
        for i in 1..=5u64 {
            sampler.sample(i * 10, reg.snapshot());
        }
        assert_eq!(sampler.len(), 2);
        assert_eq!(sampler.dropped(), 3);
        let idx: Vec<u64> = sampler.samples().map(|s| s.index).collect();
        assert_eq!(idx, vec![3, 4]);
    }

    #[test]
    fn render_table_lists_requested_columns() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("req");
        let h = reg.histogram("lat");
        let mut sampler = WindowSampler::new(1000);
        sampler.watch_histogram("lat", &h);
        c.add(4);
        h.record(123);
        sampler.sample(1000, reg.snapshot());
        let table = sampler.render_table(1e6, &["req"], &["depth"], &["lat"]);
        assert!(table.contains("req/s"), "{table}");
        assert!(table.contains("lat p50/p99"), "{table}");
        assert!(table.contains("0..1000"), "{table}");
    }
}
