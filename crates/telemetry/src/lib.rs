//! # pim-telemetry
//!
//! Unified observability for the PyPIM stack: lock-cheap metrics
//! ([`MetricsRegistry`], [`MetricsSnapshot`]), windowed time series over
//! them ([`WindowSampler`], [`WindowSample`]), span-based tracing on the
//! modeled clock ([`Telemetry`], [`TraceRecorder`]) with counter tracks
//! ([`CounterHandle`]), per-request attribution ([`RequestId`],
//! [`RequestStats`]), and Chrome/Perfetto trace export
//! ([`TraceRecorder::export_chrome_trace`]).
//!
//! The crate deliberately has no dependencies — every layer of the stack
//! (simulator, cluster, device, gateway, benches) links it, so it must be
//! free to thread anywhere. See `README.md` in this crate for metric
//! naming conventions and a walkthrough of adding a span.
//!
//! Everything hangs off a cloneable [`Telemetry`] handle. A
//! [`Telemetry::disabled`] handle makes every record path a single relaxed
//! atomic load, and recording never influences execution, so results are
//! bit-identical and throughput unchanged with telemetry off.

mod chrome;
mod metrics;
mod series;
mod trace;

pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, HistogramState, MetricsRegistry, MetricsSnapshot,
    MetricsSource, SUB_BUCKETS,
};
pub use series::{render_window_table, WindowSample, WindowSampler};
pub use trace::{
    CounterHandle, CounterId, RequestId, RequestStats, SpanGuard, Telemetry, TelemetryConfig,
    TraceEvent, TraceRecorder, TrackHandle, TrackId,
};
