//! Chrome/Perfetto trace-event JSON export.
//!
//! Emits the classic trace-event format (`{"traceEvents": [...]}`) that
//! both `chrome://tracing` and [ui.perfetto.dev](https://ui.perfetto.dev)
//! load directly: one `"M"` (metadata) event naming each track as a thread
//! of a single `pim` process, one `"X"` (complete) event per recorded
//! span, and one `"C"` (counter) event per counter-track sample — Perfetto
//! renders those as value-over-time counter tracks (queue depth, in-flight,
//! utilization) alongside the span timelines. Timestamps are microseconds
//! by convention; we map **1 modeled cycle = 1 µs**, so the viewer's time
//! axis reads directly in modeled cycles.

use crate::trace::TraceRecorder;

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl TraceRecorder {
    /// Exports every recorded span as Chrome trace-event JSON, loadable in
    /// `chrome://tracing` or Perfetto. Each track becomes one thread
    /// (`tid` = track index + 1) of process 1; `ts`/`dur` are the span's
    /// modeled cycles (1 cycle = 1 µs). Span args carry the attributed
    /// request id (`"request"`) and any recorded detail pair.
    pub fn export_chrome_trace(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        let mut push = |s: String, first: &mut bool| {
            if !*first {
                out.push(',');
            }
            *first = false;
            out.push('\n');
            out.push_str(&s);
        };
        for (i, (name, events, _dropped)) in self.tracks().iter().enumerate() {
            let tid = i + 1;
            push(
                format!(
                    "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":{tid},\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    escape(name)
                ),
                &mut first,
            );
            for e in events {
                let mut args = format!("\"request\":\"{}\"", e.request);
                if let Some((k, v)) = e.detail {
                    args.push_str(&format!(",\"{}\":{v}", escape(k)));
                }
                push(
                    format!(
                        "{{\"ph\":\"X\",\"name\":\"{}\",\"cat\":\"pim\",\"pid\":1,\
                         \"tid\":{tid},\"ts\":{},\"dur\":{},\"args\":{{{args}}}}}",
                        escape(e.name),
                        e.ts,
                        e.dur.max(1)
                    ),
                    &mut first,
                );
            }
        }
        for (name, samples, _dropped) in self.counter_tracks() {
            for (ts, value) in samples {
                // Perfetto groups "C" events by (pid, name) into one
                // counter track; non-finite values would break the JSON.
                let v = if value.is_finite() { value } else { 0.0 };
                push(
                    format!(
                        "{{\"ph\":\"C\",\"name\":\"{}\",\"cat\":\"pim\",\"pid\":1,\
                         \"tid\":0,\"ts\":{ts},\"args\":{{\"value\":{v}}}}}",
                        escape(&name)
                    ),
                    &mut first,
                );
            }
        }
        out.push_str("\n],\"displayTimeUnit\":\"ns\"}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::{RequestId, Telemetry};

    #[test]
    fn export_names_tracks_and_tags_requests() {
        let t = Telemetry::recording();
        let shard = t.track("shard-0");
        let req = RequestId::new(1, 2);
        shard.record_complete("exec", 10, 40, req, Some(("instructions", 3)));
        let json = t.recorder().export_chrome_trace();
        assert!(json.contains("\"thread_name\""), "{json}");
        assert!(json.contains("\"name\":\"shard-0\""), "{json}");
        assert!(json.contains("\"name\":\"exec\""), "{json}");
        assert!(json.contains("\"ts\":10"), "{json}");
        assert!(json.contains("\"dur\":40"), "{json}");
        assert!(json.contains("\"request\":\"s1.r2\""), "{json}");
        assert!(json.contains("\"instructions\":3"), "{json}");
    }

    #[test]
    fn zero_duration_spans_export_visible() {
        let t = Telemetry::recording();
        t.track("a")
            .record_complete("e", 0, 0, RequestId::UNTAGGED, None);
        let json = t.recorder().export_chrome_trace();
        // A dur of 0 renders invisibly in the viewers; exported as 1.
        assert!(json.contains("\"dur\":1"), "{json}");
    }

    #[test]
    fn counter_samples_export_as_counter_events() {
        let t = Telemetry::recording();
        t.track("shard-0")
            .record_complete("exec", 0, 5, RequestId::UNTAGGED, None);
        let depth = t.counter_track("gateway/queue_depth");
        depth.record(100, 3.0);
        depth.record(200, 1.5);
        t.counter_track("bad").record(300, f64::NAN);
        let json = t.recorder().export_chrome_trace();
        assert!(
            json.contains("\"ph\":\"C\",\"name\":\"gateway/queue_depth\""),
            "{json}"
        );
        assert!(json.contains("\"ts\":100,\"args\":{\"value\":3}"), "{json}");
        assert!(
            json.contains("\"ts\":200,\"args\":{\"value\":1.5}"),
            "{json}"
        );
        // Non-finite samples are clamped so the JSON stays parseable.
        assert!(json.contains("\"ts\":300,\"args\":{\"value\":0}"), "{json}");
        // Span tracks still export alongside.
        assert!(json.contains("\"ph\":\"X\""), "{json}");
    }

    #[test]
    fn names_are_escaped() {
        let t = Telemetry::recording();
        t.recorder().register_track("tr\"ack\\x");
        let json = t.recorder().export_chrome_trace();
        assert!(json.contains("tr\\\"ack\\\\x"), "{json}");
    }
}
