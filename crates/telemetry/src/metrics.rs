//! Lock-cheap metrics: atomic counters and gauges plus log-bucketed
//! histograms, collected behind one [`MetricsRegistry`] and read out as a
//! [`MetricsSnapshot`].
//!
//! Recording never blocks on another recorder: counter/gauge/histogram
//! handles are `Arc`s over atomics, so the registry lock is taken only at
//! registration and snapshot time. Histograms bucket values
//! logarithmically ([`SUB_BUCKETS`] sub-buckets per power of two, ~3%
//! relative bucket width), which is what makes p50/p99/p999 readout over
//! modeled-cycle latencies cheap and allocation-free on the record path.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Sub-bucket resolution: each power of two splits into `2^SUB_BITS`
/// buckets, bounding a bucket's relative width by `2^-SUB_BITS` (~3%).
const SUB_BITS: u32 = 5;
/// Sub-buckets per power of two (`2^SUB_BITS`).
pub const SUB_BUCKETS: u64 = 1 << SUB_BITS;
/// Total buckets needed to cover the whole `u64` range.
const BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) * SUB_BUCKETS as usize;

/// Index of the bucket holding `v`.
fn bucket_of(v: u64) -> usize {
    if v < SUB_BUCKETS {
        return v as usize;
    }
    let e = 63 - v.leading_zeros(); // e >= SUB_BITS
    let group = (e - SUB_BITS + 1) as usize;
    let sub = ((v >> (e - SUB_BITS)) & (SUB_BUCKETS - 1)) as usize;
    group * SUB_BUCKETS as usize + sub
}

/// Smallest value landing in bucket `i`.
fn bucket_low(i: usize) -> u64 {
    let group = i as u64 / SUB_BUCKETS;
    let sub = i as u64 % SUB_BUCKETS;
    if group == 0 {
        return sub;
    }
    (SUB_BUCKETS + sub) << (group - 1)
}

/// Largest value landing in bucket `i`.
fn bucket_high(i: usize) -> u64 {
    if i + 1 >= BUCKETS {
        return u64::MAX;
    }
    bucket_low(i + 1) - 1
}

/// A monotonically increasing counter. Cloning shares the underlying cell.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable signed gauge. Cloning shares the underlying cell.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if it is below (peak tracking).
    pub fn fetch_max(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

struct HistogramCells {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// A log-bucketed histogram of `u64` samples. Recording is one atomic add
/// into a fixed bucket array; quantile readout walks the cumulative counts.
/// Cloning shares the underlying cells.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramCells>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramCells {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }))
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .finish()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        let c = &self.0;
        c.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        c.count.fetch_add(1, Ordering::Relaxed);
        c.sum.fetch_add(v, Ordering::Relaxed);
        c.min.fetch_min(v, Ordering::Relaxed);
        c.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the upper bound of the bucket
    /// where the cumulative sample count crosses `q · count`, clamped to
    /// the observed maximum — within one log-bucket of the exact quantile.
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, b) in self.0.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= rank {
                return bucket_high(i).min(self.0.max.load(Ordering::Relaxed));
            }
        }
        self.0.max.load(Ordering::Relaxed)
    }

    /// Full bucket-state snapshot, diffable via [`HistogramState::since`].
    /// Unlike [`HistogramSnapshot`] (pre-computed quantiles, not diffable),
    /// a state carries every bucket count, so the difference of two states
    /// yields exact windowed counts and windowed quantiles.
    pub fn state(&self) -> HistogramState {
        HistogramState {
            buckets: self
                .0
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count(),
            sum: self.sum(),
        }
    }

    /// Immutable summary of the current contents.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count();
        HistogramSnapshot {
            count,
            sum: self.sum(),
            min: if count == 0 {
                0
            } else {
                self.0.min.load(Ordering::Relaxed)
            },
            max: self.0.max.load(Ordering::Relaxed),
            p50: self.quantile(0.50),
            p99: self.quantile(0.99),
            p999: self.quantile(0.999),
        }
    }
}

/// Point-in-time summary of one [`Histogram`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Median (within one log-bucket).
    pub p50: u64,
    /// 99th percentile (within one log-bucket).
    pub p99: u64,
    /// 99.9th percentile (within one log-bucket).
    pub p999: u64,
}

impl HistogramSnapshot {
    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Full bucket-count snapshot of a [`Histogram`], capturing every log
/// bucket rather than pre-computed quantiles. Two states taken at
/// different times diff with [`since`](HistogramState::since) into the
/// samples recorded *between* them — the primitive behind windowed
/// percentile series ([`crate::series`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramState {
    buckets: Box<[u64]>,
    count: u64,
    sum: u64,
}

impl Default for HistogramState {
    fn default() -> Self {
        HistogramState {
            buckets: vec![0; BUCKETS].into_boxed_slice(),
            count: 0,
            sum: 0,
        }
    }
}

impl HistogramState {
    /// An empty state (useful as the initial baseline of a series).
    pub fn empty() -> Self {
        HistogramState::default()
    }

    /// Samples held in this state.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples held in this state.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The state containing exactly the samples recorded after `earlier`
    /// was taken and before `self` was. Per-bucket saturating subtraction,
    /// so a mismatched pair (e.g. across a histogram reset) degrades to
    /// zeros instead of wrapping.
    pub fn since(&self, earlier: &HistogramState) -> HistogramState {
        HistogramState {
            buckets: self
                .buckets
                .iter()
                .zip(earlier.buckets.iter())
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
        }
    }

    /// The `q`-quantile over the samples in this state, as the upper bound
    /// of the bucket where the cumulative count crosses `q · count`,
    /// clamped to the highest occupied bucket. Same one-log-bucket error
    /// bound as [`Histogram::quantile`]; exact min/max are not carried
    /// through a diff, so the clamp is the bucket bound, not the sample.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b;
            if cum >= rank {
                return bucket_high(i).min(self.approx_max());
            }
        }
        self.approx_max()
    }

    /// Number of samples strictly above the bucket containing `v` — used
    /// for SLO error-budget accounting ("requests over target"). Counts at
    /// bucket granularity: samples in `v`'s own bucket are *not* counted.
    pub fn count_over(&self, v: u64) -> u64 {
        let cut = bucket_of(v);
        self.buckets.iter().skip(cut + 1).sum()
    }

    /// Upper bound of the highest occupied bucket (0 when empty).
    fn approx_max(&self) -> u64 {
        self.buckets
            .iter()
            .rposition(|&b| b > 0)
            .map(bucket_high)
            .unwrap_or(0)
    }

    /// Lower bound of the lowest occupied bucket (0 when empty).
    fn approx_min(&self) -> u64 {
        self.buckets
            .iter()
            .position(|&b| b > 0)
            .map(bucket_low)
            .unwrap_or(0)
    }

    /// Summary of this state. `min`/`max` are bucket bounds (within one
    /// log-bucket of the true extremes), since exact extremes cannot be
    /// recovered from a diff of two cumulative states.
    pub fn summary(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            min: self.approx_min(),
            max: self.approx_max(),
            p50: self.quantile(0.50),
            p99: self.quantile(0.99),
            p999: self.quantile(0.999),
        }
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// Named metric handles. Registration (create-or-get by name) takes the
/// registry lock; recording through the returned handles does not.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<RegistryInner>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry").finish_non_exhaustive()
    }
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The counter registered under `name` (created on first use).
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.counters.entry(name.to_string()).or_default().clone()
    }

    /// The gauge registered under `name` (created on first use).
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.gauges.entry(name.to_string()).or_default().clone()
    }

    /// The histogram registered under `name` (created on first use).
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner
            .histograms
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Snapshot of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// Anything that can contribute metrics to a [`MetricsSnapshot`] — the
/// adapter the stack's pre-existing telemetry islands (`sim::Profiler`,
/// `cluster::TrafficStats`, `serve::GatewayStats`) implement so one
/// snapshot absorbs them all.
pub trait MetricsSource {
    /// Merges this source's current values into `snap`.
    fn fill_metrics(&self, snap: &mut MetricsSnapshot);
}

/// One machine-readable view over every metric source: registry contents
/// plus whatever [`MetricsSource`]s were absorbed. Exportable as JSON
/// ([`to_json`](MetricsSnapshot::to_json)) and renderable as a text table
/// ([`render`](MetricsSnapshot::render)).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by metric name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by metric name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram summaries by metric name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// An empty snapshot to absorb sources into.
    pub fn new() -> Self {
        MetricsSnapshot::default()
    }

    /// Sets counter `name` to `value` (sources report absolute values).
    pub fn set_counter(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_string(), value);
    }

    /// Sets gauge `name` to `value`.
    pub fn set_gauge(&mut self, name: &str, value: i64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Sets histogram `name` to `snap`.
    pub fn set_histogram(&mut self, name: &str, snap: HistogramSnapshot) {
        self.histograms.insert(name.to_string(), snap);
    }

    /// Absorbs a [`MetricsSource`]'s current values.
    pub fn absorb(&mut self, source: &dyn MetricsSource) -> &mut Self {
        source.fill_metrics(self);
        self
    }

    /// The delta view of this snapshot relative to an earlier `baseline`:
    /// counters become the increase since the baseline (saturating, so a
    /// reset degrades to 0 instead of wrapping), gauges keep their current
    /// (instantaneous) value, and histogram `count`/`sum` are diffed while
    /// the quantile fields keep their *cumulative* values — summary
    /// snapshots cannot be diffed for percentiles. For true windowed
    /// percentiles track the histogram through [`crate::series`], which
    /// diffs full [`HistogramState`]s.
    pub fn since(&self, baseline: &MetricsSnapshot) -> MetricsSnapshot {
        let mut out = self.clone();
        for (k, v) in out.counters.iter_mut() {
            *v = v.saturating_sub(baseline.counters.get(k).copied().unwrap_or(0));
        }
        for (k, h) in out.histograms.iter_mut() {
            if let Some(base) = baseline.histograms.get(k) {
                h.count = h.count.saturating_sub(base.count);
                h.sum = h.sum.saturating_sub(base.sum);
            }
        }
        out
    }

    /// Machine-readable JSON: `{"counters": {..}, "gauges": {..},
    /// "histograms": {name: {count, sum, min, max, p50, p99, p999}}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            out.push_str(&format!("{sep}\n    {k:?}: {v}"));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            out.push_str(&format!("{sep}\n    {k:?}: {v}"));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            out.push_str(&format!(
                "{sep}\n    {k:?}: {{\"count\": {}, \"sum\": {}, \"min\": {}, \
                 \"max\": {}, \"p50\": {}, \"p99\": {}, \"p999\": {}}}",
                h.count, h.sum, h.min, h.max, h.p50, h.p99, h.p999
            ));
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Human-readable table (the `examples/cluster_serve.rs` printout).
    pub fn render(&self) -> String {
        let width = self
            .counters
            .keys()
            .chain(self.gauges.keys())
            .chain(self.histograms.keys())
            .map(|k| k.len())
            .max()
            .unwrap_or(0);
        let mut out = String::new();
        for (k, v) in &self.counters {
            out.push_str(&format!("  {k:<width$}  {v}\n"));
        }
        for (k, v) in &self.gauges {
            out.push_str(&format!("  {k:<width$}  {v}\n"));
        }
        for (k, h) in &self.histograms {
            out.push_str(&format!(
                "  {k:<width$}  n={} p50={} p99={} p999={} max={}\n",
                h.count, h.p50, h.p99, h.p999, h.max
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_tile_the_line() {
        // Every bucket's low is the previous bucket's high + 1, and every
        // value maps into the bucket whose [low, high] range contains it.
        for i in 1..BUCKETS {
            assert_eq!(bucket_low(i), bucket_high(i - 1) + 1, "bucket {i}");
        }
        for v in (0..10_000u64).chain([u64::MAX / 2, u64::MAX - 1, u64::MAX]) {
            let i = bucket_of(v);
            assert!(bucket_low(i) <= v && v <= bucket_high(i), "value {v}");
        }
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantiles_round_trip_within_one_bucket() {
        // Uniform 1..=100_000: the log-bucket readout must land within one
        // bucket width of the exact quantile, for every headline quantile.
        let h = Histogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for (q, exact) in [(0.50, 50_000u64), (0.99, 99_000), (0.999, 99_900)] {
            let got = h.quantile(q);
            let bucket_width = bucket_high(bucket_of(exact)) - bucket_low(bucket_of(exact)) + 1;
            assert!(
                got.abs_diff(exact) <= bucket_width,
                "q={q}: got {got}, exact {exact}, bucket width {bucket_width}"
            );
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100_000);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 100_000);
        assert_eq!(s.p50, h.quantile(0.5));
    }

    #[test]
    fn quantile_clamps_to_observed_max() {
        let h = Histogram::new();
        h.record(1000);
        // A single sample: every quantile is that sample (not its bucket's
        // upper bound, which may exceed it).
        assert_eq!(h.quantile(0.5), 1000);
        assert_eq!(h.quantile(0.999), 1000);
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.snapshot(), HistogramSnapshot::default());
    }

    #[test]
    fn registry_shares_handles_by_name() {
        let reg = MetricsRegistry::new();
        reg.counter("a").add(2);
        reg.counter("a").inc();
        reg.gauge("g").set(-5);
        reg.histogram("h").record(7);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["a"], 3);
        assert_eq!(snap.gauges["g"], -5);
        assert_eq!(snap.histograms["h"].count, 1);
    }

    #[test]
    fn histogram_state_diff_isolates_the_window() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let mid = h.state();
        for v in 100_000..=101_000u64 {
            h.record(v);
        }
        let window = h.state().since(&mid);
        // Only the second burst is in the window: count and quantiles must
        // reflect 100_000..=101_000, not the earlier 1..=1000 samples.
        assert_eq!(window.count(), 1001);
        assert!(window.quantile(0.5) >= 100_000, "{}", window.quantile(0.5));
        let s = window.summary();
        assert!(s.min >= bucket_low(bucket_of(100_000)).min(100_000));
        assert!(s.p99 >= 100_000 && s.p999 >= s.p99);
        // Cumulative readout still sees everything.
        assert_eq!(h.state().quantile(0.01), h.quantile(0.01));
        // count_over at bucket granularity: everything in the window is
        // over 50_000, nothing is over the window max's bucket.
        assert_eq!(window.count_over(50_000), 1001);
        assert_eq!(window.count_over(101_000), 0);
    }

    #[test]
    fn snapshot_since_diffs_counters_and_histogram_counts() {
        let reg = MetricsRegistry::new();
        reg.counter("c").add(10);
        reg.gauge("g").set(3);
        reg.histogram("h").record(5);
        let base = reg.snapshot();
        reg.counter("c").add(7);
        reg.gauge("g").set(9);
        reg.histogram("h").record(6);
        reg.counter("new").add(2);
        let delta = reg.snapshot().since(&base);
        assert_eq!(delta.counters["c"], 7);
        assert_eq!(delta.counters["new"], 2); // absent from baseline => full value
        assert_eq!(delta.gauges["g"], 9); // gauges stay instantaneous
        assert_eq!(delta.histograms["h"].count, 1);
    }

    #[test]
    fn snapshot_json_and_render() {
        let mut snap = MetricsSnapshot::new();
        snap.set_counter("sim.cycles", 42);
        snap.set_gauge("serve.inflight", 2);
        let h = Histogram::new();
        h.record(10);
        snap.set_histogram("serve.queue_wait_cycles", h.snapshot());
        let json = snap.to_json();
        assert!(json.contains("\"sim.cycles\": 42"), "{json}");
        assert!(json.contains("\"p99\": 10"), "{json}");
        let rendered = snap.render();
        assert!(rendered.contains("sim.cycles"), "{rendered}");
        assert!(rendered.contains("p50=10"), "{rendered}");
    }
}
