//! Span-based tracing on the **modeled clock**, with per-request
//! attribution.
//!
//! The stack's notion of time is modeled PIM cycles, not wall time: each
//! shard worker's profiler counts the cycles its chip consumed, and the
//! interconnect charges link cycles per burst. The [`TraceRecorder`] keeps
//! one ring buffer per *track* (one per shard worker, plus
//! gateway/admission/interconnect tracks); a worker records complete spans
//! stamped with its own cycle counter and advances the recorder's global
//! modeled clock, which host-side tracks (gateway admission, interconnect
//! bursts) stamp from. The timelines are therefore per-track monotonic and
//! globally aligned to within the chips-run-in-parallel model's skew.
//!
//! Every span carries a [`RequestId`], so a finished trace attributes
//! modeled cycles, cross-chip words, and queue-wait time to the specific
//! gateway request (and through it, the session) that caused them — the
//! per-request accounting [`Telemetry::request_stats`] aggregates.
//!
//! Recording is armed per handle: [`Telemetry::disabled`] yields a no-op
//! handle whose record paths reduce to one relaxed atomic load, so serving
//! and benchmark throughput are unchanged with recording off.

use crate::metrics::MetricsRegistry;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Identifies one admitted gateway request (or the untagged background of
/// everything executed outside a request context). Packs the session id and
/// a per-session sequence number, so attribution can roll up per request or
/// per session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct RequestId(u64);

impl RequestId {
    /// The id carried by work executed outside any request context
    /// (direct device calls, maintenance traffic).
    pub const UNTAGGED: RequestId = RequestId(0);

    /// The id of request `seq` of session `session`.
    pub fn new(session: u32, seq: u32) -> Self {
        RequestId(((u64::from(session) + 1) << 32) | u64::from(seq))
    }

    /// Whether this is the untagged background id.
    pub fn is_untagged(&self) -> bool {
        self.0 == 0
    }

    /// The session this request belongs to (`None` when untagged).
    pub fn session(&self) -> Option<u32> {
        if self.is_untagged() {
            None
        } else {
            Some((self.0 >> 32) as u32 - 1)
        }
    }

    /// The per-session sequence number (`None` when untagged).
    pub fn seq(&self) -> Option<u32> {
        if self.is_untagged() {
            None
        } else {
            Some(self.0 as u32)
        }
    }
}

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (self.session(), self.seq()) {
            (Some(s), Some(r)) => write!(f, "s{s}.r{r}"),
            _ => write!(f, "-"),
        }
    }
}

/// One recorded span: a named slice of modeled time on one track.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span name (e.g. `"exec"`, `"queued"`, `"burst"`).
    pub name: &'static str,
    /// Start, in modeled cycles on the track's timeline.
    pub ts: u64,
    /// Duration in modeled cycles.
    pub dur: u64,
    /// The request this span is attributed to.
    pub request: RequestId,
    /// Optional `(key, value)` detail (e.g. `("instructions", n)`).
    pub detail: Option<(&'static str, u64)>,
}

pub(crate) struct TrackBuf {
    pub(crate) events: VecDeque<TraceEvent>,
    pub(crate) dropped: u64,
}

pub(crate) struct Track {
    pub(crate) name: String,
    pub(crate) buf: Mutex<TrackBuf>,
}

pub(crate) struct CounterBuf {
    pub(crate) samples: VecDeque<(u64, f64)>,
    pub(crate) dropped: u64,
}

pub(crate) struct CounterTrack {
    pub(crate) name: String,
    pub(crate) buf: Mutex<CounterBuf>,
}

/// One counter track's snapshot: `(name, (ts, value) samples, dropped)`.
pub type CounterTrackSnapshot = (String, Vec<(u64, f64)>, u64);

/// Ring-buffered span storage, one buffer per track, plus counter tracks
/// (timestamped scalar samples — queue depth, in-flight, utilization) that
/// export as Perfetto counter tracks next to the span tracks. Tracks are
/// meant to be owned by one recording thread each (a shard worker records
/// only onto its own track), so the per-track mutex is uncontended in
/// steady state.
#[derive(Default)]
pub struct TraceRecorder {
    pub(crate) tracks: RwLock<Vec<Track>>,
    pub(crate) counters: RwLock<Vec<CounterTrack>>,
    capacity: usize,
}

impl std::fmt::Debug for TraceRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRecorder")
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

impl TraceRecorder {
    fn with_capacity(capacity: usize) -> Self {
        TraceRecorder {
            tracks: RwLock::new(Vec::new()),
            counters: RwLock::new(Vec::new()),
            capacity,
        }
    }

    /// Registers (or finds) the track named `name`, returning its id.
    pub fn register_track(&self, name: &str) -> TrackId {
        let mut tracks = self.tracks.write().unwrap_or_else(|e| e.into_inner());
        if let Some(i) = tracks.iter().position(|t| t.name == name) {
            return TrackId(i as u32);
        }
        tracks.push(Track {
            name: name.to_string(),
            buf: Mutex::new(TrackBuf {
                events: VecDeque::new(),
                dropped: 0,
            }),
        });
        TrackId(tracks.len() as u32 - 1)
    }

    fn record(&self, track: TrackId, event: TraceEvent) {
        let tracks = self.tracks.read().unwrap_or_else(|e| e.into_inner());
        let Some(t) = tracks.get(track.0 as usize) else {
            return;
        };
        let mut buf = t.buf.lock().unwrap_or_else(|e| e.into_inner());
        if buf.events.len() >= self.capacity {
            buf.events.pop_front();
            buf.dropped += 1;
        }
        buf.events.push_back(event);
    }

    /// Registers (or finds) the counter track named `name`.
    pub fn register_counter_track(&self, name: &str) -> CounterId {
        let mut counters = self.counters.write().unwrap_or_else(|e| e.into_inner());
        if let Some(i) = counters.iter().position(|t| t.name == name) {
            return CounterId(i as u32);
        }
        counters.push(CounterTrack {
            name: name.to_string(),
            buf: Mutex::new(CounterBuf {
                samples: VecDeque::new(),
                dropped: 0,
            }),
        });
        CounterId(counters.len() as u32 - 1)
    }

    fn record_counter(&self, id: CounterId, ts: u64, value: f64) {
        let counters = self.counters.read().unwrap_or_else(|e| e.into_inner());
        let Some(t) = counters.get(id.0 as usize) else {
            return;
        };
        let mut buf = t.buf.lock().unwrap_or_else(|e| e.into_inner());
        if buf.samples.len() >= self.capacity {
            buf.samples.pop_front();
            buf.dropped += 1;
        }
        buf.samples.push_back((ts, value));
    }

    /// Snapshot of every counter track:
    /// `(name, (ts, value) samples, dropped count)`.
    pub fn counter_tracks(&self) -> Vec<CounterTrackSnapshot> {
        let counters = self.counters.read().unwrap_or_else(|e| e.into_inner());
        counters
            .iter()
            .map(|t| {
                let buf = t.buf.lock().unwrap_or_else(|e| e.into_inner());
                (
                    t.name.clone(),
                    buf.samples.iter().copied().collect(),
                    buf.dropped,
                )
            })
            .collect()
    }

    /// Snapshot of every track: `(track name, events, dropped count)`.
    pub fn tracks(&self) -> Vec<(String, Vec<TraceEvent>, u64)> {
        let tracks = self.tracks.read().unwrap_or_else(|e| e.into_inner());
        tracks
            .iter()
            .map(|t| {
                let buf = t.buf.lock().unwrap_or_else(|e| e.into_inner());
                (
                    t.name.clone(),
                    buf.events.iter().copied().collect(),
                    buf.dropped,
                )
            })
            .collect()
    }

    /// Discards every recorded event and counter sample (track
    /// registrations are kept).
    pub fn clear(&self) {
        let tracks = self.tracks.read().unwrap_or_else(|e| e.into_inner());
        for t in tracks.iter() {
            let mut buf = t.buf.lock().unwrap_or_else(|e| e.into_inner());
            buf.events.clear();
            buf.dropped = 0;
        }
        let counters = self.counters.read().unwrap_or_else(|e| e.into_inner());
        for t in counters.iter() {
            let mut buf = t.buf.lock().unwrap_or_else(|e| e.into_inner());
            buf.samples.clear();
            buf.dropped = 0;
        }
    }
}

/// Identifier of one registered track.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrackId(pub(crate) u32);

/// Identifier of one registered counter track.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(pub(crate) u32);

/// Modeled cycles, cross-chip words, and queue-wait attributed to one
/// request by the spans recorded against its [`RequestId`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RequestStats {
    /// Shard-worker execution cycles attributed to this request.
    pub cycles: u64,
    /// Cross-chip words this request's moves sent over the interconnect.
    pub cross_words: u64,
    /// Modeled link cycles charged to this request's interconnect bursts.
    pub link_cycles: u64,
    /// Modeled cycles the request's batches waited in session queues
    /// before admission dispatched them.
    pub queue_wait: u64,
    /// Macro-instructions executed for this request.
    pub instructions: u64,
}

impl RequestStats {
    fn absorb(&mut self, other: &RequestStats) {
        self.cycles += other.cycles;
        self.cross_words += other.cross_words;
        self.link_cycles += other.link_cycles;
        self.queue_wait += other.queue_wait;
        self.instructions += other.instructions;
    }
}

/// Tuning of a [`Telemetry`] handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Ring-buffer capacity per track (oldest events drop beyond it).
    pub track_events: usize,
    /// Whether recording starts armed.
    pub enabled: bool,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            track_events: 65_536,
            enabled: true,
        }
    }
}

struct TelemetryInner {
    enabled: AtomicBool,
    clock: AtomicU64,
    recorder: TraceRecorder,
    metrics: MetricsRegistry,
    requests: Mutex<Vec<(RequestId, RequestStats)>>,
}

/// The unified telemetry handle threaded through the stack: a metrics
/// registry, a modeled-clock [`TraceRecorder`], and per-request
/// attribution. Cloning is cheap; clones share all state.
///
/// Recording is gated on one relaxed atomic flag, so a disabled handle
/// ([`Telemetry::disabled`], or [`set_enabled(false)`](Telemetry::set_enabled))
/// costs a single load on every record path and execution results are
/// bit-identical either way (recording never influences execution).
#[derive(Clone)]
pub struct Telemetry {
    inner: Arc<TelemetryInner>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::disabled()
    }
}

impl Telemetry {
    /// A handle with the given configuration.
    pub fn new(cfg: TelemetryConfig) -> Self {
        Telemetry {
            inner: Arc::new(TelemetryInner {
                enabled: AtomicBool::new(cfg.enabled),
                clock: AtomicU64::new(0),
                recorder: TraceRecorder::with_capacity(cfg.track_events.max(1)),
                metrics: MetricsRegistry::new(),
                requests: Mutex::new(Vec::new()),
            }),
        }
    }

    /// An armed handle with default capacity.
    pub fn recording() -> Self {
        Telemetry::new(TelemetryConfig::default())
    }

    /// A no-op handle: recording is off (every record path is one relaxed
    /// atomic load) until [`set_enabled(true)`](Telemetry::set_enabled).
    pub fn disabled() -> Self {
        Telemetry::new(TelemetryConfig {
            enabled: false,
            ..TelemetryConfig::default()
        })
    }

    /// Whether recording is armed.
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Arms or disarms recording. Execution results are unaffected either
    /// way; only whether spans/metrics/attribution are stored changes.
    pub fn set_enabled(&self, enabled: bool) {
        self.inner.enabled.store(enabled, Ordering::Relaxed);
    }

    /// The metrics registry behind this handle.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.inner.metrics
    }

    /// The trace recorder behind this handle.
    pub fn recorder(&self) -> &TraceRecorder {
        &self.inner.recorder
    }

    /// Registers (or finds) a trace track, returning a recording handle
    /// bound to it.
    pub fn track(&self, name: &str) -> TrackHandle {
        TrackHandle {
            telemetry: self.clone(),
            track: self.inner.recorder.register_track(name),
        }
    }

    /// Registers (or finds) a counter track, returning a recording handle
    /// bound to it. Counter samples export as Perfetto counter tracks
    /// (`"ph": "C"` events) alongside span tracks.
    pub fn counter_track(&self, name: &str) -> CounterHandle {
        CounterHandle {
            telemetry: self.clone(),
            counter: self.inner.recorder.register_counter_track(name),
        }
    }

    /// The current global modeled clock: the high-water mark of every
    /// shard's cycle counter plus host-charged link cycles.
    pub fn now(&self) -> u64 {
        self.inner.clock.load(Ordering::Relaxed)
    }

    /// Raises the global modeled clock to `cycles` if it is behind.
    pub fn advance_clock(&self, cycles: u64) {
        self.inner.clock.fetch_max(cycles, Ordering::Relaxed);
    }

    /// Attributes per-request deltas (cycles, traffic, queue-wait) to
    /// `request`. No-op when disabled or untagged.
    pub fn attribute(&self, request: RequestId, delta: RequestStats) {
        if !self.is_enabled() || request.is_untagged() {
            return;
        }
        let mut reqs = self
            .inner
            .requests
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        match reqs.iter_mut().find(|(id, _)| *id == request) {
            Some((_, stats)) => stats.absorb(&delta),
            None => reqs.push((request, delta)),
        }
    }

    /// Per-request attribution collected so far, in first-seen order.
    pub fn request_stats(&self) -> Vec<(RequestId, RequestStats)> {
        self.inner
            .requests
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Per-session roll-up of [`request_stats`](Telemetry::request_stats):
    /// `(session, requests, stats)` ordered by session id.
    pub fn session_stats(&self) -> Vec<(u32, u64, RequestStats)> {
        let mut out: Vec<(u32, u64, RequestStats)> = Vec::new();
        for (id, stats) in self.request_stats() {
            let Some(session) = id.session() else {
                continue;
            };
            match out.iter_mut().find(|(s, _, _)| *s == session) {
                Some((_, n, agg)) => {
                    *n += 1;
                    agg.absorb(&stats);
                }
                None => out.push((session, 1, stats)),
            }
        }
        out.sort_by_key(|&(s, _, _)| s);
        out
    }

    /// Discards recorded spans and attribution (metric registrations and
    /// track registrations are kept) — the start of a measurement region.
    pub fn clear(&self) {
        self.inner.recorder.clear();
        self.inner
            .requests
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
        self.inner.clock.store(0, Ordering::Relaxed);
    }
}

/// A recording handle bound to one track. Cheap to clone.
#[derive(Debug, Clone)]
pub struct TrackHandle {
    telemetry: Telemetry,
    track: TrackId,
}

impl TrackHandle {
    /// Whether recording is currently armed (one relaxed load — hoist this
    /// check around any work done only to build a span).
    pub fn is_enabled(&self) -> bool {
        self.telemetry.is_enabled()
    }

    /// The [`Telemetry`] handle this track records into (for clock
    /// advancement and attribution next to a recorded span).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Records a complete span with explicit modeled-clock timestamps —
    /// the shard-worker path, where the chip's own cycle counter is the
    /// timeline. No-op when disabled.
    pub fn record_complete(
        &self,
        name: &'static str,
        ts: u64,
        dur: u64,
        request: RequestId,
        detail: Option<(&'static str, u64)>,
    ) {
        if !self.is_enabled() {
            return;
        }
        self.telemetry.inner.recorder.record(
            self.track,
            TraceEvent {
                name,
                ts,
                dur,
                request,
                detail,
            },
        );
    }

    /// Opens a span on the global modeled clock, closed (and recorded)
    /// when the guard drops — the host-side path (gateway admission).
    /// Returns a no-op guard when disabled.
    pub fn span(&self, name: &'static str, request: RequestId) -> SpanGuard {
        SpanGuard {
            track: self.clone(),
            name,
            request,
            start: if self.is_enabled() {
                Some(self.telemetry.now())
            } else {
                None
            },
        }
    }
}

/// A recording handle bound to one counter track. Cheap to clone.
#[derive(Debug, Clone)]
pub struct CounterHandle {
    telemetry: Telemetry,
    counter: CounterId,
}

impl CounterHandle {
    /// Whether recording is currently armed (one relaxed load).
    pub fn is_enabled(&self) -> bool {
        self.telemetry.is_enabled()
    }

    /// Records `value` at modeled cycle `ts`. No-op when disabled.
    pub fn record(&self, ts: u64, value: f64) {
        if !self.is_enabled() {
            return;
        }
        self.telemetry
            .inner
            .recorder
            .record_counter(self.counter, ts, value);
    }

    /// Records `value` at the current global modeled clock.
    pub fn record_now(&self, value: f64) {
        if !self.is_enabled() {
            return;
        }
        let now = self.telemetry.now();
        self.telemetry
            .inner
            .recorder
            .record_counter(self.counter, now, value);
    }
}

/// Guard of an open [`TrackHandle::span`]; records the span on drop.
#[derive(Debug)]
pub struct SpanGuard {
    track: TrackHandle,
    name: &'static str,
    request: RequestId,
    /// `None` when recording was disabled at open time (no-op guard).
    start: Option<u64>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let end = self.track.telemetry.now();
            self.track.record_complete(
                self.name,
                start,
                end.saturating_sub(start),
                self.request,
                None,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_id_packs_session_and_seq() {
        let id = RequestId::new(3, 17);
        assert_eq!(id.session(), Some(3));
        assert_eq!(id.seq(), Some(17));
        assert_eq!(id.to_string(), "s3.r17");
        assert!(!id.is_untagged());
        assert!(RequestId::UNTAGGED.is_untagged());
        assert_eq!(RequestId::UNTAGGED.session(), None);
        assert_eq!(RequestId::UNTAGGED.to_string(), "-");
        // Session 0 is distinct from untagged.
        assert_eq!(RequestId::new(0, 0).session(), Some(0));
    }

    #[test]
    fn disabled_handle_records_nothing() {
        let t = Telemetry::disabled();
        let track = t.track("shard-0");
        track.record_complete("exec", 0, 10, RequestId::new(0, 0), None);
        drop(track.span("queued", RequestId::new(0, 1)));
        t.attribute(
            RequestId::new(0, 0),
            RequestStats {
                cycles: 5,
                ..RequestStats::default()
            },
        );
        let tracks = t.recorder().tracks();
        assert_eq!(tracks.len(), 1);
        assert!(tracks[0].1.is_empty());
        assert!(t.request_stats().is_empty());
    }

    #[test]
    fn spans_and_attribution_round_trip() {
        let t = Telemetry::recording();
        let track = t.track("shard-1");
        let req = RequestId::new(2, 0);
        track.record_complete("exec", 100, 50, req, Some(("instructions", 4)));
        t.advance_clock(150);
        t.attribute(
            req,
            RequestStats {
                cycles: 50,
                instructions: 4,
                ..RequestStats::default()
            },
        );
        t.attribute(
            req,
            RequestStats {
                cross_words: 8,
                ..RequestStats::default()
            },
        );
        let tracks = t.recorder().tracks();
        assert_eq!(tracks[0].0, "shard-1");
        assert_eq!(
            tracks[0].1,
            vec![TraceEvent {
                name: "exec",
                ts: 100,
                dur: 50,
                request: req,
                detail: Some(("instructions", 4)),
            }]
        );
        let reqs = t.request_stats();
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].1.cycles, 50);
        assert_eq!(reqs[0].1.cross_words, 8);
        assert_eq!(t.now(), 150);
        // Session roll-up.
        let sessions = t.session_stats();
        assert_eq!(sessions, vec![(2, 1, reqs[0].1)]);
    }

    #[test]
    fn span_guard_uses_global_clock() {
        let t = Telemetry::recording();
        let track = t.track("gateway");
        t.advance_clock(10);
        let span = track.span("queued", RequestId::new(0, 0));
        t.advance_clock(35);
        drop(span);
        let events = &t.recorder().tracks()[0].1;
        assert_eq!(events.len(), 1);
        assert_eq!((events[0].ts, events[0].dur), (10, 25));
    }

    #[test]
    fn ring_buffer_drops_oldest() {
        let t = Telemetry::new(TelemetryConfig {
            track_events: 2,
            enabled: true,
        });
        let track = t.track("a");
        for i in 0..5u64 {
            track.record_complete("e", i, 1, RequestId::UNTAGGED, None);
        }
        let (_, events, dropped) = &t.recorder().tracks()[0];
        assert_eq!(events.len(), 2);
        assert_eq!(*dropped, 3);
        assert_eq!(events[0].ts, 3);
        assert_eq!(events[1].ts, 4);
    }

    #[test]
    fn track_registration_is_idempotent() {
        let t = Telemetry::recording();
        let a = t.recorder().register_track("x");
        let b = t.recorder().register_track("x");
        assert_eq!(a, b);
        assert_eq!(t.recorder().tracks().len(), 1);
    }

    #[test]
    fn counter_tracks_record_and_clear() {
        let t = Telemetry::recording();
        let depth = t.counter_track("gateway/queue_depth");
        depth.record(100, 3.0);
        t.advance_clock(250);
        depth.record_now(5.0);
        // Registration is idempotent; recording through a second handle
        // lands on the same track.
        t.counter_track("gateway/queue_depth").record(300, 2.0);
        let tracks = t.recorder().counter_tracks();
        assert_eq!(tracks.len(), 1);
        assert_eq!(tracks[0].0, "gateway/queue_depth");
        assert_eq!(tracks[0].1, vec![(100, 3.0), (250, 5.0), (300, 2.0)]);
        t.clear();
        assert!(t.recorder().counter_tracks()[0].1.is_empty());

        // Disabled handles record nothing.
        let off = Telemetry::disabled();
        off.counter_track("x").record(1, 1.0);
        assert!(off.recorder().counter_tracks()[0].1.is_empty());
    }

    #[test]
    fn clear_resets_events_but_keeps_tracks() {
        let t = Telemetry::recording();
        let track = t.track("a");
        track.record_complete("e", 0, 1, RequestId::new(0, 0), None);
        t.attribute(
            RequestId::new(0, 0),
            RequestStats {
                cycles: 1,
                ..RequestStats::default()
            },
        );
        t.advance_clock(99);
        t.clear();
        assert_eq!(t.recorder().tracks().len(), 1);
        assert!(t.recorder().tracks()[0].1.is_empty());
        assert!(t.request_stats().is_empty());
        assert_eq!(t.now(), 0);
    }
}
