//! CORDIC sine/cosine (§VI-A "CORDIC Sine/Cosine"): the classic
//! shift-and-add rotation algorithm of Volder, expressed with the library's
//! tensor operations. Each iteration rotates every element by
//! `±atan(2^-i)` — the direction is a data-dependent multiplexer, so all
//! threads execute the same instruction stream.

use crate::tensor::Tensor;
use crate::Result;
use pim_isa::DType;

/// CORDIC iterations: enough for full `f32` mantissa convergence.
pub const CORDIC_ITERS: usize = 24;

/// `atan(2^-i)` table (f32).
fn atan_table() -> [f32; CORDIC_ITERS] {
    let mut t = [0.0f32; CORDIC_ITERS];
    for (i, v) in t.iter_mut().enumerate() {
        *v = (2.0f64.powi(-(i as i32))).atan() as f32;
    }
    t
}

/// The CORDIC gain `K = Π cos(atan(2^-i))`.
fn cordic_gain() -> f32 {
    let mut k = 1.0f64;
    for i in 0..CORDIC_ITERS {
        k *= (2.0f64.powi(-(i as i32))).atan().cos();
    }
    k as f32
}

impl Tensor {
    /// Computes `(sin(θ), cos(θ))` element-wise via CORDIC rotations.
    /// Accurate to a few ULP for `θ ∈ [-π/2, π/2]` (the domain the paper's
    /// benchmark draws from).
    ///
    /// # Errors
    ///
    /// Fails for non-float tensors or on allocation errors.
    pub fn sin_cos(&self) -> Result<(Tensor, Tensor)> {
        self.expect_dtype(DType::Float32)?;
        let atans = atan_table();
        let zero = self.alloc_result(DType::Float32)?;
        zero.fill_raw(0.0f32.to_bits())?;
        let mut x = self.alloc_result(DType::Float32)?;
        x.fill_raw(cordic_gain().to_bits())?;
        let mut y = zero.clone();
        // z starts as θ (copy through an aligned materialization).
        let mut z = crate::movement::materialize_like(self, self)?;
        for (i, &a) in atans.iter().enumerate().take(CORDIC_ITERS) {
            let pow = 2.0f32.powi(-(i as i32));
            let d_pos = z.ge(&zero)?;
            let tx = (&x * pow)?;
            let ty = (&y * pow)?;
            let x_new = d_pos.select(&(&x - &ty)?, &(&x + &ty)?)?;
            let y_new = d_pos.select(&(&y + &tx)?, &(&y - &tx)?)?;
            let z_new = d_pos.select(&(&z - a)?, &(&z + a)?)?;
            x = x_new;
            y = y_new;
            z = z_new;
        }
        Ok((y, x))
    }

    /// Element-wise sine via CORDIC (`θ ∈ [-π/2, π/2]`).
    ///
    /// # Errors
    ///
    /// See [`sin_cos`](Tensor::sin_cos).
    pub fn sin(&self) -> Result<Tensor> {
        Ok(self.sin_cos()?.0)
    }

    /// Element-wise cosine via CORDIC (`θ ∈ [-π/2, π/2]`).
    ///
    /// # Errors
    ///
    /// See [`sin_cos`](Tensor::sin_cos).
    pub fn cos(&self) -> Result<Tensor> {
        Ok(self.sin_cos()?.1)
    }
}

#[cfg(test)]
mod tests {
    use crate::Device;
    use pim_arch::PimConfig;

    #[test]
    fn gain_and_table_are_consistent() {
        // K = prod cos(atan(2^-i)) ~ 0.607253; atan(1) = pi/4.
        assert!((super::cordic_gain() - 0.607_252_9).abs() < 1e-6);
        assert!((super::atan_table()[0] - std::f32::consts::FRAC_PI_4).abs() < 1e-7);
    }

    #[test]
    fn known_angles() {
        let dev = Device::new(PimConfig::small().with_crossbars(1).with_rows(8)).unwrap();
        let t = dev
            .from_slice_f32(&[
                0.0,
                std::f32::consts::FRAC_PI_2,
                -std::f32::consts::FRAC_PI_2,
                std::f32::consts::FRAC_PI_6,
            ])
            .unwrap();
        let (s, c) = t.sin_cos().unwrap();
        let sv = s.to_vec_f32().unwrap();
        let cv = c.to_vec_f32().unwrap();
        assert!(sv[0].abs() < 1e-6 && (cv[0] - 1.0).abs() < 1e-6);
        assert!((sv[1] - 1.0).abs() < 1e-5 && cv[1].abs() < 1e-5);
        assert!((sv[2] + 1.0).abs() < 1e-5);
        assert!((sv[3] - 0.5).abs() < 1e-5);
    }

    #[test]
    fn rejects_int_tensors() {
        let dev = Device::new(PimConfig::small().with_crossbars(1).with_rows(8)).unwrap();
        let t = dev.from_slice_i32(&[1, 2]).unwrap();
        assert!(t.sin().is_err());
        assert!(t.cos().is_err());
    }
}
