//! Element-wise minimum/maximum and their logarithmic reductions —
//! general-purpose routines in the spirit of §V-A, composed from the ISA's
//! comparison and multiplexer operations (a compare-and-select is exactly
//! one half of the bitonic network's compare-and-swap).

use crate::movement;
use crate::tensor::Tensor;
use crate::Result;
use pim_isa::DType;

fn neutral_min_bits(dtype: DType) -> u32 {
    match dtype {
        DType::Int32 => i32::MAX as u32,
        DType::Float32 => f32::INFINITY.to_bits(),
    }
}

fn neutral_max_bits(dtype: DType) -> u32 {
    match dtype {
        DType::Int32 => i32::MIN as u32,
        DType::Float32 => f32::NEG_INFINITY.to_bits(),
    }
}

impl Tensor {
    /// Element-wise maximum of two tensors (`NaN` handling follows the
    /// comparison: a `NaN` element loses every comparison, so the other
    /// operand is selected).
    ///
    /// # Errors
    ///
    /// Fails on shape/dtype/device mismatches.
    pub fn max_elem(&self, rhs: &Tensor) -> Result<Tensor> {
        let gt = self.gt(rhs)?;
        gt.select(self, rhs)
    }

    /// Element-wise minimum of two tensors.
    ///
    /// # Errors
    ///
    /// Fails on shape/dtype/device mismatches.
    pub fn min_elem(&self, rhs: &Tensor) -> Result<Tensor> {
        let lt = self.lt(rhs)?;
        lt.select(self, rhs)
    }

    fn reduce_extreme(&self, want_max: bool) -> Result<u32> {
        let n2 = self.len().next_power_of_two();
        let pad = if want_max {
            neutral_max_bits(self.dtype)
        } else {
            neutral_min_bits(self.dtype)
        };
        let mut t = movement::compact_with_padding(self, n2, pad)?;
        while t.len() > 1 {
            let half = t.len() / 2;
            let lo = t.slice(0, half)?;
            let hi = t.slice(half, t.len())?;
            let hi_aligned = movement::materialize_like(&hi, &lo)?;
            t = if want_max {
                lo.max_elem(&hi_aligned)?
            } else {
                lo.min_elem(&hi_aligned)?
            };
        }
        t.get_raw(0)
    }

    /// Maximum element (float32) via logarithmic reduction.
    ///
    /// # Errors
    ///
    /// Fails for non-float tensors or on movement errors.
    pub fn max_f32(&self) -> Result<f32> {
        self.expect_dtype(DType::Float32)?;
        Ok(f32::from_bits(self.reduce_extreme(true)?))
    }

    /// Minimum element (float32) via logarithmic reduction.
    ///
    /// # Errors
    ///
    /// Fails for non-float tensors or on movement errors.
    pub fn min_f32(&self) -> Result<f32> {
        self.expect_dtype(DType::Float32)?;
        Ok(f32::from_bits(self.reduce_extreme(false)?))
    }

    /// Maximum element (int32) via logarithmic reduction.
    ///
    /// # Errors
    ///
    /// Fails for non-int tensors or on movement errors.
    pub fn max_i32(&self) -> Result<i32> {
        self.expect_dtype(DType::Int32)?;
        Ok(self.reduce_extreme(true)? as i32)
    }

    /// Minimum element (int32) via logarithmic reduction.
    ///
    /// # Errors
    ///
    /// Fails for non-int tensors or on movement errors.
    pub fn min_i32(&self) -> Result<i32> {
        self.expect_dtype(DType::Int32)?;
        Ok(self.reduce_extreme(false)? as i32)
    }
}
