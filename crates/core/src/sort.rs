//! In-memory bitonic sorting (§VI-A "Sorting"): a Batcher bitonic network
//! expressed entirely as element-parallel tensor operations plus uniform
//! shift moves, so each compare-and-swap stage costs O(1) vectored
//! instructions regardless of the tensor length.
//!
//! The classic network conditionally swaps pairs `(i, i ^ j)` with a
//! direction given by bit `k` of the index. Both conditions are *data*
//! here: an index tensor (iota) is materialized once, and the per-stage
//! masks derive from it with bitwise ops — keeping every PIM instruction
//! uniform across threads (no irregular masks needed).

use crate::movement;
use crate::tensor::Tensor;
use crate::Result;
use pim_isa::DType;

fn pad_max_bits(dtype: DType) -> u32 {
    match dtype {
        DType::Int32 => i32::MAX as u32,
        DType::Float32 => f32::INFINITY.to_bits(),
    }
}

impl Tensor {
    /// Returns an ascending-sorted copy of the tensor (bitonic network,
    /// `O(log² n)` parallel stages).
    ///
    /// Float tensors sort by IEEE order; the position of NaNs is
    /// unspecified.
    ///
    /// # Errors
    ///
    /// Fails on allocation or movement errors.
    pub fn sorted(&self) -> Result<Tensor> {
        let n = self.len();
        let n2 = n.next_power_of_two();
        let mut t = movement::compact_with_padding(self, n2, pad_max_bits(self.dtype()))?;
        if n2 == 1 {
            return Ok(t);
        }
        let dev = self.device().clone();
        // Index tensor, thread-aligned with t.
        let iota = {
            let it = dev.empty(n2, DType::Int32, Some(t.alloc.stripe))?;
            for i in 0..n2 {
                it.set_raw(i, i as u32)?;
            }
            it
        };
        let mut k = 2usize;
        while k <= n2 {
            // 1 where bit k of the index is clear (ascending block).
            let zk = iota
                .binary_scalar(pim_isa::RegOp::And, k as u32)?
                .zero_mask()?;
            let mut j = k / 2;
            while j >= 1 {
                let zj = iota
                    .binary_scalar(pim_isa::RegOp::And, j as u32)?
                    .zero_mask()?;
                // Partner values: above for the lower pair element, below
                // for the upper one. Out-of-range lanes are never selected.
                let up = movement::shifted(&t, j as i64)?;
                let dn = movement::shifted(&t, -(j as i64))?;
                let partner = zj.select(&up, &dn)?;
                // Keep the minimum where the pair-direction and block
                // direction agree.
                let keep_min = zk.eq_elem(&zj)?;
                let lt = t.lt(&partner)?;
                let minv = lt.select(&t, &partner)?;
                let maxv = lt.select(&partner, &t)?;
                t = keep_min.select(&minv, &maxv)?;
                j /= 2;
            }
            k *= 2;
        }
        t.slice(0, n)
    }

    /// Sorts the tensor (or view) in place, ascending.
    ///
    /// # Errors
    ///
    /// Fails on allocation or movement errors.
    pub fn sort(&mut self) -> Result<()> {
        let sorted = self.sorted()?;
        movement::copy(&sorted, self)
    }
}
