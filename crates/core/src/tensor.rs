use crate::alloc::Stripe;
use crate::{CoreError, Device, Result};
use pim_arch::RangeMask;
use pim_isa::{DType, Instruction, ThreadRange};
use std::sync::Arc;

/// RAII ownership of a register stripe; dropping it returns the stripe to
/// the device's memory manager.
pub(crate) struct AllocGuard {
    pub(crate) stripe: Stripe,
    pub(crate) device: Device,
}

impl Drop for AllocGuard {
    fn drop(&mut self) {
        self.device.inner.mem.lock().free(self.stripe);
    }
}

/// A one-dimensional PIM tensor (or a *view* of one, §V-A): element `i`
/// lives in register `reg` of thread `warp_start·rows + offset + i·stride`.
///
/// Slicing ([`slice_step`](Tensor::slice_step)) returns a view sharing the
/// same underlying memory — operations on the view automatically translate
/// into the range-based row/warp masks of the microarchitecture, and
/// operations between differently-laid-out views trigger the library's
/// move-based alignment fallback.
///
/// `Clone` is shallow (another view of the same stripe).
#[derive(Clone)]
pub struct Tensor {
    pub(crate) alloc: Arc<AllocGuard>,
    pub(crate) dtype: DType,
    /// Thread offset of element 0 relative to the stripe's first thread.
    pub(crate) offset: usize,
    /// Thread distance between consecutive elements.
    pub(crate) stride: usize,
    /// Number of elements.
    pub(crate) len: usize,
}

impl std::fmt::Debug for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tensor")
            .field("dtype", &self.dtype)
            .field("len", &self.len)
            .field("reg", &self.alloc.stripe.reg)
            .field("warp_start", &self.alloc.stripe.warp_start)
            .field("offset", &self.offset)
            .field("stride", &self.stride)
            .finish()
    }
}

impl Tensor {
    pub(crate) fn from_stripe(alloc: Arc<AllocGuard>, dtype: DType, len: usize) -> Tensor {
        Tensor {
            alloc,
            dtype,
            offset: 0,
            stride: 1,
            len,
        }
    }

    /// Number of elements in this tensor/view.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Always `false`: tensors have at least one element.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Element datatype.
    pub fn dtype(&self) -> DType {
        self.dtype
    }

    /// The device this tensor lives on.
    pub fn device(&self) -> &Device {
        &self.alloc.device
    }

    /// The ISA register this tensor's elements occupy.
    pub fn reg(&self) -> u8 {
        self.alloc.stripe.reg
    }

    /// Absolute thread index (across the whole memory) of element `i`.
    pub(crate) fn thread(&self, i: usize) -> usize {
        let rows = self.device().config().rows;
        self.alloc.stripe.warp_start as usize * rows + self.offset + i * self.stride
    }

    /// `(warp, row)` of element `i`.
    pub(crate) fn warp_row(&self, i: usize) -> (u32, u32) {
        let rows = self.device().config().rows;
        let t = self.thread(i);
        ((t / rows) as u32, (t % rows) as u32)
    }

    /// Whether `self` and `other` occupy exactly the same threads
    /// (element-for-element), which is the condition for direct parallel
    /// operation.
    pub(crate) fn aligned_with(&self, other: &Tensor) -> bool {
        self.device().same_device(other.device())
            && self.len == other.len
            && self.stride == other.stride
            && self.thread(0) == other.thread(0)
    }

    /// Python-style slice `[start:stop:step]` (positive step), returning a
    /// view over the same memory.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidSlice`] for empty or out-of-range
    /// slices.
    pub fn slice_step(&self, start: usize, stop: usize, step: usize) -> Result<Tensor> {
        if step == 0 {
            return Err(CoreError::InvalidSlice {
                what: "step must be nonzero".into(),
            });
        }
        let stop = stop.min(self.len);
        if start >= stop {
            return Err(CoreError::InvalidSlice {
                what: format!("range {start}..{stop} is empty"),
            });
        }
        let len = (stop - start).div_ceil(step);
        Ok(Tensor {
            alloc: Arc::clone(&self.alloc),
            dtype: self.dtype,
            offset: self.offset + start * self.stride,
            stride: self.stride * step,
            len,
        })
    }

    /// Dense sub-range view `[start:stop]`.
    ///
    /// # Errors
    ///
    /// See [`slice_step`](Tensor::slice_step).
    pub fn slice(&self, start: usize, stop: usize) -> Result<Tensor> {
        self.slice_step(start, stop, 1)
    }

    /// The even-index view `x[::2]` of Figure 12.
    ///
    /// # Errors
    ///
    /// See [`slice_step`](Tensor::slice_step).
    pub fn even(&self) -> Result<Tensor> {
        self.slice_step(0, self.len, 2)
    }

    /// The odd-index view `x[1::2]`.
    ///
    /// # Errors
    ///
    /// See [`slice_step`](Tensor::slice_step).
    pub fn odd(&self) -> Result<Tensor> {
        self.slice_step(1, self.len, 2)
    }

    /// Decomposes this view's thread set into ISA [`ThreadRange`]s (the
    /// range-based warp/row masks of §III-B). Dense and uniformly strided
    /// views need at most three ranges (partial head warp, full body
    /// warps, partial tail warp); pathological strides fall back to
    /// per-element ranges.
    pub(crate) fn thread_ranges(&self) -> Vec<ThreadRange> {
        let rows = self.device().config().rows;
        let (t0, s, n) = (self.thread(0), self.stride, self.len);
        let single = |i: usize| {
            let t = t0 + i * s;
            ThreadRange::single((t / rows) as u32, (t % rows) as u32)
        };
        if n == 1 {
            return vec![single(0)];
        }
        let t_last = t0 + (n - 1) * s;
        // Case A: everything within one warp.
        if t0 / rows == t_last / rows {
            return vec![ThreadRange::new(
                RangeMask::single((t0 / rows) as u32),
                RangeMask::strided((t0 % rows) as u32, n as u32, s as u32)
                    .expect("validated stride"),
            )];
        }
        // Case B: stride is a multiple of the row count — one row per warp.
        if s % rows == 0 {
            let warp_step = (s / rows) as u32;
            return vec![ThreadRange::new(
                RangeMask::strided((t0 / rows) as u32, n as u32, warp_step)
                    .expect("validated stride"),
                RangeMask::single((t0 % rows) as u32),
            )];
        }
        // Case C: stride divides the row count — per-warp periodic pattern
        // with optional partial head/tail warps.
        if rows.is_multiple_of(s) {
            let per = rows / s; // elements per full warp
            let phase = t0 % s;
            let mut ranges = Vec::new();
            let mut i = 0usize;
            // Head: elements left in the first warp.
            let head_warp = t0 / rows;
            let in_head = ((head_warp + 1) * rows - t0).div_ceil(s).min(n);
            if (t0 % rows) != phase || in_head < per {
                ranges.push(ThreadRange::new(
                    RangeMask::single(head_warp as u32),
                    RangeMask::strided((t0 % rows) as u32, in_head as u32, s as u32)
                        .expect("validated stride"),
                ));
                i = in_head;
            }
            // Body: full warps.
            if i < n {
                let body_start_warp = (t0 + i * s) / rows;
                let full_warps = (n - i) / per;
                if full_warps > 0 {
                    ranges.push(ThreadRange::new(
                        RangeMask::strided(body_start_warp as u32, full_warps as u32, 1)
                            .expect("validated"),
                        RangeMask::strided(phase as u32, per as u32, s as u32)
                            .expect("validated stride"),
                    ));
                    i += full_warps * per;
                }
            }
            // Tail: remainder in the last warp.
            if i < n {
                let t_tail = t0 + i * s;
                ranges.push(ThreadRange::new(
                    RangeMask::single((t_tail / rows) as u32),
                    RangeMask::strided((t_tail % rows) as u32, (n - i) as u32, s as u32)
                        .expect("validated stride"),
                ));
            }
            return ranges;
        }
        // Fallback: per-element ranges.
        (0..n).map(single).collect()
    }

    /// Raw word of element `i` (the IEEE-754 bit pattern for floats).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::IndexOutOfBounds`] when `i >= len`.
    pub fn get_raw(&self, i: usize) -> Result<u32> {
        if i >= self.len {
            return Err(CoreError::IndexOutOfBounds {
                index: i,
                len: self.len,
            });
        }
        let (warp, row) = self.warp_row(i);
        let v = self
            .device()
            .exec(&Instruction::Read {
                reg: self.reg(),
                warp,
                row,
            })?
            .expect("read returns a value");
        Ok(v)
    }

    /// Writes the raw word of element `i`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::IndexOutOfBounds`] when `i >= len`.
    pub fn set_raw(&self, i: usize, bits: u32) -> Result<()> {
        if i >= self.len {
            return Err(CoreError::IndexOutOfBounds {
                index: i,
                len: self.len,
            });
        }
        let (warp, row) = self.warp_row(i);
        self.device().exec(&Instruction::Write {
            reg: self.reg(),
            value: bits,
            target: ThreadRange::single(warp, row),
        })?;
        Ok(())
    }

    /// Broadcast-writes a raw word to every element of this view (one
    /// write instruction per thread range — the ISA's range-repeated write
    /// for constants).
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn fill_raw_pub(&self, bits: u32) -> Result<()> {
        self.fill_raw(bits)
    }

    /// Broadcast-writes a float to every element of this view.
    ///
    /// # Errors
    ///
    /// Fails for non-float tensors.
    pub fn fill_f32(&self, v: f32) -> Result<()> {
        self.expect_dtype(DType::Float32)?;
        self.fill_raw(v.to_bits())
    }

    /// Broadcast-writes an int to every element of this view.
    ///
    /// # Errors
    ///
    /// Fails for non-int tensors.
    pub fn fill_i32(&self, v: i32) -> Result<()> {
        self.expect_dtype(DType::Int32)?;
        self.fill_raw(v as u32)
    }

    /// The write instructions that broadcast `bits` to every element of
    /// this view (one per thread range — the ISA's range-repeated write for
    /// constants), for callers that batch or submit work themselves (the
    /// async serving path).
    pub fn plan_fill(&self, bits: u32) -> Vec<Instruction> {
        self.thread_ranges()
            .into_iter()
            .map(|target| Instruction::Write {
                reg: self.reg(),
                value: bits,
                target,
            })
            .collect()
    }

    /// The write instructions that store one raw word per element, in
    /// order — the plannable counterpart of a bulk upload.
    ///
    /// # Panics
    ///
    /// Panics unless `values` yields exactly one word per element.
    pub fn plan_store(&self, values: impl IntoIterator<Item = u32>) -> Vec<Instruction> {
        let instrs: Vec<Instruction> = values
            .into_iter()
            .enumerate()
            .map(|(i, bits)| {
                let (warp, row) = self.warp_row(i);
                Instruction::Write {
                    reg: self.reg(),
                    value: bits,
                    target: ThreadRange::single(warp, row),
                }
            })
            .collect();
        assert_eq!(
            instrs.len(),
            self.len,
            "plan_store requires exactly one value per element"
        );
        instrs
    }

    /// The `(warp, row, register)` location of every element, in order —
    /// the read side of the planning API (feed to
    /// [`Device::submit_reads`](crate::Device::submit_reads)).
    pub fn element_locs(&self) -> Vec<(u32, u32, u8)> {
        (0..self.len)
            .map(|i| {
                let (warp, row) = self.warp_row(i);
                (warp, row, self.reg())
            })
            .collect()
    }

    /// Broadcast-writes `bits` to every element. The ranges go out as one
    /// batch so sharded devices fill all chips concurrently.
    pub(crate) fn fill_raw(&self, bits: u32) -> Result<()> {
        self.device().exec_batch(&self.plan_fill(bits))
    }

    /// Writes the whole view from an iterator of raw words (exactly one
    /// value per element, in order) as a single bulk scatter.
    pub(crate) fn store_raw(&self, values: impl IntoIterator<Item = u32>) -> Result<()> {
        let writes: Vec<pim_cluster::GlobalWrite> = values
            .into_iter()
            .enumerate()
            .map(|(i, bits)| {
                let (warp, row) = self.warp_row(i);
                pim_cluster::GlobalWrite::new(warp, row, self.reg(), bits)
            })
            .collect();
        assert_eq!(
            writes.len(),
            self.len,
            "store_raw requires exactly one value per element"
        );
        self.device().write_many(&writes)
    }

    /// Float element access (`x[4]`).
    ///
    /// # Errors
    ///
    /// Fails on out-of-bounds indices or non-float tensors.
    pub fn get_f32(&self, i: usize) -> Result<f32> {
        self.expect_dtype(DType::Float32)?;
        Ok(f32::from_bits(self.get_raw(i)?))
    }

    /// Float element write (`x[4] = 8.0`).
    ///
    /// # Errors
    ///
    /// Fails on out-of-bounds indices or non-float tensors.
    pub fn set_f32(&mut self, i: usize, v: f32) -> Result<()> {
        self.expect_dtype(DType::Float32)?;
        self.set_raw(i, v.to_bits())
    }

    /// Int element access.
    ///
    /// # Errors
    ///
    /// Fails on out-of-bounds indices or non-int tensors.
    pub fn get_i32(&self, i: usize) -> Result<i32> {
        self.expect_dtype(DType::Int32)?;
        Ok(self.get_raw(i)? as i32)
    }

    /// Int element write.
    ///
    /// # Errors
    ///
    /// Fails on out-of-bounds indices or non-int tensors.
    pub fn set_i32(&mut self, i: usize, v: i32) -> Result<()> {
        self.expect_dtype(DType::Int32)?;
        self.set_raw(i, v as u32)
    }

    /// Reads the whole tensor back as raw words — a single bulk gather, so
    /// sharded devices read all chips concurrently.
    ///
    /// # Errors
    ///
    /// Propagates read failures.
    pub fn to_raw_vec(&self) -> Result<Vec<u32>> {
        self.device().read_many(&self.element_locs())
    }

    /// Reads the whole tensor back as floats.
    ///
    /// # Errors
    ///
    /// Fails for non-float tensors.
    pub fn to_vec_f32(&self) -> Result<Vec<f32>> {
        self.expect_dtype(DType::Float32)?;
        Ok(self.to_raw_vec()?.into_iter().map(f32::from_bits).collect())
    }

    /// Reads the whole tensor back as ints.
    ///
    /// # Errors
    ///
    /// Fails for non-int tensors.
    pub fn to_vec_i32(&self) -> Result<Vec<i32>> {
        self.expect_dtype(DType::Int32)?;
        Ok(self.to_raw_vec()?.into_iter().map(|v| v as i32).collect())
    }

    pub(crate) fn expect_dtype(&self, dtype: DType) -> Result<()> {
        if self.dtype == dtype {
            Ok(())
        } else {
            Err(CoreError::DTypeMismatch {
                what: format!("expected {dtype}, tensor holds {}", self.dtype),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn dev(crossbars: usize, rows: usize) -> Device {
        Device::new(
            pim_arch::PimConfig::small()
                .with_crossbars(crossbars)
                .with_rows(rows),
        )
        .unwrap()
    }

    /// Collects the exact thread set selected by a list of ranges.
    fn enumerate(ranges: &[ThreadRange], rows: usize) -> Vec<usize> {
        let mut out = Vec::new();
        for tr in ranges {
            for w in tr.warps.iter() {
                for r in tr.rows.iter() {
                    out.push(w as usize * rows + r as usize);
                }
            }
        }
        out
    }

    #[test]
    fn thread_ranges_cover_dense_multi_warp() {
        let d = dev(4, 16);
        let t = d.zeros_i32(50).unwrap(); // 3.125 warps
        let ranges = t.thread_ranges();
        assert!(ranges.len() <= 3, "dense tensors need at most 3 ranges");
        let base = t.thread(0);
        let mut got = enumerate(&ranges, 16);
        got.sort_unstable();
        assert_eq!(got, (base..base + 50).collect::<Vec<_>>());
    }

    #[test]
    fn thread_ranges_strided_within_warp() {
        let d = dev(4, 16);
        let t = d.zeros_i32(16).unwrap();
        let v = t.slice_step(1, 16, 3).unwrap(); // rows 1, 4, 7, 10, 13
        let ranges = v.thread_ranges();
        assert_eq!(ranges.len(), 1);
        let got = enumerate(&ranges, 16);
        assert_eq!(
            got,
            vec![
                v.thread(0),
                v.thread(1),
                v.thread(2),
                v.thread(3),
                v.thread(4)
            ]
        );
    }

    #[test]
    fn thread_ranges_row_per_warp() {
        // Stride equal to the row count: one row in every warp.
        let d = dev(4, 16);
        let t = d.zeros_i32(64).unwrap();
        let v = t.slice_step(3, 64, 16).unwrap();
        let ranges = v.thread_ranges();
        assert_eq!(ranges.len(), 1);
        assert_eq!(ranges[0].rows.len(), 1);
        assert_eq!(ranges[0].warps.len(), 4);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The decomposition selects exactly the view's thread set —
        /// nothing missing, nothing extra, nothing doubled — for arbitrary
        /// (even pathological) slice stacks.
        #[test]
        fn thread_ranges_exact_cover(
            n in 1usize..60,
            s1 in (0usize..8, 1usize..6),
            s2 in (0usize..5, 1usize..4),
        ) {
            let d = dev(4, 16);
            let t = d.zeros_i32(n).unwrap();
            let mut v = t.clone();
            for (start, step) in [s1, s2] {
                if let Ok(sl) = v.slice_step(start, v.len(), step) {
                    v = sl;
                }
            }
            let expect: Vec<usize> = (0..v.len()).map(|i| v.thread(i)).collect();
            let mut got = enumerate(&v.thread_ranges(), 16);
            got.sort_unstable();
            let mut sorted_expect = expect.clone();
            sorted_expect.sort_unstable();
            prop_assert_eq!(got, sorted_expect);
        }

        /// Slice composition matches host-side index arithmetic.
        #[test]
        fn slice_of_slice_threads(
            n in 4usize..40,
            a in 0usize..6, sa in 1usize..5,
            b in 0usize..4, sb in 1usize..4,
        ) {
            let d = dev(4, 16);
            let t = d.zeros_i32(n).unwrap();
            let host: Vec<usize> = (0..n).collect();
            let h1: Vec<usize> = host.iter().copied().skip(a).step_by(sa).collect();
            let v1 = t.slice_step(a, n, sa);
            match (&v1, h1.is_empty()) {
                (Err(_), true) => return Ok(()),
                (Ok(v), false) => {
                    let h2: Vec<usize> = h1.iter().copied().skip(b).step_by(sb).collect();
                    match (v.slice_step(b, v.len(), sb), h2.is_empty()) {
                        (Err(_), true) => {}
                        (Ok(v2), false) => {
                            prop_assert_eq!(v2.len(), h2.len());
                            for (i, &orig) in h2.iter().enumerate() {
                                prop_assert_eq!(v2.thread(i), t.thread(orig));
                            }
                        }
                        (r, e) => prop_assert!(false, "mismatch: ok={} empty={}", r.is_ok(), e),
                    }
                }
                (r, e) => prop_assert!(false, "mismatch: ok={} empty={}", r.is_ok(), e),
            }
        }
    }
}
