//! PIM-optimized dynamic memory management (§V-A).
//!
//! A tensor occupies a *stripe*: one ISA register index across all rows of
//! a contiguous range of warps. Parallel operations require operands in the
//! same threads, so the allocator works to co-locate tensors: requests can
//! name a *reference stripe* (the paper's reference-tensor option), and the
//! fallback copy in the ops layer handles the misaligned remainder.

use crate::{CoreError, Result};
use pim_arch::PimConfig;
use pim_cluster::ShardPlan;
use std::collections::BTreeMap;

/// A register stripe: register `reg` across every row of warps
/// `warp_start .. warp_start + warps`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stripe {
    /// ISA register index.
    pub reg: u8,
    /// First warp of the stripe.
    pub warp_start: u32,
    /// Number of consecutive warps.
    pub warps: u32,
}

/// A preferred warp window for allocations — the per-client placement of
/// the serving gateway (§V-A dynamic memory management under concurrent
/// clients).
///
/// Allocations carrying a hint are confined to the window first (any
/// register), so one client's tensors co-locate with each other instead of
/// with every other client's. Windows reserved through
/// [`MemoryManager::reserve_window`] are *hard*: no other allocation —
/// hinted elsewhere or unhinted — ever lands inside one, which both keeps
/// concurrent sessions from exhausting each other's registers and
/// guarantees that stripes an in-flight instruction plan references cannot
/// be claimed by a different client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlacementHint {
    /// First warp of the window.
    pub warp_start: u32,
    /// Number of consecutive warps.
    pub warps: u32,
}

impl PlacementHint {
    /// Whether two windows share any warp.
    pub fn overlaps(&self, other: &PlacementHint) -> bool {
        self.warp_start < other.warp_start + other.warps
            && other.warp_start < self.warp_start + self.warps
    }

    /// Whether the warp range `[start, start + len)` lies inside the
    /// window.
    pub fn contains(&self, start: u32, len: u32) -> bool {
        start >= self.warp_start && start + len <= self.warp_start + self.warps
    }
}

/// Free-interval bookkeeping for one register index.
#[derive(Debug, Default, Clone)]
struct Intervals {
    /// `start -> len` of free warp ranges, non-overlapping, non-adjacent.
    free: BTreeMap<u32, u32>,
}

impl Intervals {
    fn new(total: u32) -> Self {
        let mut free = BTreeMap::new();
        free.insert(0, total);
        Intervals { free }
    }

    /// Claims `[start, start+len)` exactly; `false` if not fully free.
    fn claim_exact(&mut self, start: u32, len: u32) -> bool {
        let (&fs, &fl) = match self.free.range(..=start).next_back() {
            Some(kv) => kv,
            None => return false,
        };
        if start < fs || start + len > fs + fl {
            return false;
        }
        self.free.remove(&fs);
        if start > fs {
            self.free.insert(fs, start - fs);
        }
        if fs + fl > start + len {
            self.free.insert(start + len, fs + fl - (start + len));
        }
        true
    }

    /// Claims the first free range of `len` warps.
    fn claim_first(&mut self, len: u32) -> Option<u32> {
        let start = self.free.iter().find(|(_, &l)| l >= len).map(|(&s, _)| s)?;
        self.claim_exact(start, len).then_some(start)
    }

    /// Claims the first free range of `len` warps lying entirely within
    /// `[lo, hi)`.
    fn claim_first_within(&mut self, lo: u32, hi: u32, len: u32) -> Option<u32> {
        let start = self.free.iter().find_map(|(&s, &l)| {
            let cand = s.max(lo);
            (cand + len <= (s + l).min(hi)).then_some(cand)
        })?;
        self.claim_exact(start, len).then_some(start)
    }

    /// Claims the first free range of `len` warps that lies inside one
    /// `chunk`-aligned block (never straddling a block boundary) and
    /// avoids every reserved window — the shard-local placement rule:
    /// with `chunk = warps_per_shard`, the claimed stripe stays on a
    /// single chip.
    fn claim_first_chunk_local(
        &mut self,
        len: u32,
        chunk: u32,
        reserved: &[PlacementHint],
    ) -> Option<u32> {
        debug_assert!(len <= chunk);
        let start = self.free.iter().find_map(|(&s, &l)| {
            let end = s + l;
            let mut pos = s;
            while pos + len <= end {
                // Bump past a block boundary the candidate would straddle.
                let block_end = (pos / chunk + 1) * chunk;
                if pos + len > block_end {
                    pos = block_end;
                    continue;
                }
                match reserved
                    .iter()
                    .filter(|r| r.warp_start < pos + len && pos < r.warp_start + r.warps)
                    .map(|r| r.warp_start + r.warps)
                    .max()
                {
                    None => return Some(pos),
                    Some(next) => pos = next,
                }
            }
            None
        })?;
        self.claim_exact(start, len).then_some(start)
    }

    /// Claims the first free range of `len` warps that avoids every
    /// reserved window — the headroom rule for unhinted allocations. The
    /// chunk-local search with an unstraddleable block: one shared
    /// reservation-skip loop for both claim paths.
    fn claim_first_avoiding(&mut self, len: u32, reserved: &[PlacementHint]) -> Option<u32> {
        self.claim_first_chunk_local(len, u32::MAX, reserved)
    }

    /// Returns `[start, start+len)` to the free set, merging neighbors.
    fn release(&mut self, start: u32, len: u32) {
        let mut start = start;
        let mut len = len;
        if let Some((&ps, &pl)) = self.free.range(..start).next_back() {
            assert!(ps + pl <= start, "double free of warp range");
            if ps + pl == start {
                self.free.remove(&ps);
                start = ps;
                len += pl;
            }
        }
        if let Some((&ns, &nl)) = self.free.range(start + len..).next() {
            if start + len == ns {
                self.free.remove(&ns);
                len += nl;
            }
        }
        assert!(
            self.free.range(start..start + len).next().is_none(),
            "double free of warp range"
        );
        self.free.insert(start, len);
    }
}

/// The stripe allocator over all ISA registers.
#[derive(Debug)]
pub struct MemoryManager {
    per_reg: Vec<Intervals>,
    total_warps: u32,
    /// Rotating hint so consecutive allocations land in the same warp
    /// window on different registers (maximizing alignment).
    last_window: Option<(u32, u32)>,
    /// Active per-client placement windows ([`reserve_window`]).
    ///
    /// [`reserve_window`]: MemoryManager::reserve_window
    reserved: Vec<PlacementHint>,
    /// Per-placement-window co-location hints: the most recent allocation
    /// window *inside* each client window, so a session's consecutive
    /// equal-sized allocations stack across registers (thread-aligned)
    /// exactly like unhinted ones do globally.
    hint_last: Vec<(PlacementHint, (u32, u32))>,
    /// Rotating cursor spreading successive reservations across the warp
    /// space — on a sharded device that naturally lands different clients
    /// on different chips.
    next_window: u32,
    /// The cluster's shard geometry, when the device is sharded: stripes
    /// whose elements the data-parallel partition places on one chip
    /// ([`ShardPlan::partition_elements`]) prefer a warp range that never
    /// straddles a chip boundary, so operations on small tensors stay
    /// chip-local (zero interconnect traffic).
    shard_plan: Option<ShardPlan>,
}

impl MemoryManager {
    /// Creates a manager for `cfg` (one interval set per ISA register).
    pub fn new(cfg: &PimConfig) -> Self {
        MemoryManager {
            per_reg: (0..cfg.user_regs)
                .map(|_| Intervals::new(cfg.crossbars as u32))
                .collect(),
            total_warps: cfg.crossbars as u32,
            last_window: None,
            reserved: Vec::new(),
            hint_last: Vec::new(),
            next_window: 0,
            shard_plan: None,
        }
    }

    /// Threads the cluster's shard geometry into placement decisions (see
    /// the [`shard_plan`](MemoryManager) field docs). Single-chip devices
    /// leave it unset; [`alloc`](MemoryManager::alloc) then behaves
    /// exactly as before.
    pub fn set_shard_plan(&mut self, plan: Option<ShardPlan>) {
        self.shard_plan = plan;
    }

    /// Reserves a `warps`-warp window for one client session: the window is
    /// window-aligned (its start is a multiple of `warps`), disjoint from
    /// every other active reservation, and — while it stays reserved —
    /// off-limits to every other allocation (see [`alloc`]'s hard-window
    /// rule). Successive reservations rotate through the warp space.
    /// Stripes that were already allocated inside the window stay valid;
    /// only future foreign allocations are excluded.
    ///
    /// [`alloc`]: MemoryManager::alloc
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::OutOfMemory`] when no disjoint window is left.
    pub fn reserve_window(&mut self, warps: u32) -> Result<PlacementHint> {
        assert!(warps > 0);
        if warps > self.total_warps {
            return Err(CoreError::OutOfMemory {
                elements: warps as usize,
            });
        }
        let slots = self.total_warps / warps;
        let first_slot = (self.next_window / warps).min(slots - 1);
        for i in 0..slots {
            let start = ((first_slot + i) % slots) * warps;
            let cand = PlacementHint {
                warp_start: start,
                warps,
            };
            if self.reserved.iter().all(|r| !r.overlaps(&cand)) {
                self.reserved.push(cand);
                self.next_window = (start + warps) % self.total_warps;
                return Ok(cand);
            }
        }
        Err(CoreError::OutOfMemory {
            elements: warps as usize,
        })
    }

    /// Drops a window reservation (allocations inside it stay valid and
    /// free normally; only the headroom claim ends).
    pub fn release_window(&mut self, window: PlacementHint) {
        if let Some(i) = self.reserved.iter().position(|r| *r == window) {
            self.reserved.swap_remove(i);
        }
        if let Some(i) = self.hint_last.iter().position(|(h, _)| *h == window) {
            self.hint_last.swap_remove(i);
        }
    }

    /// Active window reservations (for telemetry and tests).
    pub fn reserved_windows(&self) -> &[PlacementHint] {
        &self.reserved
    }

    /// Allocates a stripe of `warps` warps.
    ///
    /// Preference order without a placement hint: the exact window of
    /// `near` (so the new tensor is thread-aligned with the reference
    /// tensor), then the most recent allocation window, then — on a
    /// sharded device, for stripes that fit one chip — the first
    /// chip-local range (never straddling a shard boundary), then first
    /// fit.
    ///
    /// With a placement hint the search is: the `near` window, then the
    /// session's own most recent window (so its tensors stack across
    /// registers), then inside the hinted window (any register), then
    /// outside it — and the global last-window hint is neither consulted
    /// nor updated, so concurrent clients stop funneling into one shared
    /// window.
    ///
    /// Reserved windows are **hard**: no allocation — hinted to a
    /// different window, or unhinted — ever lands inside another client's
    /// reservation; the request fails with `OutOfMemory` instead. (A
    /// serving client clobbering a concurrent session's stripes — possibly
    /// ones an in-flight instruction plan still references — would corrupt
    /// both, so failing fast is the only safe answer.)
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::OutOfMemory`] when no register has a
    /// sufficiently large free range outside other clients' reservations.
    pub fn alloc(
        &mut self,
        warps: u32,
        near: Option<Stripe>,
        hint: Option<PlacementHint>,
    ) -> Result<Stripe> {
        assert!(warps > 0);
        if warps > self.total_warps {
            return Err(CoreError::OutOfMemory {
                elements: warps as usize,
            });
        }
        // Windows of *other* clients: out of bounds for this allocation.
        let foreign: Vec<PlacementHint> = self
            .reserved
            .iter()
            .copied()
            .filter(|r| hint != Some(*r))
            .collect();
        let permitted = |start: u32| {
            foreign
                .iter()
                .all(|r| !(r.warp_start < start + warps && start < r.warp_start + r.warps))
        };
        // 1. Exact window of the reference stripe and of the most recent
        //    allocation (global for unhinted callers, per client window
        //    for hinted ones), any register.
        let recent = match hint {
            None => self.last_window,
            Some(h) => self
                .hint_last
                .iter()
                .find(|(hw, _)| *hw == h)
                .map(|&(_, w)| w),
        };
        let windows: Vec<(u32, u32)> = [near.map(|s| (s.warp_start, s.warps)), recent]
            .into_iter()
            .flatten()
            .filter(|&(start, w)| w == warps && permitted(start))
            .collect();
        for (start, _) in windows {
            for (reg, iv) in self.per_reg.iter_mut().enumerate() {
                if iv.claim_exact(start, warps) {
                    return Ok(self.note(reg, start, warps, hint));
                }
            }
        }
        // 2. Hinted: first fit inside the client's window (reservations
        //    are disjoint, so the window cannot overlap a foreign one).
        if let Some(h) = hint {
            let (lo, hi) = (h.warp_start, h.warp_start + h.warps);
            for (reg, iv) in self.per_reg.iter_mut().enumerate() {
                if let Some(start) = iv.claim_first_within(lo, hi, warps) {
                    return Ok(self.note(reg, start, warps, hint));
                }
            }
        }
        // 3. Shard-local placement: when the data-parallel partition
        //    ([`ShardPlan::partition_elements`]) puts every thread of a
        //    stripe this size on a single chip, claim a warp range that
        //    does not straddle a shard boundary, so the tensor's
        //    operations never touch the interconnect. Falls through to
        //    the spanning search when fragmentation leaves no chip-local
        //    range.
        let chunk = self.shard_plan.as_ref().and_then(|p| {
            let rows = p.threads_per_shard() / p.warps_per_shard();
            let shards_spanned = p
                .partition_elements(warps as usize * rows)
                .into_iter()
                .filter(|r| !r.is_empty())
                .count();
            (shards_spanned <= 1).then(|| p.warps_per_shard() as u32)
        });
        if let Some(chunk) = chunk {
            for (reg, iv) in self.per_reg.iter_mut().enumerate() {
                if let Some(start) = iv.claim_first_chunk_local(warps, chunk, &foreign) {
                    return Ok(self.note(reg, start, warps, hint));
                }
            }
        }
        // 4. First fit across registers, never inside a foreign window.
        if foreign.is_empty() {
            for (reg, iv) in self.per_reg.iter_mut().enumerate() {
                if let Some(start) = iv.claim_first(warps) {
                    return Ok(self.note(reg, start, warps, hint));
                }
            }
        } else {
            for (reg, iv) in self.per_reg.iter_mut().enumerate() {
                if let Some(start) = iv.claim_first_avoiding(warps, &foreign) {
                    return Ok(self.note(reg, start, warps, hint));
                }
            }
        }
        Err(CoreError::OutOfMemory {
            elements: warps as usize,
        })
    }

    /// Records the appropriate co-location hint (global or per client
    /// window) and builds the stripe.
    fn note(&mut self, reg: usize, start: u32, warps: u32, hint: Option<PlacementHint>) -> Stripe {
        match hint {
            None => self.last_window = Some((start, warps)),
            Some(h) => {
                if let Some(entry) = self.hint_last.iter_mut().find(|(hw, _)| *hw == h) {
                    entry.1 = (start, warps);
                } else {
                    self.hint_last.push((h, (start, warps)));
                }
            }
        }
        Stripe {
            reg: reg as u8,
            warp_start: start,
            warps,
        }
    }

    /// Allocates a stripe covering exactly the window of `like` (any free
    /// register) — used by the fallback-copy path.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::OutOfMemory`] when every register is occupied
    /// in that window.
    pub fn alloc_like(&mut self, like: Stripe) -> Result<Stripe> {
        for (reg, iv) in self.per_reg.iter_mut().enumerate() {
            if iv.claim_exact(like.warp_start, like.warps) {
                return Ok(Stripe {
                    reg: reg as u8,
                    warp_start: like.warp_start,
                    warps: like.warps,
                });
            }
        }
        Err(CoreError::OutOfMemory {
            elements: like.warps as usize,
        })
    }

    /// Returns a stripe to the free pool.
    pub fn free(&mut self, stripe: Stripe) {
        self.per_reg[stripe.reg as usize].release(stripe.warp_start, stripe.warps);
    }

    /// Total free warp-stripes summed over registers (for tests).
    pub fn free_capacity(&self) -> u64 {
        self.per_reg
            .iter()
            .map(|iv| iv.free.values().map(|&l| l as u64).sum::<u64>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr() -> MemoryManager {
        MemoryManager::new(&PimConfig::small()) // 16 warps, 16 user regs
    }

    #[test]
    fn alloc_free_roundtrip() {
        let mut m = mgr();
        let total = m.free_capacity();
        let a = m.alloc(4, None, None).unwrap();
        let b = m.alloc(4, None, None).unwrap();
        assert_eq!(m.free_capacity(), total - 8);
        m.free(a);
        m.free(b);
        assert_eq!(m.free_capacity(), total);
    }

    #[test]
    fn consecutive_allocations_align() {
        let mut m = mgr();
        let a = m.alloc(4, None, None).unwrap();
        let b = m.alloc(4, None, None).unwrap();
        // Same warp window, different registers (the malloc behavior §V-A
        // describes for enabling parallelism).
        assert_eq!(a.warp_start, b.warp_start);
        assert_ne!(a.reg, b.reg);
    }

    #[test]
    fn reference_tensor_alignment() {
        let mut m = mgr();
        let a = m.alloc(2, None, None).unwrap();
        let _filler = m.alloc(8, None, None).unwrap();
        let c = m.alloc(2, Some(a), None).unwrap();
        assert_eq!(c.warp_start, a.warp_start);
    }

    #[test]
    fn alloc_like_claims_exact_window() {
        let mut m = mgr();
        let a = m.alloc(3, None, None).unwrap();
        let b = m.alloc_like(a).unwrap();
        assert_eq!((b.warp_start, b.warps), (a.warp_start, a.warps));
        assert_ne!(b.reg, a.reg);
    }

    #[test]
    fn exhaustion_is_reported() {
        let mut m = mgr();
        // 16 regs x 16 warps; take everything.
        let mut stripes = Vec::new();
        for _ in 0..16 {
            stripes.push(m.alloc(16, None, None).unwrap());
        }
        assert!(matches!(
            m.alloc(1, None, None),
            Err(CoreError::OutOfMemory { .. })
        ));
        m.free(stripes.pop().unwrap());
        assert!(m.alloc(16, None, None).is_ok());
    }

    #[test]
    fn interval_merging() {
        let mut m = mgr();
        let a = m.alloc(5, None, None).unwrap();
        let b = m.alloc(5, None, None).unwrap();
        let c = m.alloc(6, None, None).unwrap();
        // a, b, c may be on different regs; force same-reg fragmentation:
        let on_same_reg: Vec<Stripe> = [a, b, c].into_iter().filter(|s| s.reg == a.reg).collect();
        for s in on_same_reg {
            m.free(s);
        }
        // After freeing, a 16-warp alloc on reg 0 must succeed again if all
        // three were on reg 0; otherwise at least the capacity accounting
        // holds.
        let cap = m.free_capacity();
        let big = m.alloc(16, None, None).unwrap();
        m.free(big);
        assert_eq!(m.free_capacity(), cap);
    }

    #[test]
    fn rejects_oversized() {
        let mut m = mgr();
        assert!(m.alloc(17, None, None).is_err());
    }

    #[test]
    fn reservations_rotate_and_stay_disjoint() {
        let mut m = mgr(); // 16 warps
        let a = m.reserve_window(4).unwrap();
        let b = m.reserve_window(4).unwrap();
        let c = m.reserve_window(4).unwrap();
        let d = m.reserve_window(4).unwrap();
        for (i, w) in [a, b, c, d].iter().enumerate() {
            assert_eq!(w.warp_start % 4, 0, "window {i} must be aligned");
            for (j, o) in [a, b, c, d].iter().enumerate() {
                if i != j {
                    assert!(!w.overlaps(o), "windows {i} and {j} alias");
                }
            }
        }
        // The space is fully tiled: a fifth same-size session fails...
        assert!(m.reserve_window(4).is_err());
        // ...until one releases its window.
        m.release_window(b);
        let e = m.reserve_window(4).unwrap();
        assert_eq!(e, b);
    }

    /// 4 chips x 4 crossbars: the 16-warp geometry of `mgr()` with shard
    /// boundaries at warps 4, 8, 12.
    fn plan4x4() -> ShardPlan {
        ShardPlan::new(&PimConfig::small().with_crossbars(4), 4).unwrap()
    }

    #[test]
    fn shard_local_placement_avoids_straddling() {
        let mut m = mgr();
        m.set_shard_plan(Some(plan4x4()));
        let a = m.alloc(3, None, None).unwrap();
        assert_eq!((a.warp_start, a.reg), (0, 0));
        // Plain first fit would land at warp 3, straddling the chip
        // boundary at warp 4; shard-aware placement skips to chip 1.
        let b = m.alloc(2, None, None).unwrap();
        assert_eq!(b.warp_start, 4, "stripe must not straddle a shard");
        // Consecutive equal-sized allocations still co-locate (stacking
        // across registers), staying chip-local too.
        let b2 = m.alloc(2, None, None).unwrap();
        assert_eq!(b2.warp_start, 4);
        assert_ne!(b2.reg, b.reg);
        // A stripe bigger than one chip spans shards as before.
        let big = m.alloc(6, None, None).unwrap();
        assert_eq!(big.warp_start, 6, "multi-shard stripes first-fit");
    }

    #[test]
    fn shard_local_placement_falls_back_when_fragmented() {
        // One register, 16 warps: carve the free set down to [2, 6) — a
        // range holding no chip-local 3-warp stripe (blocks end at 4).
        let mut m = MemoryManager::new(&{
            let mut cfg = PimConfig::small();
            cfg.user_regs = 1;
            cfg
        });
        m.set_shard_plan(Some(plan4x4()));
        let _a = m.alloc(2, None, None).unwrap(); // [0, 2)
        let b = m.alloc(2, None, None).unwrap(); // [2, 4)
        let c = m.alloc(2, None, None).unwrap(); // [4, 6)
        let _d = m.alloc(10, None, None).unwrap(); // [6, 16) (spans shards)
        m.free(b);
        m.free(c);
        // No chip-local fit for 3 warps in [2, 6): rather than fail, the
        // allocator falls back to the straddling range.
        let s = m.alloc(3, None, None).unwrap();
        assert_eq!(s.warp_start, 2, "fallback must reuse the fragment");
    }

    #[test]
    fn shard_local_placement_respects_reservations() {
        let mut m = mgr();
        m.set_shard_plan(Some(plan4x4()));
        // A session reserves chip 0's window; unhinted allocations must
        // stay out of it *and* chip-local.
        let w = m.reserve_window(4).unwrap();
        assert_eq!(w.warp_start, 0);
        let s = m.alloc(2, None, None).unwrap();
        assert_eq!(s.warp_start, 4, "skips the reservation, stays local");
        // Reservations still never alias each other with a plan set.
        let w2 = m.reserve_window(4).unwrap();
        let w3 = m.reserve_window(4).unwrap();
        assert!(!w.overlaps(&w2) && !w.overlaps(&w3) && !w2.overlaps(&w3));
    }

    #[test]
    fn hinted_allocations_confine_to_window() {
        let mut m = mgr();
        let w = m.reserve_window(4).unwrap();
        // Smaller-than-window allocations still land inside it.
        for _ in 0..8 {
            let s = m.alloc(2, None, Some(w)).unwrap();
            assert!(
                w.contains(s.warp_start, s.warps),
                "stripe {s:?} escaped window {w:?}"
            );
        }
    }

    #[test]
    fn hinted_allocations_stack_within_their_window() {
        // Consecutive equal-sized session allocations must share a warp
        // window on different registers (thread alignment), mirroring the
        // global co-location rule — but tracked per client window.
        let mut m = mgr();
        let w1 = m.reserve_window(4).unwrap();
        let w2 = m.reserve_window(4).unwrap();
        let a1 = m.alloc(2, None, Some(w1)).unwrap();
        let b1 = m.alloc(2, None, Some(w2)).unwrap();
        let a2 = m.alloc(2, None, Some(w1)).unwrap();
        let b2 = m.alloc(2, None, Some(w2)).unwrap();
        assert_eq!(a1.warp_start, a2.warp_start, "session 1 stacks");
        assert_ne!(a1.reg, a2.reg);
        assert_eq!(b1.warp_start, b2.warp_start, "session 2 stacks");
        assert_ne!(b1.reg, b2.reg);
    }

    #[test]
    fn hinted_allocation_spills_when_window_full() {
        let mut m = mgr();
        let w = m.reserve_window(4).unwrap();
        // Fill the window on every register, then one more must spill
        // outside rather than fail.
        for _ in 0..16 {
            m.alloc(4, None, Some(w)).unwrap();
        }
        let s = m.alloc(4, None, Some(w)).unwrap();
        assert!(!w.overlaps(&PlacementHint {
            warp_start: s.warp_start,
            warps: s.warps,
        }));
    }

    #[test]
    fn reserved_windows_are_hard_for_foreign_allocations() {
        let mut m = mgr();
        let w = m.reserve_window(8).unwrap();
        // Plain allocations steer clear of the session's window.
        let mut outside = Vec::new();
        for _ in 0..16 {
            let s = m.alloc(8, None, None).unwrap();
            assert!(
                !w.overlaps(&PlacementHint {
                    warp_start: s.warp_start,
                    warps: s.warps,
                }),
                "unhinted stripe {s:?} invaded reserved window {w:?}"
            );
            outside.push(s);
        }
        // Everything outside is taken: the reservation is a hard boundary,
        // so the next unhinted allocation fails instead of invading window
        // stripes an in-flight plan might still reference...
        assert!(matches!(
            m.alloc(8, None, None),
            Err(CoreError::OutOfMemory { .. })
        ));
        // ...until the session releases its window.
        m.release_window(w);
        let spill = m.alloc(8, None, None).unwrap();
        assert!(w.contains(spill.warp_start, spill.warps));
    }

    #[test]
    fn hinted_allocations_skip_the_global_window_hint() {
        let mut m = mgr();
        let w = m.reserve_window(4).unwrap();
        // An unhinted allocation avoids the reservation and seeds the
        // global co-location hint with its own window...
        let plain = m.alloc(4, None, None).unwrap();
        assert_ne!(plain.warp_start, w.warp_start);
        // ...but a hinted allocation must ignore that hint and stay in its
        // own window (the funneling bug the serving gateway fixes)...
        let s = m.alloc(4, None, Some(w)).unwrap();
        assert_eq!(s.warp_start, w.warp_start);
        // ...without redirecting the next unhinted allocation either.
        let plain2 = m.alloc(4, None, None).unwrap();
        assert_eq!(plain2.warp_start, plain.warp_start);
    }
}
