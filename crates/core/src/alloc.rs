//! PIM-optimized dynamic memory management (§V-A).
//!
//! A tensor occupies a *stripe*: one ISA register index across all rows of
//! a contiguous range of warps. Parallel operations require operands in the
//! same threads, so the allocator works to co-locate tensors: requests can
//! name a *reference stripe* (the paper's reference-tensor option), and the
//! fallback copy in the ops layer handles the misaligned remainder.

use crate::{CoreError, Result};
use pim_arch::PimConfig;
use std::collections::BTreeMap;

/// A register stripe: register `reg` across every row of warps
/// `warp_start .. warp_start + warps`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stripe {
    /// ISA register index.
    pub reg: u8,
    /// First warp of the stripe.
    pub warp_start: u32,
    /// Number of consecutive warps.
    pub warps: u32,
}

/// Free-interval bookkeeping for one register index.
#[derive(Debug, Default, Clone)]
struct Intervals {
    /// `start -> len` of free warp ranges, non-overlapping, non-adjacent.
    free: BTreeMap<u32, u32>,
}

impl Intervals {
    fn new(total: u32) -> Self {
        let mut free = BTreeMap::new();
        free.insert(0, total);
        Intervals { free }
    }

    /// Claims `[start, start+len)` exactly; `false` if not fully free.
    fn claim_exact(&mut self, start: u32, len: u32) -> bool {
        let (&fs, &fl) = match self.free.range(..=start).next_back() {
            Some(kv) => kv,
            None => return false,
        };
        if start < fs || start + len > fs + fl {
            return false;
        }
        self.free.remove(&fs);
        if start > fs {
            self.free.insert(fs, start - fs);
        }
        if fs + fl > start + len {
            self.free.insert(start + len, fs + fl - (start + len));
        }
        true
    }

    /// Claims the first free range of `len` warps.
    fn claim_first(&mut self, len: u32) -> Option<u32> {
        let start = self.free.iter().find(|(_, &l)| l >= len).map(|(&s, _)| s)?;
        self.claim_exact(start, len).then_some(start)
    }

    /// Returns `[start, start+len)` to the free set, merging neighbors.
    fn release(&mut self, start: u32, len: u32) {
        let mut start = start;
        let mut len = len;
        if let Some((&ps, &pl)) = self.free.range(..start).next_back() {
            assert!(ps + pl <= start, "double free of warp range");
            if ps + pl == start {
                self.free.remove(&ps);
                start = ps;
                len += pl;
            }
        }
        if let Some((&ns, &nl)) = self.free.range(start + len..).next() {
            if start + len == ns {
                self.free.remove(&ns);
                len += nl;
            }
        }
        assert!(
            self.free.range(start..start + len).next().is_none(),
            "double free of warp range"
        );
        self.free.insert(start, len);
    }
}

/// The stripe allocator over all ISA registers.
#[derive(Debug)]
pub struct MemoryManager {
    per_reg: Vec<Intervals>,
    total_warps: u32,
    /// Rotating hint so consecutive allocations land in the same warp
    /// window on different registers (maximizing alignment).
    last_window: Option<(u32, u32)>,
}

impl MemoryManager {
    /// Creates a manager for `cfg` (one interval set per ISA register).
    pub fn new(cfg: &PimConfig) -> Self {
        MemoryManager {
            per_reg: (0..cfg.user_regs)
                .map(|_| Intervals::new(cfg.crossbars as u32))
                .collect(),
            total_warps: cfg.crossbars as u32,
            last_window: None,
        }
    }

    /// Allocates a stripe of `warps` warps, preferring the exact window of
    /// `near` (so the new tensor is thread-aligned with the reference
    /// tensor), then the most recent allocation window, then first fit.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::OutOfMemory`] when no register has a
    /// sufficiently large free range.
    pub fn alloc(&mut self, warps: u32, near: Option<Stripe>) -> Result<Stripe> {
        assert!(warps > 0);
        if warps > self.total_warps {
            return Err(CoreError::OutOfMemory {
                elements: warps as usize,
            });
        }
        // 1. Exact window of the reference stripe, any register.
        let windows: Vec<(u32, u32)> = [near.map(|s| (s.warp_start, s.warps)), self.last_window]
            .into_iter()
            .flatten()
            .filter(|&(_, w)| w == warps)
            .collect();
        for (start, _) in windows {
            for (reg, iv) in self.per_reg.iter_mut().enumerate() {
                if iv.claim_exact(start, warps) {
                    let s = Stripe {
                        reg: reg as u8,
                        warp_start: start,
                        warps,
                    };
                    self.last_window = Some((start, warps));
                    return Ok(s);
                }
            }
        }
        // 2. First fit across registers.
        for (reg, iv) in self.per_reg.iter_mut().enumerate() {
            if let Some(start) = iv.claim_first(warps) {
                let s = Stripe {
                    reg: reg as u8,
                    warp_start: start,
                    warps,
                };
                self.last_window = Some((start, warps));
                return Ok(s);
            }
        }
        Err(CoreError::OutOfMemory {
            elements: warps as usize,
        })
    }

    /// Allocates a stripe covering exactly the window of `like` (any free
    /// register) — used by the fallback-copy path.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::OutOfMemory`] when every register is occupied
    /// in that window.
    pub fn alloc_like(&mut self, like: Stripe) -> Result<Stripe> {
        for (reg, iv) in self.per_reg.iter_mut().enumerate() {
            if iv.claim_exact(like.warp_start, like.warps) {
                return Ok(Stripe {
                    reg: reg as u8,
                    warp_start: like.warp_start,
                    warps: like.warps,
                });
            }
        }
        Err(CoreError::OutOfMemory {
            elements: like.warps as usize,
        })
    }

    /// Returns a stripe to the free pool.
    pub fn free(&mut self, stripe: Stripe) {
        self.per_reg[stripe.reg as usize].release(stripe.warp_start, stripe.warps);
    }

    /// Total free warp-stripes summed over registers (for tests).
    pub fn free_capacity(&self) -> u64 {
        self.per_reg
            .iter()
            .map(|iv| iv.free.values().map(|&l| l as u64).sum::<u64>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr() -> MemoryManager {
        MemoryManager::new(&PimConfig::small()) // 16 warps, 16 user regs
    }

    #[test]
    fn alloc_free_roundtrip() {
        let mut m = mgr();
        let total = m.free_capacity();
        let a = m.alloc(4, None).unwrap();
        let b = m.alloc(4, None).unwrap();
        assert_eq!(m.free_capacity(), total - 8);
        m.free(a);
        m.free(b);
        assert_eq!(m.free_capacity(), total);
    }

    #[test]
    fn consecutive_allocations_align() {
        let mut m = mgr();
        let a = m.alloc(4, None).unwrap();
        let b = m.alloc(4, None).unwrap();
        // Same warp window, different registers (the malloc behavior §V-A
        // describes for enabling parallelism).
        assert_eq!(a.warp_start, b.warp_start);
        assert_ne!(a.reg, b.reg);
    }

    #[test]
    fn reference_tensor_alignment() {
        let mut m = mgr();
        let a = m.alloc(2, None).unwrap();
        let _filler = m.alloc(8, None).unwrap();
        let c = m.alloc(2, Some(a)).unwrap();
        assert_eq!(c.warp_start, a.warp_start);
    }

    #[test]
    fn alloc_like_claims_exact_window() {
        let mut m = mgr();
        let a = m.alloc(3, None).unwrap();
        let b = m.alloc_like(a).unwrap();
        assert_eq!((b.warp_start, b.warps), (a.warp_start, a.warps));
        assert_ne!(b.reg, a.reg);
    }

    #[test]
    fn exhaustion_is_reported() {
        let mut m = mgr();
        // 16 regs x 16 warps; take everything.
        let mut stripes = Vec::new();
        for _ in 0..16 {
            stripes.push(m.alloc(16, None).unwrap());
        }
        assert!(matches!(
            m.alloc(1, None),
            Err(CoreError::OutOfMemory { .. })
        ));
        m.free(stripes.pop().unwrap());
        assert!(m.alloc(16, None).is_ok());
    }

    #[test]
    fn interval_merging() {
        let mut m = mgr();
        let a = m.alloc(5, None).unwrap();
        let b = m.alloc(5, None).unwrap();
        let c = m.alloc(6, None).unwrap();
        // a, b, c may be on different regs; force same-reg fragmentation:
        let on_same_reg: Vec<Stripe> = [a, b, c].into_iter().filter(|s| s.reg == a.reg).collect();
        for s in on_same_reg {
            m.free(s);
        }
        // After freeing, a 16-warp alloc on reg 0 must succeed again if all
        // three were on reg 0; otherwise at least the capacity accounting
        // holds.
        let cap = m.free_capacity();
        let big = m.alloc(16, None).unwrap();
        m.free(big);
        assert_eq!(m.free_capacity(), cap);
    }

    #[test]
    fn rejects_oversized() {
        let mut m = mgr();
        assert!(m.alloc(17, None).is_err());
    }
}
