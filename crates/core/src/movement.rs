//! Data movement: lowering tensor copies and shifts onto the ISA's
//! intra-warp (`MoveRows`) and inter-warp (`MoveWarps`) move instructions —
//! the machinery behind tensor views "automatically identifying the move
//! operations required to align the values" (§V-A).

use crate::tensor::Tensor;
use crate::{CoreError, Result};
use pim_arch::{PimConfig, RangeMask};
use pim_isa::{Instruction, RegOp};

/// Plans a `MoveWarps` over `warps` with distance `dist`, splitting into
/// power-of-4 strided phases when source and destination warp sets overlap
/// (the H-tree requires them disjoint within one micro-operation).
/// Returns `None` when the move cannot be expressed (caller falls back).
fn plan_move_warps_split(
    cfg: &PimConfig,
    src_reg: u8,
    dst_reg: u8,
    row_src: u32,
    row_dst: u32,
    warps: RangeMask,
    dist: i32,
) -> Result<Option<Vec<Instruction>>> {
    let direct = Instruction::MoveWarps {
        src: src_reg,
        dst: dst_reg,
        row_src,
        row_dst,
        warps,
        dist,
    };
    if direct.validate(cfg).is_ok() {
        return Ok(Some(vec![direct]));
    }
    if warps.step() != 1 || dist == 0 {
        return Ok(None);
    }
    // Phase split: stride 4^k > |dist| makes dist % step != 0, so each
    // phase's source and destination sets are disjoint.
    let mut step = 4u32;
    while (step as i64) <= dist.unsigned_abs() as i64 {
        step *= 4;
    }
    let count = warps.len() as u32;
    let mut plan = Vec::new();
    for phase in 0..step.min(count) {
        let phase_count = (count - phase).div_ceil(step);
        if phase_count == 0 {
            continue;
        }
        let mask = RangeMask::strided(warps.start() + phase, phase_count, step)?;
        let instr = Instruction::MoveWarps {
            src: src_reg,
            dst: dst_reg,
            row_src,
            row_dst,
            warps: mask,
            dist,
        };
        if instr.validate(cfg).is_err() {
            return Ok(None);
        }
        plan.push(instr);
    }
    Ok(Some(plan))
}

/// Plans the instruction sequence copying `src`'s elements into `dst`
/// (same length, any layouts) without executing anything — the single
/// source of truth behind both the blocking [`copy`] and the async serving
/// path, which submits the plan itself.
///
/// Fast paths, in order:
/// 1. identical thread sets, different registers → a register-to-register
///    `OR` (thread-local, fully parallel);
/// 2. identical row patterns at a constant warp distance → one `MoveWarps`
///    per distinct row (parallel across warp pairs);
/// 3. identical warp sets with differing row patterns → one `MoveRows`
///    (warp-parallel, thread-serial).
///
/// Returns `Ok(None)` when no move-based plan exists (pathological
/// layouts); callers fall back to element-by-element read/write, which
/// cannot be expressed as a non-read instruction batch.
///
/// # Errors
///
/// Fails on shape or device mismatches.
pub fn plan_copy(src: &Tensor, dst: &Tensor) -> Result<Option<Vec<Instruction>>> {
    if !src.device().same_device(dst.device()) {
        return Err(CoreError::DeviceMismatch);
    }
    if src.len() != dst.len() {
        return Err(CoreError::ShapeMismatch {
            lhs: src.len(),
            rhs: dst.len(),
        });
    }
    let cfg = src.device().config();
    // Fast path 1: same threads, different register.
    if src.aligned_with(dst) {
        if src.reg() == dst.reg() {
            return Ok(Some(Vec::new())); // same memory
        }
        // dst = src | src (thread-local copy).
        return Ok(Some(dst.rtype_instrs(
            RegOp::Or,
            src.dtype(),
            dst.reg(),
            [src.reg(), src.reg(), 0],
        )));
    }
    let srs = src.thread_ranges();
    let drs = dst.thread_ranges();
    if srs.len() == 1 && drs.len() == 1 {
        let (s, d) = (srs[0], drs[0]);
        // Fast path 2: same row pattern, constant warp distance.
        if s.rows == d.rows && s.warps.len() == d.warps.len() && s.warps.step() == d.warps.step() {
            let dist = d.warps.start() as i64 - s.warps.start() as i64;
            if dist != 0 && i32::try_from(dist).is_ok() {
                let mut plan = Vec::new();
                let mut moved = true;
                for row in s.rows.iter() {
                    match plan_move_warps_split(
                        cfg,
                        src.reg(),
                        dst.reg(),
                        row,
                        row,
                        s.warps,
                        dist as i32,
                    )? {
                        Some(instrs) => plan.extend(instrs),
                        None => {
                            moved = false;
                            break;
                        }
                    }
                }
                if moved {
                    return Ok(Some(plan));
                }
            }
        }
        // Fast path 3: same warps, disjoint row patterns.
        if s.warps == d.warps && s.rows.len() == d.rows.len() {
            let instr = Instruction::MoveRows {
                src: src.reg(),
                dst: dst.reg(),
                src_rows: s.rows,
                dst_rows: d.rows,
                warps: s.warps,
            };
            if instr.validate(cfg).is_ok() {
                return Ok(Some(vec![instr]));
            }
        }
    }
    Ok(None)
}

/// Copies `src`'s elements into `dst` (same length, any layouts): executes
/// the [`plan_copy`] fast paths as one batch, falling back to
/// element-by-element read/write for layouts no move plan covers.
///
/// # Errors
///
/// Fails on shape or device mismatches.
pub fn copy(src: &Tensor, dst: &Tensor) -> Result<()> {
    match plan_copy(src, dst)? {
        Some(plan) => {
            if plan.is_empty() {
                return Ok(());
            }
            src.device().exec_batch(&plan)
        }
        None => {
            // Fallback: element-by-element.
            for i in 0..src.len() {
                dst.set_raw(i, src.get_raw(i)?)?;
            }
            Ok(())
        }
    }
}

/// Builds a tensor aligned with `like` holding `src`'s values — the
/// materialization step behind `x[::2] + x[1::2]`.
///
/// # Errors
///
/// Fails on allocation or movement errors.
pub fn materialize_like(src: &Tensor, like: &Tensor) -> Result<Tensor> {
    let out = like.alloc_result(src.dtype())?;
    copy(src, &out)?;
    Ok(out)
}

/// Compacts a view into a fresh dense tensor of capacity
/// `capacity >= src.len()` (offset 0, stride 1, own warp window), padding
/// elements `src.len()..capacity` with `pad_bits`. The workhorse of the
/// reduction and sorting algorithms, which want power-of-two dense inputs.
///
/// # Errors
///
/// Fails on allocation or movement errors.
pub fn compact_with_padding(src: &Tensor, capacity: usize, pad_bits: u32) -> Result<Tensor> {
    assert!(capacity >= src.len());
    let out = src.device().empty(capacity, src.dtype(), None)?;
    // Pad first (covers everything), then overwrite the data prefix.
    out.fill_raw(pad_bits)?;
    let prefix = out.slice(0, src.len())?;
    copy(src, &prefix)?;
    Ok(out)
}

/// Element-shifted view materialization: returns a tensor `r` aligned with
/// `t` where `r[i] = t[i + dist]` for in-range `i` (out-of-range elements
/// hold unspecified values). `dist` may be negative. Lowered onto one
/// `MoveRows` plus at most `|dist| % rows` (or `rows`) `MoveWarps`
/// instructions, all warp-parallel.
///
/// # Errors
///
/// Fails when `t` is not a dense stride-1 tensor or on movement errors.
pub fn shifted(t: &Tensor, dist: i64) -> Result<Tensor> {
    if t.stride != 1 || t.offset != 0 {
        return Err(CoreError::InvalidSlice {
            what: "shifted() requires a dense, unsliced tensor".into(),
        });
    }
    let n = t.len() as i64;
    let out = t.alloc_result(t.dtype())?;
    let d = dist;
    if d == 0 || d.abs() >= n {
        return Ok(out);
    }
    // r[i] = t[i + d]: source range in t is [max(0,d), min(n, n+d)),
    // destination range in r is [max(0,-d), min(n, n-d)).
    let src_lo = d.max(0) as usize;
    let dst_lo = (-d).max(0) as usize;
    let count = (n - d.abs()) as usize;
    let src_view = t.slice(src_lo, src_lo + count)?;
    let dst_view = out.slice(dst_lo, dst_lo + count)?;
    copy_dense_shift(&src_view, &dst_view)?;
    Ok(out)
}

/// Copies between two dense stride-1 views whose thread offsets differ by
/// an arbitrary delta, decomposed into at most `rows` warp-parallel moves:
/// all elements sharing a source row form one warp-range class moved by a
/// single `MoveRows` (same warp) or `MoveWarps` (constant warp distance)
/// instruction.
///
/// The whole decomposition is planned first and executed as *one* batch,
/// with the `MoveWarps` classes grouped by warp distance (and the
/// `MoveRows` classes after them). Row classes are mutually independent —
/// they read disjoint source cells and write disjoint destination cells,
/// and the source and destination stripes never share a cell — so any
/// execution order is equivalent; the grouped order hands a sharded device
/// runs of consecutive same-distance moves, exactly what its cross-chip
/// move coalescer merges into one bulk transfer per distance instead of
/// one per warp (see `pim_cluster::MoveCoalescer`).
fn copy_dense_shift(src: &Tensor, dst: &Tensor) -> Result<()> {
    let dev = src.device().clone();
    let rows = dev.config().rows;
    let n = src.len();
    let s0 = src.thread(0);
    let d0 = dst.thread(0);
    if s0 == d0 {
        return copy(src, dst);
    }
    let s0_row = s0 % rows;
    // Planned warp moves, grouped by warp distance in first-appearance
    // order; row-local moves; row classes no move instruction covers.
    let mut warp_moves: Vec<(i64, Vec<Instruction>)> = Vec::new();
    let mut row_moves: Vec<Instruction> = Vec::new();
    let mut fallback: Vec<usize> = Vec::new();
    for r in 0..rows {
        // Elements whose source row is r: i ≡ (r - s0_row) mod rows.
        let i0 = (r + rows - s0_row) % rows;
        if i0 >= n {
            continue;
        }
        let count = (n - i0).div_ceil(rows) as u32;
        let (sw, sr) = src.warp_row(i0);
        let (dw, dr) = dst.warp_row(i0);
        let warps = RangeMask::strided(sw, count, 1)?;
        let dist = dw as i64 - sw as i64;
        if dist == 0 {
            let instr = Instruction::MoveRows {
                src: src.reg(),
                dst: dst.reg(),
                src_rows: RangeMask::single(sr),
                dst_rows: RangeMask::single(dr),
                warps,
            };
            if instr.validate(dev.config()).is_ok() {
                row_moves.push(instr);
            } else {
                fallback.push(i0);
            }
        } else {
            match plan_move_warps_split(
                dev.config(),
                src.reg(),
                dst.reg(),
                sr,
                dr,
                warps,
                dist as i32,
            )? {
                Some(instrs) => match warp_moves.iter_mut().find(|(d, _)| *d == dist) {
                    Some((_, group)) => group.extend(instrs),
                    None => warp_moves.push((dist, instrs)),
                },
                None => fallback.push(i0),
            }
        }
    }
    let mut plan: Vec<Instruction> = warp_moves
        .into_iter()
        .flat_map(|(_, group)| group)
        .collect();
    plan.extend(row_moves);
    if !plan.is_empty() {
        dev.exec_batch(&plan)?;
    }
    // Per-element fallback for the row classes no move plan covered (reads
    // only source cells and writes only destination cells the batch does
    // not touch, so running after the batch is equivalent).
    for i0 in fallback {
        let mut i = i0;
        while i < n {
            dst.set_raw(i, src.get_raw(i)?)?;
            i += rows;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Device;
    use pim_arch::PimConfig;

    fn dev() -> Device {
        Device::new(PimConfig::small().with_crossbars(4).with_rows(8)).unwrap()
    }

    #[test]
    fn copy_same_threads_uses_register_transfer() {
        let d = dev();
        let a = d.from_slice_i32(&(0..16).collect::<Vec<_>>()).unwrap();
        let b = a.alloc_result(a.dtype()).unwrap();
        d.reset_counters().unwrap();
        copy(&a, &b).unwrap();
        // Thread-local register copy: no moves at all.
        let p = d.profiler().unwrap();
        assert_eq!(p.ops.mv + p.ops.logic_v, 0);
        assert_eq!(b.to_vec_i32().unwrap(), (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn copy_same_tensor_is_noop() {
        let d = dev();
        let a = d.from_slice_i32(&[5, 6, 7]).unwrap();
        d.reset_counters().unwrap();
        copy(&a, &a.clone()).unwrap();
        assert_eq!(d.cycles().unwrap(), 0);
    }

    #[test]
    fn shifted_moves_are_warp_parallel() {
        // A whole-warp shift must cost O(rows) micro-ops, not O(n).
        let d = dev();
        let n = 32; // 4 warps x 8 rows
        let t = d
            .from_slice_i32(&(0..n as i32).collect::<Vec<_>>())
            .unwrap();
        d.reset_counters().unwrap();
        let s = shifted(&t, 8).unwrap(); // exactly one warp
        let p = d.profiler().unwrap();
        assert!(p.ops.mv <= 8 * 4, "warp shift used {} move ops", p.ops.mv);
        let out = s.to_vec_i32().unwrap();
        for (i, &v) in out.iter().enumerate().take(n - 8) {
            assert_eq!(v, (i + 8) as i32);
        }
    }

    #[test]
    fn compact_pads_and_preserves() {
        let d = dev();
        let t = d.from_slice_f32(&[1.0, 2.0, 3.0]).unwrap();
        let c = compact_with_padding(&t.odd().unwrap(), 4, 9.0f32.to_bits()).unwrap();
        assert_eq!(c.to_vec_f32().unwrap(), vec![2.0, 9.0, 9.0, 9.0]);
    }

    #[test]
    fn move_warps_split_phases_cover_overlap() {
        // Shift a register down by one warp across all warps: sources and
        // destinations overlap, so the split must fall back to power-of-4
        // phases — and still move every value.
        let d = dev();
        let n = 32;
        let t = d
            .from_slice_i32(&(100..100 + n).collect::<Vec<_>>())
            .unwrap();
        let s = shifted(&t, -8).unwrap();
        let out = s.to_vec_i32().unwrap();
        for (i, &v) in out.iter().enumerate().skip(8) {
            assert_eq!(v, 100 + (i - 8) as i32, "element {i}");
        }
    }

    #[test]
    fn fallback_copy_handles_pathological_strides() {
        let d = dev();
        let base = d.from_slice_i32(&(0..30).collect::<Vec<_>>()).unwrap();
        // Stride 7 over 8-row warps: not expressible as uniform masks.
        let v = base.slice_step(1, 30, 7).unwrap(); // 1, 8, 15, 22, 29
        let dst = d.zeros_i32(5).unwrap();
        copy(&v, &dst).unwrap();
        assert_eq!(dst.to_vec_i32().unwrap(), vec![1, 8, 15, 22, 29]);
    }
}
