//! Element-parallel tensor operations: operator overloading (the Rust
//! equivalent of the library's Python `__add__`/`__mul__` bindings), the
//! comparison/miscellaneous methods, and the automatic alignment fallback
//! that copies a misaligned operand next to the other one (§V-A "Dynamic
//! Memory Management").

use crate::movement;
use crate::tensor::Tensor;
use crate::{CoreError, Result};
use pim_isa::{DType, Instruction, RegOp};
use std::ops::{Add, Div, Mul, Neg, Rem, Sub};

impl Tensor {
    fn check_binary(&self, rhs: &Tensor) -> Result<()> {
        if !self.device().same_device(rhs.device()) {
            return Err(CoreError::DeviceMismatch);
        }
        if self.len() != rhs.len() {
            return Err(CoreError::ShapeMismatch {
                lhs: self.len(),
                rhs: rhs.len(),
            });
        }
        Ok(())
    }

    /// Returns `rhs` if it already occupies the same threads as `self`,
    /// otherwise copies it into a fresh stripe aligned with `self` — the
    /// library's fall-back routine for misaligned operands.
    pub(crate) fn aligned_operand(&self, rhs: &Tensor) -> Result<Tensor> {
        if self.aligned_with(rhs) {
            Ok(rhs.clone())
        } else {
            let out = self.alloc_result(rhs.dtype())?;
            movement::copy(rhs, &out)?;
            Ok(out)
        }
    }

    /// Allocates a result tensor occupying exactly the same threads as
    /// `self` (same warp window, offset, and stride, fresh register).
    pub(crate) fn alloc_result(&self, dtype: DType) -> Result<Tensor> {
        let t = self
            .device()
            .empty_like_window(self.alloc.stripe, dtype, self.len())?;
        Ok(Tensor {
            offset: self.offset,
            stride: self.stride,
            len: self.len(),
            ..t
        })
    }

    /// Allocates an *uninitialized* tensor thread-aligned with `self` (same
    /// warp window, offset, and stride, fresh register) — the public
    /// counterpart of the internal result allocation, for callers that plan
    /// and submit their own instructions (the async serving path).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::OutOfMemory`] when every register of the window
    /// is occupied.
    pub fn empty_aligned(&self, dtype: DType) -> Result<Tensor> {
        self.alloc_result(dtype)
    }

    /// The R-type instructions applying `op` over this view's thread
    /// ranges.
    pub(crate) fn rtype_instrs(
        &self,
        op: RegOp,
        dtype: DType,
        dst: u8,
        srcs: [u8; 3],
    ) -> Vec<Instruction> {
        self.thread_ranges()
            .into_iter()
            .map(|target| Instruction::RType {
                op,
                dtype,
                dst,
                srcs,
                target,
            })
            .collect()
    }

    /// Issues an R-type operation over this view's thread ranges as one
    /// batch, so sharded devices run all chips concurrently.
    pub(crate) fn issue_rtype(
        &self,
        op: RegOp,
        dtype: DType,
        dst: u8,
        srcs: [u8; 3],
    ) -> Result<()> {
        self.device()
            .exec_batch(&self.rtype_instrs(op, dtype, dst, srcs))
    }

    /// Plans an element-parallel binary operation without executing it:
    /// allocates the result tensor (thread-aligned with `self`) and returns
    /// it together with the instructions that compute it — the async
    /// serving path submits those itself. Unlike [`binary`](Tensor::binary),
    /// no implicit alignment copy is run: misaligned operands are an error.
    ///
    /// # Errors
    ///
    /// Fails on shape/dtype/device mismatches, on misaligned operands
    /// ([`CoreError::Misaligned`]), or allocation failure.
    pub fn plan_binary(&self, op: RegOp, rhs: &Tensor) -> Result<(Tensor, Vec<Instruction>)> {
        self.check_binary(rhs)?;
        if self.dtype() != rhs.dtype() {
            return Err(CoreError::DTypeMismatch {
                what: format!("{} vs {}", self.dtype(), rhs.dtype()),
            });
        }
        if !self.aligned_with(rhs) {
            return Err(CoreError::Misaligned {
                what: "plan_binary requires thread-aligned operands (copy the \
                       right-hand side next to the left first)"
                    .into(),
            });
        }
        let out_dtype = if op.is_comparison() {
            DType::Int32
        } else {
            self.dtype()
        };
        let out = self.alloc_result(out_dtype)?;
        let instrs = self.rtype_instrs(op, self.dtype(), out.reg(), [self.reg(), rhs.reg(), 0]);
        Ok((out, instrs))
    }

    /// Plans an element-parallel unary operation without executing it (see
    /// [`plan_binary`](Tensor::plan_binary)).
    ///
    /// # Errors
    ///
    /// Fails on allocation failure.
    pub fn plan_unary(&self, op: RegOp) -> Result<(Tensor, Vec<Instruction>)> {
        let out = self.alloc_result(self.dtype())?;
        let instrs = self.rtype_instrs(op, self.dtype(), out.reg(), [self.reg(), 0, 0]);
        Ok((out, instrs))
    }

    /// Element-parallel binary operation.
    ///
    /// # Errors
    ///
    /// Fails on shape/dtype/device mismatches or unsupported operations.
    pub fn binary(&self, op: RegOp, rhs: &Tensor) -> Result<Tensor> {
        self.check_binary(rhs)?;
        if self.dtype() != rhs.dtype() {
            return Err(CoreError::DTypeMismatch {
                what: format!("{} vs {}", self.dtype(), rhs.dtype()),
            });
        }
        let rhs = self.aligned_operand(rhs)?;
        let out_dtype = if op.is_comparison() {
            DType::Int32
        } else {
            self.dtype()
        };
        let out = self.alloc_result(out_dtype)?;
        self.issue_rtype(op, self.dtype(), out.reg(), [self.reg(), rhs.reg(), 0])?;
        Ok(out)
    }

    /// Element-parallel binary operation against a broadcast scalar (raw
    /// word value).
    ///
    /// # Errors
    ///
    /// See [`binary`](Tensor::binary).
    pub fn binary_scalar(&self, op: RegOp, bits: u32) -> Result<Tensor> {
        let scalar = self.alloc_result(self.dtype())?;
        scalar.fill_raw(bits)?;
        self.binary(op, &scalar)
    }

    /// Element-parallel unary operation.
    ///
    /// # Errors
    ///
    /// Fails on unsupported operations.
    pub fn unary(&self, op: RegOp) -> Result<Tensor> {
        let out = self.alloc_result(self.dtype())?;
        self.issue_rtype(op, self.dtype(), out.reg(), [self.reg(), 0, 0])?;
        Ok(out)
    }

    /// `self < rhs` as an int32 0/1 tensor.
    ///
    /// # Errors
    ///
    /// See [`binary`](Tensor::binary).
    pub fn lt(&self, rhs: &Tensor) -> Result<Tensor> {
        self.binary(RegOp::Lt, rhs)
    }

    /// `self <= rhs` as an int32 0/1 tensor.
    ///
    /// # Errors
    ///
    /// See [`binary`](Tensor::binary).
    pub fn le(&self, rhs: &Tensor) -> Result<Tensor> {
        self.binary(RegOp::Le, rhs)
    }

    /// `self > rhs` as an int32 0/1 tensor.
    ///
    /// # Errors
    ///
    /// See [`binary`](Tensor::binary).
    pub fn gt(&self, rhs: &Tensor) -> Result<Tensor> {
        self.binary(RegOp::Gt, rhs)
    }

    /// `self >= rhs` as an int32 0/1 tensor.
    ///
    /// # Errors
    ///
    /// See [`binary`](Tensor::binary).
    pub fn ge(&self, rhs: &Tensor) -> Result<Tensor> {
        self.binary(RegOp::Ge, rhs)
    }

    /// `self == rhs` as an int32 0/1 tensor.
    ///
    /// # Errors
    ///
    /// See [`binary`](Tensor::binary).
    pub fn eq_elem(&self, rhs: &Tensor) -> Result<Tensor> {
        self.binary(RegOp::Eq, rhs)
    }

    /// `self != rhs` as an int32 0/1 tensor.
    ///
    /// # Errors
    ///
    /// See [`binary`](Tensor::binary).
    pub fn ne_elem(&self, rhs: &Tensor) -> Result<Tensor> {
        self.binary(RegOp::Ne, rhs)
    }

    /// Element-wise absolute value.
    ///
    /// # Errors
    ///
    /// See [`unary`](Tensor::unary).
    pub fn abs(&self) -> Result<Tensor> {
        self.unary(RegOp::Abs)
    }

    /// Element-wise sign (−1/0/+1, or ±1.0/±0.0/NaN for floats).
    ///
    /// # Errors
    ///
    /// See [`unary`](Tensor::unary).
    pub fn sign(&self) -> Result<Tensor> {
        self.unary(RegOp::Sign)
    }

    /// Element-wise zero test (1 where zero).
    ///
    /// # Errors
    ///
    /// See [`unary`](Tensor::unary).
    pub fn zero_mask(&self) -> Result<Tensor> {
        self.unary(RegOp::Zero)
    }

    /// Bitwise complement of the raw words.
    ///
    /// # Errors
    ///
    /// See [`unary`](Tensor::unary).
    pub fn bit_not(&self) -> Result<Tensor> {
        self.unary(RegOp::Not)
    }

    /// Bitwise AND of the raw words.
    ///
    /// # Errors
    ///
    /// See [`binary`](Tensor::binary).
    pub fn bit_and(&self, rhs: &Tensor) -> Result<Tensor> {
        self.binary(RegOp::And, rhs)
    }

    /// Bitwise OR of the raw words.
    ///
    /// # Errors
    ///
    /// See [`binary`](Tensor::binary).
    pub fn bit_or(&self, rhs: &Tensor) -> Result<Tensor> {
        self.binary(RegOp::Or, rhs)
    }

    /// Bitwise XOR of the raw words.
    ///
    /// # Errors
    ///
    /// See [`binary`](Tensor::binary).
    pub fn bit_xor(&self, rhs: &Tensor) -> Result<Tensor> {
        self.binary(RegOp::Xor, rhs)
    }

    /// Element-wise select: `where self != 0, a, else b`. The condition is
    /// typically a comparison result.
    ///
    /// # Errors
    ///
    /// Fails on shape/dtype/device mismatches.
    pub fn select(&self, a: &Tensor, b: &Tensor) -> Result<Tensor> {
        self.check_binary(a)?;
        self.check_binary(b)?;
        if a.dtype() != b.dtype() {
            return Err(CoreError::DTypeMismatch {
                what: format!("{} vs {}", a.dtype(), b.dtype()),
            });
        }
        let a = self.aligned_operand(a)?;
        let b = self.aligned_operand(b)?;
        let out = self.alloc_result(a.dtype())?;
        self.issue_rtype(
            RegOp::Mux,
            a.dtype(),
            out.reg(),
            [self.reg(), a.reg(), b.reg()],
        )?;
        Ok(out)
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $op:expr) => {
        impl $trait for &Tensor {
            type Output = Result<Tensor>;

            fn $method(self, rhs: &Tensor) -> Result<Tensor> {
                self.binary($op, rhs)
            }
        }

        impl $trait<&Tensor> for Result<Tensor> {
            type Output = Result<Tensor>;

            fn $method(self, rhs: &Tensor) -> Result<Tensor> {
                self?.binary($op, rhs)
            }
        }

        impl $trait<Result<Tensor>> for &Tensor {
            type Output = Result<Tensor>;

            fn $method(self, rhs: Result<Tensor>) -> Result<Tensor> {
                self.binary($op, &rhs?)
            }
        }
    };
}

impl_binop!(Add, add, RegOp::Add);
impl_binop!(Sub, sub, RegOp::Sub);
impl_binop!(Mul, mul, RegOp::Mul);
impl_binop!(Div, div, RegOp::Div);
impl_binop!(Rem, rem, RegOp::Mod);

impl Neg for &Tensor {
    type Output = Result<Tensor>;

    fn neg(self) -> Result<Tensor> {
        self.unary(RegOp::Neg)
    }
}

/// Scalar right-hand sides: `&x * 2.0f32`, `&x + 1i32`.
impl Mul<f32> for &Tensor {
    type Output = Result<Tensor>;

    fn mul(self, rhs: f32) -> Result<Tensor> {
        self.expect_dtype(DType::Float32)?;
        self.binary_scalar(RegOp::Mul, rhs.to_bits())
    }
}

impl Add<f32> for &Tensor {
    type Output = Result<Tensor>;

    fn add(self, rhs: f32) -> Result<Tensor> {
        self.expect_dtype(DType::Float32)?;
        self.binary_scalar(RegOp::Add, rhs.to_bits())
    }
}

impl Sub<f32> for &Tensor {
    type Output = Result<Tensor>;

    fn sub(self, rhs: f32) -> Result<Tensor> {
        self.expect_dtype(DType::Float32)?;
        self.binary_scalar(RegOp::Sub, rhs.to_bits())
    }
}

impl Mul<i32> for &Tensor {
    type Output = Result<Tensor>;

    fn mul(self, rhs: i32) -> Result<Tensor> {
        self.expect_dtype(DType::Int32)?;
        self.binary_scalar(RegOp::Mul, rhs as u32)
    }
}

impl Add<i32> for &Tensor {
    type Output = Result<Tensor>;

    fn add(self, rhs: i32) -> Result<Tensor> {
        self.expect_dtype(DType::Int32)?;
        self.binary_scalar(RegOp::Add, rhs as u32)
    }
}

impl Sub<i32> for &Tensor {
    type Output = Result<Tensor>;

    fn sub(self, rhs: i32) -> Result<Tensor> {
        self.expect_dtype(DType::Int32)?;
        self.binary_scalar(RegOp::Sub, rhs as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Device;
    use pim_arch::PimConfig;

    fn dev() -> Device {
        Device::new(PimConfig::small().with_crossbars(2).with_rows(8)).unwrap()
    }

    #[test]
    fn comparison_output_is_int32() {
        let d = dev();
        let a = d.from_slice_f32(&[1.0, 5.0]).unwrap();
        let b = d.from_slice_f32(&[2.0, 2.0]).unwrap();
        let r = a.lt(&b).unwrap();
        assert_eq!(r.dtype(), DType::Int32);
        assert_eq!(r.to_vec_i32().unwrap(), vec![1, 0]);
    }

    #[test]
    fn binary_result_is_thread_aligned_with_lhs() {
        let d = dev();
        let a = d.from_slice_i32(&[1, 2, 3, 4]).unwrap();
        let view = a.slice_step(1, 4, 2).unwrap(); // elements 2, 4
        let out = (&view + &view).unwrap();
        assert!(out.aligned_with(&view));
        assert_eq!(out.to_vec_i32().unwrap(), vec![4, 8]);
    }

    #[test]
    fn aligned_operand_reuses_rhs_without_copy() {
        let d = dev();
        let a = d.from_slice_i32(&[1, 2]).unwrap();
        let b = d.from_slice_i32(&[3, 4]).unwrap();
        let aligned = a.aligned_operand(&b).unwrap();
        // Same stripe (no copy): same register.
        assert_eq!(aligned.reg(), b.reg());
    }

    #[test]
    fn same_tensor_both_operands() {
        let d = dev();
        let a = d.from_slice_i32(&[3, -4, 7]).unwrap();
        assert_eq!((&a * &a).unwrap().to_vec_i32().unwrap(), vec![9, 16, 49]);
        assert_eq!(a.bit_xor(&a).unwrap().to_vec_i32().unwrap(), vec![0, 0, 0]);
        assert_eq!(a.eq_elem(&a).unwrap().to_vec_i32().unwrap(), vec![1, 1, 1]);
    }

    #[test]
    fn result_chaining_through_operators() {
        let d = dev();
        let a = d.from_slice_i32(&[10, 20]).unwrap();
        let b = d.from_slice_i32(&[1, 2]).unwrap();
        // Result<Tensor> op &Tensor chaining.
        let out = ((&a + &b) - &b).unwrap();
        assert_eq!(out.to_vec_i32().unwrap(), vec![10, 20]);
    }

    #[test]
    fn select_requires_matching_data_dtypes() {
        let d = dev();
        let c = d.from_slice_i32(&[1, 0]).unwrap();
        let a = d.from_slice_f32(&[1.0, 2.0]).unwrap();
        let b = d.from_slice_i32(&[3, 4]).unwrap();
        assert!(c.select(&a, &b).is_err());
    }
}
