//! # pypim-core
//!
//! The PIM development library (§V-A of the PyPIM paper): NumPy-like
//! tensors whose element-parallel operations execute *inside* a simulated
//! digital memristive PIM memory.
//!
//! The stack underneath: tensor calls become ISA macro-instructions
//! (`pim-isa`), the host driver (`pim-driver`) lowers them to gate-level
//! micro-operation sequences, and the bit-accurate simulator (`pim-sim`)
//! plays the role of the PIM chip. The library adds what the paper's
//! Python layer adds: dynamic warp-aligned memory management, tensor views
//! (`x[::2]`) that map onto the microarchitecture's range masks, automatic
//! move-based operand alignment, logarithmic reduction, bitonic sorting,
//! and CORDIC trigonometry.
//!
//! # Example (the paper's Figure 12 program)
//!
//! ```
//! use pypim_core::Device;
//! use pim_arch::PimConfig;
//!
//! fn my_func(a: &pypim_core::Tensor, b: &pypim_core::Tensor)
//!     -> pypim_core::Result<pypim_core::Tensor>
//! {
//!     (&(a * b)? + a)? .into()
//! }
//!
//! # fn main() -> pypim_core::Result<()> {
//! let dev = Device::new(PimConfig::small())?;
//! let mut x = dev.zeros_f32(64)?;
//! let mut y = dev.zeros_f32(64)?;
//! x.set_f32(4, 8.0)?;  y.set_f32(4, 0.5)?;
//! x.set_f32(5, 20.0)?; y.set_f32(5, 1.0)?;
//! x.set_f32(8, 10.0)?; y.set_f32(8, 1.0)?;
//! let z = my_func(&x, &y)?;
//! assert_eq!(z.slice_step(0, 64, 2)?.sum_f32()?, 32.0);
//! # Ok(())
//! # }
//! ```

mod alloc;
mod cordic;
mod device;
mod error;
mod minmax;
mod movement;
mod ops;
mod reduce;
mod scan;
mod sort;
mod tensor;

pub use alloc::{MemoryManager, PlacementHint, Stripe};
pub use cordic::CORDIC_ITERS;
pub use device::{Device, ReadTicket, StepTicket};
pub use error::{CoreError, Result};
pub use movement::{compact_with_padding, copy, materialize_like, plan_copy, shifted};
pub use pim_cluster::{
    ClusterOptions, ErrorClass, FaultInjector, FaultPlan, FaultProfile, HostFault, HostFaultPlan,
    HostFaultProfile, LinkFaultKind, LinkWindow, RecoveryConfig, ShardBackends,
};
pub use pim_func::BackendKind;
pub use reduce::identity_bits;
pub use tensor::Tensor;

pub use pim_cluster::TaggedBatch;
pub use pim_driver::ParallelismMode;
pub use pim_isa::{DType, RegOp};
pub use pim_telemetry::{
    MetricsSnapshot, MetricsSource, RequestId, RequestStats, Telemetry, TelemetryConfig,
};

impl From<Tensor> for Result<Tensor> {
    fn from(t: Tensor) -> Self {
        Ok(t)
    }
}
