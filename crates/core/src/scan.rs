//! Inclusive prefix scans (cumulative sum/product) via the Hillis–Steele
//! algorithm: `log₂ n` rounds of a uniform shift plus one element-parallel
//! combine — the same shift machinery the bitonic network uses, so every
//! instruction stays uniform across threads.

use crate::movement;
use crate::tensor::Tensor;
use crate::{CoreError, Result};
use pim_isa::{DType, RegOp};

impl Tensor {
    /// Inclusive prefix scan with `op` (`Add` or `Mul`):
    /// `out[i] = v[0] op v[1] op … op v[i]`, combined in Hillis–Steele
    /// order (`((v[i-2d]..) op (v[i-d]..))` doubling `d` each round).
    ///
    /// # Errors
    ///
    /// Fails on unsupported operations or movement errors.
    pub fn scan(&self, op: RegOp) -> Result<Tensor> {
        if !matches!(op, RegOp::Add | RegOp::Mul) {
            return Err(CoreError::DTypeMismatch {
                what: format!("scan requires add or mul, got {op}"),
            });
        }
        let identity = match (op, self.dtype) {
            (RegOp::Add, DType::Int32) => 0u32,
            (RegOp::Add, DType::Float32) => 0.0f32.to_bits(),
            (RegOp::Mul, DType::Int32) => 1,
            (RegOp::Mul, DType::Float32) => 1.0f32.to_bits(),
            _ => unreachable!(),
        };
        let n = self.len();
        // Dense working copy (shifts require an unsliced layout).
        let mut t = movement::compact_with_padding(self, n, identity)?;
        let mut d = 1usize;
        while d < n {
            // prev[i] = t[i - d]; lanes below d must contribute the
            // identity, so overwrite them after the shift.
            let prev = movement::shifted(&t, -(d as i64))?;
            let head = prev.slice(0, d)?;
            head.fill_raw_pub(identity)?;
            t = t.binary(op, &prev)?;
            d *= 2;
        }
        Ok(t)
    }

    /// Inclusive cumulative sum.
    ///
    /// # Errors
    ///
    /// See [`scan`](Tensor::scan).
    pub fn cumsum(&self) -> Result<Tensor> {
        self.scan(RegOp::Add)
    }

    /// Inclusive cumulative product.
    ///
    /// # Errors
    ///
    /// See [`scan`](Tensor::scan).
    pub fn cumprod(&self) -> Result<Tensor> {
        self.scan(RegOp::Mul)
    }
}
