//! Logarithmic-time reduction (§V-A / §VI-A "Reduction"): the tensor is
//! compacted to a power-of-two dense layout padded with the identity
//! element, then repeatedly halved — the upper half moves next to the lower
//! half (intra-warp `MoveRows` or distributed inter-warp `MoveWarps`,
//! parallel across pairs) and one element-parallel operation combines them.

use crate::movement;
use crate::tensor::Tensor;
use crate::Result;
use pim_isa::{DType, RegOp};

/// The identity element of an associative reduction (`Add` or `Mul`), as
/// the raw word reductions pad with — shared by the synchronous reduction
/// here and the serving layer's async/fused reductions, so the padding
/// (and therefore every rounding) cannot drift between them.
///
/// # Panics
///
/// Panics for non-reduction operations.
pub fn identity_bits(op: RegOp, dtype: DType) -> u32 {
    match (op, dtype) {
        (RegOp::Add, DType::Int32) => 0,
        (RegOp::Add, DType::Float32) => 0.0f32.to_bits(),
        (RegOp::Mul, DType::Int32) => 1,
        (RegOp::Mul, DType::Float32) => 1.0f32.to_bits(),
        _ => unreachable!("reduction supports add and mul"),
    }
}

impl Tensor {
    /// Reduces the tensor with `op` (`Add` or `Mul`) in `O(log n)` parallel
    /// steps, returning the raw result word.
    ///
    /// # Errors
    ///
    /// Fails on allocation or movement errors.
    pub fn reduce_raw(&self, op: RegOp) -> Result<u32> {
        assert!(
            matches!(op, RegOp::Add | RegOp::Mul),
            "reduction requires an associative ALU operation"
        );
        let n2 = self.len().next_power_of_two();
        let mut t = movement::compact_with_padding(self, n2, identity_bits(op, self.dtype))?;
        while t.len() > 1 {
            let half = t.len() / 2;
            let lo = t.slice(0, half)?;
            let hi = t.slice(half, t.len())?;
            // Align the upper half with the lower half (log-reduction move).
            let hi_aligned = movement::materialize_like(&hi, &lo)?;
            let combined = lo.binary(op, &hi_aligned)?;
            // Keep the combined half dense for the next level: the result
            // is aligned with `lo`, i.e. dense from the stripe start.
            t = combined;
        }
        t.get_raw(0)
    }

    /// Sum of all elements (float32) via logarithmic reduction — Figure 12's
    /// `.sum()`.
    ///
    /// # Errors
    ///
    /// Fails for non-float tensors or on movement errors.
    pub fn sum_f32(&self) -> Result<f32> {
        self.expect_dtype(DType::Float32)?;
        Ok(f32::from_bits(self.reduce_raw(RegOp::Add)?))
    }

    /// Sum of all elements (int32, wrapping).
    ///
    /// # Errors
    ///
    /// Fails for non-int tensors or on movement errors.
    pub fn sum_i32(&self) -> Result<i32> {
        self.expect_dtype(DType::Int32)?;
        Ok(self.reduce_raw(RegOp::Add)? as i32)
    }

    /// Product of all elements (float32) via logarithmic reduction.
    ///
    /// # Errors
    ///
    /// Fails for non-float tensors or on movement errors.
    pub fn prod_f32(&self) -> Result<f32> {
        self.expect_dtype(DType::Float32)?;
        Ok(f32::from_bits(self.reduce_raw(RegOp::Mul)?))
    }

    /// Product of all elements (int32, wrapping).
    ///
    /// # Errors
    ///
    /// Fails for non-int tensors or on movement errors.
    pub fn prod_i32(&self) -> Result<i32> {
        self.expect_dtype(DType::Int32)?;
        Ok(self.reduce_raw(RegOp::Mul)? as i32)
    }
}

#[cfg(test)]
mod tests {
    use crate::Device;
    use pim_arch::PimConfig;

    fn dev() -> Device {
        Device::new(PimConfig::small().with_crossbars(2).with_rows(8)).unwrap()
    }

    #[test]
    fn singleton_reduction_is_the_element() {
        let d = dev();
        let t = d.from_slice_f32(&[4.25]).unwrap();
        assert_eq!(t.sum_f32().unwrap(), 4.25);
        assert_eq!(t.prod_f32().unwrap(), 4.25);
    }

    #[test]
    fn padding_uses_the_identity() {
        // Non-power-of-two product: the pad must be 1, not 0.
        let d = dev();
        let t = d.from_slice_f32(&[2.0, 3.0, 4.0]).unwrap();
        assert_eq!(t.prod_f32().unwrap(), 24.0);
        assert_eq!(t.sum_f32().unwrap(), 9.0);
    }

    #[test]
    fn dtype_checked_accessors() {
        let d = dev();
        let t = d.from_slice_i32(&[1, 2, 3]).unwrap();
        assert!(t.sum_f32().is_err());
        assert_eq!(t.sum_i32().unwrap(), 6);
        assert_eq!(t.prod_i32().unwrap(), 6);
    }

    #[test]
    fn wrapping_int_sum() {
        let d = dev();
        let t = d.from_slice_i32(&[i32::MAX, 1]).unwrap();
        assert_eq!(t.sum_i32().unwrap(), i32::MIN);
    }
}
