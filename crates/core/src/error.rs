use pim_cluster::{ClusterError, ErrorClass};
use pim_driver::DriverError;
use std::fmt;

/// Convenient result alias for the development library.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Errors raised by the tensor development library.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// An error from the host driver or micro-operation layer.
    Driver(DriverError),
    /// An error from the sharded multi-chip execution engine.
    Cluster(ClusterError),
    /// Operand shapes differ.
    ShapeMismatch {
        /// Left-hand length.
        lhs: usize,
        /// Right-hand length.
        rhs: usize,
    },
    /// Operand datatypes differ (or an operation got an unsupported dtype).
    DTypeMismatch {
        /// Human-readable description.
        what: String,
    },
    /// The PIM memory has no free register stripe for the requested
    /// allocation.
    OutOfMemory {
        /// Elements requested.
        elements: usize,
    },
    /// A slice was empty or out of bounds.
    InvalidSlice {
        /// Human-readable description.
        what: String,
    },
    /// Tensors from different devices were combined.
    DeviceMismatch,
    /// An index was out of bounds.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// Tensor length.
        len: usize,
    },
    /// An operation that requires thread-aligned operands got misaligned
    /// ones (the planning API does not run the move-based alignment
    /// fallback implicitly).
    Misaligned {
        /// Human-readable description.
        what: String,
    },
    /// A submission protocol violation (e.g. read instructions in an
    /// asynchronous non-read batch).
    Protocol {
        /// Human-readable description.
        reason: String,
    },
    /// A bounded serving queue rejected new work — backpressure, not a
    /// bug. The session is still healthy; resubmit after in-flight work
    /// drains.
    Overloaded {
        /// Session whose queue was full.
        session: usize,
        /// Queue depth at the time of rejection.
        depth: usize,
    },
    /// The session this work belonged to was evicted (memory pressure) or
    /// closed with work still queued; the work will never complete.
    Evicted {
        /// The evicted session.
        session: usize,
    },
    /// The request's deadline on the modeled clock passed before it
    /// completed.
    DeadlineExceeded {
        /// Deadline (modeled cycles).
        deadline: u64,
        /// Modeled clock when the miss was detected.
        now: u64,
    },
}

impl CoreError {
    /// The retry class of this error — see [`ErrorClass`]. Cluster errors
    /// delegate to [`ClusterError::class`]; [`OutOfMemory`] counts as
    /// [`Overload`] (free memory or evict a session and retry).
    ///
    /// [`OutOfMemory`]: CoreError::OutOfMemory
    /// [`Overload`]: ErrorClass::Overload
    pub fn class(&self) -> ErrorClass {
        match self {
            CoreError::Cluster(e) => e.class(),
            CoreError::OutOfMemory { .. } | CoreError::Overloaded { .. } => ErrorClass::Overload,
            CoreError::Evicted { .. } => ErrorClass::Evicted,
            _ => ErrorClass::Fatal,
        }
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Driver(e) => write!(f, "{e}"),
            CoreError::Cluster(e) => write!(f, "{e}"),
            CoreError::ShapeMismatch { lhs, rhs } => {
                write!(f, "shape mismatch: {lhs} elements vs {rhs} elements")
            }
            CoreError::DTypeMismatch { what } => write!(f, "dtype mismatch: {what}"),
            CoreError::OutOfMemory { elements } => {
                write!(f, "PIM memory exhausted allocating {elements} elements")
            }
            CoreError::InvalidSlice { what } => write!(f, "invalid slice: {what}"),
            CoreError::DeviceMismatch => write!(f, "tensors belong to different devices"),
            CoreError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for tensor of length {len}")
            }
            CoreError::Misaligned { what } => write!(f, "misaligned operands: {what}"),
            CoreError::Protocol { reason } => write!(f, "protocol violation: {reason}"),
            CoreError::Overloaded { session, depth } => {
                write!(
                    f,
                    "session {session} queue full at depth {depth} (overloaded: \
                     resubmit after in-flight work drains)"
                )
            }
            CoreError::Evicted { session } => {
                write!(f, "session {session} was evicted; queued work abandoned")
            }
            CoreError::DeadlineExceeded { deadline, now } => {
                write!(
                    f,
                    "deadline exceeded: due at modeled cycle {deadline}, now {now}"
                )
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Driver(e) => Some(e),
            CoreError::Cluster(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DriverError> for CoreError {
    fn from(e: DriverError) -> Self {
        CoreError::Driver(e)
    }
}

impl From<ClusterError> for CoreError {
    fn from(e: ClusterError) -> Self {
        CoreError::Cluster(e)
    }
}

impl From<pim_arch::ArchError> for CoreError {
    fn from(e: pim_arch::ArchError) -> Self {
        CoreError::Driver(DriverError::Arch(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e: CoreError = pim_arch::ArchError::DecodeError { opcode: 3 }.into();
        assert!(matches!(e, CoreError::Driver(_)));
        assert!(std::error::Error::source(&e).is_some());
        for e in [
            CoreError::ShapeMismatch { lhs: 3, rhs: 4 },
            CoreError::DTypeMismatch {
                what: "int32 vs float32".into(),
            },
            CoreError::OutOfMemory { elements: 10 },
            CoreError::InvalidSlice {
                what: "empty".into(),
            },
            CoreError::DeviceMismatch,
            CoreError::IndexOutOfBounds { index: 9, len: 4 },
            CoreError::Misaligned {
                what: "operands".into(),
            },
            CoreError::Protocol {
                reason: "reads".into(),
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
