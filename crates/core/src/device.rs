use crate::alloc::{MemoryManager, PlacementHint, Stripe};
use crate::tensor::{AllocGuard, Tensor};
use crate::{CoreError, Result};
use parking_lot::Mutex;
use pim_arch::PimConfig;
use pim_cluster::{
    ClusterOptions, ClusterStats, GatherTicket, GlobalWrite, InterconnectConfig, JobSet,
    PimCluster, Submission, TaggedBatch,
};
use pim_driver::{Driver, ParallelismMode};
use pim_func::{AnyBackend, BackendKind};
use pim_isa::{DType, Instruction};
use pim_sim::Profiler;
use pim_telemetry::{MetricsSnapshot, MetricsSource, RequestStats, Telemetry};
use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll};

/// The execution engine behind a device: a single simulated chip driven
/// in-process, or a sharded multi-chip cluster (`pim-cluster`).
pub(crate) enum Engine {
    Single(Box<Mutex<Driver<AnyBackend>>>),
    Cluster(Box<PimCluster>),
}

pub(crate) struct DeviceInner {
    pub(crate) engine: Engine,
    pub(crate) mem: Mutex<MemoryManager>,
    pub(crate) cfg: PimConfig,
    /// The device's telemetry handle (disabled by default; shared with the
    /// cluster's shard workers when cluster-backed).
    pub(crate) telemetry: Telemetry,
}

/// An in-flight non-read instruction batch submitted through
/// [`Device::submit_instrs`]: a blocking handle ([`wait`](StepTicket::wait))
/// and a pollable [`Future`] in one. On a cluster device the per-shard jobs
/// stream concurrently and the shard workers wake the registered waker on
/// completion; on a single-chip device (and for batches containing
/// chip-crossing moves, which need host staging) execution happened inline
/// and the ticket is born ready.
#[derive(Debug)]
pub struct StepTicket(StepInner);

#[derive(Debug)]
enum StepInner {
    Done,
    Cluster(JobSet),
}

impl StepTicket {
    /// A completed submission.
    pub fn ready() -> Self {
        StepTicket(StepInner::Done)
    }

    /// Blocks until the batch completes.
    ///
    /// # Errors
    ///
    /// Returns the first shard error.
    pub fn wait(self) -> Result<()> {
        match self.0 {
            StepInner::Done => Ok(()),
            StepInner::Cluster(set) => Ok(set.wait()?),
        }
    }
}

impl Future for StepTicket {
    type Output = Result<()>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        match &mut self.get_mut().0 {
            StepInner::Done => Poll::Ready(Ok(())),
            StepInner::Cluster(set) => Pin::new(set).poll(cx).map(|r| Ok(r?)),
        }
    }
}

/// An in-flight bulk read submitted through [`Device::submit_reads`];
/// yields the values in input order. Like [`StepTicket`], both blocking and
/// pollable; single-chip devices read inline and return a ready ticket.
#[derive(Debug)]
pub struct ReadTicket(ReadInner);

#[derive(Debug)]
enum ReadInner {
    Done(Option<Vec<u32>>),
    Cluster(GatherTicket),
}

impl ReadTicket {
    /// Blocks until every read completes.
    ///
    /// # Errors
    ///
    /// Returns the first shard error.
    pub fn wait(self) -> Result<Vec<u32>> {
        match self.0 {
            ReadInner::Done(values) => Ok(values.expect("ready ticket holds its values")),
            ReadInner::Cluster(t) => Ok(t.wait()?),
        }
    }
}

impl Future for ReadTicket {
    type Output = Result<Vec<u32>>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        match &mut self.get_mut().0 {
            ReadInner::Done(values) => {
                Poll::Ready(Ok(values.take().expect("ready ticket polled twice")))
            }
            ReadInner::Cluster(t) => Pin::new(t).poll(cx).map(|r| Ok(r?)),
        }
    }
}

/// A handle to a PIM memory: the entry point of the development library
/// (§V-A), owning the host driver, the bit-accurate simulator behind it,
/// and the dynamic memory manager.
///
/// Cloning is cheap (shared handle). Tensors keep their device alive.
///
/// # Example
///
/// ```
/// use pypim_core::Device;
/// use pim_arch::PimConfig;
///
/// # fn main() -> pypim_core::Result<()> {
/// let dev = Device::new(PimConfig::small())?;
/// let x = dev.from_slice_f32(&[1.0, 2.5, -3.0])?;
/// let y = dev.full_f32(3, 2.0)?;
/// let z = (&x * &y)?;
/// assert_eq!(z.to_vec_f32()?, vec![2.0, 5.0, -6.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct Device {
    pub(crate) inner: Arc<DeviceInner>,
    /// Default placement window of allocations made through this handle —
    /// `None` for the plain device, set on session handles produced by
    /// [`Device::with_placement`]. Cloning a handle keeps its placement, so
    /// tensors created through a session handle allocate their temporaries
    /// in the session's window too.
    placement: Option<PlacementHint>,
}

impl std::fmt::Debug for Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Device")
            .field("config", &self.inner.cfg)
            .field("placement", &self.placement)
            .finish()
    }
}

impl Device {
    /// Creates a device simulating a PIM memory with geometry `cfg`, using
    /// the default (partition-parallel) driver mode.
    ///
    /// # Errors
    ///
    /// Returns an error if `cfg` fails validation.
    pub fn new(cfg: PimConfig) -> Result<Self> {
        Device::with_mode(cfg, ParallelismMode::default())
    }

    /// Creates a device with an explicit driver parallelism mode (and the
    /// default bit-accurate backend).
    ///
    /// # Errors
    ///
    /// Returns an error if `cfg` fails validation.
    pub fn with_mode(cfg: PimConfig, mode: ParallelismMode) -> Result<Self> {
        Device::with_backend_mode(cfg, BackendKind::default(), mode)
    }

    /// Creates a device over an explicit execution backend: the
    /// bit-accurate [`pim_sim::PimSimulator`]
    /// ([`BackendKind::BitAccurate`]) or the vectorized functional
    /// backend [`pim_func::FuncBackend`] ([`BackendKind::Functional`]).
    /// Both execute the same micro-operation streams with identical
    /// results and identical modeled-cycle accounting; the functional
    /// backend trades per-gate fidelity (strict stateful-logic checking,
    /// per-partition gate simulation) for word-level speed.
    ///
    /// # Errors
    ///
    /// Returns an error if `cfg` fails validation.
    pub fn with_backend(cfg: PimConfig, kind: BackendKind) -> Result<Self> {
        Device::with_backend_mode(cfg, kind, ParallelismMode::default())
    }

    /// Creates a device with explicit backend and driver parallelism mode.
    ///
    /// # Errors
    ///
    /// Returns an error if `cfg` fails validation.
    pub fn with_backend_mode(
        cfg: PimConfig,
        kind: BackendKind,
        mode: ParallelismMode,
    ) -> Result<Self> {
        let backend = AnyBackend::new(kind, cfg.clone()).map_err(pim_driver::DriverError::from)?;
        let driver = Driver::with_mode(backend, mode);
        Ok(Device {
            inner: Arc::new(DeviceInner {
                engine: Engine::Single(Box::new(Mutex::new(driver))),
                mem: Mutex::new(MemoryManager::new(&cfg)),
                cfg,
                telemetry: Telemetry::disabled(),
            }),
            placement: None,
        })
    }

    /// Creates a device backed by a sharded multi-chip cluster: `shards`
    /// simulated chips of geometry `cfg`, presented as one memory with
    /// `shards × cfg.crossbars` warps. Every tensor program runs unchanged
    /// — and bit-identically — on 1 or N chips; element-parallel work fans
    /// out across the shard workers concurrently.
    ///
    /// # Errors
    ///
    /// Returns an error if `cfg` fails validation or `shards` is zero.
    pub fn cluster(cfg: PimConfig, shards: usize) -> Result<Self> {
        Device::cluster_with_mode(cfg, shards, ParallelismMode::default())
    }

    /// Creates a cluster-backed device with an explicit driver parallelism
    /// mode and the default chip-to-chip interconnect model.
    ///
    /// # Errors
    ///
    /// See [`cluster`](Device::cluster).
    pub fn cluster_with_mode(cfg: PimConfig, shards: usize, mode: ParallelismMode) -> Result<Self> {
        Device::cluster_with_interconnect(cfg, shards, mode, InterconnectConfig::default())
    }

    /// Creates a cluster-backed device with explicit driver parallelism and
    /// chip-to-chip interconnect models. The interconnect's link
    /// width/latency set the modeled cycle cost of cross-chip transfers;
    /// its staging/drain policies select transfer batching and the
    /// scheduler's barrier scope (see [`pim_cluster::InterconnectConfig`]).
    /// The resulting traffic counters surface through
    /// [`Device::cluster_stats`] as [`ClusterStats::traffic`].
    ///
    /// # Errors
    ///
    /// See [`cluster`](Device::cluster); additionally fails for an unusable
    /// interconnect model (e.g. a zero-width link).
    pub fn cluster_with_interconnect(
        cfg: PimConfig,
        shards: usize,
        mode: ParallelismMode,
        icfg: InterconnectConfig,
    ) -> Result<Self> {
        Device::cluster_with_options(
            cfg,
            shards,
            ClusterOptions {
                mode,
                interconnect: icfg,
                ..ClusterOptions::default()
            },
        )
    }

    /// Creates a cluster-backed device from a full [`ClusterOptions`]
    /// bundle — the constructor that exposes crash recovery
    /// ([`pim_cluster::RecoveryConfig`]), deterministic fault injection
    /// (`ClusterOptions::fault`) and per-shard backend selection
    /// (`ClusterOptions::backends`, see
    /// [`pim_cluster::ShardBackends`]). The options' telemetry handle is
    /// replaced by the device's own (the device owns the unified
    /// modeled-clock/metrics surface).
    ///
    /// # Errors
    ///
    /// See [`cluster_with_interconnect`](Device::cluster_with_interconnect).
    pub fn cluster_with_options(
        cfg: PimConfig,
        shards: usize,
        options: ClusterOptions,
    ) -> Result<Self> {
        let telemetry = Telemetry::disabled();
        let cluster = PimCluster::with_options(
            cfg,
            shards,
            ClusterOptions {
                telemetry: telemetry.clone(),
                ..options
            },
        )?;
        let logical = cluster.logical_config().clone();
        // Thread the shard geometry into the allocator: stripes that fit
        // one chip get chip-local placement, so small tensors' operations
        // never touch the interconnect.
        let mut mem = MemoryManager::new(&logical);
        mem.set_shard_plan(Some(*cluster.plan()));
        Ok(Device {
            inner: Arc::new(DeviceInner {
                engine: Engine::Cluster(Box::new(cluster)),
                mem: Mutex::new(mem),
                cfg: logical,
                telemetry,
            }),
            placement: None,
        })
    }

    /// The device's telemetry handle: the modeled-clock trace recorder plus
    /// the metrics registry. Disabled — zero-cost and bit-identical — by
    /// default; flip on with [`Telemetry::set_enabled`]. Cluster-backed
    /// devices share the handle with their shard workers, so enabling it
    /// here starts recording per-shard execution spans and interconnect
    /// bursts.
    pub fn telemetry(&self) -> &Telemetry {
        &self.inner.telemetry
    }

    /// One unified [`MetricsSnapshot`] across every layer this device owns:
    /// the telemetry registry's instruments (e.g. the serving gateway's
    /// `serve.*` histograms) plus the simulator profiler (`sim.*`) and —
    /// when cluster-backed — the cluster and interconnect counters
    /// (`cluster.*`).
    ///
    /// # Errors
    ///
    /// Returns the shard's failure if a cluster shard worker thread has
    /// died and could not be revived (see [`Device::cluster_stats`]).
    pub fn metrics_snapshot(&self) -> Result<MetricsSnapshot> {
        let mut snap = self.inner.telemetry.metrics().snapshot();
        match &self.inner.engine {
            Engine::Single(d) => d.lock().backend().profiler().fill_metrics(&mut snap),
            Engine::Cluster(c) => {
                c.stats()?.fill_metrics(&mut snap);
                if let Some(inj) = c.fault_injector() {
                    inj.fill_metrics(&mut snap);
                }
            }
        }
        Ok(snap)
    }

    /// The device geometry (for a cluster: the aggregate geometry across
    /// all shards).
    pub fn config(&self) -> &PimConfig {
        &self.inner.cfg
    }

    /// Number of chips backing this device (1 unless built with
    /// [`Device::cluster`]).
    pub fn shards(&self) -> usize {
        match &self.inner.engine {
            Engine::Single(_) => 1,
            Engine::Cluster(c) => c.shards(),
        }
    }

    /// Per-shard telemetry when this device is cluster-backed, `None` for a
    /// single-chip device. Includes the interconnect's traffic counters
    /// ([`ClusterStats::traffic`]): cross-chip messages/words, modeled link
    /// cycles, barriers hit and shard queues drained.
    ///
    /// # Errors
    ///
    /// Returns the shard's failure ([`CoreError::Cluster`], classified by
    /// [`CoreError::class`]) if a worker thread has died and could not be
    /// revived — zeroed telemetry would silently misreport a broken
    /// cluster.
    pub fn cluster_stats(&self) -> Result<Option<ClusterStats>> {
        match &self.inner.engine {
            Engine::Single(_) => Ok(None),
            Engine::Cluster(c) => Ok(Some(c.stats()?)),
        }
    }

    /// Whether two handles refer to the same device.
    pub fn same_device(&self, other: &Device) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Reserves a warp window for one client session (see
    /// [`MemoryManager::reserve_window`]): disjoint from every other active
    /// reservation and avoided by unhinted allocations while it lasts.
    /// Pair with [`Device::with_placement`] to get a session handle whose
    /// allocations are confined to the window.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::OutOfMemory`] when no disjoint window is left.
    pub fn reserve_placement(&self, warps: u32) -> Result<PlacementHint> {
        self.inner.mem.lock().reserve_window(warps)
    }

    /// Releases a window reservation made by
    /// [`reserve_placement`](Device::reserve_placement). Tensors allocated
    /// inside it stay valid; only the headroom claim ends.
    pub fn release_placement(&self, window: PlacementHint) {
        self.inner.mem.lock().release_window(window);
    }

    /// A handle onto the same device whose allocations prefer `window` —
    /// the per-client placement of the serving gateway. Tensors created
    /// through the returned handle (and their operation results and
    /// temporaries) allocate inside the window while it has space.
    pub fn with_placement(&self, window: PlacementHint) -> Device {
        Device {
            inner: Arc::clone(&self.inner),
            placement: Some(window),
        }
    }

    /// The placement window of this handle, if any.
    pub fn placement(&self) -> Option<PlacementHint> {
        self.placement
    }

    /// Snapshot of the simulator's profiling counters (cycles,
    /// micro-operation counts) — the paper's `pim.Profiler()` facility.
    ///
    /// For a cluster, operation/gate counters are summed across shards and
    /// `cycles` is the busiest shard (chips run concurrently, so that is
    /// the wall-clock latency); see [`Device::cluster_stats`] for the
    /// per-shard breakdown.
    ///
    /// # Errors
    ///
    /// Returns the shard's failure if a cluster shard worker thread has
    /// died and could not be revived (see [`Device::cluster_stats`]).
    pub fn profiler(&self) -> Result<Profiler> {
        match &self.inner.engine {
            Engine::Single(d) => Ok(d.lock().backend().profiler().clone()),
            Engine::Cluster(c) => Ok(c.stats()?.merged_profiler()),
        }
    }

    /// PIM cycles consumed so far.
    ///
    /// # Errors
    ///
    /// See [`profiler`](Device::profiler).
    pub fn cycles(&self) -> Result<u64> {
        Ok(self.profiler()?.cycles)
    }

    /// Resets the profiling counters, including the routine-cache hit/miss
    /// telemetry (compiled routines are kept — a fresh measurement region
    /// should not pay recompilation).
    ///
    /// # Errors
    ///
    /// Returns the shard's failure if a cluster shard worker thread has
    /// died and could not be revived.
    pub fn reset_profiler(&self) -> Result<()> {
        match &self.inner.engine {
            Engine::Single(d) => {
                let mut d = d.lock();
                d.backend_mut().reset_profiler();
                d.reset_cache_stats();
                Ok(())
            }
            Engine::Cluster(c) => Ok(c.reset_profilers()?),
        }
    }

    /// Enables/disables the backend's strict stateful-logic checking
    /// (enforced by the bit-accurate simulator; recorded but not enforced
    /// by the functional backend).
    ///
    /// # Errors
    ///
    /// Returns the shard's failure if a cluster shard worker thread has
    /// died and could not be revived.
    pub fn set_strict(&self, strict: bool) -> Result<()> {
        match &self.inner.engine {
            Engine::Single(d) => {
                d.lock().backend_mut().set_strict(strict);
                Ok(())
            }
            Engine::Cluster(c) => Ok(c.set_strict(strict)?),
        }
    }

    /// Routine-cache statistics `(hits, misses)` of the host driver (for a
    /// cluster: summed over the per-shard drivers).
    ///
    /// # Errors
    ///
    /// Returns the shard's failure if a cluster shard worker thread has
    /// died and could not be revived (see [`Device::cluster_stats`]).
    pub fn cache_stats(&self) -> Result<(u64, u64)> {
        match &self.inner.engine {
            Engine::Single(d) => Ok(d.lock().cache_stats()),
            Engine::Cluster(c) => Ok(c.stats()?.cache_stats()),
        }
    }

    /// Driver-issued cycle counters (logic vs total) — the theoretical-PIM
    /// baseline of everything executed so far (for a cluster: summed over
    /// shards).
    ///
    /// # Errors
    ///
    /// Returns the shard's failure if a cluster shard worker thread has
    /// died and could not be revived (see [`Device::cluster_stats`]).
    pub fn issued(&self) -> Result<pim_driver::IssuedCycles> {
        match &self.inner.engine {
            Engine::Single(d) => Ok(d.lock().issued()),
            Engine::Cluster(c) => Ok(c.stats()?.issued()),
        }
    }

    /// Resets both the simulator profiler and the driver's issued-cycle
    /// counters (the start of a measurement region).
    ///
    /// # Errors
    ///
    /// Returns the shard's failure if a cluster shard worker thread has
    /// died and could not be revived.
    pub fn reset_counters(&self) -> Result<()> {
        match &self.inner.engine {
            Engine::Single(d) => {
                let mut d = d.lock();
                d.backend_mut().reset_profiler();
                d.reset_cache_stats();
                d.reset_issued();
                Ok(())
            }
            Engine::Cluster(c) => {
                c.reset_profilers()?;
                c.reset_issued()?;
                Ok(())
            }
        }
    }

    /// Executes one macro-instruction on the device.
    pub(crate) fn exec(&self, instr: &Instruction) -> Result<Option<u32>> {
        match &self.inner.engine {
            Engine::Single(d) => Ok(d.lock().execute(instr)?),
            Engine::Cluster(c) => Ok(c.execute(instr)?),
        }
    }

    /// Executes a sequence of non-read macro-instructions. On a cluster the
    /// whole batch is split per shard up front and streams to all shards
    /// concurrently (one job per shard between cross-chip barriers).
    pub(crate) fn exec_batch(&self, instrs: &[Instruction]) -> Result<()> {
        match &self.inner.engine {
            Engine::Single(d) => {
                let mut d = d.lock();
                for i in instrs {
                    d.execute(i)?;
                }
                Ok(())
            }
            Engine::Cluster(c) => Ok(c.execute_batch(instrs)?),
        }
    }

    /// Reads many `(warp, row, register)` locations, returning values in
    /// input order. Cluster-backed devices gather with one concurrent job
    /// per shard.
    pub(crate) fn read_many(&self, locs: &[(u32, u32, u8)]) -> Result<Vec<u32>> {
        match &self.inner.engine {
            Engine::Single(d) => {
                let mut d = d.lock();
                locs.iter()
                    .map(|&(warp, row, reg)| {
                        Ok(d.execute(&Instruction::Read { reg, warp, row })?
                            .expect("read returns a value"))
                    })
                    .collect()
            }
            Engine::Cluster(c) => Ok(c.gather(locs)?),
        }
    }

    /// Writes many [`GlobalWrite`] cells. Cluster-backed devices scatter
    /// with one concurrent job per shard.
    pub(crate) fn write_many(&self, writes: &[GlobalWrite]) -> Result<()> {
        match &self.inner.engine {
            Engine::Single(d) => {
                let mut d = d.lock();
                for w in writes {
                    d.execute(&Instruction::Write {
                        reg: w.reg,
                        value: w.value,
                        target: pim_isa::ThreadRange::single(w.warp, w.row),
                    })?;
                }
                Ok(())
            }
            Engine::Cluster(c) => Ok(c.scatter(writes)?),
        }
    }

    /// Submits a batch of non-read macro-instructions *without waiting*,
    /// returning a [`StepTicket`] that is both a blocking handle and a
    /// pollable future — the primitive the async serving gateway coalesces
    /// client work onto. On a cluster the batch splits per shard and
    /// streams; chip-crossing moves (which need host staging barriers) and
    /// single-chip devices execute inline and return a ready ticket, with
    /// identical semantics.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Protocol`] for read instructions, plus
    /// validation errors; deferred shard errors surface when the ticket is
    /// waited or awaited.
    pub fn submit_instrs(&self, instrs: &[Instruction]) -> Result<StepTicket> {
        if instrs.iter().any(|i| matches!(i, Instruction::Read { .. })) {
            return Err(CoreError::Protocol {
                reason: "read instructions cannot be submitted asynchronously \
                         (use submit_reads)"
                    .into(),
            });
        }
        match &self.inner.engine {
            Engine::Single(d) => {
                let mut d = d.lock();
                for i in instrs {
                    d.execute(i)?;
                }
                Ok(StepTicket::ready())
            }
            Engine::Cluster(c) => match c.submit_batch(instrs)? {
                Submission::Tickets(set) => Ok(StepTicket(StepInner::Cluster(set))),
                Submission::Inline => Ok(StepTicket::ready()),
            },
        }
    }

    /// Submits request-tagged instruction batches *without waiting* — the
    /// attribution-aware variant of [`submit_instrs`](Device::submit_instrs)
    /// the serving gateway coalesces client requests onto. Each
    /// [`TaggedBatch`] carries the [`RequestId`] its modeled cycles,
    /// instruction counts, cross-chip words and trace spans are attributed
    /// to; execution results are bit-identical to submitting the
    /// concatenated instructions untagged, whether or not telemetry is
    /// recording.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Protocol`] for read instructions, plus
    /// validation errors; deferred shard errors surface when the ticket is
    /// waited or awaited.
    pub fn submit_tagged(&self, batches: &[TaggedBatch]) -> Result<StepTicket> {
        if batches
            .iter()
            .flat_map(|b| b.instrs.iter())
            .any(|i| matches!(i, Instruction::Read { .. }))
        {
            return Err(CoreError::Protocol {
                reason: "read instructions cannot be submitted asynchronously \
                         (use submit_reads)"
                    .into(),
            });
        }
        match &self.inner.engine {
            Engine::Single(d) => {
                let mut d = d.lock();
                for b in batches {
                    let recording = self.inner.telemetry.is_enabled();
                    let before = if recording {
                        d.backend().profiler().cycles
                    } else {
                        0
                    };
                    for i in &b.instrs {
                        d.execute(i)?;
                    }
                    if recording {
                        let after = d.backend().profiler().cycles;
                        let delta = after.saturating_sub(before);
                        // Anchor at the later of the global clock and the
                        // profiler total: identical to charging absolute
                        // profiler cycles while the clock only ever moved
                        // through execution, but when a driver has jumped
                        // the clock ahead (open-loop load generation,
                        // retry backoff) the batch occupies `[now, now +
                        // delta)` instead of charging nothing.
                        let start = self.inner.telemetry.now().max(before);
                        let track = self.inner.telemetry.track("chip-0");
                        track.record_complete(
                            "exec",
                            start,
                            delta,
                            b.request,
                            Some(("instructions", b.instrs.len() as u64)),
                        );
                        self.inner.telemetry.advance_clock(start + delta);
                        self.inner.telemetry.attribute(
                            b.request,
                            RequestStats {
                                cycles: after.saturating_sub(before),
                                instructions: b.instrs.len() as u64,
                                ..Default::default()
                            },
                        );
                    }
                }
                Ok(StepTicket::ready())
            }
            Engine::Cluster(c) => match c.submit_batch_tagged(batches)? {
                Submission::Tickets(set) => Ok(StepTicket(StepInner::Cluster(set))),
                Submission::Inline => Ok(StepTicket::ready()),
            },
        }
    }

    /// Whether [`submit_instrs`](Device::submit_instrs) would stream this
    /// batch asynchronously (`true`) or execute it inline on the calling
    /// thread (`false`: single-chip devices always, cluster batches with
    /// chip-crossing moves). The serving gateway uses this to keep inline
    /// work off shard-worker threads.
    pub fn instrs_stream_async(&self, instrs: &[Instruction]) -> bool {
        match &self.inner.engine {
            Engine::Single(_) => false,
            Engine::Cluster(c) => c.batch_streams_async(instrs),
        }
    }

    /// Submits a bulk read of `(warp, row, register)` locations *without
    /// waiting* (see [`submit_instrs`](Device::submit_instrs)); the
    /// [`ReadTicket`] yields values in input order.
    ///
    /// # Errors
    ///
    /// Returns addressing errors; deferred shard errors surface on
    /// wait/await.
    pub fn submit_reads(&self, locs: &[(u32, u32, u8)]) -> Result<ReadTicket> {
        match &self.inner.engine {
            Engine::Single(_) => Ok(ReadTicket(ReadInner::Done(Some(self.read_many(locs)?)))),
            Engine::Cluster(c) => Ok(ReadTicket(ReadInner::Cluster(c.submit_gather(locs)?))),
        }
    }

    /// Allocates an uninitialized tensor of `capacity` elements (rounded up
    /// to whole warps), optionally thread-aligned with `near`.
    pub(crate) fn empty(
        &self,
        capacity: usize,
        dtype: DType,
        near: Option<Stripe>,
    ) -> Result<Tensor> {
        if capacity == 0 {
            return Err(CoreError::InvalidSlice {
                what: "zero-length tensor".into(),
            });
        }
        let rows = self.inner.cfg.rows;
        let warps = capacity.div_ceil(rows) as u32;
        let stripe = self.inner.mem.lock().alloc(warps, near, self.placement)?;
        Ok(Tensor::from_stripe(
            Arc::new(AllocGuard {
                stripe,
                device: self.clone(),
            }),
            dtype,
            capacity,
        ))
    }

    /// Allocates a tensor occupying exactly the warp window of `like` on a
    /// fresh register (the fallback-copy/allocation-alignment path).
    pub(crate) fn empty_like_window(
        &self,
        like: Stripe,
        dtype: DType,
        len: usize,
    ) -> Result<Tensor> {
        let stripe = self.inner.mem.lock().alloc_like(like)?;
        Ok(Tensor::from_stripe(
            Arc::new(AllocGuard {
                stripe,
                device: self.clone(),
            }),
            dtype,
            len,
        ))
    }

    /// Allocates a tensor of `n` elements with *undefined contents* —
    /// callers that plan their own initialization (the async serving path
    /// batches the fill/store instructions with the rest of a request)
    /// write every element before reading any.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::OutOfMemory`] when no stripe is free.
    pub fn uninit(&self, n: usize, dtype: DType) -> Result<Tensor> {
        self.empty(n, dtype, None)
    }

    /// A tensor of `n` zeros (float32) — `pim.zeros(n, dtype=pim.float32)`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::OutOfMemory`] when no stripe is free.
    pub fn zeros_f32(&self, n: usize) -> Result<Tensor> {
        self.full_raw(n, DType::Float32, 0)
    }

    /// A tensor of `n` zeros (int32).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::OutOfMemory`] when no stripe is free.
    pub fn zeros_i32(&self, n: usize) -> Result<Tensor> {
        self.full_raw(n, DType::Int32, 0)
    }

    /// A tensor of `n` copies of `value` (float32).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::OutOfMemory`] when no stripe is free.
    pub fn full_f32(&self, n: usize, value: f32) -> Result<Tensor> {
        self.full_raw(n, DType::Float32, value.to_bits())
    }

    /// A tensor of `n` copies of `value` (int32).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::OutOfMemory`] when no stripe is free.
    pub fn full_i32(&self, n: usize, value: i32) -> Result<Tensor> {
        self.full_raw(n, DType::Int32, value as u32)
    }

    pub(crate) fn full_raw(&self, n: usize, dtype: DType, bits: u32) -> Result<Tensor> {
        let t = self.empty(n, dtype, None)?;
        t.fill_raw(bits)?;
        Ok(t)
    }

    /// A tensor initialized from a float slice — `pim.from_numpy`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::OutOfMemory`] when no stripe is free or
    /// [`CoreError::InvalidSlice`] for empty input.
    pub fn from_slice_f32(&self, data: &[f32]) -> Result<Tensor> {
        let t = self.empty(data.len(), DType::Float32, None)?;
        t.store_raw(data.iter().map(|v| v.to_bits()))?;
        Ok(t)
    }

    /// A tensor initialized from an int slice.
    ///
    /// # Errors
    ///
    /// See [`from_slice_f32`](Device::from_slice_f32).
    pub fn from_slice_i32(&self, data: &[i32]) -> Result<Tensor> {
        let t = self.empty(data.len(), DType::Int32, None)?;
        t.store_raw(data.iter().map(|v| *v as u32))?;
        Ok(t)
    }

    /// `[0, 1, 2, …, n)` as int32 — used by index-dependent algorithms
    /// (e.g. the bitonic sorting network's direction masks).
    ///
    /// # Errors
    ///
    /// See [`from_slice_f32`](Device::from_slice_f32).
    pub fn arange_i32(&self, n: usize) -> Result<Tensor> {
        let t = self.empty(n, DType::Int32, None)?;
        t.store_raw((0..n).map(|i| i as u32))?;
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let d = Device::new(PimConfig::small()).unwrap();
        assert_eq!(d.config().crossbars, 16);
        assert!(d.same_device(&d.clone()));
        let other = Device::new(PimConfig::small()).unwrap();
        assert!(!d.same_device(&other));

        let z = d.zeros_i32(10).unwrap();
        assert_eq!(z.to_vec_i32().unwrap(), vec![0; 10]);
        let f = d.full_f32(3, -1.5).unwrap();
        assert_eq!(f.to_vec_f32().unwrap(), vec![-1.5; 3]);
        let a = d.arange_i32(5).unwrap();
        assert_eq!(a.to_vec_i32().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn zero_length_allocation_fails() {
        let d = Device::new(PimConfig::small()).unwrap();
        assert!(d.zeros_f32(0).is_err());
        assert!(d.from_slice_i32(&[]).is_err());
    }

    #[test]
    fn counters_reset_together() {
        let d = Device::new(PimConfig::small()).unwrap();
        let _ = d.full_i32(4, 3).unwrap();
        assert!(d.cycles().unwrap() > 0);
        d.reset_counters().unwrap();
        assert_eq!(d.cycles().unwrap(), 0);
        assert_eq!(d.issued().unwrap().total, 0);
    }

    #[test]
    fn functional_backend_matches_bit_accurate() {
        let sim = Device::new(PimConfig::small()).unwrap();
        let func = Device::with_backend(PimConfig::small(), BackendKind::Functional).unwrap();
        let data = [7, -3, 0, 1_000_000, -42];
        let (a, b) = (
            sim.from_slice_i32(&data).unwrap(),
            func.from_slice_i32(&data).unwrap(),
        );
        let (sa, sb) = ((&a + &a).unwrap(), (&b + &b).unwrap());
        assert_eq!(sa.to_vec_i32().unwrap(), sb.to_vec_i32().unwrap());
        assert_eq!(sim.cycles().unwrap(), func.cycles().unwrap());
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut cfg = PimConfig::small();
        cfg.partitions = 8;
        assert!(Device::new(cfg).is_err());
    }
}
