//! Hierarchical H-tree addressing for distributed inter-crossbar
//! communication (§III-F, Figure 9).
//!
//! Crossbars are numbered so that each H-tree group contains all crossbars
//! sharing an id prefix in base 4 (e.g. group `10xx` holds crossbars
//! `1000..=1011` in binary). A *distributed move* pairs every source
//! crossbar `XB` (selected by the crossbar mask) with destination
//! `XB + dist`; transfers between disjoint groups proceed in parallel,
//! while transfers sharing links serialize.

use crate::{ArchError, MoveOp, PimConfig, RangeMask, XbId};

/// The H-tree level at which crossbars `a` and `b` first share a group:
/// `0` means the same crossbar, `1` means the same leaf group of 4, and so
/// on. This is the number of tree levels a transfer between them must climb.
///
/// # Example
///
/// ```
/// use pim_arch::htree::level;
///
/// assert_eq!(level(0b0001, 0b0010), 1); // same group of 4
/// assert_eq!(level(0b0001, 0b0101), 2); // same group of 16
/// assert_eq!(level(5, 5), 0);
/// ```
pub fn level(a: XbId, b: XbId) -> u32 {
    let mut l = 0;
    let (mut a, mut b) = (a, b);
    while a != b {
        a >>= 2;
        b >>= 2;
        l += 1;
    }
    l
}

/// Whether `x` is a power of four (the required crossbar-mask step for
/// distributed moves, §III-F).
pub fn is_power_of_four(x: u32) -> bool {
    x.is_power_of_two() && x.trailing_zeros().is_multiple_of(2)
}

/// Validation and cost summary for one distributed move micro-operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MovePlan {
    /// Number of source→destination pairs performed.
    pub pairs: u64,
    /// H-tree level climbed by each transfer (uniform across pairs because
    /// the distance is uniform and the step aligns groups).
    pub tree_level: u32,
    /// Cycles this micro-operation occupies: 1 when all pairs use disjoint
    /// H-tree groups (`|dist| < step`), otherwise the transfers serialize
    /// through shared upper-level links (one cycle per pair).
    pub cycles: u64,
}

/// Validates a distributed move against the H-tree pattern rules and
/// computes its cost.
///
/// Rules (§III-F): the source crossbar set comes from the current crossbar
/// mask, whose `step` must be a power of 4; the distance is uniform; every
/// destination must lie inside the memory; and the destination set must not
/// intersect the source set (each crossbar either reads onto or writes from
/// the bus in a given cycle).
///
/// # Errors
///
/// Returns [`ArchError::InvalidMove`] if any rule is violated.
pub fn plan_move(mask: &RangeMask, mv: &MoveOp, cfg: &PimConfig) -> Result<MovePlan, ArchError> {
    let bad = |reason: String| Err(ArchError::InvalidMove { reason });
    if mv.dist == 0 {
        return bad("move distance must be nonzero".into());
    }
    if !is_power_of_four(mask.step()) && !mask.is_single() {
        return bad(format!(
            "crossbar mask step ({}) must be a power of 4",
            mask.step()
        ));
    }
    mask.check_bound("crossbar", cfg.crossbars as u64)?;
    // Destination bounds.
    let first_dst = mask.start() as i64 + mv.dist as i64;
    let last_dst = mask.stop() as i64 + mv.dist as i64;
    if first_dst < 0 || last_dst >= cfg.crossbars as i64 {
        return bad(format!(
            "destination crossbars {first_dst}..={last_dst} fall outside 0..{}",
            cfg.crossbars
        ));
    }
    // Source/destination disjointness. Both sets share the mask's step, so
    // they intersect iff the distance is a multiple of the step and the
    // shifted range overlaps.
    let step = mask.step() as i64;
    let overlaps = mv.dist as i64 % step == 0
        && first_dst <= mask.stop() as i64
        && last_dst >= mask.start() as i64;
    if overlaps {
        return bad(format!(
            "destination set overlaps source set (dist {} with step {})",
            mv.dist, step
        ));
    }
    let pairs = mask.len() as u64;
    let tree_level = level(mask.start(), first_dst as u32);
    // Disjoint groups: each pair stays inside one group of `step` crossbars.
    let disjoint = (mv.dist.unsigned_abs() as u64) < mask.step() as u64
        && (mask.start() as u64 / mask.step() as u64 == first_dst as u64 / mask.step() as u64
            || mask.is_single());
    let cycles = if disjoint || pairs == 1 { 1 } else { pairs };
    Ok(MovePlan {
        pairs,
        tree_level,
        cycles,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PimConfig {
        PimConfig::small() // 16 crossbars, as in Figure 9
    }

    fn mv(dist: i32) -> MoveOp {
        MoveOp {
            dist,
            row_src: 0,
            row_dst: 0,
            index_src: 0,
            index_dst: 0,
        }
    }

    #[test]
    fn figure9_example() {
        // "Crossbars xx01 transferring data to crossbars xx10 for all xx":
        // XBstart = 0001, XBstep = 0100, XBstop = 1101, dist = 0001.
        let mask = RangeMask::new(0b0001, 0b1101, 0b0100).unwrap();
        let plan = plan_move(&mask, &mv(1), &cfg()).unwrap();
        assert_eq!(plan.pairs, 4);
        assert_eq!(plan.tree_level, 1); // within each leaf group of 4
        assert_eq!(plan.cycles, 1); // fully parallel across groups
    }

    #[test]
    fn level_is_symmetric_and_monotone() {
        assert_eq!(level(0, 0), 0);
        for (a, b) in [(0u32, 3u32), (4, 7), (12, 15)] {
            assert_eq!(level(a, b), 1);
            assert_eq!(level(b, a), 1);
        }
        assert_eq!(level(0, 15), 2);
        assert_eq!(level(0, 16), 3);
    }

    #[test]
    fn power_of_four() {
        for x in [1u32, 4, 16, 64, 256, 65536] {
            assert!(is_power_of_four(x), "{x}");
        }
        for x in [0u32, 2, 3, 8, 12, 32, 128] {
            assert!(!is_power_of_four(x), "{x}");
        }
    }

    #[test]
    fn rejects_zero_distance() {
        let mask = RangeMask::single(3);
        assert!(plan_move(&mask, &mv(0), &cfg()).is_err());
    }

    #[test]
    fn rejects_non_power_of_four_step() {
        let mask = RangeMask::new(0, 6, 2).unwrap();
        assert!(plan_move(&mask, &mv(1), &cfg()).is_err());
    }

    #[test]
    fn rejects_out_of_bounds_destination() {
        let mask = RangeMask::single(15);
        assert!(plan_move(&mask, &mv(1), &cfg()).is_err());
        let mask = RangeMask::single(0);
        assert!(plan_move(&mask, &mv(-1), &cfg()).is_err());
    }

    #[test]
    fn rejects_overlapping_source_destination() {
        // Sources {0, 4, 8}, dist 4 -> destinations {4, 8, 12}: overlap.
        let mask = RangeMask::new(0, 8, 4).unwrap();
        assert!(plan_move(&mask, &mv(4), &cfg()).is_err());
    }

    #[test]
    fn inter_group_moves_serialize() {
        // Sources {0..=3} step 1... step must be power of 4; use step 4:
        // sources {0, 4}, dist 8 -> destinations {8, 12}; dist >= step so
        // transfers climb shared links and serialize.
        let mask = RangeMask::new(0, 4, 4).unwrap();
        let plan = plan_move(&mask, &mv(8), &cfg()).unwrap();
        assert_eq!(plan.pairs, 2);
        assert_eq!(plan.cycles, 2);
        assert_eq!(plan.tree_level, 2);
    }

    #[test]
    fn single_crossbar_move_is_one_cycle() {
        let mask = RangeMask::single(5);
        let plan = plan_move(&mask, &mv(9), &cfg()).unwrap();
        assert_eq!(plan.pairs, 1);
        assert_eq!(plan.cycles, 1);
    }

    #[test]
    fn warp_halving_pattern_used_by_reduction() {
        // Reduction pairs warp w with warp w + half: sources are the upper
        // half {8..=15}, destinations the lower half, dist = -8.
        let mask = RangeMask::new(8, 15, 1).unwrap();
        // Step 1 is a power of four (4^0), distance -8.
        let plan = plan_move(&mask, &mv(-8), &cfg()).unwrap();
        assert_eq!(plan.pairs, 8);
        assert_eq!(plan.cycles, 8); // serialized through the root
    }
}
