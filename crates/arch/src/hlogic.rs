use crate::{ArchError, PartId, PimConfig, RegId};
use serde::{Deserialize, Serialize};

/// The stateful-logic gate set supported in the horizontal direction
/// (§III-D2): two constant gates and the MAGIC NOT/NOR family.
///
/// `INITx` writes the constant `x` to the output column(s) without reading
/// inputs (analogous to a write). `NOT`/`NOR` can only switch an output cell
/// from logical 1 to logical 0 — the *stateful logic* discipline — so the
/// output must have been initialized to 1 beforehand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GateKind {
    /// Constant 0 (no inputs).
    Init0,
    /// Constant 1 (no inputs).
    Init1,
    /// One-input NOT: the output switches 1→0 when the input is 1.
    Not,
    /// Two-input NOR: the output switches 1→0 when either input is 1.
    Nor,
}

impl GateKind {
    /// Number of input operands read by this gate.
    pub fn inputs(self) -> usize {
        match self {
            GateKind::Init0 | GateKind::Init1 => 0,
            GateKind::Not => 1,
            GateKind::Nor => 2,
        }
    }

    /// Encoding used in the 2-bit gate-type field of the wire format.
    pub fn code(self) -> u8 {
        match self {
            GateKind::Init0 => 0,
            GateKind::Init1 => 1,
            GateKind::Not => 2,
            GateKind::Nor => 3,
        }
    }

    /// Decodes a 2-bit gate-type field; `None` for codes above 3 (which
    /// cannot occur in a well-formed wire word).
    pub fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            0 => GateKind::Init0,
            1 => GateKind::Init1,
            2 => GateKind::Not,
            3 => GateKind::Nor,
            _ => return None,
        })
    }
}

/// A column address inside a crossbar row: a partition index plus the
/// intra-partition offset (which doubles as the register index under the
/// strided data format of §III-C).
///
/// The physical column index is `part * regs_per_partition + offset`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ColAddr {
    /// Partition index (`0..N`).
    pub part: PartId,
    /// Intra-partition offset / register index (`0..w/N`).
    pub offset: RegId,
}

impl ColAddr {
    /// Creates a column address.
    pub fn new(part: PartId, offset: RegId) -> Self {
        ColAddr { part, offset }
    }
}

/// Per-partition half-gate opcode (Table I).
///
/// Under the half-gates technique (§III-D2), each partition's column decoder
/// receives a 3-bit opcode saying which of the gate's voltage roles it
/// applies: the two input voltages (`InA`, `InB`) and the output voltage
/// (`Out`). A partition that applies only inputs "trusts" another partition
/// to apply the output voltages, and vice versa; their combination forms a
/// complete gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PartitionOpcode {
    /// This partition applies the `InA` input voltage.
    pub in_a: bool,
    /// This partition applies the `InB` input voltage.
    pub in_b: bool,
    /// This partition applies the `Out` output voltage.
    pub out: bool,
}

impl PartitionOpcode {
    /// The 3-bit index of this opcode as listed in Table I
    /// (`in_a`, `in_b`, `out` from most- to least-significant bit).
    pub fn index(self) -> u8 {
        (self.in_a as u8) << 2 | (self.in_b as u8) << 1 | self.out as u8
    }

    /// The notation used by Table I of the paper, e.g. `"(InA, ?) -> Out"`.
    /// Index 0 (`-`) means the partition does not participate at all.
    pub fn notation(self) -> &'static str {
        match self.index() {
            0 => "-",
            1 => "? -> Out",
            2 => "(?, InB) -> ?",
            3 => "(?, InB) -> Out",
            4 => "(InA, ?) -> ?",
            5 => "(InA, ?) -> Out",
            6 => "(InA, InB) -> ?",
            7 => "(InA, InB) -> Out",
            _ => unreachable!(),
        }
    }
}

/// One concrete gate obtained by expanding a periodic [`HLogic`] operation.
///
/// Fields `a` and `b` are only meaningful when [`GateKind::inputs`] says the
/// gate reads them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GateInstance {
    /// Gate type.
    pub gate: GateKind,
    /// First input column (valid when `gate.inputs() >= 1`).
    pub a: ColAddr,
    /// Second input column (valid when `gate.inputs() == 2`).
    pub b: ColAddr,
    /// Output column.
    pub out: ColAddr,
}

/// A horizontal stateful-logic micro-operation under the restricted
/// partition model of §III-D3.
///
/// The operation describes the *leftmost* gate — input columns `in_a`,
/// `in_b` and output column `out` — plus a periodicity: the pattern repeats
/// with partition stride `p_step` until the gate whose output partition is
/// `p_end`. All concurrent gates share the same intra-partition offsets
/// (restriction 1), their opcodes repeat periodically (restriction 2), and
/// the transistor selects are derivable from the opcodes (restriction 3),
/// which this type enforces by requiring the concurrent *sections* to be
/// disjoint.
///
/// Constructors cover the three parallelism shapes of Figure 7:
/// [`serial`](HLogic::serial) (one gate), [`parallel`](HLogic::parallel)
/// (one gate in every partition), and [`strided`](HLogic::strided)
/// (semi-parallel).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct HLogic {
    /// Gate type applied by every concurrent gate.
    pub gate: GateKind,
    /// First input column of the leftmost gate.
    pub in_a: ColAddr,
    /// Second input column of the leftmost gate (NOR only; `pA <= pB`).
    pub in_b: ColAddr,
    /// Output column of the leftmost gate.
    pub out: ColAddr,
    /// Output partition of the *last* concurrent gate.
    pub p_end: PartId,
    /// Partition stride between consecutive concurrent gates.
    pub p_step: u8,
}

impl HLogic {
    /// A single gate (serial parallelism, Figure 7a).
    ///
    /// For `Init*` gates the inputs are ignored and canonicalized to `out`.
    ///
    /// # Errors
    ///
    /// Returns an error if any address is out of bounds for `cfg`.
    pub fn serial(
        gate: GateKind,
        in_a: ColAddr,
        in_b: ColAddr,
        out: ColAddr,
        cfg: &PimConfig,
    ) -> Result<Self, ArchError> {
        let (in_a, in_b) = canonical_inputs(gate, in_a, in_b, out);
        let op = HLogic {
            gate,
            in_a,
            in_b,
            out,
            p_end: out.part,
            p_step: 1,
        };
        op.validate(cfg)?;
        Ok(op)
    }

    /// One gate inside *every* partition (full parallelism, Figure 7b):
    /// operands live at intra-partition offsets `off_a`, `off_b`, `off_out`
    /// of the same partition, repeated across all `N` partitions.
    ///
    /// # Errors
    ///
    /// Returns an error if any offset is out of bounds for `cfg`.
    pub fn parallel(
        gate: GateKind,
        off_a: RegId,
        off_b: RegId,
        off_out: RegId,
        cfg: &PimConfig,
    ) -> Result<Self, ArchError> {
        let out = ColAddr::new(0, off_out);
        let (in_a, in_b) =
            canonical_inputs(gate, ColAddr::new(0, off_a), ColAddr::new(0, off_b), out);
        let op = HLogic {
            gate,
            in_a,
            in_b,
            out,
            p_end: cfg.partitions as PartId - 1,
            p_step: 1,
        };
        op.validate(cfg)?;
        Ok(op)
    }

    /// General semi-parallel pattern (Figure 7c,d): the leftmost gate plus a
    /// periodic repetition ending at output partition `p_end` with stride
    /// `p_step`.
    ///
    /// # Errors
    ///
    /// Returns an error if the pattern violates the restricted partition
    /// model (overlapping sections, stride not dividing the span, addresses
    /// out of bounds, or `pA > pB` for a NOR gate).
    pub fn strided(
        gate: GateKind,
        in_a: ColAddr,
        in_b: ColAddr,
        out: ColAddr,
        p_end: PartId,
        p_step: u8,
        cfg: &PimConfig,
    ) -> Result<Self, ArchError> {
        let (in_a, in_b) = canonical_inputs(gate, in_a, in_b, out);
        let op = HLogic {
            gate,
            in_a,
            in_b,
            out,
            p_end,
            p_step,
        };
        op.validate(cfg)?;
        Ok(op)
    }

    /// Constant-initializes intra-partition offset `offset` in every
    /// partition — the whole-register INIT used pervasively by the driver to
    /// prepare stateful-logic outputs in a single micro-operation.
    ///
    /// # Errors
    ///
    /// Returns an error if `offset` is out of bounds for `cfg`.
    pub fn init_reg(value: bool, offset: RegId, cfg: &PimConfig) -> Result<Self, ArchError> {
        let gate = if value {
            GateKind::Init1
        } else {
            GateKind::Init0
        };
        HLogic::parallel(gate, offset, offset, offset, cfg)
    }

    /// Number of concurrent gates performed by this operation.
    pub fn gate_count(&self) -> u64 {
        ((self.p_end - self.out.part) / self.p_step) as u64 + 1
    }

    /// Validates the operation against the restricted partition model and
    /// the geometry of `cfg`.
    ///
    /// # Errors
    ///
    /// See [`HLogic::strided`].
    pub fn validate(&self, cfg: &PimConfig) -> Result<(), ArchError> {
        let n = cfg.partitions as u32;
        let regs = cfg.regs as u32;
        let bad = |reason: String| Err(ArchError::InvalidPartitionPattern { reason });

        if self.p_step == 0 {
            return bad("p_step must be nonzero".into());
        }
        if (self.out.part as u32) >= n {
            return Err(ArchError::AddressOutOfBounds {
                what: "partition",
                value: self.out.part as u64,
                bound: n as u64,
            });
        }
        if (self.out.offset as u32) >= regs {
            return Err(ArchError::AddressOutOfBounds {
                what: "intra-partition offset",
                value: self.out.offset as u64,
                bound: regs as u64,
            });
        }
        if self.p_end < self.out.part {
            return bad(format!(
                "p_end ({}) must be >= the first output partition ({})",
                self.p_end, self.out.part
            ));
        }
        if (self.p_end as u32) >= n {
            return Err(ArchError::AddressOutOfBounds {
                what: "partition",
                value: self.p_end as u64,
                bound: n as u64,
            });
        }
        if !(self.p_end - self.out.part).is_multiple_of(self.p_step) {
            return bad(format!(
                "p_step ({}) must divide the output span ({})",
                self.p_step,
                self.p_end - self.out.part
            ));
        }
        let reps = self.gate_count() as u32 - 1; // T
        let operands = self.operand_cols();
        for col in &operands {
            if (col.offset as u32) >= regs {
                return Err(ArchError::AddressOutOfBounds {
                    what: "intra-partition offset",
                    value: col.offset as u64,
                    bound: regs as u64,
                });
            }
            // Partition of the last repetition must stay in bounds.
            let last = col.part as u32 + reps * self.p_step as u32;
            if last >= n {
                return Err(ArchError::AddressOutOfBounds {
                    what: "partition",
                    value: last as u64,
                    bound: n as u64,
                });
            }
        }
        // An output memristor cannot simultaneously be an input of the same
        // gate (the fixed voltages would conflict).
        if self.gate.inputs() >= 1 && self.in_a == self.out {
            return bad("gate input A coincides with the output column".into());
        }
        if self.gate.inputs() == 2 && self.in_b == self.out {
            return bad("gate input B coincides with the output column".into());
        }
        if self.gate == GateKind::Nor && self.in_a.part > self.in_b.part {
            return bad(format!(
                "NOR requires pA ({}) <= pB ({})",
                self.in_a.part, self.in_b.part
            ));
        }
        // Restriction 3 (derivable transistor selects): concurrent sections
        // must be disjoint, i.e. the section width must be smaller than the
        // partition stride.
        if reps > 0 {
            let lo = operands.iter().map(|c| c.part).min().expect("nonempty");
            let hi = operands.iter().map(|c| c.part).max().expect("nonempty");
            let span = (hi - lo) as u32;
            if span >= self.p_step as u32 {
                return bad(format!(
                    "concurrent sections overlap: section width {} >= p_step {}",
                    span + 1,
                    self.p_step
                ));
            }
        }
        Ok(())
    }

    /// The columns read or written by the leftmost gate.
    fn operand_cols(&self) -> Vec<ColAddr> {
        match self.gate.inputs() {
            0 => vec![self.out],
            1 => vec![self.in_a, self.out],
            _ => vec![self.in_a, self.in_b, self.out],
        }
    }

    /// Expands the periodic pattern into its individual gate instances —
    /// the reference semantics used to cross-validate the simulator's fast
    /// word-level evaluation.
    pub fn expand_gates(&self) -> Vec<GateInstance> {
        let mut gates = Vec::with_capacity(self.gate_count() as usize);
        for t in 0..self.gate_count() as u8 {
            let d = t * self.p_step;
            let shift = |c: ColAddr| ColAddr::new(c.part + d, c.offset);
            gates.push(GateInstance {
                gate: self.gate,
                a: shift(self.in_a),
                b: shift(self.in_b),
                out: shift(self.out),
            });
        }
        gates
    }

    /// The Table I half-gate opcode dispatched to partition `p`'s column
    /// decoder by this operation.
    pub fn opcode_for_partition(&self, p: PartId) -> PartitionOpcode {
        let mut opcode = PartitionOpcode::default();
        for t in 0..self.gate_count() as u8 {
            let d = t * self.p_step;
            if self.gate.inputs() >= 1 && self.in_a.part + d == p {
                opcode.in_a = true;
            }
            if self.gate.inputs() == 2 && self.in_b.part + d == p {
                opcode.in_b = true;
            }
            if self.out.part + d == p {
                opcode.out = true;
            }
        }
        opcode
    }

    /// The per-transistor conduction selects (`true` = conducting) derived
    /// from the operation, for a memory with `n_parts` partitions.
    /// Transistor `i` sits between partitions `i` and `i + 1`.
    ///
    /// A transistor conducts exactly when partitions `i` and `i+1` belong to
    /// the same concurrent section — the pattern the paper's restriction 3
    /// makes derivable from the per-partition opcodes.
    pub fn transistor_selects(&self, n_parts: usize) -> Vec<bool> {
        let mut conducting = vec![false; n_parts.saturating_sub(1)];
        for g in self.expand_gates() {
            let parts = match self.gate.inputs() {
                0 => vec![g.out.part],
                1 => vec![g.a.part, g.out.part],
                _ => vec![g.a.part, g.b.part, g.out.part],
            };
            let lo = *parts.iter().min().expect("nonempty") as usize;
            let hi = *parts.iter().max().expect("nonempty") as usize;
            conducting[lo..hi].fill(true);
        }
        conducting
    }

    /// Bitmask (one bit per partition) of output partitions — the
    /// word-level evaluation helper used by the simulator.
    pub fn out_bits(&self) -> u32 {
        let mut m = 0u32;
        for t in 0..self.gate_count() as u32 {
            m |= 1 << (self.out.part as u32 + t * self.p_step as u32);
        }
        m
    }

    /// Partition shift from input A to the output (`pOUT - pA`), used to
    /// align input words with output words in the simulator.
    pub fn shift_a(&self) -> i32 {
        self.out.part as i32 - self.in_a.part as i32
    }

    /// Partition shift from input B to the output (`pOUT - pB`).
    pub fn shift_b(&self) -> i32 {
        self.out.part as i32 - self.in_b.part as i32
    }
}

/// Canonicalizes unused input operands to the output address so that equal
/// operations compare (and encode) identically.
fn canonical_inputs(
    gate: GateKind,
    in_a: ColAddr,
    in_b: ColAddr,
    out: ColAddr,
) -> (ColAddr, ColAddr) {
    match gate.inputs() {
        0 => (out, out),
        1 => (in_a, in_a),
        _ => (in_a, in_b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cfg() -> PimConfig {
        PimConfig::small()
    }

    #[test]
    fn serial_gate_is_single() {
        let op = HLogic::serial(
            GateKind::Nor,
            ColAddr::new(3, 0),
            ColAddr::new(3, 1),
            ColAddr::new(3, 2),
            &cfg(),
        )
        .unwrap();
        assert_eq!(op.gate_count(), 1);
        assert_eq!(op.expand_gates().len(), 1);
    }

    #[test]
    fn parallel_covers_all_partitions() {
        let op = HLogic::parallel(GateKind::Nor, 0, 1, 2, &cfg()).unwrap();
        assert_eq!(op.gate_count(), 32);
        assert_eq!(op.out_bits(), u32::MAX);
        // Every partition both inputs and outputs (Table I opcode 111).
        for p in 0..32 {
            assert_eq!(op.opcode_for_partition(p).index(), 0b111);
            assert_eq!(op.opcode_for_partition(p).notation(), "(InA, InB) -> Out");
        }
        // All transistors non-conducting: each section is one partition.
        assert!(op.transistor_selects(32).iter().all(|&c| !c));
    }

    #[test]
    fn figure7c_example_opcodes() {
        // Figure 7(c)/8(c): inputs in even partitions, outputs in odd
        // partitions; InA, InB at offsets 0 and 1, Out at offset 3.
        let op = HLogic::strided(
            GateKind::Nor,
            ColAddr::new(0, 0),
            ColAddr::new(0, 1),
            ColAddr::new(1, 3),
            31,
            2,
            &cfg(),
        )
        .unwrap();
        assert_eq!(op.gate_count(), 16);
        // Partition 0: applies both inputs, no output -> "(InA, InB) -> ?".
        assert_eq!(op.opcode_for_partition(0).notation(), "(InA, InB) -> ?");
        // Partition 1: applies only the output -> "? -> Out".
        assert_eq!(op.opcode_for_partition(1).notation(), "? -> Out");
        // Repetition (restriction 2): partitions 2 and 3 repeat 0 and 1.
        assert_eq!(op.opcode_for_partition(2), op.opcode_for_partition(0));
        assert_eq!(op.opcode_for_partition(3), op.opcode_for_partition(1));
        // Transistors: conducting inside each (even, odd) section, open
        // between sections.
        let sel = op.transistor_selects(32);
        for (i, &s) in sel.iter().enumerate().take(31) {
            assert_eq!(s, i % 2 == 0, "transistor {i}");
        }
    }

    #[test]
    fn table1_all_opcodes_reachable() {
        // Build operations exercising each nontrivial Table I opcode.
        let c = cfg();
        let op = HLogic::strided(
            GateKind::Nor,
            ColAddr::new(0, 0),
            ColAddr::new(1, 1),
            ColAddr::new(2, 2),
            30,
            4,
            &c,
        )
        .unwrap();
        assert_eq!(op.opcode_for_partition(0).notation(), "(InA, ?) -> ?");
        assert_eq!(op.opcode_for_partition(1).notation(), "(?, InB) -> ?");
        assert_eq!(op.opcode_for_partition(2).notation(), "? -> Out");
        assert_eq!(op.opcode_for_partition(3).notation(), "-");

        // Same-partition input+output combinations.
        let op2 = HLogic::strided(
            GateKind::Nor,
            ColAddr::new(0, 0),
            ColAddr::new(0, 1),
            ColAddr::new(0, 2),
            31,
            1,
            &c,
        )
        .unwrap();
        assert_eq!(op2.opcode_for_partition(5).notation(), "(InA, InB) -> Out");

        let op3 = HLogic::strided(
            GateKind::Nor,
            ColAddr::new(0, 0),
            ColAddr::new(1, 1),
            ColAddr::new(1, 2),
            31,
            2,
            &c,
        )
        .unwrap();
        assert_eq!(op3.opcode_for_partition(1).notation(), "(?, InB) -> Out");

        let op4 = HLogic::strided(
            GateKind::Nor,
            ColAddr::new(0, 0),
            ColAddr::new(1, 1),
            ColAddr::new(0, 2),
            30,
            2,
            &c,
        )
        .unwrap();
        assert_eq!(op4.opcode_for_partition(0).notation(), "(InA, ?) -> Out");
    }

    #[test]
    fn rejects_overlapping_sections() {
        // Shift-by-one NOT with step 1: section width 2 >= step 1.
        let err = HLogic::strided(
            GateKind::Not,
            ColAddr::new(0, 0),
            ColAddr::new(0, 0),
            ColAddr::new(1, 1),
            31,
            1,
            &cfg(),
        )
        .unwrap_err();
        assert!(matches!(err, ArchError::InvalidPartitionPattern { .. }));
        // Same pattern with step 2 is the valid half of a shift.
        HLogic::strided(
            GateKind::Not,
            ColAddr::new(0, 0),
            ColAddr::new(0, 0),
            ColAddr::new(1, 1),
            31,
            2,
            &cfg(),
        )
        .unwrap();
    }

    #[test]
    fn rejects_out_of_bounds() {
        let c = cfg();
        assert!(HLogic::serial(
            GateKind::Not,
            ColAddr::new(32, 0),
            ColAddr::new(0, 0),
            ColAddr::new(0, 1),
            &c
        )
        .is_err());
        assert!(HLogic::serial(
            GateKind::Not,
            ColAddr::new(0, 32),
            ColAddr::new(0, 0),
            ColAddr::new(0, 1),
            &c
        )
        .is_err());
        // Last repetition of the input partition escapes the array.
        assert!(HLogic::strided(
            GateKind::Not,
            ColAddr::new(5, 0),
            ColAddr::new(5, 0),
            ColAddr::new(0, 1),
            30,
            5,
            &c
        )
        .is_err());
    }

    #[test]
    fn rejects_step_not_dividing_span() {
        let err = HLogic::strided(
            GateKind::Nor,
            ColAddr::new(0, 0),
            ColAddr::new(0, 1),
            ColAddr::new(0, 2),
            31,
            3,
            &cfg(),
        )
        .unwrap_err();
        assert!(matches!(err, ArchError::InvalidPartitionPattern { .. }));
    }

    #[test]
    fn rejects_pa_greater_than_pb() {
        let err = HLogic::serial(
            GateKind::Nor,
            ColAddr::new(2, 0),
            ColAddr::new(1, 1),
            ColAddr::new(3, 2),
            &cfg(),
        )
        .unwrap_err();
        assert!(matches!(err, ArchError::InvalidPartitionPattern { .. }));
    }

    #[test]
    fn init_reg_covers_register() {
        let op = HLogic::init_reg(true, 5, &cfg()).unwrap();
        assert_eq!(op.gate, GateKind::Init1);
        assert_eq!(op.gate_count(), 32);
        assert_eq!(op.out_bits(), u32::MAX);
    }

    #[test]
    fn init_inputs_are_canonicalized() {
        let a = HLogic::serial(
            GateKind::Init1,
            ColAddr::new(9, 9),
            ColAddr::new(8, 8),
            ColAddr::new(1, 2),
            &cfg(),
        )
        .unwrap();
        let b = HLogic::serial(
            GateKind::Init1,
            ColAddr::new(0, 0),
            ColAddr::new(0, 0),
            ColAddr::new(1, 2),
            &cfg(),
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn shifts_match_partition_deltas() {
        let op = HLogic::strided(
            GateKind::Nor,
            ColAddr::new(0, 0),
            ColAddr::new(1, 1),
            ColAddr::new(2, 2),
            30,
            4,
            &cfg(),
        )
        .unwrap();
        assert_eq!(op.shift_a(), 2);
        assert_eq!(op.shift_b(), 1);
        assert_eq!(op.out_bits(), 0b100_0100_0100_0100_0100_0100_0100_0100);
    }

    proptest! {
        /// Any operation accepted by the validator expands into gates whose
        /// sections are pairwise disjoint and whose opcodes repeat with the
        /// declared period (restrictions 2 and 3 of §III-D3).
        #[test]
        fn valid_ops_have_disjoint_sections(
            pa in 0u8..8, pb_delta in 0u8..4, pout_delta in 0u8..8,
            step in 1u8..16, reps in 0u8..8,
            off_a in 0u8..32, off_b in 0u8..32, off_out in 0u8..32,
        ) {
            let c = cfg();
            let in_a = ColAddr::new(pa, off_a);
            let in_b = ColAddr::new(pa + pb_delta, off_b);
            let out = ColAddr::new(pa + pout_delta, off_out);
            let p_end = out.part as u32 + reps as u32 * step as u32;
            if p_end >= 32 { return Ok(()); }
            let op = HLogic::strided(GateKind::Nor, in_a, in_b, out, p_end as u8, step, &c);
            if let Ok(op) = op {
                let gates = op.expand_gates();
                prop_assert_eq!(gates.len() as u64, op.gate_count());
                // Sections disjoint.
                let sections: Vec<(u8, u8)> = gates.iter().map(|g| {
                    let lo = g.a.part.min(g.b.part).min(g.out.part);
                    let hi = g.a.part.max(g.b.part).max(g.out.part);
                    (lo, hi)
                }).collect();
                for (i, s1) in sections.iter().enumerate() {
                    for s2 in sections.iter().skip(i + 1) {
                        prop_assert!(s1.1 < s2.0 || s2.1 < s1.0,
                            "sections {:?} and {:?} overlap", s1, s2);
                    }
                }
                // Opcode periodicity (restriction 2) — only meaningful when
                // the pattern actually repeats.
                if reps > 0 {
                    for p in 0..(32 - step) {
                        let a = op.opcode_for_partition(p);
                        let b = op.opcode_for_partition(p + step);
                        if a.index() != 0 && b.index() != 0 {
                            prop_assert_eq!(a, b);
                        }
                    }
                }
            }
        }

        /// The transistor-select derivation of restriction 3 agrees with the
        /// section structure: a transistor conducts iff its two neighbors
        /// fall inside one gate's section.
        #[test]
        fn transistor_selects_match_opcode_rule(
            pa in 0u8..4, pout_delta in 1u8..6, step in 6u8..10, reps in 1u8..4,
        ) {
            let c = cfg();
            let in_a = ColAddr::new(pa, 0);
            let out = ColAddr::new(pa + pout_delta, 1);
            let p_end = out.part as u32 + reps as u32 * step as u32;
            if p_end >= 32 { return Ok(()); }
            if let Ok(op) = HLogic::strided(GateKind::Not, in_a, in_a, out, p_end as u8, step, &c) {
                // Paper's rule for pA <= pOUT: transistor i (between
                // partitions i and i+1) is NON-conducting iff partition i
                // has opcode *->Out or partition i+1 has opcode (InA,*)->*.
                let sel = op.transistor_selects(32);
                for i in 0..31u8 {
                    let left = op.opcode_for_partition(i);
                    let right = op.opcode_for_partition(i + 1);
                    let non_conducting = left.out || right.in_a;
                    // Only meaningful across/inside participating sections;
                    // outside all sections both derivations agree on "don't
                    // care" — our section rule reports non-conducting there.
                    if left.index() != 0 || right.index() != 0 {
                        prop_assert_eq!(!sel[i as usize], non_conducting,
                            "transistor {}", i);
                    }
                }
            }
        }
    }
}
