//! # pim-arch
//!
//! The micro-operation model for partition-enabled digital memristive
//! processing-in-memory (PIM), as proposed by *PyPIM: Integrating Digital
//! Processing-in-Memory from Microarchitectural Design to Python Tensors*
//! (MICRO 2024).
//!
//! This crate is the shared vocabulary of the whole stack. It defines:
//!
//! * [`PimConfig`] — the geometry and timing of a PIM memory (crossbar count,
//!   rows, partitions, registers, clock), including the paper's Table III
//!   configuration ([`PimConfig::paper`]).
//! * [`RangeMask`] — the `{start, start+step, …, stop}` range pattern used by
//!   crossbar-mask and row-mask operations (§III-B).
//! * [`MicroOp`] — the five micro-operation types broadcast to all crossbars:
//!   mask, read/write, horizontal logic, vertical logic, and move (§III,
//!   Figure 5).
//! * [`HLogic`] — horizontal stateful-logic operations with the *half-gates*
//!   partition encoding (§III-D), including Table I per-partition opcodes and
//!   expansion into individual gate instances for validation.
//! * [`encode`] — the concrete 64-bit wire format (Figure 5) with lossless
//!   round-tripping.
//! * [`htree`] — hierarchical H-tree addressing for distributed inter-crossbar
//!   moves (§III-F).
//!
//! # Example
//!
//! ```
//! use pim_arch::{GateKind, HLogic, ColAddr, PimConfig, encode};
//!
//! let cfg = PimConfig::small();
//! // A partition-parallel NOR: one gate inside every partition
//! // (inputs at offsets 0 and 1, output at offset 2).
//! let op = HLogic::parallel(GateKind::Nor, 0, 1, 2, &cfg)?;
//! assert_eq!(op.gate_count(), cfg.partitions as u64);
//!
//! // Round-trip through the 64-bit wire format.
//! let word = encode::encode(&pim_arch::MicroOp::LogicH(op.clone()));
//! assert_eq!(encode::decode(word)?, pim_arch::MicroOp::LogicH(op));
//! # Ok::<(), pim_arch::ArchError>(())
//! ```

mod backend;
mod config;
mod error;
mod hlogic;
mod mask;
mod microop;

pub mod encode;
pub mod htree;

pub use backend::Backend;
pub use config::PimConfig;
pub use error::ArchError;
pub use hlogic::{ColAddr, GateInstance, GateKind, HLogic, PartitionOpcode};
pub use mask::RangeMask;
pub use microop::{MicroOp, MoveOp, VGate};

/// Identifier of a crossbar array (a *warp* in ISA terms).
pub type XbId = u32;
/// Identifier of a wordline/row within a crossbar (a *thread* in ISA terms).
pub type RowId = u32;
/// Intra-partition column offset — equivalently, a register index (§IV).
pub type RegId = u8;
/// Partition index within a crossbar row (0..N).
pub type PartId = u8;

/// Number of bits in an architectural word (`N` in the paper, Table III).
///
/// The word size equals the partition count in the evaluated configuration;
/// the condensed simulator row format ([`pim-sim`]) relies on this being 32.
///
/// [`pim-sim`]: https://docs.rs/pim-sim
pub const WORD_BITS: usize = 32;
