use crate::{ArchError, WORD_BITS};
use serde::{Deserialize, Serialize};

/// Geometry and timing parameters of a digital memristive PIM memory.
///
/// The evaluated configuration of the paper (Table III) is an 8 GB memory of
/// 64k crossbars, each `1024 × 1024` memristors with `N = 32` partitions and
/// a 300 MHz logic clock. All libraries in this workspace are parameterized
/// over this structure, so tests and benchmarks can run on smaller
/// geometries; latency in *cycles* is geometry-independent, only the
/// parallelism term of the throughput equation (Eq. 1) changes.
///
/// # Example
///
/// ```
/// use pim_arch::PimConfig;
///
/// let cfg = PimConfig::paper();
/// assert_eq!(cfg.crossbars, 65_536);
/// assert_eq!(cfg.row_bits(), 1024);
/// assert_eq!(cfg.capacity_bytes(), 8 << 30); // 8 GB
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PimConfig {
    /// Number of crossbar arrays in the memory (warps, §IV).
    pub crossbars: usize,
    /// Rows per crossbar (`h`; threads per warp).
    pub rows: usize,
    /// Partitions per row (`N`). Must currently equal [`WORD_BITS`].
    pub partitions: usize,
    /// Columns per partition (`w / N`), which is also the number of word
    /// registers per thread because of the strided data format (§III-C).
    pub regs: usize,
    /// How many of [`regs`](Self::regs) are exposed through the ISA; the
    /// remainder are reserved as host-driver scratch space for compiling
    /// arithmetic routines.
    pub user_regs: usize,
    /// PIM logic clock frequency in Hz (Table III: 300 MHz).
    pub clock_hz: f64,
}

impl PimConfig {
    /// The evaluation configuration from Table III of the paper: 64k
    /// crossbars of `1024 × 1024` with 32 partitions at 300 MHz (8 GB).
    ///
    /// This geometry is used for *throughput math*; simulating all 64k
    /// crossbars bit-accurately is possible but slow, so tests use
    /// [`PimConfig::small`] and scale analytically.
    pub fn paper() -> Self {
        PimConfig {
            crossbars: 65_536,
            rows: 1024,
            partitions: WORD_BITS,
            regs: 32,
            user_regs: 16,
            clock_hz: 300e6,
        }
    }

    /// A small geometry suitable for unit tests: 16 crossbars of `64 × 1024`
    /// bits (64 rows, 32 registers), 32 partitions.
    pub fn small() -> Self {
        PimConfig {
            crossbars: 16,
            rows: 64,
            partitions: WORD_BITS,
            regs: 32,
            user_regs: 16,
            clock_hz: 300e6,
        }
    }

    /// A medium geometry for integration tests and quick benchmarks:
    /// 64 crossbars × 256 rows (16k threads).
    pub fn medium() -> Self {
        PimConfig {
            crossbars: 64,
            rows: 256,
            partitions: WORD_BITS,
            regs: 32,
            user_regs: 16,
            clock_hz: 300e6,
        }
    }

    /// Returns a copy with a different number of crossbars.
    pub fn with_crossbars(mut self, crossbars: usize) -> Self {
        self.crossbars = crossbars;
        self
    }

    /// Returns a copy with a different row count per crossbar.
    pub fn with_rows(mut self, rows: usize) -> Self {
        self.rows = rows;
        self
    }

    /// Returns a copy with a different number of ISA-visible registers.
    pub fn with_user_regs(mut self, user_regs: usize) -> Self {
        self.user_regs = user_regs;
        self
    }

    /// Validates the configuration envelope supported by this workspace.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidConfig`] if any dimension is zero, the
    /// partition count differs from [`WORD_BITS`], the register space cannot
    /// hold the ISA registers, or a dimension exceeds the wire-format field
    /// widths of [`crate::encode`].
    pub fn validate(&self) -> Result<(), ArchError> {
        let fail = |reason: String| Err(ArchError::InvalidConfig { reason });
        if self.crossbars == 0 || self.rows == 0 || self.regs == 0 {
            return fail("crossbars, rows, and regs must all be nonzero".into());
        }
        if self.partitions != WORD_BITS {
            return fail(format!(
                "this implementation requires partitions == word size == {WORD_BITS} \
                 (got {})",
                self.partitions
            ));
        }
        if self.user_regs == 0 || self.user_regs > self.regs {
            return fail(format!(
                "user_regs ({}) must be in 1..={} (total registers)",
                self.user_regs, self.regs
            ));
        }
        if self.regs > 32 {
            return fail(format!(
                "regs ({}) exceeds the 5-bit index field of the wire format",
                self.regs
            ));
        }
        if self.rows > 1 << 16 {
            return fail(format!(
                "rows ({}) exceeds the 16-bit row field of the wire format",
                self.rows
            ));
        }
        if self.crossbars > 1 << 20 {
            return fail(format!(
                "crossbars ({}) exceeds the 20-bit crossbar field of the wire format",
                self.crossbars
            ));
        }
        if !(self.clock_hz.is_finite() && self.clock_hz > 0.0) {
            return fail(format!(
                "clock_hz ({}) must be a positive, finite frequency",
                self.clock_hz
            ));
        }
        Ok(())
    }

    /// Width of a crossbar row in bits (`w = N × regs`).
    pub fn row_bits(&self) -> usize {
        self.partitions * self.regs
    }

    /// Total number of threads (rows across all crossbars) — the
    /// `Parallelism[ops]` term of the paper's throughput equation (Eq. 1).
    pub fn total_threads(&self) -> u64 {
        self.crossbars as u64 * self.rows as u64
    }

    /// Total memory capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.total_threads() * self.row_bits() as u64 / 8
    }

    /// Number of scratch registers available to the host driver
    /// (`regs - user_regs`).
    pub fn scratch_regs(&self) -> usize {
        self.regs - self.user_regs
    }

    /// Throughput in operations per second for an operation that takes
    /// `cycles` PIM cycles with every thread active — the paper's Eq. (1):
    /// `Throughput = Parallelism / Latency × Frequency`.
    ///
    /// Returns `f64::INFINITY` for `cycles == 0` inputs only if there are
    /// threads; a zero-cycle operation never occurs in practice.
    pub fn throughput_ops_per_sec(&self, cycles: u64) -> f64 {
        self.total_threads() as f64 / cycles as f64 * self.clock_hz
    }
}

impl Default for PimConfig {
    /// Defaults to the paper's Table III configuration.
    fn default() -> Self {
        PimConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_matches_table3() {
        // Table III: 8GB memory, 1024x1024 crossbars, 32 partitions,
        // word size 32, 300 MHz, 64k crossbars.
        let cfg = PimConfig::paper();
        cfg.validate().unwrap();
        assert_eq!(cfg.capacity_bytes(), 8 * (1 << 30));
        assert_eq!(cfg.row_bits(), 1024);
        assert_eq!(cfg.rows, 1024);
        assert_eq!(cfg.partitions, 32);
        assert_eq!(cfg.clock_hz, 300e6);
        // 64M rows of parallelism, as quoted under Eq. (1).
        assert_eq!(cfg.total_threads(), 64 * 1024 * 1024);
    }

    #[test]
    fn small_and_medium_validate() {
        PimConfig::small().validate().unwrap();
        PimConfig::medium().validate().unwrap();
    }

    #[test]
    fn rejects_zero_dimensions() {
        assert!(PimConfig::small().with_crossbars(0).validate().is_err());
        assert!(PimConfig::small().with_rows(0).validate().is_err());
    }

    #[test]
    fn rejects_bad_partitions() {
        let mut cfg = PimConfig::small();
        cfg.partitions = 16;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rejects_bad_user_regs() {
        assert!(PimConfig::small().with_user_regs(0).validate().is_err());
        assert!(PimConfig::small().with_user_regs(33).validate().is_err());
    }

    #[test]
    fn rejects_oversized_geometry() {
        let mut cfg = PimConfig::small();
        cfg.rows = (1 << 16) + 1;
        assert!(cfg.validate().is_err());
        let mut cfg = PimConfig::small();
        cfg.crossbars = (1 << 20) + 1;
        assert!(cfg.validate().is_err());
        let mut cfg = PimConfig::small();
        cfg.regs = 64;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rejects_bad_clock() {
        let mut cfg = PimConfig::small();
        cfg.clock_hz = 0.0;
        assert!(cfg.validate().is_err());
        cfg.clock_hz = f64::NAN;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn throughput_equation_matches_paper_example() {
        // Eq. (1): 64M rows at 300 MHz; a 1-cycle op would sustain
        // 64M * 300e6 ops/s.
        let cfg = PimConfig::paper();
        let t = cfg.throughput_ops_per_sec(1);
        assert_eq!(t, 64.0 * 1024.0 * 1024.0 * 300e6);
        // 289-cycle 32-bit addition (9N+1): ~6.97e13 ops/s.
        let t_add = cfg.throughput_ops_per_sec(289);
        assert!((t_add - t / 289.0).abs() < 1e3);
    }

    #[test]
    fn builder_style_modifiers() {
        let cfg = PimConfig::small()
            .with_crossbars(4)
            .with_rows(16)
            .with_user_regs(8);
        assert_eq!(cfg.crossbars, 4);
        assert_eq!(cfg.rows, 16);
        assert_eq!(cfg.user_regs, 8);
        assert_eq!(cfg.scratch_regs(), 24);
    }

    #[test]
    fn clone_and_eq() {
        let cfg = PimConfig::medium();
        assert_eq!(cfg.clone(), cfg);
        assert_ne!(PimConfig::small(), PimConfig::paper());
    }
}
