use std::fmt;

/// Errors raised while constructing or validating micro-operations.
///
/// Every constructor in this crate validates its arguments (ranges in bounds,
/// partition sections disjoint, step sizes dividing spans, …) and reports
/// violations through this type rather than panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ArchError {
    /// A range mask was malformed (zero step, reversed bounds, or a step that
    /// does not divide `stop - start`).
    InvalidRange {
        /// Human-readable reason.
        reason: String,
    },
    /// A configuration parameter was out of the supported envelope.
    InvalidConfig {
        /// Human-readable reason.
        reason: String,
    },
    /// A column/partition/row address exceeded the configured geometry.
    AddressOutOfBounds {
        /// What kind of address was out of bounds (e.g. `"partition"`).
        what: &'static str,
        /// The offending value.
        value: u64,
        /// Exclusive upper bound that was violated.
        bound: u64,
    },
    /// A horizontal logic operation violated the restricted partition model
    /// of §III-D3 (e.g. overlapping concurrent sections, or a periodicity
    /// step that does not divide the span).
    InvalidPartitionPattern {
        /// Human-readable reason.
        reason: String,
    },
    /// An inter-crossbar move violated the H-tree communication pattern of
    /// §III-F (non-power-of-4 step, overlapping source/destination sets, or
    /// destinations outside the memory).
    InvalidMove {
        /// Human-readable reason.
        reason: String,
    },
    /// A 64-bit word could not be decoded into a micro-operation.
    DecodeError {
        /// The unrecognized opcode field.
        opcode: u8,
    },
    /// The micro-operation protocol was violated at execution time — e.g. a
    /// read whose masks select more than one row, or (in strict simulation
    /// mode) a stateful-logic output cell that was not initialized to 1.
    Protocol {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for ArchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchError::InvalidRange { reason } => write!(f, "invalid range mask: {reason}"),
            ArchError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            ArchError::AddressOutOfBounds { what, value, bound } => {
                write!(
                    f,
                    "{what} address {value} out of bounds (must be < {bound})"
                )
            }
            ArchError::InvalidPartitionPattern { reason } => {
                write!(f, "invalid partition pattern: {reason}")
            }
            ArchError::InvalidMove { reason } => write!(f, "invalid move operation: {reason}"),
            ArchError::DecodeError { opcode } => {
                write!(f, "cannot decode micro-operation with opcode {opcode}")
            }
            ArchError::Protocol { reason } => write!(f, "protocol violation: {reason}"),
        }
    }
}

impl std::error::Error for ArchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            ArchError::InvalidRange {
                reason: "zero step".into(),
            },
            ArchError::InvalidConfig {
                reason: "no rows".into(),
            },
            ArchError::AddressOutOfBounds {
                what: "partition",
                value: 40,
                bound: 32,
            },
            ArchError::InvalidPartitionPattern {
                reason: "sections overlap".into(),
            },
            ArchError::InvalidMove {
                reason: "step not a power of 4".into(),
            },
            ArchError::DecodeError { opcode: 15 },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ArchError>();
    }
}
