use crate::{ArchError, HLogic, PimConfig, RangeMask, RegId, RowId};
use serde::{Deserialize, Serialize};

/// Gate set supported in the vertical (transposed) direction (§III-E).
///
/// Vertical stateful logic applies the gate voltages on wordlines instead of
/// bitlines, transferring data between rows of the same crossbar. Because
/// `N`-bit numbers are stored across `N` horizontal cells, arithmetic is not
/// possible in this direction, so only `{INIT0, INIT1, NOT}` are supported.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VGate {
    /// Constant 0 (no input row).
    Init0,
    /// Constant 1 (no input row).
    Init1,
    /// One-input vertical NOT from the input row to the output row.
    Not,
}

impl VGate {
    /// Encoding used in the 2-bit gate-type field of the wire format.
    pub fn code(self) -> u8 {
        match self {
            VGate::Init0 => 0,
            VGate::Init1 => 1,
            VGate::Not => 2,
        }
    }

    /// Decodes a 2-bit vertical gate-type field; `None` for code 3.
    pub fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            0 => VGate::Init0,
            1 => VGate::Init1,
            2 => VGate::Not,
            _ => return None,
        })
    }
}

/// A distributed inter-crossbar move over the H-tree (§III-F).
///
/// The crossbars selected by the current crossbar mask are the *sources*;
/// each source `XB` transfers the `N`-bit word at `(row_src, index_src)` to
/// `(row_dst, index_dst)` of crossbar `XB + dist`. The crossbar mask step
/// must be a power of 4 so that the pairs map onto disjoint H-tree groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MoveOp {
    /// Signed crossbar distance between each source and its destination.
    /// (The wire format stores the non-negative destination start, as in
    /// §III-F footnote 2; this in-memory form keeps the signed distance for
    /// convenience.)
    pub dist: i32,
    /// Source row within every source crossbar.
    pub row_src: RowId,
    /// Destination row within every destination crossbar.
    pub row_dst: RowId,
    /// Intra-partition index (register) read from the source row.
    pub index_src: RegId,
    /// Intra-partition index (register) written in the destination row.
    pub index_dst: RegId,
}

/// A 64-bit micro-operation broadcast from the host driver to all crossbars
/// (§III, Figure 5).
///
/// These are the *only* interface between the host driver and the memory
/// (or its simulator): mask operations select active crossbars/rows,
/// read/write operations access words in the strided format, logic
/// operations perform stateful logic, and move operations perform
/// distributed inter-crossbar transfers.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MicroOp {
    /// Set the per-crossbar activation bits from a range pattern.
    XbMask(RangeMask),
    /// Set the row mask (stored as start/stop/step in every crossbar).
    RowMask(RangeMask),
    /// Write the `N`-bit `value` at intra-row strided index `index` of every
    /// masked row of every masked crossbar.
    Write {
        /// Intra-partition (register) index.
        index: RegId,
        /// Word value to write.
        value: u32,
    },
    /// Read the `N`-bit word at strided index `index`; the preceding masks
    /// must select a single row of a single crossbar.
    Read {
        /// Intra-partition (register) index.
        index: RegId,
    },
    /// Horizontal stateful-logic operation with half-gate partition
    /// encoding.
    LogicH(HLogic),
    /// Vertical (transposed) stateful-logic operation between two rows,
    /// applied at the columns whose intra-partition index equals `index`.
    LogicV {
        /// Vertical gate type.
        gate: VGate,
        /// Input row (ignored for `Init*`).
        row_in: RowId,
        /// Output row.
        row_out: RowId,
        /// Intra-partition (register) index selecting the column group.
        index: RegId,
    },
    /// Distributed inter-crossbar move.
    Move(MoveOp),
}

impl MicroOp {
    /// Validates the operation's addresses against a configuration.
    ///
    /// Mask/logic/move pattern rules are enforced by their constructors;
    /// this re-checks bounds so that a simulator can cheaply reject
    /// operations built for a different geometry.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError`] describing the violated bound.
    pub fn validate(&self, cfg: &PimConfig) -> Result<(), ArchError> {
        let check_reg = |index: RegId| -> Result<(), ArchError> {
            if (index as usize) < cfg.regs {
                Ok(())
            } else {
                Err(ArchError::AddressOutOfBounds {
                    what: "intra-partition offset",
                    value: index as u64,
                    bound: cfg.regs as u64,
                })
            }
        };
        let check_row = |row: RowId| -> Result<(), ArchError> {
            if (row as usize) < cfg.rows {
                Ok(())
            } else {
                Err(ArchError::AddressOutOfBounds {
                    what: "row",
                    value: row as u64,
                    bound: cfg.rows as u64,
                })
            }
        };
        match self {
            MicroOp::XbMask(m) => m.check_bound("crossbar", cfg.crossbars as u64),
            MicroOp::RowMask(m) => m.check_bound("row", cfg.rows as u64),
            MicroOp::Write { index, .. } | MicroOp::Read { index } => check_reg(*index),
            MicroOp::LogicH(op) => op.validate(cfg),
            MicroOp::LogicV {
                row_in,
                row_out,
                index,
                ..
            } => {
                check_row(*row_in)?;
                check_row(*row_out)?;
                check_reg(*index)
            }
            MicroOp::Move(mv) => {
                check_row(mv.row_src)?;
                check_row(mv.row_dst)?;
                check_reg(mv.index_src)?;
                check_reg(mv.index_dst)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ColAddr, GateKind};

    #[test]
    fn validate_bounds() {
        let cfg = PimConfig::small(); // 16 crossbars, 64 rows, 32 regs
        assert!(MicroOp::Write {
            index: 31,
            value: 0
        }
        .validate(&cfg)
        .is_ok());
        assert!(MicroOp::Write {
            index: 32,
            value: 0
        }
        .validate(&cfg)
        .is_err());
        assert!(MicroOp::Read { index: 31 }.validate(&cfg).is_ok());
        assert!(MicroOp::XbMask(RangeMask::single(15))
            .validate(&cfg)
            .is_ok());
        assert!(MicroOp::XbMask(RangeMask::single(16))
            .validate(&cfg)
            .is_err());
        assert!(MicroOp::RowMask(RangeMask::single(63))
            .validate(&cfg)
            .is_ok());
        assert!(MicroOp::RowMask(RangeMask::single(64))
            .validate(&cfg)
            .is_err());
        assert!(MicroOp::LogicV {
            gate: VGate::Not,
            row_in: 0,
            row_out: 63,
            index: 0
        }
        .validate(&cfg)
        .is_ok());
        assert!(MicroOp::LogicV {
            gate: VGate::Not,
            row_in: 64,
            row_out: 0,
            index: 0
        }
        .validate(&cfg)
        .is_err());
        let mv = MoveOp {
            dist: 4,
            row_src: 0,
            row_dst: 63,
            index_src: 0,
            index_dst: 31,
        };
        assert!(MicroOp::Move(mv).validate(&cfg).is_ok());
        let mv_bad = MoveOp {
            dist: 4,
            row_src: 0,
            row_dst: 64,
            index_src: 0,
            index_dst: 0,
        };
        assert!(MicroOp::Move(mv_bad).validate(&cfg).is_err());
    }

    #[test]
    fn logic_h_validation_is_rechecked() {
        let cfg = PimConfig::small();
        let op = HLogic::serial(
            GateKind::Not,
            ColAddr::new(0, 0),
            ColAddr::new(0, 0),
            ColAddr::new(0, 1),
            &cfg,
        )
        .unwrap();
        assert!(MicroOp::LogicH(op).validate(&cfg).is_ok());
    }
}
