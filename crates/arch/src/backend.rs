use crate::{ArchError, MicroOp, PimConfig};

/// The execution side of the micro-operation interface — implemented by the
/// physical chip, by the bit-accurate simulator ([`pim-sim`]), and by the
/// driver-benchmark sink that reroutes operations to a memory buffer
/// (Artifact Appendix E of the paper).
///
/// The host driver interacts with the memory *only* through this trait,
/// which is what lets the simulator act as a drop-in replacement for a
/// digital PIM chip (§VI).
///
/// [`pim-sim`]: https://docs.rs/pim-sim
pub trait Backend {
    /// The geometry this backend was built for.
    fn config(&self) -> &PimConfig;

    /// Executes one micro-operation, returning the `N`-bit response for
    /// [`MicroOp::Read`] and `None` for every other type.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError`] when the operation is invalid for the
    /// configured geometry or violates the execution protocol.
    fn execute(&mut self, op: &MicroOp) -> Result<Option<u32>, ArchError>;

    /// Executes a batch of non-read micro-operations. Backends may override
    /// this to parallelize; the default loops over [`execute`](Self::execute).
    ///
    /// The read check runs as a single pre-scan over the batch, so the
    /// execution loop itself is branch-free on the operation type and the
    /// protocol violation is detected before any operation runs (nothing
    /// executes from a read-carrying batch).
    ///
    /// # Errors
    ///
    /// Returns an error on the first failing operation, or
    /// [`ArchError::Protocol`] if the batch contains a read (reads return
    /// data and must go through `execute`).
    fn execute_batch(&mut self, ops: &[MicroOp]) -> Result<(), ArchError> {
        if ops.iter().any(|op| matches!(op, MicroOp::Read { .. })) {
            return Err(ArchError::Protocol {
                reason: "read operations cannot be batched".into(),
            });
        }
        for op in ops {
            self.execute(op)?;
        }
        Ok(())
    }

    /// Consumes a stream of pre-encoded 64-bit operation words — the form a
    /// production host driver DMAs to the on-chip controller. The default
    /// decodes and executes each word; buffer-style backends override this
    /// with a plain copy, which is what the driver-throughput benchmark
    /// measures.
    ///
    /// # Errors
    ///
    /// Returns decode or execution errors.
    fn stream(&mut self, words: &[u64]) -> Result<(), ArchError> {
        for &w in words {
            self.execute(&crate::encode::decode(w)?)?;
        }
        Ok(())
    }
}

impl<B: Backend + ?Sized> Backend for &mut B {
    fn config(&self) -> &PimConfig {
        (**self).config()
    }

    fn execute(&mut self, op: &MicroOp) -> Result<Option<u32>, ArchError> {
        (**self).execute(op)
    }

    fn execute_batch(&mut self, ops: &[MicroOp]) -> Result<(), ArchError> {
        (**self).execute_batch(ops)
    }

    fn stream(&mut self, words: &[u64]) -> Result<(), ArchError> {
        (**self).stream(words)
    }
}
