use crate::ArchError;
use serde::{Deserialize, Serialize};

/// The flexible range-based activation pattern used by crossbar-mask and
/// row-mask operations (§III-B).
///
/// A mask selects the set `{start, start + step, start + 2·step, …, stop}`,
/// where `step` must divide `stop - start`. This is the pattern the paper
/// identified as sufficient for previous algorithmic PIM works while needing
/// only a small representation (three fields of the 64-bit operation).
///
/// # Example
///
/// ```
/// use pim_arch::RangeMask;
///
/// // All even rows of a 1024-row crossbar — the mask behind `x[::2]`.
/// let m = RangeMask::new(0, 1022, 2)?;
/// assert_eq!(m.len(), 512);
/// assert!(m.contains(8));
/// assert!(!m.contains(9));
/// # Ok::<(), pim_arch::ArchError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RangeMask {
    start: u32,
    stop: u32,
    step: u32,
}

impl RangeMask {
    /// Creates a mask selecting `{start, start+step, …, stop}` (inclusive).
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidRange`] if `step == 0`, `stop < start`,
    /// or `step` does not divide `stop - start`.
    pub fn new(start: u32, stop: u32, step: u32) -> Result<Self, ArchError> {
        if step == 0 {
            return Err(ArchError::InvalidRange {
                reason: "step must be nonzero".into(),
            });
        }
        if stop < start {
            return Err(ArchError::InvalidRange {
                reason: format!("stop ({stop}) must be >= start ({start})"),
            });
        }
        if !(stop - start).is_multiple_of(step) {
            return Err(ArchError::InvalidRange {
                reason: format!("step ({step}) must divide stop - start ({})", stop - start),
            });
        }
        Ok(RangeMask { start, stop, step })
    }

    /// Mask selecting a single element.
    pub fn single(index: u32) -> Self {
        RangeMask {
            start: index,
            stop: index,
            step: 1,
        }
    }

    /// Mask selecting the dense range `start..stop` (exclusive stop, step 1).
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidRange`] if the range is empty.
    pub fn dense(start: u32, stop_exclusive: u32) -> Result<Self, ArchError> {
        if stop_exclusive <= start {
            return Err(ArchError::InvalidRange {
                reason: format!("dense range {start}..{stop_exclusive} is empty"),
            });
        }
        RangeMask::new(start, stop_exclusive - 1, 1)
    }

    /// Mask selecting `count` elements starting at `start` with stride
    /// `step`: `{start, start+step, …, start+(count-1)·step}`.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidRange`] if `count == 0` or `step == 0`.
    pub fn strided(start: u32, count: u32, step: u32) -> Result<Self, ArchError> {
        if count == 0 {
            return Err(ArchError::InvalidRange {
                reason: "count must be nonzero".into(),
            });
        }
        if step == 0 {
            return Err(ArchError::InvalidRange {
                reason: "step must be nonzero".into(),
            });
        }
        RangeMask::new(start, start + (count - 1) * step, step)
    }

    /// First selected index.
    pub fn start(&self) -> u32 {
        self.start
    }

    /// Last selected index (inclusive).
    pub fn stop(&self) -> u32 {
        self.stop
    }

    /// Stride between selected indices.
    pub fn step(&self) -> u32 {
        self.step
    }

    /// Number of selected indices.
    pub fn len(&self) -> usize {
        ((self.stop - self.start) / self.step) as usize + 1
    }

    /// `true` when the mask selects exactly one index.
    pub fn is_single(&self) -> bool {
        self.start == self.stop
    }

    /// `true` when the mask selects a contiguous run of indices (step 1).
    ///
    /// Dense masks are the common case on hot paths (whole-memory and
    /// whole-tensor operations), and consumers exploit them: the simulator
    /// applies horizontal gates to contiguous word slices instead of
    /// iterating rows.
    pub fn is_dense(&self) -> bool {
        self.step == 1
    }

    /// The selected indices as a contiguous `usize` range when the mask is
    /// dense (step 1); `None` otherwise.
    pub fn as_dense_range(&self) -> Option<std::ops::Range<usize>> {
        (self.step == 1).then(|| self.start as usize..self.stop as usize + 1)
    }

    /// Always `false`: a valid mask selects at least one index. Provided for
    /// API completeness alongside [`len`](Self::len).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether `index` is selected by this mask.
    pub fn contains(&self, index: u32) -> bool {
        index >= self.start && index <= self.stop && (index - self.start).is_multiple_of(self.step)
    }

    /// Iterates over the selected indices in ascending order.
    pub fn iter(&self) -> Iter {
        Iter {
            next: Some(self.start),
            stop: self.stop,
            step: self.step,
        }
    }

    /// Checks that every selected index is below `bound`.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::AddressOutOfBounds`] naming `what` if
    /// `stop >= bound`.
    pub fn check_bound(&self, what: &'static str, bound: u64) -> Result<(), ArchError> {
        if (self.stop as u64) < bound {
            Ok(())
        } else {
            Err(ArchError::AddressOutOfBounds {
                what,
                value: self.stop as u64,
                bound,
            })
        }
    }
}

/// Iterator over the indices selected by a [`RangeMask`].
#[derive(Debug, Clone)]
pub struct Iter {
    next: Option<u32>,
    stop: u32,
    step: u32,
}

impl Iterator for Iter {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        let cur = self.next?;
        self.next = cur.checked_add(self.step).filter(|&n| n <= self.stop);
        Some(cur)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = match self.next {
            Some(next) => ((self.stop - next) / self.step) as usize + 1,
            None => 0,
        };
        (n, Some(n))
    }
}

impl ExactSizeIterator for Iter {}

impl IntoIterator for &RangeMask {
    type Item = u32;
    type IntoIter = Iter;

    fn into_iter(self) -> Iter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_range() {
        let m = RangeMask::new(4, 16, 4).unwrap();
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![4, 8, 12, 16]);
        assert_eq!(m.len(), 4);
        assert!(!m.is_single());
        assert!(!m.is_empty());
    }

    #[test]
    fn single_element() {
        let m = RangeMask::single(7);
        assert_eq!(m.len(), 1);
        assert!(m.is_single());
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![7]);
        assert!(m.contains(7));
        assert!(!m.contains(8));
    }

    #[test]
    fn dense_range() {
        let m = RangeMask::dense(0, 5).unwrap();
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
        assert!(RangeMask::dense(3, 3).is_err());
        assert!(RangeMask::dense(4, 3).is_err());
    }

    #[test]
    fn strided_range() {
        let m = RangeMask::strided(1, 4, 2).unwrap();
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![1, 3, 5, 7]);
        assert!(RangeMask::strided(0, 0, 1).is_err());
        assert!(RangeMask::strided(0, 3, 0).is_err());
    }

    #[test]
    fn dense_accessors() {
        let d = RangeMask::dense(3, 9).unwrap();
        assert!(d.is_dense());
        assert_eq!(d.as_dense_range(), Some(3..9));
        let s = RangeMask::new(0, 8, 2).unwrap();
        assert!(!s.is_dense());
        assert_eq!(s.as_dense_range(), None);
        let single = RangeMask::single(7);
        assert!(single.is_dense());
        assert_eq!(single.as_dense_range(), Some(7..8));
    }

    #[test]
    fn rejects_malformed() {
        assert!(RangeMask::new(0, 10, 0).is_err());
        assert!(RangeMask::new(10, 0, 1).is_err());
        assert!(RangeMask::new(0, 10, 3).is_err()); // 3 does not divide 10
    }

    #[test]
    fn contains_respects_step() {
        let m = RangeMask::new(2, 14, 3).unwrap();
        for i in 0..20 {
            assert_eq!(m.contains(i), [2, 5, 8, 11, 14].contains(&i), "index {i}");
        }
    }

    #[test]
    fn bound_check() {
        let m = RangeMask::new(0, 62, 2).unwrap();
        m.check_bound("row", 63).unwrap();
        m.check_bound("row", 64).unwrap();
        let err = m.check_bound("row", 62).unwrap_err();
        assert!(matches!(
            err,
            ArchError::AddressOutOfBounds { what: "row", .. }
        ));
    }

    #[test]
    fn iterator_does_not_overflow_at_u32_max() {
        let m = RangeMask::new(u32::MAX - 2, u32::MAX, 2).unwrap();
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![u32::MAX - 2, u32::MAX]);
    }

    proptest! {
        #[test]
        fn len_matches_iter_count(start in 0u32..1000, n in 1u32..100, step in 1u32..50) {
            let m = RangeMask::strided(start, n, step).unwrap();
            prop_assert_eq!(m.len(), m.iter().count());
            prop_assert_eq!(m.len(), n as usize);
            prop_assert_eq!(m.iter().size_hint().0, n as usize);
        }

        #[test]
        fn iter_elements_all_contained(start in 0u32..1000, n in 1u32..100, step in 1u32..50) {
            let m = RangeMask::strided(start, n, step).unwrap();
            for i in m.iter() {
                prop_assert!(m.contains(i));
            }
        }

        #[test]
        fn contains_implies_in_iter(start in 0u32..100, n in 1u32..40, step in 1u32..10, probe in 0u32..1200) {
            let m = RangeMask::strided(start, n, step).unwrap();
            let in_iter = m.iter().any(|i| i == probe);
            prop_assert_eq!(m.contains(probe), in_iter);
        }
    }
}
