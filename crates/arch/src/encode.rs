//! The concrete 64-bit wire format for micro-operations (Figure 5).
//!
//! The host driver transmits 64-bit operations to the on-chip controller,
//! which only buffers and broadcasts them (§III). The layout implemented
//! here follows the field budget derived in §III-D3: a horizontal logic
//! operation needs `2 + 3·log2(w) + 2·log2(N) = 42` bits for the evaluated
//! `w = 1024`, `N = 32` geometry — a 1.31× increase over a crossbar without
//! partitions — leaving 19 unused bits next to the 4-bit type field (the
//! full budget is 64 − 4 − 42 = 18 payload bits plus 1 spare in our packing,
//! matching the paper's "sufficient unused bits for larger memories").
//!
//! Layout (`[hi:lo]` bit ranges of the `u64`):
//!
//! | Type (`[63:60]`) | Fields |
//! |---|---|
//! | `0` XbMask / `1` RowMask | `start[19:0]`, `stop[39:20]`, `step[59:40]` |
//! | `2` Write | `value[31:0]`, `index[39:32]` |
//! | `3` Read | `index[39:32]` |
//! | `4` LogicH | `colA[9:0]`, `colB[19:10]`, `colOut[29:20]`, `pEnd[34:30]`, `pStep[39:35]`, `gate[59:58]` |
//! | `5` LogicV | `rowIn[15:0]`, `rowOut[31:16]`, `index[39:32]`, `gate[59:58]` |
//! | `6` Move | `distBiased[19:0]`, `rowSrc[29:20]`... see [`encode`] |
//!
//! Column fields pack `partition ‖ intra-partition offset` with the offset
//! in the low [`COL_OFFSET_BITS`] bits. Round-tripping is lossless for every
//! valid micro-operation (property-tested below).

use crate::{
    ArchError, ColAddr, GateKind, HLogic, MicroOp, MoveOp, PartId, RangeMask, RegId, VGate,
};

/// Bits used for the intra-partition offset inside a 10-bit column field
/// (`log2(w/N)` for the evaluated geometry).
pub const COL_OFFSET_BITS: u32 = 5;
/// Bias added to the signed move distance so it is stored non-negatively,
/// mirroring the paper's `XB_dest = XB_start + XB_dist >= 0` convention.
pub const MOVE_DIST_BIAS: i64 = 1 << 19;

const TYPE_SHIFT: u32 = 60;
const T_XB_MASK: u64 = 0;
const T_ROW_MASK: u64 = 1;
const T_WRITE: u64 = 2;
const T_READ: u64 = 3;
const T_LOGIC_H: u64 = 4;
const T_LOGIC_V: u64 = 5;
const T_MOVE: u64 = 6;

fn pack_col(c: ColAddr) -> u64 {
    ((c.part as u64) << COL_OFFSET_BITS) | c.offset as u64
}

fn unpack_col(v: u64) -> ColAddr {
    ColAddr::new(
        (v >> COL_OFFSET_BITS) as PartId,
        (v & ((1 << COL_OFFSET_BITS) - 1)) as RegId,
    )
}

fn pack_mask(m: &RangeMask) -> u64 {
    debug_assert!(m.start() < (1 << 20) && m.stop() < (1 << 20) && m.step() < (1 << 20));
    (m.start() as u64) | ((m.stop() as u64) << 20) | ((m.step() as u64) << 40)
}

fn unpack_mask(word: u64) -> Result<RangeMask, ArchError> {
    let start = (word & 0xF_FFFF) as u32;
    let stop = ((word >> 20) & 0xF_FFFF) as u32;
    let step = ((word >> 40) & 0xF_FFFF) as u32;
    RangeMask::new(start, stop, step)
}

/// Encodes a micro-operation into its 64-bit wire representation.
///
/// # Panics
///
/// Panics (debug assertions) if a field exceeds its width; operations built
/// through the validated constructors of this crate always fit.
pub fn encode(op: &MicroOp) -> u64 {
    match op {
        MicroOp::XbMask(m) => (T_XB_MASK << TYPE_SHIFT) | pack_mask(m),
        MicroOp::RowMask(m) => (T_ROW_MASK << TYPE_SHIFT) | pack_mask(m),
        MicroOp::Write { index, value } => {
            (T_WRITE << TYPE_SHIFT) | (*value as u64) | ((*index as u64) << 32)
        }
        MicroOp::Read { index } => (T_READ << TYPE_SHIFT) | ((*index as u64) << 32),
        MicroOp::LogicH(l) => {
            (T_LOGIC_H << TYPE_SHIFT)
                | pack_col(l.in_a)
                | (pack_col(l.in_b) << 10)
                | (pack_col(l.out) << 20)
                | ((l.p_end as u64) << 30)
                | ((l.p_step as u64) << 35)
                | ((l.gate.code() as u64) << 58)
        }
        MicroOp::LogicV {
            gate,
            row_in,
            row_out,
            index,
        } => {
            debug_assert!(*row_in < (1 << 16) && *row_out < (1 << 16));
            (T_LOGIC_V << TYPE_SHIFT)
                | (*row_in as u64)
                | ((*row_out as u64) << 16)
                | ((*index as u64) << 32)
                | ((gate.code() as u64) << 58)
        }
        MicroOp::Move(mv) => {
            let biased = mv.dist as i64 + MOVE_DIST_BIAS;
            debug_assert!((0..(1 << 20)).contains(&biased));
            debug_assert!(mv.row_src < (1 << 10) && mv.row_dst < (1 << 10));
            (T_MOVE << TYPE_SHIFT)
                | (biased as u64)
                | ((mv.row_src as u64) << 20)
                | ((mv.row_dst as u64) << 30)
                | ((mv.index_src as u64) << 40)
                | ((mv.index_dst as u64) << 45)
        }
    }
}

/// Decodes a 64-bit word back into a micro-operation.
///
/// # Errors
///
/// Returns [`ArchError::DecodeError`] for an unknown type field and
/// [`ArchError::InvalidRange`] for a malformed embedded range mask. Note
/// that geometric validity (partition patterns, bounds) is *not* checked
/// here; pass the result through [`MicroOp::validate`].
pub fn decode(word: u64) -> Result<MicroOp, ArchError> {
    let ty = word >> TYPE_SHIFT;
    Ok(match ty {
        T_XB_MASK => MicroOp::XbMask(unpack_mask(word)?),
        T_ROW_MASK => MicroOp::RowMask(unpack_mask(word)?),
        T_WRITE => MicroOp::Write {
            value: (word & 0xFFFF_FFFF) as u32,
            index: ((word >> 32) & 0xFF) as RegId,
        },
        T_READ => MicroOp::Read {
            index: ((word >> 32) & 0xFF) as RegId,
        },
        T_LOGIC_H => {
            let gate = GateKind::from_code(((word >> 58) & 0b11) as u8)
                .expect("2-bit gate code is always valid");
            MicroOp::LogicH(HLogic {
                gate,
                in_a: unpack_col(word & 0x3FF),
                in_b: unpack_col((word >> 10) & 0x3FF),
                out: unpack_col((word >> 20) & 0x3FF),
                p_end: ((word >> 30) & 0x1F) as PartId,
                p_step: ((word >> 35) & 0x1F) as u8,
            })
        }
        T_LOGIC_V => {
            let gate = VGate::from_code(((word >> 58) & 0b11) as u8)
                .ok_or(ArchError::DecodeError { opcode: 0b11 })?;
            MicroOp::LogicV {
                gate,
                row_in: (word & 0xFFFF) as u32,
                row_out: ((word >> 16) & 0xFFFF) as u32,
                index: ((word >> 32) & 0xFF) as RegId,
            }
        }
        T_MOVE => MicroOp::Move(MoveOp {
            dist: ((word & 0xF_FFFF) as i64 - MOVE_DIST_BIAS) as i32,
            row_src: ((word >> 20) & 0x3FF) as u32,
            row_dst: ((word >> 30) & 0x3FF) as u32,
            index_src: ((word >> 40) & 0x1F) as RegId,
            index_dst: ((word >> 45) & 0x1F) as RegId,
        }),
        other => {
            return Err(ArchError::DecodeError {
                opcode: other as u8,
            })
        }
    })
}

/// Number of payload bits used by the horizontal-logic encoding — the
/// paper's §III-D3 budget. Exposed for the Table I / §III-D3 regression
/// test and the `table1_encoding` bench.
pub fn hlogic_payload_bits(w: usize, n: usize) -> u32 {
    let log2 = |x: usize| usize::BITS - 1 - x.leading_zeros();
    2 + 3 * log2(w) + 2 * log2(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PimConfig;
    use proptest::prelude::*;

    #[test]
    fn paper_bit_budget() {
        // §III-D3: 2 + 3·log(w) + 2·log(N) = 42 bits for w=1024, N=32,
        // a 1.31x increase over the 32-bit non-partition format.
        assert_eq!(hlogic_payload_bits(1024, 32), 42);
        let no_partitions = 2 + 3 * 10;
        assert!((42.0 / no_partitions as f64 - 1.31).abs() < 0.005);
    }

    #[test]
    fn roundtrip_examples() {
        let cfg = PimConfig::small();
        let ops = vec![
            MicroOp::XbMask(RangeMask::new(0, 12, 4).unwrap()),
            MicroOp::RowMask(RangeMask::new(1, 63, 2).unwrap()),
            MicroOp::Write {
                index: 7,
                value: 0xDEAD_BEEF,
            },
            MicroOp::Read { index: 31 },
            MicroOp::LogicH(HLogic::parallel(GateKind::Nor, 0, 1, 2, &cfg).unwrap()),
            MicroOp::LogicV {
                gate: VGate::Not,
                row_in: 3,
                row_out: 60,
                index: 5,
            },
            MicroOp::Move(MoveOp {
                dist: -12,
                row_src: 1,
                row_dst: 2,
                index_src: 3,
                index_dst: 4,
            }),
        ];
        for op in ops {
            let word = encode(&op);
            assert_eq!(decode(word).unwrap(), op, "round-trip failed for {op:?}");
        }
    }

    #[test]
    fn decode_rejects_unknown_type() {
        assert!(matches!(
            decode(0xF << 60),
            Err(ArchError::DecodeError { .. })
        ));
        assert!(matches!(
            decode(7 << 60),
            Err(ArchError::DecodeError { .. })
        ));
    }

    #[test]
    fn decode_rejects_bad_vgate() {
        // Type 5 with gate code 3 (invalid for the vertical gate set).
        let word = (5u64 << 60) | (3u64 << 58);
        assert!(decode(word).is_err());
    }

    #[test]
    fn decode_rejects_zero_step_mask() {
        // Type 0 with step 0.
        let word = 0u64;
        assert!(decode(word).is_err());
    }

    proptest! {
        #[test]
        fn roundtrip_masks(start in 0u32..1 << 19, n in 1u32..64, step in 1u32..16) {
            let m = RangeMask::strided(start, n, step).unwrap();
            prop_assume!(m.stop() < 1 << 20);
            for op in [MicroOp::XbMask(m), MicroOp::RowMask(m)] {
                prop_assert_eq!(decode(encode(&op)).unwrap(), op);
            }
        }

        #[test]
        fn roundtrip_write_read(index in 0u8..32, value in any::<u32>()) {
            let w = MicroOp::Write { index, value };
            prop_assert_eq!(decode(encode(&w)).unwrap(), w);
            let r = MicroOp::Read { index };
            prop_assert_eq!(decode(encode(&r)).unwrap(), r);
        }

        #[test]
        fn roundtrip_logic_h(
            pa in 0u8..8, pb in 0u8..8, pout in 0u8..8,
            off_a in 0u8..32, off_b in 0u8..32, off_out in 0u8..32,
            step in 1u8..16, reps in 0u8..4, code in 0u8..4,
        ) {
            let gate = GateKind::from_code(code).unwrap();
            let p_end = pout as u32 + reps as u32 * step as u32;
            prop_assume!(p_end < 32);
            // Raw struct round-trip; validity against a config is separate.
            let op = MicroOp::LogicH(HLogic {
                gate,
                in_a: ColAddr::new(pa, off_a),
                in_b: ColAddr::new(pa.max(pb), off_b),
                out: ColAddr::new(pout, off_out),
                p_end: p_end as u8,
                p_step: step,
            });
            prop_assert_eq!(decode(encode(&op)).unwrap(), op);
        }

        #[test]
        fn roundtrip_logic_v(row_in in 0u32..1024, row_out in 0u32..1024, index in 0u8..32, code in 0u8..3) {
            let op = MicroOp::LogicV {
                gate: VGate::from_code(code).unwrap(),
                row_in, row_out, index,
            };
            prop_assert_eq!(decode(encode(&op)).unwrap(), op);
        }

        #[test]
        fn roundtrip_move(
            dist in -65536i32..65536, row_src in 0u32..1024, row_dst in 0u32..1024,
            index_src in 0u8..32, index_dst in 0u8..32,
        ) {
            let op = MicroOp::Move(MoveOp { dist, row_src, row_dst, index_src, index_dst });
            prop_assert_eq!(decode(encode(&op)).unwrap(), op);
        }

        /// Unified round-trip over *arbitrary* micro-operations: every
        /// variant the wire format can carry decodes back to exactly the
        /// operation that was encoded.
        #[test]
        fn roundtrip_any_microop(
            kind in 0u8..7,
            a in 0u32..1 << 16, b in 1u32..256, c in 1u32..64,
            d in any::<u32>(), e in 0u8..32, f in 0u8..32,
            g in 0u8..8, h in 1u8..16, i in 0u8..4,
        ) {
            let mask = RangeMask::strided(a & 0x3FFF, b.min(64), c).unwrap();
            prop_assume!(mask.stop() < 1 << 20);
            let op = match kind {
                0 => MicroOp::XbMask(mask),
                1 => MicroOp::RowMask(mask),
                2 => MicroOp::Write { index: e, value: d },
                3 => MicroOp::Read { index: e },
                4 => {
                    let p_end = g as u32 + (i as u32) * h as u32;
                    prop_assume!(p_end < 32);
                    MicroOp::LogicH(HLogic {
                        gate: GateKind::from_code(i).unwrap(),
                        in_a: ColAddr::new(g, e),
                        in_b: ColAddr::new(g, f),
                        out: ColAddr::new(p_end as u8, f),
                        p_end: p_end as u8,
                        p_step: h,
                    })
                }
                5 => MicroOp::LogicV {
                    gate: VGate::from_code(i.min(2)).unwrap(),
                    row_in: a & 0xFFFF,
                    row_out: (a ^ d) & 0xFFFF,
                    index: e,
                },
                _ => MicroOp::Move(MoveOp {
                    dist: (d as i32 % (1 << 18)) | 1,
                    row_src: a & 0x3FF,
                    row_dst: (a ^ d) & 0x3FF,
                    index_src: e,
                    index_dst: f,
                }),
            };
            let word = encode(&op);
            prop_assert_eq!(decode(word).unwrap(), op);
        }
    }
}
