use crate::builder::Routine;
use crate::{routines, DriverError, ParallelismMode};
use pim_arch::{PimConfig, RegId};
use pim_isa::{DType, RegOp};
use std::collections::HashMap;
use std::sync::Arc;

/// Identity of a compiled R-type routine: everything the micro-operation
/// sequence depends on. Thread ranges are *not* part of the key — routines
/// are mask-independent and replay under any crossbar/row masks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RoutineKey {
    /// Operation.
    pub op: RegOp,
    /// Element datatype.
    pub dtype: DType,
    /// Destination register.
    pub dst: RegId,
    /// Source registers (unused slots zeroed).
    pub srcs: [RegId; 3],
    /// Parallelism mode the routine was compiled for.
    pub mode: ParallelismMode,
}

/// Cache of compiled routines.
///
/// This is the reason the *software* host driver is not a bottleneck
/// (§V-B, Figure 13): after the first use of an `(op, dtype, registers)`
/// combination, "translation" of a macro-instruction is an iteration over a
/// precompiled `Arc<Routine>` — no gate-level compilation on the hot path.
#[derive(Debug, Default)]
pub struct RoutineCache {
    map: HashMap<RoutineKey, Arc<Routine>>,
    hits: u64,
    misses: u64,
}

impl RoutineCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        RoutineCache::default()
    }

    /// Returns the routine for `key`, compiling it on first use.
    ///
    /// # Errors
    ///
    /// Propagates compilation errors (unsupported op, scratch exhaustion).
    pub fn get_or_compile(
        &mut self,
        cfg: &PimConfig,
        key: RoutineKey,
    ) -> Result<Arc<Routine>, DriverError> {
        if let Some(r) = self.map.get(&key) {
            self.hits += 1;
            return Ok(Arc::clone(r));
        }
        self.misses += 1;
        let arity = key.op.arity();
        let routine = routines::compile_rtype(
            cfg,
            key.mode,
            key.op,
            key.dtype,
            key.dst,
            &key.srcs[..arity],
        )?;
        let arc = Arc::new(routine);
        self.map.insert(key, Arc::clone(&arc));
        Ok(arc)
    }

    /// Number of cached routines.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(dst: RegId) -> RoutineKey {
        RoutineKey {
            op: RegOp::Add,
            dtype: DType::Int32,
            dst,
            srcs: [0, 1, 0],
            mode: ParallelismMode::BitSerial,
        }
    }

    #[test]
    fn caches_by_key() {
        let cfg = PimConfig::small();
        let mut cache = RoutineCache::new();
        let a = cache.get_or_compile(&cfg, key(2)).unwrap();
        let b = cache.get_or_compile(&cfg, key(2)).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(cache.len(), 1);
        let c = cache.get_or_compile(&cfg, key(3)).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.len(), 2);
        assert!(!cache.is_empty());
    }
}
