use crate::builder::Routine;
use crate::{routines, DriverError, ParallelismMode};
use parking_lot::RwLock;
use pim_arch::{PimConfig, RegId};
use pim_isa::{DType, RegOp};
use std::collections::HashMap;
use std::sync::Arc;

/// Identity of a compiled R-type routine: everything the micro-operation
/// sequence depends on. Thread ranges are *not* part of the key — routines
/// are mask-independent and replay under any crossbar/row masks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RoutineKey {
    /// Operation.
    pub op: RegOp,
    /// Element datatype.
    pub dtype: DType,
    /// Destination register.
    pub dst: RegId,
    /// Source registers (unused slots zeroed).
    pub srcs: [RegId; 3],
    /// Parallelism mode the routine was compiled for.
    pub mode: ParallelismMode,
}

/// Cache of compiled routines.
///
/// This is the reason the *software* host driver is not a bottleneck
/// (§V-B, Figure 13): after the first use of an `(op, dtype, registers)`
/// combination, "translation" of a macro-instruction is an iteration over a
/// precompiled `Arc<Routine>` — no gate-level compilation on the hot path.
///
/// The compiled-routine map lives behind an `Arc<RwLock<…>>`, so a cache
/// can be [`share`d](RoutineCache::share) between many drivers: the
/// cluster hands every shard driver a handle onto one map, and a routine
/// compiles **once per cluster** instead of once per shard. Hit/miss
/// counters stay per handle, so per-shard telemetry survives sharing. The
/// steady-state cost of sharing is one uncontended read-lock acquisition
/// per macro-instruction.
#[derive(Debug, Default)]
pub struct RoutineCache {
    map: Arc<RwLock<HashMap<RoutineKey, Arc<Routine>>>>,
    hits: u64,
    misses: u64,
}

impl RoutineCache {
    /// Creates an empty cache with its own routine map.
    pub fn new() -> Self {
        RoutineCache::default()
    }

    /// A new handle onto the same routine map, with fresh hit/miss
    /// counters. Compilations through any handle are visible to all.
    pub fn share(&self) -> Self {
        RoutineCache {
            map: Arc::clone(&self.map),
            hits: 0,
            misses: 0,
        }
    }

    /// Returns the routine for `key`, compiling it on first use.
    ///
    /// Compilation happens under the write lock, so concurrent sharers of
    /// one map compile a given key exactly once — every other caller
    /// blocks briefly, then takes the hit path.
    ///
    /// # Errors
    ///
    /// Propagates compilation errors (unsupported op, scratch exhaustion).
    pub fn get_or_compile(
        &mut self,
        cfg: &PimConfig,
        key: RoutineKey,
    ) -> Result<Arc<Routine>, DriverError> {
        if let Some(r) = self.map.read().get(&key) {
            self.hits += 1;
            return Ok(Arc::clone(r));
        }
        let mut map = self.map.write();
        // Double-check: another sharer may have compiled it while this
        // thread waited for the write lock.
        if let Some(r) = map.get(&key) {
            self.hits += 1;
            return Ok(Arc::clone(r));
        }
        self.misses += 1;
        let arity = key.op.arity();
        let routine = routines::compile_rtype(
            cfg,
            key.mode,
            key.op,
            key.dtype,
            key.dst,
            &key.srcs[..arity],
        )?;
        let arc = Arc::new(routine);
        map.insert(key, Arc::clone(&arc));
        Ok(arc)
    }

    /// Number of cached routines (across all sharers of the map).
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }

    /// `(hits, misses)` counters of *this handle*.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Zeroes this handle's hit/miss counters (the compiled-routine map is
    /// untouched — only the telemetry resets, so a measurement region can
    /// start from a clean slate without recompiling anything).
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(dst: RegId) -> RoutineKey {
        RoutineKey {
            op: RegOp::Add,
            dtype: DType::Int32,
            dst,
            srcs: [0, 1, 0],
            mode: ParallelismMode::BitSerial,
        }
    }

    #[test]
    fn caches_by_key() {
        let cfg = PimConfig::small();
        let mut cache = RoutineCache::new();
        let a = cache.get_or_compile(&cfg, key(2)).unwrap();
        let b = cache.get_or_compile(&cfg, key(2)).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(cache.len(), 1);
        let c = cache.get_or_compile(&cfg, key(3)).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.len(), 2);
        assert!(!cache.is_empty());
    }

    #[test]
    fn shared_handles_compile_once() {
        let cfg = PimConfig::small();
        let mut first = RoutineCache::new();
        let mut second = first.share();
        let a = first.get_or_compile(&cfg, key(2)).unwrap();
        let b = second.get_or_compile(&cfg, key(2)).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "one compilation serves both handles");
        // Telemetry is per handle: the first missed, the second hit.
        assert_eq!(first.stats(), (0, 1));
        assert_eq!(second.stats(), (1, 0));
        assert_eq!(first.len(), 1);
        assert_eq!(second.len(), 1);
    }

    #[test]
    fn concurrent_sharers_miss_exactly_once_per_key() {
        let cfg = PimConfig::small();
        let root = RoutineCache::new();
        let handles: Vec<RoutineCache> = (0..8).map(|_| root.share()).collect();
        let stats: Vec<(u64, u64)> = std::thread::scope(|scope| {
            handles
                .into_iter()
                .map(|mut h| {
                    let cfg = cfg.clone();
                    scope.spawn(move || {
                        h.get_or_compile(&cfg, key(2)).unwrap();
                        h.stats()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|t| t.join().unwrap())
                .collect()
        });
        let misses: u64 = stats.iter().map(|&(_, m)| m).sum();
        let hits: u64 = stats.iter().map(|&(h, _)| h).sum();
        assert_eq!(misses, 1, "exactly one sharer compiles: {stats:?}");
        assert_eq!(hits, 7);
    }
}
