use pim_arch::ArchError;
use std::fmt;

/// Errors raised by the host driver while compiling or executing
/// macro-instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DriverError {
    /// An error bubbled up from the micro-operation layer (validation or
    /// backend execution).
    Arch(ArchError),
    /// A routine needed more scratch cells than the driver-reserved
    /// registers provide; raise `PimConfig::regs - PimConfig::user_regs`.
    ScratchExhausted {
        /// Scratch cells available in the configuration.
        available: usize,
    },
    /// The requested operation/datatype combination is not supported
    /// (Table II).
    Unsupported {
        /// Human-readable description of the unsupported request.
        what: String,
    },
}

impl fmt::Display for DriverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DriverError::Arch(e) => write!(f, "{e}"),
            DriverError::ScratchExhausted { available } => write!(
                f,
                "routine exhausted the {available} driver scratch cells; reduce user_regs \
                 to reserve more scratch space"
            ),
            DriverError::Unsupported { what } => write!(f, "unsupported operation: {what}"),
        }
    }
}

impl std::error::Error for DriverError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DriverError::Arch(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ArchError> for DriverError {
    fn from(e: ArchError) -> Self {
        DriverError::Arch(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = DriverError::from(ArchError::DecodeError { opcode: 9 });
        assert!(!e.to_string().is_empty());
        assert!(std::error::Error::source(&e).is_some());
        let e = DriverError::ScratchExhausted { available: 512 };
        assert!(e.to_string().contains("512"));
        assert!(std::error::Error::source(&e).is_none());
    }
}
