//! Theoretical PIM latency baselines — the "Theoretical PIM" series of
//! Figure 13.
//!
//! The theoretical latency of a routine is its pure-logic cycle count: the
//! number of `NOT`/`NOR` micro-operations on the emission path, excluding
//! the `INIT` overhead the stateful-logic discipline requires (AritPIM-style
//! lower bounds count gate cycles the same way). The paper's "PyPIM is on
//! average 5% away from theoretical PIM" is exactly the measured overhead
//! fraction.
//!
//! Closed forms for the classic routines are also provided and regression-
//! tested against the compiled gate counts.

use crate::builder::RoutineStats;
use crate::{routines, DriverError, ParallelismMode};
use pim_arch::PimConfig;
use pim_isa::{DType, RegOp};

/// Bit-serial ripple-carry addition: the `9N` NOR gates quoted in §II-B.
pub fn ripple_add_gates(n: u64) -> u64 {
    9 * n
}

/// Bit-serial subtraction: ripple addition plus one complement per bit.
pub fn ripple_sub_gates(n: u64) -> u64 {
    10 * n
}

/// Compiles the routine for `(op, dtype)` and returns its cost statistics —
/// `logic_cycles` is the theoretical latency, `total_cycles()` the measured
/// one.
///
/// # Errors
///
/// Propagates compilation errors.
pub fn rtype_stats(
    cfg: &PimConfig,
    mode: ParallelismMode,
    op: RegOp,
    dtype: DType,
) -> Result<RoutineStats, DriverError> {
    let srcs: [u8; 3] = [0, 1, 2];
    let routine = routines::compile_rtype(cfg, mode, op, dtype, 3, &srcs[..op.arity()])?;
    Ok(routine.stats)
}

/// Theoretical latency in PIM cycles of one R-type operation.
///
/// # Errors
///
/// Propagates compilation errors.
pub fn rtype_cycles(
    cfg: &PimConfig,
    mode: ParallelismMode,
    op: RegOp,
    dtype: DType,
) -> Result<u64, DriverError> {
    Ok(rtype_stats(cfg, mode, op, dtype)?.logic_cycles)
}

/// Theoretical throughput (elements/s) of one R-type operation at full
/// parallelism — Eq. (1) with the theoretical latency.
///
/// # Errors
///
/// Propagates compilation errors.
pub fn rtype_throughput(
    cfg: &PimConfig,
    mode: ParallelismMode,
    op: RegOp,
    dtype: DType,
) -> Result<f64, DriverError> {
    Ok(cfg.throughput_ops_per_sec(rtype_cycles(cfg, mode, op, dtype)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_add_matches_9n() {
        let cfg = PimConfig::small();
        let stats =
            rtype_stats(&cfg, ParallelismMode::BitSerial, RegOp::Add, DType::Int32).unwrap();
        assert_eq!(stats.logic_cycles, ripple_add_gates(32));
        // Measured within ~6% of theoretical (the §VI-B claim's origin).
        assert!(
            stats.overhead_fraction() < 0.06,
            "overhead {}",
            stats.overhead_fraction()
        );
    }

    #[test]
    fn serial_sub_matches_10n() {
        let cfg = PimConfig::small();
        let stats =
            rtype_stats(&cfg, ParallelismMode::BitSerial, RegOp::Sub, DType::Int32).unwrap();
        assert_eq!(stats.logic_cycles, ripple_sub_gates(32));
    }

    #[test]
    fn parallel_add_beats_serial() {
        let cfg = PimConfig::small();
        let serial =
            rtype_cycles(&cfg, ParallelismMode::BitSerial, RegOp::Add, DType::Int32).unwrap();
        let parallel =
            rtype_cycles(&cfg, ParallelismMode::BitParallel, RegOp::Add, DType::Int32).unwrap();
        assert!(
            parallel * 2 <= serial,
            "partition-parallel add ({parallel}) should be at least 2x faster than serial \
             ({serial})"
        );
    }

    #[test]
    fn relative_costs_are_sane() {
        let cfg = PimConfig::small();
        let m = ParallelismMode::BitSerial;
        let add = rtype_cycles(&cfg, m, RegOp::Add, DType::Int32).unwrap();
        let mul = rtype_cycles(&cfg, m, RegOp::Mul, DType::Int32).unwrap();
        let div = rtype_cycles(&cfg, m, RegOp::Div, DType::Int32).unwrap();
        let xor = rtype_cycles(&cfg, m, RegOp::Xor, DType::Int32).unwrap();
        assert!(xor < add && add < mul && mul < div);
        let fadd = rtype_cycles(&cfg, m, RegOp::Add, DType::Float32).unwrap();
        let fmul = rtype_cycles(&cfg, m, RegOp::Mul, DType::Float32).unwrap();
        assert!(
            fadd < fmul,
            "fadd {fadd} should be cheaper than fmul {fmul}"
        );
    }

    #[test]
    fn throughput_uses_eq1() {
        let cfg = PimConfig::paper();
        let t =
            rtype_throughput(&cfg, ParallelismMode::BitSerial, RegOp::Add, DType::Int32).unwrap();
        let cycles =
            rtype_cycles(&cfg, ParallelismMode::BitSerial, RegOp::Add, DType::Int32).unwrap();
        let manual = cfg.total_threads() as f64 / cycles as f64 * cfg.clock_hz;
        assert!((t - manual).abs() < 1.0);
        // Paper scale: int add around 7e13 ops/s on the Table III geometry.
        assert!(t > 1e13 && t < 1e15, "throughput {t:.3e}");
    }
}
