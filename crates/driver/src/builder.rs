use crate::DriverError;
use pim_arch::{ColAddr, GateKind, HLogic, MicroOp, PimConfig, RegId, WORD_BITS};

/// An ordered collection of cell addresses representing a multi-bit value,
/// least-significant bit first.
pub type Bits = Vec<ColAddr>;

/// Cost statistics of a compiled routine.
///
/// `logic_cycles` counts `NOT`/`NOR` micro-operations — the pure gate work
/// that defines the *theoretical PIM* latency of the routine (AritPIM-style
/// lower bound). `overhead_cycles` counts initialization micro-operations
/// required by the stateful-logic discipline. The paper's "distance from
/// theoretical PIM" (§VI-B) is the overhead fraction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoutineStats {
    /// `NOT`/`NOR` gate micro-operations (one PIM cycle each).
    pub logic_cycles: u64,
    /// `INIT0`/`INIT1` micro-operations (one PIM cycle each).
    pub overhead_cycles: u64,
    /// Peak number of simultaneously live scratch cells.
    pub scratch_high_water: usize,
}

impl RoutineStats {
    /// Total PIM cycles of the routine body (`logic + overhead`).
    pub fn total_cycles(&self) -> u64 {
        self.logic_cycles + self.overhead_cycles
    }

    /// Fraction of cycles spent on initialization overhead.
    pub fn overhead_fraction(&self) -> f64 {
        self.overhead_cycles as f64 / self.total_cycles() as f64
    }
}

/// In-flight full-adder state between
/// [`CircuitBuilder::full_adder_prep`] and
/// [`CircuitBuilder::full_adder_finish`].
#[derive(Debug)]
pub struct PendingAdder {
    t1: ColAddr,
    t2: ColAddr,
    t3: ColAddr,
    t4: ColAddr,
    t5: ColAddr,
    t6: ColAddr,
    t7: ColAddr,
}

/// A compiled micro-operation sequence for one macro-instruction, ready to
/// be replayed under any crossbar/row mask.
#[derive(Debug, Clone)]
pub struct Routine {
    /// The micro-operations, in order.
    pub ops: Vec<MicroOp>,
    /// Cost statistics.
    pub stats: RoutineStats,
}

impl Routine {
    /// Encodes the whole routine into its 64-bit wire words — the form a
    /// production driver streams to the on-chip controller, and what the
    /// host-driver throughput benchmark measures the streaming rate of.
    pub fn encode_ops(&self) -> Vec<u64> {
        self.ops.iter().map(pim_arch::encode::encode).collect()
    }
}

const ALL: u32 = u32::MAX;

/// Compiles gate-level circuits into micro-operation sequences under the
/// stateful-logic discipline.
///
/// The builder manages the driver-reserved scratch registers
/// (`user_regs..regs` intra-row offsets): [`alloc`](Self::alloc) hands out
/// cells guaranteed to hold logical 1 (ready to be a `NOT`/`NOR` output),
/// batching initializations into whole-register partition-parallel `INIT1`
/// micro-operations wherever possible. Serial gate emitters compose the
/// derived gate library (`or`, `and`, `xor`, `mux`, full adders) from the
/// native `NOT`/`NOR` set, while the `par_*` family emits partition-parallel
/// operations on whole registers (one micro-op for up to 32 gates).
///
/// Theoretical-vs-measured accounting is kept per [`RoutineStats`].
#[derive(Debug)]
pub struct CircuitBuilder<'c> {
    cfg: &'c PimConfig,
    ops: Vec<MicroOp>,
    stats: RoutineStats,
    /// Per scratch register (offset `user_regs + i`): bit set = cell free.
    free: Vec<u32>,
    /// Bit set = free cell known to hold logical 1.
    clean: Vec<u32>,
    /// Bit set = cell has been written since allocation (so freeing it
    /// leaves it dirty).
    written: Vec<u32>,
    /// Whole-register reservations made by [`alloc_reg`](Self::alloc_reg).
    reserved: Vec<bool>,
    in_use: usize,
    const0: Option<ColAddr>,
    const1: Option<ColAddr>,
}

impl<'c> CircuitBuilder<'c> {
    /// Creates a builder for `cfg` with all scratch cells free and dirty
    /// (their contents from previous routines are unknown).
    pub fn new(cfg: &'c PimConfig) -> Self {
        let n = cfg.scratch_regs();
        CircuitBuilder {
            cfg,
            ops: Vec::new(),
            stats: RoutineStats::default(),
            free: vec![ALL; n],
            clean: vec![0; n],
            written: vec![0; n],
            reserved: vec![false; n],
            in_use: 0,
            const0: None,
            const1: None,
        }
    }

    /// The configuration this builder compiles for.
    pub fn config(&self) -> &PimConfig {
        self.cfg
    }

    /// Consumes the builder, producing the compiled routine.
    pub fn finish(self) -> Routine {
        Routine {
            ops: self.ops,
            stats: self.stats,
        }
    }

    /// Number of scratch cells currently live.
    pub fn live_cells(&self) -> usize {
        self.in_use
    }

    // ----- scratch management -------------------------------------------

    fn scratch_index(&self, c: ColAddr) -> Option<usize> {
        let off = c.offset as usize;
        (off >= self.cfg.user_regs && off < self.cfg.regs).then(|| off - self.cfg.user_regs)
    }

    fn scratch_offset(&self, index: usize) -> RegId {
        (self.cfg.user_regs + index) as RegId
    }

    fn take(&mut self, index: usize, part: u32) -> ColAddr {
        self.free[index] &= !(1 << part);
        self.clean[index] &= !(1 << part);
        self.written[index] &= !(1 << part);
        self.in_use += 1;
        self.stats.scratch_high_water = self.stats.scratch_high_water.max(self.in_use);
        ColAddr::new(part as u8, self.scratch_offset(index))
    }

    /// Allocates one scratch cell guaranteed to hold logical 1 — ready to
    /// serve as a stateful-gate output (or as a constant-1 input).
    ///
    /// Initializations are batched: the builder prefers cells that are
    /// already clean, bulk-initializes fully-free registers with a single
    /// partition-parallel `INIT1`, and only falls back to per-cell `INIT1`
    /// under fragmentation.
    ///
    /// # Errors
    ///
    /// Returns [`DriverError::ScratchExhausted`] when every scratch cell is
    /// live.
    pub fn alloc(&mut self) -> Result<ColAddr, DriverError> {
        // 1. A clean free cell (prefer low registers so long-lived values
        //    cluster there and high registers recycle wholesale).
        for i in 0..self.free.len() {
            let avail = self.free[i] & self.clean[i];
            if avail != 0 && !self.reserved[i] {
                return Ok(self.take(i, avail.trailing_zeros()));
            }
        }
        // 2. Sweep: bulk-initialize every fully-free dirty register.
        let mut swept = false;
        for i in 0..self.free.len() {
            if self.free[i] == ALL && self.clean[i] != ALL && !self.reserved[i] {
                let reg = self.scratch_offset(i);
                self.emit_init_reg(reg, true);
                self.clean[i] = ALL;
                swept = true;
            }
        }
        if swept {
            return self.alloc();
        }
        // 3. Re-initialize the dirtiest register's free cells wholesale:
        //    each contiguous run of dirty free cells becomes one strided
        //    INIT1 micro-operation (init gates occupy one partition each,
        //    so any contiguous partition range is a valid pattern).
        let best = (0..self.free.len())
            .filter(|&i| !self.reserved[i])
            .max_by_key(|&i| (self.free[i] & !self.clean[i]).count_ones());
        if let Some(i) = best {
            let dirty = self.free[i] & !self.clean[i];
            if dirty != 0 {
                let reg = self.scratch_offset(i);
                let mut mask = dirty;
                while mask != 0 {
                    let start = mask.trailing_zeros();
                    let run = (mask >> start).trailing_ones();
                    let cell = ColAddr::new(start as u8, reg);
                    let op = HLogic::strided(
                        GateKind::Init1,
                        cell,
                        cell,
                        cell,
                        (start + run - 1) as u8,
                        1,
                        self.cfg,
                    )
                    .expect("contiguous init range is valid");
                    self.ops.push(MicroOp::LogicH(op));
                    self.stats.overhead_cycles += 1;
                    mask &= !((((1u64 << run) - 1) as u32) << start);
                }
                self.clean[i] |= dirty;
                return Ok(self.take(i, dirty.trailing_zeros()));
            }
        }
        Err(DriverError::ScratchExhausted {
            available: self.cfg.scratch_regs() * WORD_BITS,
        })
    }

    /// Releases a scratch cell. Cells that were never written since
    /// allocation are returned as clean (still logical 1).
    ///
    /// # Panics
    ///
    /// Panics if `c` is not a live scratch cell (double free or foreign
    /// address) — these are driver bugs, not runtime conditions.
    pub fn release(&mut self, c: ColAddr) {
        let i = self
            .scratch_index(c)
            .expect("release of a non-scratch cell");
        let bit = 1u32 << c.part;
        assert_eq!(self.free[i] & bit, 0, "double free of scratch cell {c:?}");
        assert!(
            !self.reserved[i],
            "release of a cell inside a reserved register"
        );
        self.free[i] |= bit;
        if self.written[i] & bit == 0 {
            self.clean[i] |= bit;
        }
        self.in_use -= 1;
    }

    /// Releases several scratch cells.
    pub fn release_all<I: IntoIterator<Item = ColAddr>>(&mut self, cells: I) {
        for c in cells {
            self.release(c);
        }
    }

    /// Reserves a whole scratch register for partition-parallel use
    /// (contents unspecified; initialize with [`init_reg`](Self::init_reg)).
    ///
    /// # Errors
    ///
    /// Returns [`DriverError::ScratchExhausted`] when no register is fully
    /// free.
    pub fn alloc_reg(&mut self) -> Result<RegId, DriverError> {
        // Prefer dirty registers, keeping clean ones for cell allocation.
        let candidate = (0..self.free.len())
            .filter(|&i| self.free[i] == ALL && !self.reserved[i])
            .max_by_key(|&i| (self.clean[i] != ALL) as u8);
        match candidate {
            Some(i) => {
                self.reserved[i] = true;
                self.free[i] = 0;
                self.clean[i] = 0;
                self.written[i] = ALL;
                self.in_use += WORD_BITS;
                self.stats.scratch_high_water = self.stats.scratch_high_water.max(self.in_use);
                Ok(self.scratch_offset(i))
            }
            None => Err(DriverError::ScratchExhausted {
                available: self.cfg.scratch_regs() * WORD_BITS,
            }),
        }
    }

    /// Releases a register reserved by [`alloc_reg`](Self::alloc_reg).
    ///
    /// # Panics
    ///
    /// Panics if `reg` is not a reserved scratch register.
    pub fn release_reg(&mut self, reg: RegId) {
        let i = (reg as usize)
            .checked_sub(self.cfg.user_regs)
            .filter(|&i| i < self.reserved.len())
            .expect("release of a non-scratch register");
        assert!(
            self.reserved[i],
            "release of a register that was not reserved"
        );
        self.reserved[i] = false;
        self.free[i] = ALL;
        self.clean[i] = 0;
        self.in_use -= WORD_BITS;
    }

    /// A shared constant-0 cell (created on first use; never write to it).
    ///
    /// # Errors
    ///
    /// Propagates scratch exhaustion.
    pub fn zero(&mut self) -> Result<ColAddr, DriverError> {
        if let Some(c) = self.const0 {
            return Ok(c);
        }
        let c = self.alloc()?;
        self.emit_init_cell(c, false);
        self.mark_written(c);
        self.const0 = Some(c);
        Ok(c)
    }

    /// A shared constant-1 cell (created on first use; never write to it).
    ///
    /// # Errors
    ///
    /// Propagates scratch exhaustion.
    pub fn one(&mut self) -> Result<ColAddr, DriverError> {
        if let Some(c) = self.const1 {
            return Ok(c);
        }
        let c = self.alloc()?;
        self.const1 = Some(c);
        Ok(c)
    }

    // ----- raw emission ---------------------------------------------------

    fn mark_written(&mut self, c: ColAddr) {
        if let Some(i) = self.scratch_index(c) {
            self.written[i] |= 1 << c.part;
        }
    }

    fn emit_init_cell(&mut self, c: ColAddr, v: bool) {
        let gate = if v { GateKind::Init1 } else { GateKind::Init0 };
        let op = HLogic::serial(gate, c, c, c, self.cfg).expect("validated cell address");
        self.ops.push(MicroOp::LogicH(op));
        self.stats.overhead_cycles += 1;
    }

    fn emit_init_reg(&mut self, reg: RegId, v: bool) {
        let op = HLogic::init_reg(v, reg, self.cfg).expect("validated register");
        self.ops.push(MicroOp::LogicH(op));
        self.stats.overhead_cycles += 1;
    }

    /// Initializes a single cell (overhead cycle). The cell may be a user
    /// register cell; scratch bookkeeping is updated when applicable.
    pub fn init_cell(&mut self, c: ColAddr, v: bool) {
        self.emit_init_cell(c, v);
        self.mark_written(c);
    }

    /// Initializes a whole register with one partition-parallel `INIT`
    /// micro-operation (overhead cycle).
    pub fn init_reg(&mut self, reg: RegId, v: bool) {
        self.emit_init_reg(reg, v);
    }

    /// Emits a serial `NOR` gate into `out`, which must already hold 1.
    ///
    /// # Panics
    ///
    /// Panics if the gate is electrically invalid (an input coincides with
    /// the output) — a driver bug.
    pub fn nor_into(&mut self, a: ColAddr, b: ColAddr, out: ColAddr) {
        let (a, b) = if a.part <= b.part { (a, b) } else { (b, a) };
        let op = HLogic::serial(GateKind::Nor, a, b, out, self.cfg)
            .expect("electrically valid NOR gate");
        self.ops.push(MicroOp::LogicH(op));
        self.stats.logic_cycles += 1;
        self.mark_written(out);
    }

    /// Emits a serial `NOT` gate into `out`, which must already hold 1.
    ///
    /// # Panics
    ///
    /// Panics if `a == out` (driver bug).
    pub fn not_into(&mut self, a: ColAddr, out: ColAddr) {
        let op = HLogic::serial(GateKind::Not, a, a, out, self.cfg)
            .expect("electrically valid NOT gate");
        self.ops.push(MicroOp::LogicH(op));
        self.stats.logic_cycles += 1;
        self.mark_written(out);
    }

    // ----- derived serial gates ------------------------------------------

    /// `!(a | b)` into a fresh cell (1 gate).
    ///
    /// # Errors
    ///
    /// Propagates scratch exhaustion (as do all derived gates below).
    pub fn nor(&mut self, a: ColAddr, b: ColAddr) -> Result<ColAddr, DriverError> {
        let out = self.alloc()?;
        self.nor_into(a, b, out);
        Ok(out)
    }

    /// `!a` into a fresh cell (1 gate).
    pub fn not(&mut self, a: ColAddr) -> Result<ColAddr, DriverError> {
        let out = self.alloc()?;
        self.not_into(a, out);
        Ok(out)
    }

    /// `a | b` (2 gates).
    pub fn or(&mut self, a: ColAddr, b: ColAddr) -> Result<ColAddr, DriverError> {
        let t = self.nor(a, b)?;
        let out = self.not(t)?;
        self.release(t);
        Ok(out)
    }

    /// `a | b` into `out` (2 gates; `out` must hold 1).
    pub fn or_into(&mut self, a: ColAddr, b: ColAddr, out: ColAddr) -> Result<(), DriverError> {
        let t = self.nor(a, b)?;
        self.not_into(t, out);
        self.release(t);
        Ok(())
    }

    /// `a & b` (3 gates).
    pub fn and(&mut self, a: ColAddr, b: ColAddr) -> Result<ColAddr, DriverError> {
        let na = self.not(a)?;
        let nb = self.not(b)?;
        let out = self.nor(na, nb)?;
        self.release(na);
        self.release(nb);
        Ok(out)
    }

    /// `a & !b` (2 gates).
    pub fn and_not(&mut self, a: ColAddr, b: ColAddr) -> Result<ColAddr, DriverError> {
        let na = self.not(a)?;
        let out = self.nor(na, b)?;
        self.release(na);
        Ok(out)
    }

    /// `a ^ b` (5 gates).
    pub fn xor(&mut self, a: ColAddr, b: ColAddr) -> Result<ColAddr, DriverError> {
        let x = self.xnor(a, b)?;
        let out = self.not(x)?;
        self.release(x);
        Ok(out)
    }

    /// `!(a ^ b)` (4 gates).
    pub fn xnor(&mut self, a: ColAddr, b: ColAddr) -> Result<ColAddr, DriverError> {
        let t1 = self.nor(a, b)?;
        let t2 = self.nor(a, t1)?; // !a & b
        let t3 = self.nor(b, t1)?; // a & !b
        let out = self.nor(t2, t3)?;
        self.release_all([t1, t2, t3]);
        Ok(out)
    }

    /// `c ? a : b` (7 gates).
    pub fn mux(&mut self, c: ColAddr, a: ColAddr, b: ColAddr) -> Result<ColAddr, DriverError> {
        let out = self.alloc()?;
        self.mux_into(c, a, b, out)?;
        Ok(out)
    }

    /// `c ? a : b` into `out` (7 gates; `out` must hold 1).
    pub fn mux_into(
        &mut self,
        c: ColAddr,
        a: ColAddr,
        b: ColAddr,
        out: ColAddr,
    ) -> Result<(), DriverError> {
        let ac = self.and(a, c)?; // 3
        let nb = self.not(b)?; // 1
        let bnc = self.nor(nb, c)?; // 1: b & !c
        self.or_into(ac, bnc, out)?; // 2
        self.release_all([ac, nb, bnc]);
        Ok(())
    }

    /// Copies a cell value into `out` via two `NOT`s (`out` must hold 1).
    pub fn copy_into(&mut self, src: ColAddr, out: ColAddr) -> Result<(), DriverError> {
        let n = self.not(src)?;
        self.not_into(n, out);
        self.release(n);
        Ok(())
    }

    /// OR of many cells via a serial tree (`2(n-1)` gates; 0 cells → const
    /// 0, 1 cell → copy).
    pub fn or_many(&mut self, cells: &[ColAddr]) -> Result<ColAddr, DriverError> {
        match cells {
            [] => self.zero(),
            [c] => {
                let n = self.not(*c)?;
                let out = self.not(n)?;
                self.release(n);
                Ok(out)
            }
            _ => {
                let mut acc = self.or(cells[0], cells[1])?;
                for c in &cells[2..] {
                    let next = self.or(acc, *c)?;
                    self.release(acc);
                    acc = next;
                }
                Ok(acc)
            }
        }
    }

    /// `!(c0 | c1 | …)` — the all-zero test (`2(n-1) - 1` gates for n ≥ 2).
    pub fn nor_many(&mut self, cells: &[ColAddr]) -> Result<ColAddr, DriverError> {
        match cells {
            [] => self.one(),
            [c] => self.not(*c),
            [a, b] => self.nor(*a, *b),
            _ => {
                let head = self.or_many(&cells[..cells.len() - 1])?;
                let out = self.nor(head, cells[cells.len() - 1])?;
                self.release(head);
                Ok(out)
            }
        }
    }

    /// AND of many cells (`2(n-1)`-ish gates via De Morgan).
    pub fn and_many(&mut self, cells: &[ColAddr]) -> Result<ColAddr, DriverError> {
        match cells {
            [] => self.one(),
            [c] => {
                let n = self.not(*c)?;
                let out = self.not(n)?;
                self.release(n);
                Ok(out)
            }
            _ => {
                let mut acc = self.and(cells[0], cells[1])?;
                for c in &cells[2..] {
                    let next = self.and(acc, *c)?;
                    self.release(acc);
                    acc = next;
                }
                Ok(acc)
            }
        }
    }

    // ----- full adders -----------------------------------------------------

    /// The 9-NOR full adder of the bit-serial element-parallel approach
    /// (§II-B): returns `(sum, carry)`.
    pub fn full_adder(
        &mut self,
        a: ColAddr,
        b: ColAddr,
        c: ColAddr,
    ) -> Result<(ColAddr, ColAddr), DriverError> {
        let sum = self.alloc()?;
        let cout = self.full_adder_into(a, b, c, sum)?;
        Ok((sum, cout))
    }

    /// Full adder with the sum targeted at `sum_out` (which must hold 1);
    /// returns the carry. Exactly 9 NOR gates.
    pub fn full_adder_into(
        &mut self,
        a: ColAddr,
        b: ColAddr,
        c: ColAddr,
        sum_out: ColAddr,
    ) -> Result<ColAddr, DriverError> {
        let pending = self.full_adder_prep(a, b, c)?;
        self.full_adder_finish(pending, sum_out)
    }

    /// First phase of the full adder: 7 NOR gates that consume the inputs.
    /// After this returns, the inputs may be overwritten (e.g. a lazily
    /// initialized aliased destination cell) before
    /// [`full_adder_finish`](Self::full_adder_finish) writes the sum.
    pub fn full_adder_prep(
        &mut self,
        a: ColAddr,
        b: ColAddr,
        c: ColAddr,
    ) -> Result<PendingAdder, DriverError> {
        let t1 = self.nor(a, b)?;
        let t2 = self.nor(a, t1)?; // !a & b
        let t3 = self.nor(b, t1)?; // a & !b
        let t4 = self.nor(t2, t3)?; // xnor(a, b)
        let t5 = self.nor(t4, c)?; // !(xnor | c)
        let t6 = self.nor(t4, t5)?; // xor & c
        let t7 = self.nor(c, t5)?; // xnor & !c
        Ok(PendingAdder {
            t1,
            t2,
            t3,
            t4,
            t5,
            t6,
            t7,
        })
    }

    /// Second phase of the full adder: 2 NOR gates writing the sum into
    /// `sum_out` (which must hold 1) and returning the carry.
    pub fn full_adder_finish(
        &mut self,
        p: PendingAdder,
        sum_out: ColAddr,
    ) -> Result<ColAddr, DriverError> {
        self.nor_into(p.t6, p.t7, sum_out); // a ^ b ^ c
        let cout = self.nor(p.t1, p.t5)?; // majority(a, b, c)
        self.release_all([p.t1, p.t2, p.t3, p.t4, p.t5, p.t6, p.t7]);
        Ok(cout)
    }

    // ----- partition-parallel (whole-register) operations -----------------

    /// Partition-parallel `NOT` of a whole register: one micro-operation for
    /// all 32 gates. `dst` must be initialized to all-ones.
    pub fn par_not(&mut self, src: RegId, dst: RegId) {
        let op =
            HLogic::parallel(GateKind::Not, src, src, dst, self.cfg).expect("validated registers");
        self.ops.push(MicroOp::LogicH(op));
        self.stats.logic_cycles += 1;
    }

    /// Partition-parallel `NOR` of two whole registers into `dst` (one
    /// micro-operation; `dst` must be all-ones).
    pub fn par_nor(&mut self, a: RegId, b: RegId, dst: RegId) {
        let op = HLogic::parallel(GateKind::Nor, a, b, dst, self.cfg).expect("validated registers");
        self.ops.push(MicroOp::LogicH(op));
        self.stats.logic_cycles += 1;
    }

    /// Cross-partition shifted `NOT`: `dst[p + shift] = !src[p]` for every
    /// partition `p` with `p + shift` in range. Because concurrent half-gate
    /// sections must be disjoint (§III-D3), this costs `|shift| + 1`
    /// micro-operations. Out-of-range destination partitions are untouched
    /// (initialize `dst` to choose their value).
    ///
    /// # Panics
    ///
    /// Panics if `shift == 0` (use [`par_not`](Self::par_not)) or
    /// `|shift| >= N` (no partitions would remain).
    pub fn par_shift_not(&mut self, src: RegId, dst: RegId, shift: i32) {
        let n = self.cfg.partitions as i32;
        assert!(shift != 0 && shift.abs() < n, "shift {shift} out of range");
        let width = shift.unsigned_abs() as u8; // section span
        let step = width + 1;
        for class in 0..step {
            // Output partitions congruent to `first_out` mod `step`.
            let first_out = if shift > 0 {
                class as i32 + shift
            } else {
                class as i32
            };
            let first_in = first_out - shift;
            if first_out >= n || first_in < 0 || first_in >= n {
                continue;
            }
            // Last repetition keeping both operands in range.
            let reps_out = (n - 1 - first_out) / step as i32;
            let reps_in = (n - 1 - first_in) / step as i32;
            let reps = reps_out.min(reps_in);
            if reps < 0 {
                continue;
            }
            let p_end = (first_out + reps * step as i32) as u8;
            let op = HLogic::strided(
                GateKind::Not,
                ColAddr::new(first_in as u8, src),
                ColAddr::new(first_in as u8, src),
                ColAddr::new(first_out as u8, dst),
                p_end,
                step,
                self.cfg,
            )
            .expect("validated shift pattern");
            self.ops.push(MicroOp::LogicH(op));
            self.stats.logic_cycles += 1;
        }
    }

    /// The cells of a register, least-significant (partition 0) first.
    pub fn reg_bits(&self, reg: RegId) -> Bits {
        (0..self.cfg.partitions as u8)
            .map(|p| ColAddr::new(p, reg))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_arch::{Backend, PimConfig, RangeMask};
    use pim_sim::PimSimulator;

    fn cfg() -> PimConfig {
        PimConfig::small().with_crossbars(1).with_rows(8)
    }

    /// Runs `build` once, then evaluates the routine on a single row whose
    /// scratch-region is dirtied with `garbage`, with `inputs` cells preset.
    /// Returns a closure to probe cells.
    fn run(
        c: &PimConfig,
        inputs: &[(ColAddr, bool)],
        build: impl FnOnce(&mut CircuitBuilder) -> Vec<ColAddr>,
    ) -> Vec<bool> {
        let mut b = CircuitBuilder::new(c);
        let probes = build(&mut b);
        let routine = b.finish();
        let mut sim = PimSimulator::new(c.clone()).unwrap();
        // Dirty the scratch region to prove routines self-initialize.
        for reg in c.user_regs..c.regs {
            for row in 0..c.rows {
                sim.poke(0, row, reg, 0xA5A5_5A5A);
            }
        }
        for (cell, v) in inputs {
            for row in 0..c.rows {
                let w = sim.peek(0, row, cell.offset as usize);
                let w = if *v {
                    w | 1 << cell.part
                } else {
                    w & !(1 << cell.part)
                };
                sim.poke(0, row, cell.offset as usize, w);
            }
        }
        sim.execute(&pim_arch::MicroOp::XbMask(RangeMask::single(0)))
            .unwrap();
        sim.execute(&pim_arch::MicroOp::RowMask(
            RangeMask::dense(0, c.rows as u32).unwrap(),
        ))
        .unwrap();
        sim.execute_batch(&routine.ops).unwrap();
        probes
            .iter()
            .map(|p| sim.peek(0, 0, p.offset as usize) >> p.part & 1 == 1)
            .collect()
    }

    fn in_cell(i: u8) -> ColAddr {
        // Input cells live in user registers 0..; partition = index.
        ColAddr::new(i, 0)
    }

    #[test]
    fn derived_gates_truth_tables() {
        let c = cfg();
        for a in [false, true] {
            for bv in [false, true] {
                let (ca, cb) = (in_cell(0), in_cell(1));
                let got = run(&c, &[(ca, a), (cb, bv)], |b| {
                    vec![
                        b.nor(ca, cb).unwrap(),
                        b.or(ca, cb).unwrap(),
                        b.and(ca, cb).unwrap(),
                        b.and_not(ca, cb).unwrap(),
                        b.xor(ca, cb).unwrap(),
                        b.xnor(ca, cb).unwrap(),
                        b.not(ca).unwrap(),
                    ]
                });
                assert_eq!(
                    got,
                    vec![!(a | bv), a | bv, a & bv, a & !bv, a ^ bv, !(a ^ bv), !a],
                    "a={a} b={bv}"
                );
            }
        }
    }

    #[test]
    fn mux_truth_table() {
        let c = cfg();
        for sel in [false, true] {
            for a in [false, true] {
                for bv in [false, true] {
                    let (cs, ca, cb) = (in_cell(0), in_cell(1), in_cell(2));
                    let got = run(&c, &[(cs, sel), (ca, a), (cb, bv)], |b| {
                        vec![b.mux(cs, ca, cb).unwrap()]
                    });
                    assert_eq!(got[0], if sel { a } else { bv }, "sel={sel} a={a} b={bv}");
                }
            }
        }
    }

    #[test]
    fn full_adder_exhaustive() {
        let c = cfg();
        for a in [false, true] {
            for bv in [false, true] {
                for ci in [false, true] {
                    let (ca, cb, cc) = (in_cell(0), in_cell(1), in_cell(2));
                    let got = run(&c, &[(ca, a), (cb, bv), (cc, ci)], |b| {
                        let (s, co) = b.full_adder(ca, cb, cc).unwrap();
                        vec![s, co]
                    });
                    let total = a as u8 + bv as u8 + ci as u8;
                    assert_eq!(got[0], total & 1 == 1, "sum a={a} b={bv} c={ci}");
                    assert_eq!(got[1], total >= 2, "carry a={a} b={bv} c={ci}");
                }
            }
        }
    }

    #[test]
    fn full_adder_costs_9_gates() {
        let c = cfg();
        let mut b = CircuitBuilder::new(&c);
        let (x, y, z) = (in_cell(0), in_cell(1), in_cell(2));
        let _ = b.full_adder(x, y, z).unwrap();
        assert_eq!(b.finish().stats.logic_cycles, 9);
    }

    #[test]
    fn tree_gates() {
        let c = cfg();
        let cells: Vec<ColAddr> = (0..5).map(in_cell).collect();
        for pattern in 0..32u32 {
            let inputs: Vec<(ColAddr, bool)> = cells
                .iter()
                .enumerate()
                .map(|(i, &c)| (c, pattern >> i & 1 == 1))
                .collect();
            let cs = cells.clone();
            let got = run(&c, &inputs, |b| {
                vec![
                    b.or_many(&cs).unwrap(),
                    b.nor_many(&cs).unwrap(),
                    b.and_many(&cs).unwrap(),
                ]
            });
            assert_eq!(got[0], pattern != 0, "or pattern={pattern:05b}");
            assert_eq!(got[1], pattern == 0, "nor pattern={pattern:05b}");
            assert_eq!(got[2], pattern == 31, "and pattern={pattern:05b}");
        }
    }

    #[test]
    fn constants() {
        let c = cfg();
        let got = run(&c, &[], |b| {
            let z = b.zero().unwrap();
            let o = b.one().unwrap();
            // Shared: second call returns the same cell.
            assert_eq!(b.zero().unwrap(), z);
            assert_eq!(b.one().unwrap(), o);
            vec![z, o]
        });
        assert_eq!(got, vec![false, true]);
    }

    #[test]
    fn alloc_reuse_keeps_cells_clean() {
        let c = cfg();
        // Allocate, free, and re-allocate many times; every allocation must
        // hand back a cell holding 1 even though the scratch started dirty.
        let got = run(&c, &[], |b| {
            let mut probes = Vec::new();
            for round in 0..40 {
                let cells: Vec<ColAddr> = (0..13).map(|_| b.alloc().unwrap()).collect();
                if round % 3 == 0 {
                    probes.push(cells[round % 13]);
                    // Leak this one (stays allocated), free the rest.
                    for (i, c) in cells.iter().enumerate() {
                        if i != round % 13 {
                            // Dirty some cells by gating into them.
                            if i % 2 == 0 {
                                let src = probes[0];
                                b.not_into(src, *c);
                            }
                            b.release(*c);
                        }
                    }
                } else {
                    b.release_all(cells);
                }
            }
            probes
        });
        assert!(
            got.iter().all(|&v| v),
            "allocated cells must hold 1: {got:?}"
        );
    }

    #[test]
    fn par_ops_match_word_semantics() {
        let c = cfg();
        let mut b = CircuitBuilder::new(&c);
        // dst regs: user regs 2 and 3.
        b.init_reg(2, true);
        b.par_not(0, 2); // reg2 = !reg0
        b.init_reg(3, true);
        b.par_nor(0, 1, 3); // reg3 = !(reg0 | reg1)
        let routine = b.finish();
        let mut sim = PimSimulator::new(c.clone()).unwrap();
        sim.poke(0, 0, 0, 0x1234_5678);
        sim.poke(0, 0, 1, 0x0F0F_0F0F);
        sim.execute(&pim_arch::MicroOp::XbMask(RangeMask::single(0)))
            .unwrap();
        sim.execute(&pim_arch::MicroOp::RowMask(RangeMask::single(0)))
            .unwrap();
        sim.execute_batch(&routine.ops).unwrap();
        assert_eq!(sim.peek(0, 0, 2), !0x1234_5678u32);
        assert_eq!(sim.peek(0, 0, 3), !(0x1234_5678u32 | 0x0F0F_0F0F));
        assert_eq!(routine.stats.logic_cycles, 2);
        assert_eq!(routine.stats.overhead_cycles, 2);
    }

    #[test]
    fn par_shift_not_shifts_partitions() {
        let c = cfg();
        for shift in [-31, -7, -3, -1, 1, 2, 5, 31] {
            let mut b = CircuitBuilder::new(&c);
            b.init_reg(2, true);
            b.par_shift_not(0, 2, shift);
            let expected_ops = shift.unsigned_abs() as u64 + 1;
            let routine = b.finish();
            assert!(
                routine.stats.logic_cycles <= expected_ops,
                "shift {shift}: {} ops",
                routine.stats.logic_cycles
            );
            let mut sim = PimSimulator::new(c.clone()).unwrap();
            let input = 0x9E37_79B9u32;
            sim.poke(0, 0, 0, input);
            sim.execute(&pim_arch::MicroOp::XbMask(RangeMask::single(0)))
                .unwrap();
            sim.execute(&pim_arch::MicroOp::RowMask(RangeMask::single(0)))
                .unwrap();
            sim.execute_batch(&routine.ops).unwrap();
            let got = sim.peek(0, 0, 2);
            for p in 0..32i32 {
                let src = p - shift;
                let expect = if (0..32).contains(&src) {
                    input >> src & 1 == 0 // NOT of the shifted-in bit
                } else {
                    true // untouched: stays at the init value 1
                };
                assert_eq!(got >> p & 1 == 1, expect, "shift {shift} partition {p}");
            }
        }
    }

    #[test]
    fn scratch_exhaustion_is_reported() {
        let c = cfg();
        let mut b = CircuitBuilder::new(&c);
        let total = c.scratch_regs() * WORD_BITS;
        for _ in 0..total {
            b.alloc().unwrap();
        }
        assert!(matches!(
            b.alloc(),
            Err(DriverError::ScratchExhausted { .. })
        ));
    }

    #[test]
    fn alloc_reg_reserves_and_releases() {
        let c = cfg();
        let mut b = CircuitBuilder::new(&c);
        let r1 = b.alloc_reg().unwrap();
        let r2 = b.alloc_reg().unwrap();
        assert_ne!(r1, r2);
        assert!(r1 as usize >= c.user_regs && (r1 as usize) < c.regs);
        // Cells never come from reserved registers.
        for _ in 0..(c.scratch_regs() - 2) * WORD_BITS {
            let cell = b.alloc().unwrap();
            assert_ne!(cell.offset, r1);
            assert_ne!(cell.offset, r2);
        }
        assert!(b.alloc().is_err());
        b.release_reg(r1);
        assert!(b.alloc().is_ok());
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let c = cfg();
        let mut b = CircuitBuilder::new(&c);
        let cell = b.alloc().unwrap();
        b.release(cell);
        b.release(cell);
    }

    #[test]
    fn overhead_fraction_is_small_for_adder_chains() {
        // 32 chained full adders (a ripple add) must spend most cycles on
        // logic, not initialization — the §VI-B "close to theoretical" claim
        // starts here.
        let c = cfg();
        let mut b = CircuitBuilder::new(&c);
        let mut carry = b.zero().unwrap();
        for i in 0..32u8 {
            let a = ColAddr::new(i, 0);
            let x = ColAddr::new(i, 1);
            let (s, co) = b.full_adder(a, x, carry).unwrap();
            b.release(s);
            if carry != b.zero().unwrap() {
                b.release(carry);
            }
            carry = co;
        }
        let stats = b.finish().stats;
        assert_eq!(stats.logic_cycles, 9 * 32);
        assert!(
            stats.overhead_fraction() < 0.10,
            "overhead fraction {} too high ({} overhead cycles)",
            stats.overhead_fraction(),
            stats.overhead_cycles
        );
    }
}
