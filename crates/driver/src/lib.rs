//! # pim-driver
//!
//! The PyPIM host driver (§V-B): translates ISA macro-instructions
//! ([`pim_isa::Instruction`]) into micro-operation sequences
//! ([`pim_arch::MicroOp`]) that adhere to the proposed microarchitecture.
//!
//! The driver contains:
//!
//! * A [`CircuitBuilder`] that compiles gate-level routines under the
//!   stateful-logic discipline (every `NOT`/`NOR` output initialized to 1),
//!   with scratch-cell management in the driver-reserved registers and
//!   automatic batching of initializations into whole-register,
//!   partition-parallel `INIT` micro-operations.
//! * The **AritPIM suite** re-implemented from scratch: bit-serial
//!   ripple-carry integer arithmetic (the 9-NOR full adder), truncated
//!   32-bit multiplication, signed restoring division/modulo, and complete
//!   gate-level IEEE-754 `binary32` addition, multiplication, and division
//!   (guard/round/sticky bits, round-to-nearest-even, subnormals,
//!   infinities, and NaNs) — plus the comparison and multiplexing routines
//!   PyPIM adds to complement the suite (§V-B).
//! * A **partition-parallel** (bit-parallel element-parallel) Kogge-Stone
//!   prefix adder exploiting semi-parallel half-gate operations across
//!   partitions (§III-D), selectable through [`ParallelismMode`].
//! * A [`RoutineCache`] so that steady-state translation of a
//!   macro-instruction is an iteration over a precompiled sequence — the
//!   property that makes the software driver faster than the PIM chip it
//!   feeds (Figure 13, "Host Driver" series).
//! * A [`SinkBackend`] that reroutes micro-operations to a buffer, used to
//!   measure the driver's maximal supported throughput exactly as in the
//!   paper's artifact (Appendix E).
//! * A [`theory`] module exposing the pure-logic cycle count of every
//!   routine — the "theoretical PIM" baseline of Figure 13.
//!
//! # Example
//!
//! ```
//! use pim_arch::{Backend, PimConfig};
//! use pim_driver::Driver;
//! use pim_isa::{DType, Instruction, RegOp, ThreadRange};
//! use pim_sim::PimSimulator;
//!
//! # fn main() -> Result<(), pim_driver::DriverError> {
//! let cfg = PimConfig::small();
//! let mut driver = Driver::new(PimSimulator::new(cfg.clone())?);
//!
//! // Broadcast constants, then add register 0 and register 1 everywhere.
//! let all = ThreadRange::all(&cfg);
//! driver.execute(&Instruction::Write { reg: 0, value: 7, target: all })?;
//! driver.execute(&Instruction::Write { reg: 1, value: 35, target: all })?;
//! driver.execute(&Instruction::RType {
//!     op: RegOp::Add,
//!     dtype: DType::Int32,
//!     dst: 2,
//!     srcs: [0, 1, 0],
//!     target: all,
//! })?;
//! let got = driver.execute(&Instruction::Read { reg: 2, warp: 3, row: 5 })?;
//! assert_eq!(got, Some(42));
//! # Ok(())
//! # }
//! ```

mod builder;
mod cache;
mod driver;
mod error;
mod sink;

pub mod routines;
pub mod theory;

pub use builder::{Bits, CircuitBuilder, Routine, RoutineStats};
pub use cache::{RoutineCache, RoutineKey};
pub use driver::{Driver, IssuedCycles, ParallelismMode};
pub use error::DriverError;
pub use sink::SinkBackend;
