use crate::cache::{RoutineCache, RoutineKey};
use crate::DriverError;
use pim_arch::{encode, htree, Backend, MicroOp, MoveOp, PimConfig, RangeMask, VGate};
use pim_isa::Instruction;
use std::collections::HashMap;
use std::sync::Arc;

/// Which arithmetic implementation the driver compiles where both exist
/// (§II-B): bit-serial element-parallel or bit-parallel element-parallel
/// (partition-exploiting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ParallelismMode {
    /// Serial gate sequences (one gate per row per cycle).
    BitSerial,
    /// Partition-parallel algorithms (up to `N` gates per row per cycle) —
    /// the default for the partition-enabled microarchitecture.
    #[default]
    BitParallel,
}

/// Cycles the driver has *issued*, split into the pure-logic component
/// (the theoretical-PIM baseline for whatever program ran) and the total
/// (including stateful-init overhead and mask operations).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IssuedCycles {
    /// Logic (`NOT`/`NOR`/move/write/read) cycles — the theoretical
    /// lower bound of the issued program.
    pub logic: u64,
    /// All issued micro-operations.
    pub total: u64,
}

impl IssuedCycles {
    /// Measured-over-theoretical ratio (≥ 1).
    pub fn overhead_ratio(&self) -> f64 {
        self.total as f64 / self.logic as f64
    }
}

impl std::ops::Add for IssuedCycles {
    type Output = IssuedCycles;

    fn add(self, rhs: IssuedCycles) -> IssuedCycles {
        IssuedCycles {
            logic: self.logic + rhs.logic,
            total: self.total + rhs.total,
        }
    }
}

impl std::ops::AddAssign for IssuedCycles {
    fn add_assign(&mut self, rhs: IssuedCycles) {
        *self = *self + rhs;
    }
}

/// Aggregation across drivers (e.g. the per-shard drivers of a cluster).
impl std::iter::Sum for IssuedCycles {
    fn sum<I: Iterator<Item = IssuedCycles>>(iter: I) -> IssuedCycles {
        iter.fold(IssuedCycles::default(), |a, b| a + b)
    }
}

/// The host driver (§V-B): translates ISA macro-instructions into
/// micro-operations and feeds them to a [`Backend`] (the simulator, a
/// physical chip, or the measurement sink).
///
/// See the crate-level docs for an end-to-end example.
#[derive(Debug)]
pub struct Driver<B> {
    backend: B,
    cache: RoutineCache,
    mode: ParallelismMode,
    cfg: PimConfig,
    issued: IssuedCycles,
    encoded_cache: HashMap<RoutineKey, Arc<Vec<u64>>>,
    /// Masks currently stored in the memory (the driver is the sole
    /// micro-operation source, so it can elide redundant mask operations).
    cur_xb: Option<RangeMask>,
    cur_rows: Option<RangeMask>,
}

impl<B: Backend> Driver<B> {
    /// Creates a driver over `backend` with the default (partition-enabled)
    /// parallelism mode.
    pub fn new(backend: B) -> Self {
        let cfg = backend.config().clone();
        Driver {
            backend,
            cache: RoutineCache::new(),
            mode: ParallelismMode::default(),
            cfg,
            issued: IssuedCycles::default(),
            encoded_cache: HashMap::new(),
            cur_xb: None,
            cur_rows: None,
        }
    }

    /// Creates a driver with an explicit parallelism mode.
    pub fn with_mode(backend: B, mode: ParallelismMode) -> Self {
        let mut d = Driver::new(backend);
        d.mode = mode;
        d
    }

    /// Creates a driver with an explicit parallelism mode and an injected
    /// routine cache — the seam the cluster uses to hand every shard
    /// driver a [`share`](RoutineCache::share) of one compilation map, so
    /// a routine compiles once per cluster instead of once per shard.
    pub fn with_cache(backend: B, mode: ParallelismMode, cache: RoutineCache) -> Self {
        let mut d = Driver::with_mode(backend, mode);
        d.cache = cache;
        d
    }

    /// The configuration the driver compiles for.
    pub fn config(&self) -> &PimConfig {
        &self.cfg
    }

    /// The active parallelism mode.
    pub fn mode(&self) -> ParallelismMode {
        self.mode
    }

    /// Access to the backend (e.g. the simulator's profiler).
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Mutable access to the backend.
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    /// Consumes the driver, returning the backend.
    pub fn into_backend(self) -> B {
        self.backend
    }

    /// Routine-cache statistics `(hits, misses)`.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache.stats()
    }

    /// Zeroes the routine-cache hit/miss telemetry (compiled routines are
    /// kept) — part of starting a fresh measurement region alongside a
    /// profiler reset.
    pub fn reset_cache_stats(&mut self) {
        self.cache.reset_stats();
    }

    /// Forgets the masks the driver believes are stored in the memory.
    ///
    /// The driver elides redundant mask micro-operations because it is
    /// normally the sole micro-operation source. Call this after issuing
    /// micro-operations to the backend directly (e.g. through
    /// [`backend_mut`](Self::backend_mut)), so the next instruction
    /// re-issues its masks instead of trusting a stale cache.
    pub fn invalidate_masks(&mut self) {
        self.cur_xb = None;
        self.cur_rows = None;
    }

    /// Cycles issued so far (logic vs total) — the driver-side counterpart
    /// of the simulator's profiler, used to derive the theoretical-PIM
    /// baseline of arbitrary programs.
    pub fn issued(&self) -> IssuedCycles {
        self.issued
    }

    /// Resets the issued-cycle counters.
    pub fn reset_issued(&mut self) {
        self.issued = IssuedCycles::default();
    }

    /// Overwrites the issued-cycle counters with a previously captured
    /// value. Used by checkpoint/restore recovery (`pim-cluster`): a
    /// respawned shard driver resumes accounting from the checkpointed
    /// counters instead of zero.
    pub fn restore_issued(&mut self, issued: IssuedCycles) {
        self.issued = issued;
    }

    /// Emits crossbar/row mask operations, eliding ones that match the
    /// masks already stored in the memory. Returns the number of
    /// micro-operations issued (0..=2).
    fn set_masks(
        &mut self,
        warps: Option<RangeMask>,
        rows: Option<RangeMask>,
    ) -> Result<u64, DriverError> {
        let mut ops: [MicroOp; 2] = [
            MicroOp::Read { index: 0 }, // placeholder, never sent
            MicroOp::Read { index: 0 },
        ];
        let mut n = 0;
        if let Some(w) = warps {
            if self.cur_xb != Some(w) {
                ops[n] = MicroOp::XbMask(w);
                n += 1;
                self.cur_xb = Some(w);
            }
        }
        if let Some(r) = rows {
            if self.cur_rows != Some(r) {
                ops[n] = MicroOp::RowMask(r);
                n += 1;
                self.cur_rows = Some(r);
            }
        }
        if n > 0 {
            self.backend.execute_batch(&ops[..n])?;
        }
        Ok(n as u64)
    }

    /// Executes one macro-instruction, returning the value for
    /// [`Instruction::Read`] and `None` otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`DriverError`] on invalid instructions, unsupported
    /// operation/datatype combinations, or backend failures.
    pub fn execute(&mut self, instr: &Instruction) -> Result<Option<u32>, DriverError> {
        instr.validate(&self.cfg)?;
        match instr {
            Instruction::RType {
                op,
                dtype,
                dst,
                srcs,
                target,
            } => {
                let key = RoutineKey {
                    op: *op,
                    dtype: *dtype,
                    dst: *dst,
                    srcs: {
                        let mut s = [0; 3];
                        s[..op.arity()].copy_from_slice(&srcs[..op.arity()]);
                        s
                    },
                    mode: self.mode,
                };
                let routine = self.cache.get_or_compile(&self.cfg, key)?;
                let masks = self.set_masks(Some(target.warps), Some(target.rows))?;
                self.backend.execute_batch(&routine.ops)?;
                self.issued.logic += routine.stats.logic_cycles;
                self.issued.total += routine.stats.total_cycles() + masks;
                Ok(None)
            }
            Instruction::Write { reg, value, target } => {
                let masks = self.set_masks(Some(target.warps), Some(target.rows))?;
                self.backend.execute(&MicroOp::Write {
                    index: *reg,
                    value: *value,
                })?;
                self.issued.logic += 1;
                self.issued.total += 1 + masks;
                Ok(None)
            }
            Instruction::Read { reg, warp, row } => {
                let masks = self.set_masks(
                    Some(RangeMask::single(*warp)),
                    Some(RangeMask::single(*row)),
                )?;
                let v = self.backend.execute(&MicroOp::Read { index: *reg })?;
                self.issued.logic += 1;
                self.issued.total += 1 + masks;
                Ok(v)
            }
            Instruction::MoveRows {
                src,
                dst,
                src_rows,
                dst_rows,
                warps,
            } => {
                let before = self.cur_xb;
                let ops = self.lower_move_rows(*src, *dst, src_rows, dst_rows, warps)?;
                let elide = before == Some(*warps);
                let ops = if elide { &ops[1..] } else { &ops[..] };
                self.backend.execute_batch(ops)?;
                self.cur_xb = Some(*warps);
                self.cur_rows = Some(*dst_rows);
                // Theoretical: one vertical transfer per pair plus the
                // horizontal complement chain.
                self.issued.logic += src_rows.len() as u64 + 4;
                self.issued.total += ops.len() as u64;
                Ok(None)
            }
            Instruction::MoveWarps {
                src,
                dst,
                row_src,
                row_dst,
                warps,
                dist,
            } => {
                let masks = self.set_masks(Some(*warps), None)?;
                self.backend.execute(&MicroOp::Move(MoveOp {
                    dist: *dist,
                    row_src: *row_src,
                    row_dst: *row_dst,
                    index_src: *src,
                    index_dst: *dst,
                }))?;
                let plan = htree::plan_move(
                    warps,
                    &MoveOp {
                        dist: *dist,
                        row_src: *row_src,
                        row_dst: *row_dst,
                        index_src: *src,
                        index_dst: *dst,
                    },
                    &self.cfg,
                )?;
                // H-tree serialization is intrinsic to the communication
                // pattern, so it belongs to the theoretical baseline too.
                self.issued.logic += plan.cycles;
                self.issued.total += plan.cycles + masks;
                Ok(None)
            }
        }
    }

    /// Executes one R-type macro-instruction by *streaming* its cached
    /// pre-encoded 64-bit words to the backend — the production-driver hot
    /// path whose rate the Figure 13 "Host Driver" series measures.
    ///
    /// # Errors
    ///
    /// See [`execute`](Self::execute).
    pub fn execute_streamed(&mut self, instr: &Instruction) -> Result<(), DriverError> {
        let Instruction::RType {
            op,
            dtype,
            dst,
            srcs,
            target,
        } = instr
        else {
            self.execute(instr)?;
            return Ok(());
        };
        let key = RoutineKey {
            op: *op,
            dtype: *dtype,
            dst: *dst,
            srcs: {
                let mut s = [0; 3];
                s[..op.arity()].copy_from_slice(&srcs[..op.arity()]);
                s
            },
            mode: self.mode,
        };
        if !self.encoded_cache.contains_key(&key) {
            let routine = self.cache.get_or_compile(&self.cfg, key)?;
            let mut words = vec![
                encode::encode(&MicroOp::XbMask(target.warps)),
                encode::encode(&MicroOp::RowMask(target.rows)),
            ];
            words.extend(routine.encode_ops());
            self.issued.logic += routine.stats.logic_cycles;
            self.issued.total += routine.stats.total_cycles() + 2;
            self.encoded_cache.insert(key, Arc::new(words));
            let cached = Arc::clone(&self.encoded_cache[&key]);
            self.backend.stream(&cached)?;
            self.cur_xb = Some(target.warps);
            self.cur_rows = Some(target.rows);
            return Ok(());
        }
        let cached = Arc::clone(&self.encoded_cache[&key]);
        self.backend.stream(&cached)?;
        self.cur_xb = Some(target.warps);
        self.cur_rows = Some(target.rows);
        Ok(())
    }

    /// Executes a sequence of macro-instructions (non-read).
    ///
    /// # Errors
    ///
    /// Fails on the first erroring instruction.
    pub fn execute_all(&mut self, instrs: &[Instruction]) -> Result<(), DriverError> {
        for i in instrs {
            self.execute(i)?;
        }
        Ok(())
    }

    /// Lowers a warp-parallel thread-serial move (Figure 11b): the source
    /// register is complemented once for all source rows (2 horizontal
    /// micro-ops), each row pair transfers through one vertical INIT+NOT
    /// pair (un-complementing in the process), and the value lands in the
    /// destination register through two more horizontal NOTs.
    fn lower_move_rows(
        &mut self,
        src: u8,
        dst: u8,
        src_rows: &RangeMask,
        dst_rows: &RangeMask,
        warps: &RangeMask,
    ) -> Result<Vec<MicroOp>, DriverError> {
        if self.cfg.scratch_regs() < 2 {
            return Err(DriverError::Unsupported {
                what: "row moves require at least 2 scratch registers".into(),
            });
        }
        let t1 = self.cfg.user_regs as u8;
        let t2 = t1 + 1;
        let mut ops = Vec::with_capacity(8 + 2 * src_rows.len());
        ops.push(MicroOp::XbMask(*warps));
        // t1 = !src on all source rows.
        ops.push(MicroOp::RowMask(*src_rows));
        ops.push(MicroOp::LogicH(pim_arch::HLogic::init_reg(
            true, t1, &self.cfg,
        )?));
        ops.push(MicroOp::LogicH(pim_arch::HLogic::parallel(
            pim_arch::GateKind::Not,
            src,
            src,
            t1,
            &self.cfg,
        )?));
        // Vertical transfer per pair: t1[dst_row] = !t1[src_row] = value.
        // When the row sets overlap (a uniform shift), order the
        // thread-serial transfers so each source row is read before any
        // pair overwrites it: descending for an upward shift, ascending
        // for a downward one.
        let pairs: Vec<(u32, u32)> = src_rows.iter().zip(dst_rows.iter()).collect();
        let upward = dst_rows.start() > src_rows.start();
        let ordered: Box<dyn Iterator<Item = &(u32, u32)>> = if upward {
            Box::new(pairs.iter().rev())
        } else {
            Box::new(pairs.iter())
        };
        for &(s, d) in ordered {
            ops.push(MicroOp::LogicV {
                gate: VGate::Init1,
                row_in: s,
                row_out: d,
                index: t1,
            });
            ops.push(MicroOp::LogicV {
                gate: VGate::Not,
                row_in: s,
                row_out: d,
                index: t1,
            });
        }
        // dst = !!t1 on all destination rows.
        ops.push(MicroOp::RowMask(*dst_rows));
        ops.push(MicroOp::LogicH(pim_arch::HLogic::init_reg(
            true, t2, &self.cfg,
        )?));
        ops.push(MicroOp::LogicH(pim_arch::HLogic::parallel(
            pim_arch::GateKind::Not,
            t1,
            t1,
            t2,
            &self.cfg,
        )?));
        ops.push(MicroOp::LogicH(pim_arch::HLogic::init_reg(
            true, dst, &self.cfg,
        )?));
        ops.push(MicroOp::LogicH(pim_arch::HLogic::parallel(
            pim_arch::GateKind::Not,
            t2,
            t2,
            dst,
            &self.cfg,
        )?));
        Ok(ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_isa::{DType, RegOp, ThreadRange};
    use pim_sim::PimSimulator;

    fn driver() -> Driver<PimSimulator> {
        let cfg = PimConfig::small();
        Driver::new(PimSimulator::new(cfg).unwrap())
    }

    fn all(cfg: &PimConfig) -> ThreadRange {
        ThreadRange::all(cfg)
    }

    #[test]
    fn write_read_roundtrip() {
        let mut d = driver();
        let cfg = d.config().clone();
        d.execute(&Instruction::Write {
            reg: 3,
            value: 0x42,
            target: all(&cfg),
        })
        .unwrap();
        let got = d
            .execute(&Instruction::Read {
                reg: 3,
                warp: 7,
                row: 13,
            })
            .unwrap();
        assert_eq!(got, Some(0x42));
    }

    #[test]
    fn rtype_add_across_all_threads() {
        let mut d = driver();
        let cfg = d.config().clone();
        d.execute(&Instruction::Write {
            reg: 0,
            value: 30,
            target: all(&cfg),
        })
        .unwrap();
        d.execute(&Instruction::Write {
            reg: 1,
            value: 12,
            target: all(&cfg),
        })
        .unwrap();
        d.execute(&Instruction::RType {
            op: RegOp::Add,
            dtype: DType::Int32,
            dst: 2,
            srcs: [0, 1, 0],
            target: all(&cfg),
        })
        .unwrap();
        for (w, r) in [(0u32, 0u32), (15, 63), (8, 31)] {
            let got = d
                .execute(&Instruction::Read {
                    reg: 2,
                    warp: w,
                    row: r,
                })
                .unwrap();
            assert_eq!(got, Some(42), "warp {w} row {r}");
        }
    }

    #[test]
    fn rtype_respects_thread_ranges() {
        let mut d = driver();
        let cfg = d.config().clone();
        d.execute(&Instruction::Write {
            reg: 0,
            value: 5,
            target: all(&cfg),
        })
        .unwrap();
        d.execute(&Instruction::Write {
            reg: 1,
            value: 6,
            target: all(&cfg),
        })
        .unwrap();
        d.execute(&Instruction::Write {
            reg: 2,
            value: 999,
            target: all(&cfg),
        })
        .unwrap();
        // Multiply only even rows of warp 2.
        let target = ThreadRange::new(RangeMask::single(2), RangeMask::new(0, 62, 2).unwrap());
        d.execute(&Instruction::RType {
            op: RegOp::Mul,
            dtype: DType::Int32,
            dst: 2,
            srcs: [0, 1, 0],
            target,
        })
        .unwrap();
        assert_eq!(
            d.execute(&Instruction::Read {
                reg: 2,
                warp: 2,
                row: 4
            })
            .unwrap(),
            Some(30)
        );
        assert_eq!(
            d.execute(&Instruction::Read {
                reg: 2,
                warp: 2,
                row: 5
            })
            .unwrap(),
            Some(999)
        );
        assert_eq!(
            d.execute(&Instruction::Read {
                reg: 2,
                warp: 3,
                row: 4
            })
            .unwrap(),
            Some(999)
        );
    }

    #[test]
    fn cache_hits_on_repeat() {
        let mut d = driver();
        let cfg = d.config().clone();
        let add = Instruction::RType {
            op: RegOp::Add,
            dtype: DType::Int32,
            dst: 2,
            srcs: [0, 1, 0],
            target: all(&cfg),
        };
        d.execute(&add).unwrap();
        d.execute(&add).unwrap();
        d.execute(&add).unwrap();
        assert_eq!(d.cache_stats(), (2, 1));
    }

    #[test]
    fn move_rows_transfers_registers() {
        let mut d = driver();
        let cfg = d.config().clone();
        // Value v = 100 + row in register 0 of every row.
        for row in 0..cfg.rows as u32 {
            d.execute(&Instruction::Write {
                reg: 0,
                value: 100 + row,
                target: ThreadRange::new(
                    RangeMask::dense(0, cfg.crossbars as u32).unwrap(),
                    RangeMask::single(row),
                ),
            })
            .unwrap();
        }
        // Move register 0 of odd rows into register 1 of even rows.
        d.execute(&Instruction::MoveRows {
            src: 0,
            dst: 1,
            src_rows: RangeMask::new(1, 63, 2).unwrap(),
            dst_rows: RangeMask::new(0, 62, 2).unwrap(),
            warps: RangeMask::dense(0, cfg.crossbars as u32).unwrap(),
        })
        .unwrap();
        for (warp, row) in [(0u32, 0u32), (5, 10), (15, 62)] {
            let got = d.execute(&Instruction::Read { reg: 1, warp, row }).unwrap();
            assert_eq!(got, Some(100 + row + 1), "warp {warp} row {row}");
            // Source register unchanged.
            let src = d.execute(&Instruction::Read { reg: 0, warp, row }).unwrap();
            assert_eq!(src, Some(100 + row));
        }
    }

    #[test]
    fn move_warps_transfers_between_crossbars() {
        let mut d = driver();
        let cfg = d.config().clone();
        for warp in 0..cfg.crossbars as u32 {
            d.execute(&Instruction::Write {
                reg: 0,
                value: 1000 + warp,
                target: ThreadRange::new(
                    RangeMask::single(warp),
                    RangeMask::dense(0, cfg.rows as u32).unwrap(),
                ),
            })
            .unwrap();
        }
        // Upper half -> lower half (the reduction pattern).
        d.execute(&Instruction::MoveWarps {
            src: 0,
            dst: 1,
            row_src: 3,
            row_dst: 3,
            warps: RangeMask::new(8, 15, 1).unwrap(),
            dist: -8,
        })
        .unwrap();
        for w in 0..8u32 {
            let got = d
                .execute(&Instruction::Read {
                    reg: 1,
                    warp: w,
                    row: 3,
                })
                .unwrap();
            assert_eq!(got, Some(1000 + w + 8), "warp {w}");
        }
    }

    #[test]
    fn driver_is_send() {
        // The cluster moves whole driver+simulator pairs onto shard worker
        // threads; this locks in that capability at compile time.
        fn assert_send<T: Send>() {}
        assert_send::<Driver<PimSimulator>>();
        assert_send::<Driver<crate::SinkBackend>>();
    }

    #[test]
    fn issued_cycles_aggregate() {
        let a = IssuedCycles {
            logic: 10,
            total: 15,
        };
        let b = IssuedCycles { logic: 1, total: 2 };
        assert_eq!(
            a + b,
            IssuedCycles {
                logic: 11,
                total: 17
            }
        );
        let mut c = a;
        c += b;
        assert_eq!(c, a + b);
        let s: IssuedCycles = [a, b, b].into_iter().sum();
        assert_eq!(
            s,
            IssuedCycles {
                logic: 12,
                total: 19
            }
        );
    }

    #[test]
    fn rejects_invalid_instructions() {
        let mut d = driver();
        let cfg = d.config().clone();
        let bad = Instruction::RType {
            op: RegOp::Mod,
            dtype: DType::Float32,
            dst: 2,
            srcs: [0, 1, 0],
            target: all(&cfg),
        };
        assert!(d.execute(&bad).is_err());
    }
}
