use pim_arch::{encode, ArchError, Backend, MicroOp, PimConfig};

/// A backend that reroutes micro-operations to a memory buffer instead of a
/// simulator — the paper's methodology for measuring the *maximal PIM
/// throughput the host driver can sustain* (Artifact Appendix E: `OPS[...]
/// = x` replacing `perform(x)`).
///
/// Every operation is encoded to its 64-bit wire format and written into a
/// fixed ring buffer, so the measurement includes the full translation and
/// encoding cost while excluding simulation time. Reads return 0.
#[derive(Debug)]
pub struct SinkBackend {
    cfg: PimConfig,
    buffer: Vec<u64>,
    cursor: usize,
    total: u64,
}

impl SinkBackend {
    /// Buffer length used by the paper's benchmark (`OPS[100000]`).
    pub const BUFFER_LEN: usize = 100_000;

    /// Creates a sink for `cfg`.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidConfig`] if `cfg` fails validation.
    pub fn new(cfg: PimConfig) -> Result<Self, ArchError> {
        cfg.validate()?;
        Ok(SinkBackend {
            cfg,
            buffer: vec![0; Self::BUFFER_LEN],
            cursor: 0,
            total: 0,
        })
    }

    /// Total micro-operations swallowed.
    pub fn total_ops(&self) -> u64 {
        self.total
    }

    /// XOR digest over the buffer, preventing the encode work from being
    /// optimized away in benchmarks.
    pub fn digest(&self) -> u64 {
        self.buffer.iter().fold(0, |acc, &w| acc ^ w)
    }

    #[inline]
    fn push(&mut self, op: &MicroOp) {
        let word = encode::encode(op);
        // SAFETY-free ring write: cursor always in range.
        self.buffer[self.cursor] = word;
        self.cursor += 1;
        if self.cursor == self.buffer.len() {
            self.cursor = 0;
        }
        self.total += 1;
    }
}

impl Backend for SinkBackend {
    fn config(&self) -> &PimConfig {
        &self.cfg
    }

    fn execute(&mut self, op: &MicroOp) -> Result<Option<u32>, ArchError> {
        self.push(op);
        Ok(if matches!(op, MicroOp::Read { .. }) {
            Some(0)
        } else {
            None
        })
    }

    fn execute_batch(&mut self, ops: &[MicroOp]) -> Result<(), ArchError> {
        for op in ops {
            self.push(op);
        }
        Ok(())
    }

    fn stream(&mut self, words: &[u64]) -> Result<(), ArchError> {
        // The controller-bound DMA: copy the pre-encoded words into the
        // ring buffer (Appendix E's `OPS[...] = x` with the translation
        // already cached).
        let mut remaining = words;
        while !remaining.is_empty() {
            let space = self.buffer.len() - self.cursor;
            let chunk = remaining.len().min(space);
            self.buffer[self.cursor..self.cursor + chunk].copy_from_slice(&remaining[..chunk]);
            self.cursor += chunk;
            if self.cursor == self.buffer.len() {
                self.cursor = 0;
            }
            remaining = &remaining[chunk..];
        }
        self.total += words.len() as u64;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_arch::RangeMask;

    #[test]
    fn swallows_and_counts() {
        let mut s = SinkBackend::new(PimConfig::small()).unwrap();
        let op = MicroOp::XbMask(RangeMask::single(3));
        for _ in 0..250_000 {
            s.execute(&op).unwrap();
        }
        assert_eq!(s.total_ops(), 250_000);
        assert_eq!(s.execute(&MicroOp::Read { index: 0 }).unwrap(), Some(0));
        // Digest sees the encoded words.
        assert_ne!(s.digest(), u64::MAX);
    }
}
