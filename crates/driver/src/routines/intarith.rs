//! Fixed-point (32-bit two's-complement) arithmetic routines: the AritPIM
//! bit-serial suite plus the partition-parallel prefix adder.

use super::{common, src_bits, write_word, StreamOut};
use crate::builder::{Bits, CircuitBuilder};
use crate::DriverError;
use pim_arch::RegId;

/// Bit-serial ripple-carry addition (`9N` NOR gates, §II-B): streams sums
/// into `dst` as each bit's inputs are consumed.
pub fn add_serial(
    b: &mut CircuitBuilder,
    a: RegId,
    x: RegId,
    dst: RegId,
    aliased: bool,
) -> Result<(), DriverError> {
    let ab = src_bits(b, a);
    let xb = src_bits(b, x);
    let out = StreamOut::new(b, dst, aliased);
    let carry = common::ripple_add_into(b, &ab, &xb, None, &mut |b, i| Ok(out.target(b, i)))?;
    b.release(carry);
    Ok(())
}

/// Bit-serial subtraction `a - x` (`10N` gates): per-bit input complement
/// followed by the ripple adder with carry-in 1.
pub fn sub_serial(
    b: &mut CircuitBuilder,
    a: RegId,
    x: RegId,
    dst: RegId,
    aliased: bool,
) -> Result<(), DriverError> {
    let ab = src_bits(b, a);
    let xb = src_bits(b, x);
    let out = StreamOut::new(b, dst, aliased);
    let one = b.one()?;
    let mut carry = one;
    let mut carry_owned = false;
    for i in 0..ab.len() {
        let nx = b.not(xb[i])?;
        let pending = b.full_adder_prep(ab[i], nx, carry)?;
        let target = out.target(b, i);
        let cout = b.full_adder_finish(pending, target)?;
        b.release(nx);
        if carry_owned {
            b.release(carry);
        }
        carry = cout;
        carry_owned = true;
    }
    if carry_owned {
        b.release(carry);
    }
    Ok(())
}

/// Bit-serial negation `-a = !a + 1` (streamed).
pub fn neg(b: &mut CircuitBuilder, a: RegId, dst: RegId, aliased: bool) -> Result<(), DriverError> {
    let ab = src_bits(b, a);
    let out = StreamOut::new(b, dst, aliased);
    let zero = b.zero()?;
    let one = b.one()?;
    let mut carry = one;
    let mut carry_owned = false;
    for (i, &abit) in ab.iter().enumerate() {
        let na = b.not(abit)?;
        let pending = b.full_adder_prep(na, zero, carry)?;
        let target = out.target(b, i);
        let cout = b.full_adder_finish(pending, target)?;
        b.release(na);
        if carry_owned {
            b.release(carry);
        }
        carry = cout;
        carry_owned = true;
    }
    if carry_owned {
        b.release(carry);
    }
    Ok(())
}

/// Partition-parallel (bit-parallel element-parallel) Kogge–Stone prefix
/// adder: whole-register half-gate operations with cross-partition shifts,
/// ~2.2× fewer cycles than the ripple adder. Alias-safe because the
/// destination is written only after every source read.
pub fn add_parallel(
    b: &mut CircuitBuilder,
    a: RegId,
    x: RegId,
    dst: RegId,
) -> Result<(), DriverError> {
    let n_levels = [1i32, 2, 4, 8, 16];
    // Working registers.
    let ta = b.alloc_reg()?; // !a
    let tb = b.alloc_reg()?; // !x
    let g = b.alloc_reg()?; // generate (prefix)
    let p0 = b.alloc_reg()?; // xor(a, x), kept for the sum
    let p = b.alloc_reg()?; // propagate (prefix)
    let t1 = b.alloc_reg()?;
    let t2 = b.alloc_reg()?;
    let t3 = b.alloc_reg()?;
    let t4 = b.alloc_reg()?;
    let t5 = b.alloc_reg()?;

    // Initial generate/propagate.
    b.init_reg(ta, true);
    b.par_not(a, ta);
    b.init_reg(tb, true);
    b.par_not(x, tb);
    b.init_reg(g, true);
    b.par_nor(ta, tb, g); // a & x
    b.init_reg(t1, true);
    b.par_nor(ta, x, t1); // a & !x... (ta = !a): !( !a | x ) = a & !x
    b.init_reg(t2, true);
    b.par_nor(a, tb, t2); // !a & x
    b.init_reg(t3, true);
    b.par_nor(t1, t2, t3); // xnor
    b.init_reg(p0, true);
    b.par_not(t3, p0); // xor
                       // P starts as a copy of P0 (complement twice through t4).
    b.init_reg(t4, true);
    b.par_not(p0, t4);
    b.init_reg(p, true);
    b.par_not(t4, p);

    // Kogge–Stone levels: G |= P & (G << d); P &= (P << d).
    for d in n_levels {
        b.init_reg(t1, true);
        b.par_shift_not(g, t1, d); // t1[i] = !G[i-d] (1 below)
        b.init_reg(t2, true);
        b.par_not(p, t2); // !P
        b.init_reg(t3, true);
        b.par_nor(t1, t2, t3); // P & G[i-d]
        b.init_reg(t4, true);
        b.par_nor(g, t3, t4); // !(G | t3)
        b.init_reg(g, true);
        b.par_not(t4, g); // new G
        b.init_reg(t5, true);
        b.par_shift_not(p, t5, d); // !P[i-d] (1 below)
        b.init_reg(p, true);
        b.par_nor(t2, t5, p); // P & P[i-d] (0 below)
    }

    // Carries into bit i are G[i-1]; sum = P0 ^ (G << 1).
    b.init_reg(t1, true);
    b.par_shift_not(g, t1, 1); // t1 = !C (1 at bit 0: carry-in 0)
    b.init_reg(t2, true);
    b.par_not(t1, t2); // C
    b.init_reg(t3, true);
    b.par_not(p0, t3); // !P0
    b.init_reg(t4, true);
    b.par_nor(t3, t2, t4); // P0 & !C
    b.init_reg(t5, true);
    b.par_nor(p0, t1, t5); // !P0 & C
    b.init_reg(t1, true);
    b.par_nor(t4, t5, t1); // xnor(P0, C)
    b.init_reg(dst, true);
    b.par_not(t1, dst); // sum

    for r in [ta, tb, g, p0, p, t1, t2, t3, t4, t5] {
        b.release_reg(r);
    }
    Ok(())
}

/// Truncated 32-bit multiplication (shift-and-add; low half of the 64-bit
/// product — identical for signed and unsigned operands, per the §V-C
/// truncation footnote).
pub fn mul(b: &mut CircuitBuilder, a: RegId, x: RegId, dst: RegId) -> Result<(), DriverError> {
    let ab = src_bits(b, a);
    let xb = src_bits(b, x);
    let n = ab.len();
    // acc starts as the first partial product: a_0 ? x : 0.
    let mut acc: Bits = Vec::with_capacity(n);
    for &x in xb.iter().take(n) {
        acc.push(b.and(x, ab[0])?);
    }
    for i in 1..n {
        // partial_j = x_j & a_i for j in 0..n-i, added into acc[i..].
        let width = n - i;
        let mut carry: Option<pim_arch::ColAddr> = None;
        for j in 0..width {
            let pp = b.and(xb[j], ab[i])?;
            let c_in = match carry {
                Some(c) => c,
                None => b.zero()?,
            };
            let (s, cout) = b.full_adder(acc[i + j], pp, c_in)?;
            b.release(pp);
            if let Some(c) = carry {
                b.release(c);
            }
            b.release(acc[i + j]);
            acc[i + j] = s;
            carry = Some(cout);
        }
        if let Some(c) = carry {
            b.release(c); // truncation: carry out of bit 31 is dropped
        }
    }
    write_word(b, dst, &acc)?;
    b.release_all(acc);
    Ok(())
}

/// Unsigned restoring division of `n / d`: returns `(quotient, remainder)`
/// as fresh bit vectors of the operand width. For `d == 0` the raw result
/// is `q = !0, r = n` (masked by the signed wrapper).
pub fn divmod_unsigned(
    b: &mut CircuitBuilder,
    n_bits: &Bits,
    d_bits: &Bits,
) -> Result<(Bits, Bits), DriverError> {
    let w = n_bits.len();
    let zero = b.zero()?;
    // Remainder register (owned cells, w bits).
    let mut r: Bits = common::owned_zeros(b, w)?;
    let mut q_rev: Bits = Vec::with_capacity(w);
    // Extended divisor: d with a 0 MSB (shared zero as input only).
    let mut d_ext: Bits = d_bits.clone();
    d_ext.push(zero);
    for i in (0..w).rev() {
        // shifted = (r << 1) | n_i, width w+1.
        let mut shifted: Bits = Vec::with_capacity(w + 1);
        shifted.push(n_bits[i]);
        shifted.extend(r.iter().copied());
        // t = shifted - d (w+1 bits); carry == 1 iff shifted >= d.
        let (t, carry) = common::ripple_sub(b, &shifted, &d_ext)?;
        // r_new = carry ? t[0..w] : shifted[0..w].
        let mut r_new: Bits = Vec::with_capacity(w);
        for j in 0..w {
            r_new.push(b.mux(carry, t[j], shifted[j])?);
        }
        b.release_all(t);
        b.release_all(r); // old remainder cells (shifted[1..] were these)
        r = r_new;
        q_rev.push(carry);
    }
    q_rev.reverse();
    Ok((q_rev, r))
}

/// Signed division / modulo with truncation toward zero. Defined semantics:
/// division by zero yields quotient 0 and remainder = dividend;
/// `i32::MIN / -1` wraps. `want_mod` selects which result is written.
pub fn divmod(
    b: &mut CircuitBuilder,
    a: RegId,
    x: RegId,
    dst: RegId,
    want_mod: bool,
) -> Result<(), DriverError> {
    let ab = src_bits(b, a);
    let xb = src_bits(b, x);
    let sa = ab[31];
    let sx = xb[31];
    let abs_a = common::negate_if(b, sa, &ab)?;
    let abs_x = common::negate_if(b, sx, &xb)?;
    let (q_u, r_u) = divmod_unsigned(b, &abs_a, &abs_x)?;
    b.release_all(abs_x);
    let result = if want_mod {
        // Remainder takes the dividend's sign (truncation semantics).
        let r_signed = common::negate_if(b, sa, &r_u)?;
        // x == 0 -> remainder = a.
        let x_zero = b.nor_many(&xb)?;
        let sel = common::mux_bits(b, x_zero, &ab, &r_signed)?;
        b.release_all(r_signed);
        b.release(x_zero);
        sel
    } else {
        let q_sign = b.xor(sa, sx)?;
        let q_signed = common::negate_if(b, q_sign, &q_u)?;
        b.release(q_sign);
        // x == 0 -> quotient = 0 (bitwise and-not with the zero flag).
        let x_zero = b.nor_many(&xb)?;
        let mut sel: Bits = Vec::with_capacity(32);
        for &c in &q_signed {
            sel.push(b.and_not(c, x_zero)?);
        }
        b.release_all(q_signed);
        b.release(x_zero);
        sel
    };
    b.release_all(abs_a);
    b.release_all(q_u);
    b.release_all(r_u);
    write_word(b, dst, &result)?;
    b.release_all(result);
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::routines::testutil::{eval_binop, eval_unop, int_edge_values, int_pairs};
    use crate::ParallelismMode;
    use pim_isa::{DType, RegOp};

    #[test]
    fn add_serial_matches() {
        for (a, x) in int_pairs(24) {
            let got = eval_binop(RegOp::Add, DType::Int32, ParallelismMode::BitSerial, a, x);
            assert_eq!(got as i32, (a as i32).wrapping_add(x as i32), "{a} + {x}");
        }
    }

    #[test]
    fn add_parallel_matches() {
        for (a, x) in int_pairs(24) {
            let got = eval_binop(RegOp::Add, DType::Int32, ParallelismMode::BitParallel, a, x);
            assert_eq!(got as i32, (a as i32).wrapping_add(x as i32), "{a} + {x}");
        }
    }

    #[test]
    fn sub_matches() {
        for (a, x) in int_pairs(24) {
            let got = eval_binop(RegOp::Sub, DType::Int32, ParallelismMode::BitSerial, a, x);
            assert_eq!(got as i32, (a as i32).wrapping_sub(x as i32), "{a} - {x}");
        }
    }

    #[test]
    fn neg_matches() {
        for a in int_edge_values() {
            let got = eval_unop(RegOp::Neg, DType::Int32, a);
            assert_eq!(got as i32, (a as i32).wrapping_neg(), "-{a}");
        }
    }

    #[test]
    fn mul_matches() {
        for (a, x) in int_pairs(16) {
            let got = eval_binop(RegOp::Mul, DType::Int32, ParallelismMode::BitSerial, a, x);
            assert_eq!(got as i32, (a as i32).wrapping_mul(x as i32), "{a} * {x}");
        }
    }

    #[test]
    fn div_matches() {
        for (a, x) in int_pairs(10) {
            let (ai, xi) = (a as i32, x as i32);
            let got = eval_binop(RegOp::Div, DType::Int32, ParallelismMode::BitSerial, a, x) as i32;
            let expect = if xi == 0 { 0 } else { ai.wrapping_div(xi) };
            assert_eq!(got, expect, "{ai} / {xi}");
        }
    }

    #[test]
    fn div_edge_cases() {
        let cases = [
            (7i32, 2i32, 3i32),
            (-7, 2, -3),
            (7, -2, -3),
            (-7, -2, 3),
            (5, 0, 0),
            (-5, 0, 0),
            (i32::MIN, -1, i32::MIN), // wrapping
            (i32::MIN, 1, i32::MIN),
            (i32::MAX, 1, i32::MAX),
            (0, 9, 0),
        ];
        for (a, x, expect) in cases {
            let got = eval_binop(
                RegOp::Div,
                DType::Int32,
                ParallelismMode::BitSerial,
                a as u32,
                x as u32,
            ) as i32;
            assert_eq!(got, expect, "{a} / {x}");
        }
    }

    #[test]
    fn mod_matches() {
        for (a, x) in int_pairs(10) {
            let (ai, xi) = (a as i32, x as i32);
            let got = eval_binop(RegOp::Mod, DType::Int32, ParallelismMode::BitSerial, a, x) as i32;
            let expect = if xi == 0 { ai } else { ai.wrapping_rem(xi) };
            assert_eq!(got, expect, "{ai} % {xi}");
        }
    }

    #[test]
    fn mod_signs_follow_dividend() {
        let cases = [(7, 3, 1), (-7, 3, -1), (7, -3, 1), (-7, -3, -1)];
        for (a, x, expect) in cases {
            let got = eval_binop(
                RegOp::Mod,
                DType::Int32,
                ParallelismMode::BitSerial,
                a as u32,
                x as u32,
            ) as i32;
            assert_eq!(got, expect, "{a} % {x}");
        }
    }
}
