//! Test harness shared by the routine unit tests: compiles a routine and
//! evaluates it on the bit-accurate simulator (strict mode), one value per
//! row so a whole batch of test vectors runs element-parallel — exactly the
//! paper's correctness methodology (§VI-A).

use crate::routines::compile_rtype;
use crate::ParallelismMode;
use pim_arch::{Backend, MicroOp, PimConfig, RangeMask};
use pim_isa::{DType, RegOp};
use pim_sim::PimSimulator;

/// Geometry used by routine tests: one crossbar, `rows` threads.
fn test_cfg(rows: usize) -> PimConfig {
    PimConfig::small().with_crossbars(1).with_rows(rows.max(1))
}

/// Evaluates `op` element-parallel over input columns (one source register
/// per input vector), returning the destination values. Scratch starts
/// dirty; the simulator runs in strict mode, so missing initializations
/// fail loudly.
pub fn eval_vec(
    op: RegOp,
    dtype: DType,
    mode: ParallelismMode,
    inputs: &[&[u32]],
    dst: u8,
    srcs: &[u8],
) -> Vec<u32> {
    let n = inputs[0].len();
    assert!(inputs.iter().all(|v| v.len() == n));
    let cfg = test_cfg(n);
    let routine = compile_rtype(&cfg, mode, op, dtype, dst, srcs).expect("compile");
    let mut sim = PimSimulator::new(cfg.clone()).expect("sim");
    for reg in cfg.user_regs..cfg.regs {
        for row in 0..cfg.rows {
            sim.poke(0, row, reg, 0xBAD_C0DE);
        }
    }
    for (slot, vals) in inputs.iter().enumerate() {
        for (row, v) in vals.iter().enumerate() {
            sim.poke(0, row, srcs[slot] as usize, *v);
        }
    }
    sim.execute(&MicroOp::XbMask(RangeMask::single(0))).unwrap();
    sim.execute(&MicroOp::RowMask(RangeMask::dense(0, n as u32).unwrap()))
        .unwrap();
    sim.execute_batch(&routine.ops).unwrap();
    (0..n).map(|row| sim.peek(0, row, dst as usize)).collect()
}

/// Binary operation on a single pair.
pub fn eval_binop(op: RegOp, dtype: DType, mode: ParallelismMode, a: u32, x: u32) -> u32 {
    eval_vec(op, dtype, mode, &[&[a], &[x]], 2, &[0, 1])[0]
}

/// Binary operation over vectors (element-parallel).
pub fn eval_binop_vec(op: RegOp, dtype: DType, a: &[u32], x: &[u32]) -> Vec<u32> {
    eval_vec(op, dtype, ParallelismMode::BitSerial, &[a, x], 2, &[0, 1])
}

/// Binary operation with `dst == src0` (aliased destination).
pub fn eval_binop_aliased(op: RegOp, dtype: DType, a: u32, x: u32) -> u32 {
    eval_vec(
        op,
        dtype,
        ParallelismMode::BitSerial,
        &[&[a], &[x]],
        0,
        &[0, 1],
    )[0]
}

/// Unary operation on a single value.
pub fn eval_unop(op: RegOp, dtype: DType, a: u32) -> u32 {
    eval_vec(op, dtype, ParallelismMode::BitSerial, &[&[a]], 2, &[0])[0]
}

/// Unary operation over a vector.
pub fn eval_unop_vec(op: RegOp, dtype: DType, a: &[u32]) -> Vec<u32> {
    eval_vec(op, dtype, ParallelismMode::BitSerial, &[a], 2, &[0])
}

/// Unary operation with `dst == src` (aliased destination).
pub fn eval_unop_aliased(op: RegOp, dtype: DType, a: u32) -> u32 {
    eval_vec(op, dtype, ParallelismMode::BitSerial, &[&[a]], 0, &[0])[0]
}

/// Three-operand multiplexer.
pub fn eval_mux(cond: u32, a: u32, x: u32) -> u32 {
    eval_vec(
        RegOp::Mux,
        DType::Int32,
        ParallelismMode::BitSerial,
        &[&[cond], &[a], &[x]],
        3,
        &[0, 1, 2],
    )[0]
}

/// Deterministic pseudo-random pairs plus hand-picked integer edge cases.
pub fn int_pairs(n: usize) -> Vec<(u32, u32)> {
    use rand::{Rng, SeedableRng};
    let mut r = rand::rngs::StdRng::seed_from_u64(0x5EED);
    let mut v: Vec<(u32, u32)> = (0..n).map(|_| (r.gen(), r.gen())).collect();
    v.extend([
        (0, 0),
        (1, u32::MAX),
        (u32::MAX, u32::MAX),
        (0x8000_0000, 0x7FFF_FFFF),
        (0x8000_0000, 0xFFFF_FFFF),
        (12345, 678),
    ]);
    v
}

/// Integer edge values for unary tests.
pub fn int_edge_values() -> Vec<u32> {
    vec![
        0,
        1,
        2,
        0xFFFF_FFFF,
        0x8000_0000,
        0x7FFF_FFFF,
        42,
        (-42i32) as u32,
        0x0000_FFFF,
    ]
}

/// Float edge values (as bit patterns) for float tests.
pub fn float_edge_values() -> Vec<u32> {
    [
        0.0f32,
        -0.0,
        1.0,
        -1.0,
        1.5,
        0.5,
        2.0,
        -2.5,
        f32::MAX,
        f32::MIN,
        f32::MIN_POSITIVE,
        -f32::MIN_POSITIVE,
        f32::INFINITY,
        f32::NEG_INFINITY,
        f32::NAN,
        f32::EPSILON,
        1e-40,  // subnormal
        -1e-42, // subnormal
        3.4028235e38,
        1.1754942e-38, // largest subnormal
        std::f32::consts::PI,
        -std::f32::consts::E,
    ]
    .iter()
    .map(|f| f.to_bits())
    .collect()
}

/// Deterministic random float bit patterns spanning all classes.
pub fn float_random(n: usize, seed: u64) -> Vec<u32> {
    use rand::{Rng, SeedableRng};
    let mut r = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| match i % 5 {
            // Fully random bit patterns (includes NaNs/infs/subnormals).
            0 => r.gen::<u32>(),
            // Moderate-magnitude normals (exercise alignment paths).
            1 => {
                let exp = r.gen_range(110u32..145) << 23;
                exp | (r.gen::<u32>() & 0x807F_FFFF)
            }
            // Near-equal exponents (cancellation paths).
            2 => {
                let exp = 127u32 << 23;
                exp | (r.gen::<u32>() & 0x807F_FFFF)
            }
            // Subnormals.
            3 => r.gen::<u32>() & 0x807F_FFFF,
            // Extreme exponents (overflow/underflow paths).
            _ => {
                let exp = if r.gen() {
                    r.gen_range(245u32..255)
                } else {
                    r.gen_range(1u32..12)
                } << 23;
                exp | (r.gen::<u32>() & 0x807F_FFFF)
            }
        })
        .collect()
}

/// Asserts two float bit patterns represent the same IEEE result (all NaNs
/// are considered equal; zeros keep their sign).
pub fn assert_float_bits_eq(got: u32, expect: u32, ctx: &str) {
    let (g, e) = (f32::from_bits(got), f32::from_bits(expect));
    if e.is_nan() {
        assert!(g.is_nan(), "{ctx}: expected NaN, got {g} ({got:#010x})");
    } else {
        assert_eq!(
            got, expect,
            "{ctx}: got {g} ({got:#010x}), expected {e} ({expect:#010x})"
        );
    }
}
