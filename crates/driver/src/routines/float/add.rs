//! IEEE-754 `binary32` addition and subtraction.

use super::pack::{self, EXP_BITS};
use crate::builder::{Bits, CircuitBuilder};
use crate::routines::{common, write_word};
use crate::DriverError;
use pim_arch::RegId;

/// `dst = a + x` (or `a - x` when `negate_x`): magnitude-sorted operands,
/// guard/round/sticky alignment shift, a single add/subtract datapath, full
/// renormalization, and the shared round-and-pack epilogue.
pub fn add(
    b: &mut CircuitBuilder,
    a: RegId,
    x: RegId,
    dst: RegId,
    negate_x: bool,
) -> Result<(), DriverError> {
    let ua = pack::unpack(b, a)?;
    let ux = pack::unpack(b, x)?;
    let sa = ua.sign;
    // Subtraction = addition with x's sign flipped (resolved at compile
    // time, so it costs a single NOT gate).
    let sx = if negate_x { b.not(ux.sign)? } else { ux.sign };

    // Magnitude order on the raw biased representation (IEEE magnitudes
    // order like 31-bit integers).
    let a_bits = b.reg_bits(a);
    let x_bits = b.reg_bits(x);
    let a_ge = common::ge_unsigned(b, &a_bits[..31], &x_bits[..31])?;

    // Sort into big/small.
    let ea = ua.exp_eff(b)?;
    let ex = ux.exp_eff(b)?;
    let ma = ua.mant24();
    let mx = ux.mant24();
    let e_big = common::mux_bits(b, a_ge, &ea, &ex)?;
    let e_small = common::mux_bits(b, a_ge, &ex, &ea)?;
    let m_big = common::mux_bits(b, a_ge, &ma, &mx)?;
    let m_small = common::mux_bits(b, a_ge, &mx, &ma)?;
    let s_big = b.mux(a_ge, sa, sx)?;
    b.release(ea[0]);
    b.release(ex[0]);

    // Alignment distance d = e_big - e_small (8 bits, non-negative).
    let (d, d_carry) = common::ripple_sub(b, &e_big, &e_small)?;
    b.release(d_carry);
    b.release_all(e_small);

    // Small significand in the 26-bit working format [R, G, mant24].
    let zero = b.zero()?;
    let mut w_small: Bits = vec![zero, zero];
    w_small.extend(m_small.iter().copied());
    let (mut small_shifted, mut sticky) = common::shift_right_sticky(b, &w_small, &d[..5], None)?;
    // d >= 32 drains the significand entirely.
    let d_hi = b.or_many(&d[5..])?;
    let m_any = b.or_many(&m_small)?;
    let lost = b.and(m_any, d_hi)?;
    let sticky2 = b.or(sticky, lost)?;
    b.release_all([m_any, lost, sticky]);
    sticky = sticky2;
    for c in &mut small_shifted {
        let gated = b.and_not(*c, d_hi)?;
        b.release(*c);
        *c = gated;
    }
    b.release(d_hi);
    b.release_all(d);
    b.release_all(m_small);

    // 27-bit operands with the sticky bit as the small operand's LSB
    // (the classic GRS construction preserves rounding decisions).
    let mut big27: Bits = vec![zero, zero, zero];
    big27.extend(m_big.iter().copied());
    let mut small27: Bits = vec![sticky];
    small27.extend(small_shifted.iter().copied());

    // Effective operation: subtract when the (adjusted) signs differ.
    let op_sub = b.xor(sa, sx)?;
    // result = big + (small ^ op_sub) + op_sub; 28 bits with the carry
    // masked out under subtraction (it is always 1 there).
    let xs: Bits = small27
        .iter()
        .map(|&c| b.xor(c, op_sub))
        .collect::<Result<_, _>>()?;
    let (sum27, carry) = common::ripple_add(b, &big27, &xs, Some(op_sub))?;
    b.release_all(xs);
    b.release_all(small_shifted);
    b.release_all(m_big);
    let top = b.and_not(carry, op_sub)?;
    b.release(carry);
    let mut sum28 = sum27;
    sum28.push(top);

    // Full renormalization (the underflow path of round_pack undoes any
    // over-shift, so cancellation into subnormals stays exact).
    let (norm, lzc) = common::normalize_left(b, &sum28)?;
    let is_zero_sum = b.nor_many(&sum28)?;
    b.release_all(sum28);

    // Exponent: e = e_big + 1 - lzc (the big significand's MSB sat at bit
    // 26 of the 28-bit window; the normalized MSB sits at bit 27).
    let e_big11 = pack::zero_extend(b, &e_big, EXP_BITS)?;
    let e_plus1 = common::add_const(b, &e_big11, 1)?;
    let lzc11 = pack::zero_extend(b, &lzc, EXP_BITS)?;
    let (e_res, ec) = common::ripple_sub(b, &e_plus1, &lzc11)?;
    b.release(ec);
    b.release_all(e_plus1);
    b.release_all(lzc);
    b.release_all(e_big);

    // Round and pack: W26 = norm[2..28]; sticky = norm[0] | norm[1].
    let sticky_final = b.or(norm[0], norm[1])?;
    let packed = pack::round_pack(b, s_big, &e_res, &norm[2..28], sticky_final)?;
    b.release(sticky_final);
    b.release_all(e_res);
    b.release_all(norm);

    // Exact-zero result: +0, except (±0) + (±0) keeps the sign AND.
    let both_zero = b.and(ua.is_zero, ux.is_zero)?;
    let sign_and = b.and(sa, sx)?;
    let zero_sign = b.and(both_zero, sign_and)?;
    b.release_all([both_zero, sign_and]);
    let packed = pack::override_zero(b, packed, is_zero_sum, zero_sign)?;
    b.release_all([is_zero_sum, zero_sign]);

    // Infinities: any infinite operand dominates; ∞ − ∞ is NaN.
    let any_inf = b.or(ua.is_inf, ux.is_inf)?;
    let inf_sign = b.mux(ua.is_inf, sa, sx)?;
    let packed = pack::override_special(b, packed, any_inf, 0, Some(inf_sign))?;
    let both_inf = b.and(ua.is_inf, ux.is_inf)?;
    let inf_conflict = b.and(both_inf, op_sub)?;
    let any_nan = b.or(ua.is_nan, ux.is_nan)?;
    let nan = b.or(any_nan, inf_conflict)?;
    let packed = pack::override_special(b, packed, nan, 0x40_0000, None)?;
    b.release_all([
        any_inf,
        inf_sign,
        both_inf,
        inf_conflict,
        any_nan,
        nan,
        op_sub,
    ]);
    b.release_all([a_ge, s_big]);
    if negate_x {
        b.release(sx);
    }
    ua.release(b);
    ux.release(b);

    write_word(b, dst, &packed)?;
    b.release_all(packed);
    Ok(())
}
