//! IEEE-754 comparisons: NaN is unordered (every comparison false except
//! `!=`), and `-0 == +0`.

use super::pack;
use crate::builder::CircuitBuilder;
use crate::routines::{common, write_bool};
use crate::DriverError;
use pim_arch::{ColAddr, RegId};
use pim_isa::RegOp;

/// Strict IEEE `a < x` as a cell (ignoring NaN, which the caller masks).
fn lt_core(
    b: &mut CircuitBuilder,
    a: RegId,
    x: RegId,
    sa: ColAddr,
    sx: ColAddr,
    both_zero: ColAddr,
) -> Result<ColAddr, DriverError> {
    let a_bits = b.reg_bits(a);
    let x_bits = b.reg_bits(x);
    // Magnitude comparisons on the 31-bit biased representation.
    let mag_ge = common::ge_unsigned(b, &a_bits[..31], &x_bits[..31])?;
    let mag_eq = common::eq_bits(b, &a_bits[..31], &x_bits[..31])?;
    let mag_gt = b.and_not(mag_ge, mag_eq)?;
    let mag_lt = b.not(mag_ge)?;
    b.release_all([mag_ge, mag_eq]);
    // a < x  ⇔  (sa & !sx) | (sa & sx & |a|>|x|) | (!sa & !sx & |a|<|x|),
    // masked by "not both zero" (-0 < +0 is false).
    let opp = b.and_not(sa, sx)?;
    let s_eq = b.xnor(sa, sx)?;
    let neg_branch = {
        let t = b.and(s_eq, sa)?;
        let r = b.and(t, mag_gt)?;
        b.release(t);
        r
    };
    let pos_branch = {
        let nsa = b.not(sa)?;
        let t = b.and(s_eq, nsa)?;
        let r = b.and(t, mag_lt)?;
        b.release_all([nsa, t]);
        r
    };
    let any = b.or(opp, neg_branch)?;
    let any2 = b.or(any, pos_branch)?;
    let lt = b.and_not(any2, both_zero)?;
    b.release_all([mag_gt, mag_lt, opp, s_eq, neg_branch, pos_branch, any, any2]);
    Ok(lt)
}

/// Compiles a float comparison; the result is the integer 0/1.
pub fn compare(
    b: &mut CircuitBuilder,
    op: RegOp,
    a: RegId,
    x: RegId,
    dst: RegId,
) -> Result<(), DriverError> {
    let ua = pack::unpack(b, a)?;
    let ux = pack::unpack(b, x)?;
    let nan = b.or(ua.is_nan, ux.is_nan)?;
    let both_zero = b.and(ua.is_zero, ux.is_zero)?;
    let a_bits = b.reg_bits(a);
    let x_bits = b.reg_bits(x);

    let result = match op {
        RegOp::Eq | RegOp::Ne => {
            let bits_eq = common::eq_bits(b, &a_bits, &x_bits)?;
            let eq_raw = b.or(bits_eq, both_zero)?; // -0 == +0
            let eq = b.and_not(eq_raw, nan)?;
            b.release_all([bits_eq, eq_raw]);
            if op == RegOp::Eq {
                eq
            } else {
                let ne = b.not(eq)?;
                b.release(eq);
                ne
            }
        }
        RegOp::Lt | RegOp::Gt => {
            let (p, q, sp, sq) = if op == RegOp::Lt {
                (a, x, ua.sign, ux.sign)
            } else {
                (x, a, ux.sign, ua.sign)
            };
            let lt = lt_core(b, p, q, sp, sq, both_zero)?;
            let r = b.and_not(lt, nan)?;
            b.release(lt);
            r
        }
        RegOp::Le | RegOp::Ge => {
            // a <= x  ⇔  !(x < a) and no NaN.
            let (p, q, sp, sq) = if op == RegOp::Le {
                (x, a, ux.sign, ua.sign)
            } else {
                (a, x, ua.sign, ux.sign)
            };
            let gt = lt_core(b, p, q, sp, sq, both_zero)?;
            let ngt = b.nor(gt, nan)?;
            b.release(gt);
            ngt
        }
        _ => unreachable!("compare() only handles comparisons"),
    };
    b.release_all([nan, both_zero]);
    ua.release(b);
    ux.release(b);
    write_bool(b, dst, result)?;
    b.release(result);
    Ok(())
}
