//! Gate-level IEEE-754 `binary32` routines: addition/subtraction,
//! multiplication, division, comparisons, and sign manipulation — the
//! floating-point half of the AritPIM suite (§V-B), implemented with full
//! round-to-nearest-even semantics including subnormals, infinities, NaNs,
//! and signed zeros.

mod add;
mod cmp;
mod misc;
mod muldiv;
mod pack;
#[cfg(test)]
mod tests;

pub use add::add;
pub use cmp::compare;
pub use misc::{abs, neg, sign};
pub use muldiv::{div, mul};
