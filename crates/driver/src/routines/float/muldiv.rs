//! IEEE-754 `binary32` multiplication and division.

use super::pack::{self, EXP_BITS};
use crate::builder::{Bits, CircuitBuilder};
use crate::routines::{common, write_word};
use crate::DriverError;
use pim_arch::{ColAddr, RegId};

/// Shift-and-add product of two 24-bit significands (48 owned bits).
fn mant_product(
    b: &mut CircuitBuilder,
    ma: &[ColAddr],
    mx: &[ColAddr],
) -> Result<Bits, DriverError> {
    let n = ma.len();
    let mut acc: Bits = Vec::with_capacity(2 * n);
    // First partial product: mx & ma[0], upper half zeroes.
    for &x in mx.iter().take(n) {
        acc.push(b.and(x, ma[0])?);
    }
    for _ in n..2 * n {
        acc.push(common::owned_zero(b)?);
    }
    for i in 1..n {
        let mut carry: Option<ColAddr> = None;
        for j in 0..n {
            let pp = b.and(mx[j], ma[i])?;
            let cin = match carry {
                Some(c) => c,
                None => b.zero()?,
            };
            let (s, cout) = b.full_adder(acc[i + j], pp, cin)?;
            b.release(pp);
            if let Some(c) = carry {
                b.release(c);
            }
            b.release(acc[i + j]);
            acc[i + j] = s;
            carry = Some(cout);
        }
        // The carry lands in acc[i + n], which is still zero here.
        if let Some(c) = carry {
            b.release(acc[i + n]);
            acc[i + n] = c;
        }
    }
    Ok(acc)
}

/// `dst = a * x` with full IEEE-754 semantics.
pub fn mul(b: &mut CircuitBuilder, a: RegId, x: RegId, dst: RegId) -> Result<(), DriverError> {
    let ua = pack::unpack(b, a)?;
    let ux = pack::unpack(b, x)?;
    let sign = b.xor(ua.sign, ux.sign)?;

    // 48-bit significand product, normalized so the MSB reaches bit 47
    // (this also absorbs subnormal inputs' leading zeros).
    let ma = ua.mant24();
    let mx = ux.mant24();
    let p48 = mant_product(b, &ma, &mx)?;
    let (norm, lzc) = common::normalize_left(b, &p48)?;
    b.release_all(p48);

    // Exponent: E = ea_eff + ex_eff - 126 - lzc (derived from the product
    // scale P48 · 2^(ea+ex-300) with the normalized MSB at bit 47).
    let ea = ua.exp_eff(b)?;
    let ex = ux.exp_eff(b)?;
    let ea11 = pack::zero_extend(b, &ea, EXP_BITS)?;
    let ex11 = pack::zero_extend(b, &ex, EXP_BITS)?;
    let (e_sum, c0) = common::ripple_add(b, &ea11, &ex11, None)?;
    b.release(c0);
    b.release(ea[0]);
    b.release(ex[0]);
    // -126 == +(2^11 - 126) in 11-bit two's complement.
    let e_biased = common::add_const(b, &e_sum, (1 << EXP_BITS) - 126)?;
    b.release_all(e_sum);
    let lzc11 = pack::zero_extend(b, &lzc, EXP_BITS)?;
    let (e_res, ec) = common::ripple_sub(b, &e_biased, &lzc11)?;
    b.release(ec);
    b.release_all(e_biased);
    b.release_all(lzc);

    // W26 = [R = norm[22], G = norm[23], mant24 = norm[24..48]];
    // sticky = OR(norm[0..22]).
    let sticky = b.or_many(&norm[..22])?;
    let packed = pack::round_pack(b, sign, &e_res, &norm[22..48], sticky)?;
    b.release(sticky);
    b.release_all(e_res);
    b.release_all(norm);

    // Specials: 0 × finite = ±0; anything × ∞ = ±∞; 0 × ∞ = NaN.
    let any_zero = b.or(ua.is_zero, ux.is_zero)?;
    let packed = pack::override_zero(b, packed, any_zero, sign)?;
    let any_inf = b.or(ua.is_inf, ux.is_inf)?;
    let packed = pack::override_special(b, packed, any_inf, 0, Some(sign))?;
    let zero_times_inf = b.and(any_zero, any_inf)?;
    let any_nan = b.or(ua.is_nan, ux.is_nan)?;
    let nan = b.or(any_nan, zero_times_inf)?;
    let packed = pack::override_special(b, packed, nan, 0x40_0000, None)?;
    b.release_all([any_zero, any_inf, zero_times_inf, any_nan, nan, sign]);
    ua.release(b);
    ux.release(b);

    write_word(b, dst, &packed)?;
    b.release_all(packed);
    Ok(())
}

/// `dst = a / x` with full IEEE-754 semantics (26-bit restoring division
/// plus a remainder-based sticky bit).
pub fn div(b: &mut CircuitBuilder, a: RegId, x: RegId, dst: RegId) -> Result<(), DriverError> {
    const QBITS: usize = 26;
    let ua = pack::unpack(b, a)?;
    let ux = pack::unpack(b, x)?;
    let sign = b.xor(ua.sign, ux.sign)?;

    // Normalize both significands (absorbing subnormal leading zeros).
    let ma = ua.mant24();
    let mx = ux.mant24();
    let (na, lza) = common::normalize_left(b, &ma)?;
    let (nx, lzx) = common::normalize_left(b, &mx)?;

    // Restoring division: R ∈ [0, D); 26 quotient bits of N/D ∈ (1/2, 2).
    let zero = b.zero()?;
    let d25 = pack::zero_extend(b, &nx, 25)?;
    // R starts as N (owned copy, 25 bits).
    let mut r: Bits = Vec::with_capacity(25);
    for &c in &na {
        let t = b.not(c)?;
        let v = b.not(t)?;
        b.release(t);
        r.push(v);
    }
    r.push(common::owned_zero(b)?);
    let mut q: Vec<ColAddr> = Vec::with_capacity(QBITS); // MSB first
    for k in 0..QBITS {
        let (diff, ge) = common::ripple_sub(b, &r, &d25)?;
        // R = (ge ? diff : R) << 1 — the shift drops the top bit (always 0
        // after restoration) and pulls in a 0.
        let mut r_new: Bits = Vec::with_capacity(25);
        r_new.push(common::owned_zero(b)?);
        for j in 0..24 {
            r_new.push(b.mux(ge, diff[j], r[j])?);
        }
        b.release_all(diff);
        b.release_all(std::mem::replace(&mut r, r_new));
        q.push(ge);
        let _ = k;
    }
    // Sticky: a nonzero final remainder. (R was shifted left once more
    // than needed, which keeps its zero-ness unchanged.)
    let r_nz = {
        let z = b.nor_many(&r)?;
        let nz = b.not(z)?;
        b.release(z);
        nz
    };
    b.release_all(std::mem::take(&mut r));
    b.release_all(na);
    b.release_all(nx);
    let _ = zero;

    // Q (MSB first) has q[0] = (N >= D). Normalize by one position when
    // q[0] == 0. LSB-first quotient:
    let q0 = q[0];
    let q_lsb: Bits = q.iter().rev().copied().collect();
    // If q0 == 0: shift left by 1 (value gains its MSB at the same index).
    let mut qn: Bits = Vec::with_capacity(QBITS);
    for i in 0..QBITS {
        let lo = if i == 0 { b.zero()? } else { q_lsb[i - 1] };
        // q0 ? q_lsb[i] : q_lsb[i-1]
        qn.push(b.mux(q0, q_lsb[i], lo)?);
    }
    // Exponent: E = ea' - ex' + 126 + q0, where ea' = ea_eff - lza.
    let ea = ua.exp_eff(b)?;
    let ex = ux.exp_eff(b)?;
    let ea11 = pack::zero_extend(b, &ea, EXP_BITS)?;
    let ex11 = pack::zero_extend(b, &ex, EXP_BITS)?;
    let lza11 = pack::zero_extend(b, &lza, EXP_BITS)?;
    let lzx11 = pack::zero_extend(b, &lzx, EXP_BITS)?;
    let (ea_n, c1) = common::ripple_sub(b, &ea11, &lza11)?;
    let (ex_n, c2) = common::ripple_sub(b, &ex11, &lzx11)?;
    b.release(c1);
    b.release(c2);
    let (e_diff, c3) = common::ripple_sub(b, &ea_n, &ex_n)?;
    b.release(c3);
    let e_base = common::add_const(b, &e_diff, 126)?;
    let e_res = pack::inc_if(b, &e_base, q0)?;
    b.release_all(e_diff);
    b.release_all(e_base);
    b.release_all(ea_n);
    b.release_all(ex_n);
    b.release_all(lza);
    b.release_all(lzx);
    b.release(ea[0]);
    b.release(ex[0]);

    // W26 = [R = qn[0], G = qn[1], mant24 = qn[2..26]]; MSB at qn[25].
    let packed = pack::round_pack(b, sign, &e_res, &qn, r_nz)?;
    b.release(r_nz);
    b.release_all(e_res);
    // qn[0] for i==0 used a shared zero in the mux input only; all qn cells
    // are owned mux outputs.
    b.release_all(qn);
    b.release_all(q_lsb); // the original q cells
    q.clear();

    // Specials: 0/0 and ∞/∞ are NaN; x/0 = ±∞; finite/∞ = ±0; 0/finite = ±0;
    // ∞/finite = ±∞.
    let zero_result = { b.or(ua.is_zero, ux.is_inf)? };
    let packed = pack::override_zero(b, packed, zero_result, sign)?;
    let inf_result = {
        let div_by_zero = b.and_not(ux.is_zero, ua.is_zero)?;
        let t = b.or(ua.is_inf, div_by_zero)?;
        b.release(div_by_zero);
        t
    };
    let packed = pack::override_special(b, packed, inf_result, 0, Some(sign))?;
    let both_zero = b.and(ua.is_zero, ux.is_zero)?;
    let both_inf = b.and(ua.is_inf, ux.is_inf)?;
    let any_nan = b.or(ua.is_nan, ux.is_nan)?;
    let conflict = b.or(both_zero, both_inf)?;
    let nan = b.or(any_nan, conflict)?;
    let packed = pack::override_special(b, packed, nan, 0x40_0000, None)?;
    b.release_all([
        zero_result,
        inf_result,
        both_zero,
        both_inf,
        any_nan,
        conflict,
        nan,
        sign,
    ]);
    ua.release(b);
    ux.release(b);

    write_word(b, dst, &packed)?;
    b.release_all(packed);
    Ok(())
}
