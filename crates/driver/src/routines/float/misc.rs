//! Float sign manipulation: negation, absolute value, and `sign()`.

use super::pack;
use crate::builder::CircuitBuilder;
use crate::DriverError;
use pim_arch::{ColAddr, RegId};

/// Copies register `a` to `dst` via two partition-parallel NOTs through a
/// scratch register (alias-safe: `a` is only read by the first NOT).
/// Returns the scratch register holding `!a` so sign fixups can read the
/// complement of the original bits; the caller must release it.
fn copy_via(b: &mut CircuitBuilder, a: RegId, dst: RegId) -> Result<RegId, DriverError> {
    let t = b.alloc_reg()?;
    b.init_reg(t, true);
    b.par_not(a, t);
    b.init_reg(dst, true);
    b.par_not(t, dst);
    Ok(t)
}

/// `dst = -a`: bit copy with the sign flipped. Negating a NaN flips its
/// sign bit, as with native `-f32::NAN`.
pub fn neg(b: &mut CircuitBuilder, a: RegId, dst: RegId) -> Result<(), DriverError> {
    let t = copy_via(b, a, dst)?;
    // dst[31] currently equals a[31]; overwrite with t[31] = !a[31].
    let dst_sign = ColAddr::new(31, dst);
    b.init_cell(dst_sign, true);
    b.copy_into(ColAddr::new(31, t), dst_sign)?;
    b.release_reg(t);
    Ok(())
}

/// `dst = |a|`: bit copy with the sign cleared.
pub fn abs(b: &mut CircuitBuilder, a: RegId, dst: RegId) -> Result<(), DriverError> {
    let t = copy_via(b, a, dst)?;
    b.init_cell(ColAddr::new(31, dst), false);
    b.release_reg(t);
    Ok(())
}

/// `dst = sign(a)`: ±1.0 for nonzero finite/infinite values, ±0.0 for
/// zeros, and the canonical quiet NaN for NaN inputs.
pub fn sign(b: &mut CircuitBuilder, a: RegId, dst: RegId) -> Result<(), DriverError> {
    let ua = pack::unpack(b, a)?;
    let sa = ua.sign;
    let nan = ua.is_nan;
    let z = ua.is_zero;
    // Build each output bit from the three masks (compile-time constants
    // 1.0 = 0x3F80_0000, qNaN = 0x7FC0_0000).
    let one_bits = 0x3F80_0000u32;
    let qnan_bits = 0x7FC0_0000u32;
    b.init_reg(dst, false);
    let nz_or_nan = b.or(nan, z)?;
    let finite_one = b.not(nz_or_nan)?; // nonzero non-NaN -> ±1.0
    b.release(nz_or_nan);
    for i in 0..31u8 {
        let o = one_bits >> i & 1 == 1;
        let q = qnan_bits >> i & 1 == 1;
        let cell = ColAddr::new(i, dst);
        match (o, q) {
            (false, false) => {} // stays 0
            (true, true) => {
                // 1 when finite_one | nan.
                let v = b.or(finite_one, nan)?;
                b.init_cell(cell, true);
                let nv = b.not(v)?;
                b.not_into(nv, cell);
                b.release_all([v, nv]);
            }
            (true, false) => {
                b.init_cell(cell, true);
                let nv = b.not(finite_one)?;
                b.not_into(nv, cell);
                b.release(nv);
            }
            (false, true) => {
                b.init_cell(cell, true);
                let nv = b.not(nan)?;
                b.not_into(nv, cell);
                b.release(nv);
            }
        }
    }
    // Sign bit: sa unless NaN (canonical qNaN is positive).
    let s = b.and_not(sa, nan)?;
    let cell = ColAddr::new(31, dst);
    b.init_cell(cell, true);
    let ns = b.not(s)?;
    b.not_into(ns, cell);
    b.release_all([s, ns]);
    ua.release(b);
    Ok(())
}
