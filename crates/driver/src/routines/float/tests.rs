//! Correctness of the gate-level IEEE-754 routines against the host's
//! native `f32` arithmetic (round-to-nearest-even), which is the same
//! oracle the paper uses via NumPy (§VI-A). Tests run element-parallel:
//! one test vector per simulated row.

use crate::routines::testutil::{
    assert_float_bits_eq, eval_binop_vec, eval_unop_vec, float_edge_values, float_random,
};
use pim_isa::{DType, RegOp};

/// Cross product of the edge values with themselves plus random pairs.
fn binop_vectors(seed: u64, extra: usize) -> (Vec<u32>, Vec<u32>) {
    let edges = float_edge_values();
    let mut a = Vec::new();
    let mut x = Vec::new();
    for &p in &edges {
        for &q in &edges {
            a.push(p);
            x.push(q);
        }
    }
    a.extend(float_random(extra, seed));
    x.extend(float_random(extra, seed ^ 0xFFFF_FFFF));
    (a, x)
}

fn check_binop(op: RegOp, native: impl Fn(f32, f32) -> f32, seed: u64, extra: usize) {
    let (a, x) = binop_vectors(seed, extra);
    let got = eval_binop_vec(op, DType::Float32, &a, &x);
    for i in 0..a.len() {
        let expect = native(f32::from_bits(a[i]), f32::from_bits(x[i])).to_bits();
        assert_float_bits_eq(
            got[i],
            expect,
            &format!(
                "{op}({} [{:#010x}], {} [{:#010x}])",
                f32::from_bits(a[i]),
                a[i],
                f32::from_bits(x[i]),
                x[i]
            ),
        );
    }
}

#[test]
fn fadd_matches_native() {
    check_binop(RegOp::Add, |p, q| p + q, 101, 400);
}

#[test]
fn fsub_matches_native() {
    check_binop(RegOp::Sub, |p, q| p - q, 202, 400);
}

#[test]
fn fmul_matches_native() {
    check_binop(RegOp::Mul, |p, q| p * q, 303, 250);
}

#[test]
fn fdiv_matches_native() {
    check_binop(RegOp::Div, |p, q| p / q, 404, 150);
}

#[test]
fn fadd_cancellation_paths() {
    // Near-equal operands of opposite sign: massive cancellation, exact
    // subnormal results, and the x + (-x) = +0 rule.
    let mut a = Vec::new();
    let mut x = Vec::new();
    for bits in float_random(300, 77) {
        let f = f32::from_bits(bits);
        a.push(bits);
        x.push((-f).to_bits());
        // One-ulp neighbors.
        a.push(bits);
        x.push((-f32::from_bits(bits.wrapping_add(1))).to_bits());
    }
    let got = eval_binop_vec(RegOp::Add, DType::Float32, &a, &x);
    for i in 0..a.len() {
        let expect = (f32::from_bits(a[i]) + f32::from_bits(x[i])).to_bits();
        assert_float_bits_eq(
            got[i],
            expect,
            &format!("cancel {:#010x} {:#010x}", a[i], x[i]),
        );
    }
}

#[test]
fn fmul_subnormal_underflow() {
    // Products that underflow into (or below) the subnormal range.
    let mut a = Vec::new();
    let mut x = Vec::new();
    for bits in float_random(200, 88) {
        let small = (bits & 0x80FF_FFFF) | (5 << 23); // exponent 5
        a.push(small);
        x.push((bits & 0x80FF_FFFF) | (60 << 23)); // exponent 60
        a.push(small);
        x.push(bits & 0x807F_FFFF); // subnormal operand
    }
    let got = eval_binop_vec(RegOp::Mul, DType::Float32, &a, &x);
    for i in 0..a.len() {
        let expect = (f32::from_bits(a[i]) * f32::from_bits(x[i])).to_bits();
        assert_float_bits_eq(
            got[i],
            expect,
            &format!("underflow {:#010x} {:#010x}", a[i], x[i]),
        );
    }
}

#[test]
fn fdiv_specials() {
    let cases: [(f32, f32); 12] = [
        (1.0, 0.0),
        (-1.0, 0.0),
        (0.0, 0.0),
        (0.0, -0.0),
        (f32::INFINITY, f32::INFINITY),
        (f32::INFINITY, 2.0),
        (2.0, f32::INFINITY),
        (0.0, 5.0),
        (f32::NAN, 1.0),
        (1.0, f32::NAN),
        (f32::MAX, f32::MIN_POSITIVE),
        (f32::MIN_POSITIVE, f32::MAX),
    ];
    let a: Vec<u32> = cases.iter().map(|(p, _)| p.to_bits()).collect();
    let x: Vec<u32> = cases.iter().map(|(_, q)| q.to_bits()).collect();
    let got = eval_binop_vec(RegOp::Div, DType::Float32, &a, &x);
    for (i, (p, q)) in cases.iter().enumerate() {
        assert_float_bits_eq(got[i], (p / q).to_bits(), &format!("{p} / {q}"));
    }
}

#[test]
fn fcmp_matches_native() {
    type CmpCase = (RegOp, fn(f32, f32) -> bool);
    let ops: [CmpCase; 6] = [
        (RegOp::Lt, |a, b| a < b),
        (RegOp::Le, |a, b| a <= b),
        (RegOp::Gt, |a, b| a > b),
        (RegOp::Ge, |a, b| a >= b),
        (RegOp::Eq, |a, b| a == b),
        (RegOp::Ne, |a, b| a != b),
    ];
    let (a, x) = binop_vectors(909, 100);
    for (op, native) in ops {
        let got = eval_binop_vec(op, DType::Float32, &a, &x);
        for i in 0..a.len() {
            let (p, q) = (f32::from_bits(a[i]), f32::from_bits(x[i]));
            assert_eq!(got[i], native(p, q) as u32, "{op}({p}, {q})");
        }
    }
}

#[test]
fn fneg_fabs_match_native() {
    let mut vals = float_edge_values();
    vals.extend(float_random(150, 55));
    let neg = eval_unop_vec(RegOp::Neg, DType::Float32, &vals);
    let abs = eval_unop_vec(RegOp::Abs, DType::Float32, &vals);
    for (i, &v) in vals.iter().enumerate() {
        // Negation/abs are bit operations even on NaN: compare bit-exactly.
        assert_eq!(neg[i], v ^ 0x8000_0000, "neg({v:#010x})");
        assert_eq!(abs[i], v & 0x7FFF_FFFF, "abs({v:#010x})");
    }
}

#[test]
fn fsign_matches_definition() {
    let mut vals = float_edge_values();
    vals.extend(float_random(100, 66));
    let got = eval_unop_vec(RegOp::Sign, DType::Float32, &vals);
    for (i, &v) in vals.iter().enumerate() {
        let f = f32::from_bits(v);
        if f.is_nan() {
            assert!(f32::from_bits(got[i]).is_nan(), "sign({v:#010x})");
        } else if f == 0.0 {
            // ±0 keeps its sign.
            assert_eq!(got[i], v & 0x8000_0000, "sign({v:#010x})");
        } else {
            let expect = if f > 0.0 { 1.0f32 } else { -1.0 };
            assert_eq!(got[i], expect.to_bits(), "sign({f})");
        }
    }
}
