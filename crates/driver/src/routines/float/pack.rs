//! Shared IEEE-754 `binary32` gate-level machinery: operand unpacking and
//! the round-and-pack epilogue (round-to-nearest-even, gradual underflow,
//! overflow to infinity).

use crate::builder::{Bits, CircuitBuilder};
use crate::routines::common;
use crate::DriverError;
use pim_arch::ColAddr;

/// Width of the signed biased-exponent working format. Intermediate
/// exponents span roughly −175‥+382 for multiplication/division of
/// subnormals, comfortably inside 11-bit two's complement.
pub const EXP_BITS: usize = 11;

/// An unpacked `binary32` operand: field bit cells plus classification
/// flags. Field cells reference the source register directly; flags are
/// owned scratch cells.
pub struct Unpacked {
    /// Sign bit (bit 31 of the source).
    pub sign: ColAddr,
    /// Exponent field, LSB first (bits 23..31).
    pub exp: Bits,
    /// Mantissa field, LSB first (bits 0..23).
    pub man: Bits,
    /// `exp != 0` — also the implicit mantissa bit.
    pub exp_nz: ColAddr,
    /// `exp == 0xFF`.
    pub exp_all1: ColAddr,
    /// `man != 0`.
    pub man_nz: ColAddr,
    /// Quiet or signaling NaN.
    pub is_nan: ColAddr,
    /// ±∞.
    pub is_inf: ColAddr,
    /// ±0.
    pub is_zero: ColAddr,
}

/// Unpacks the register `reg` into fields and classification flags.
pub fn unpack(b: &mut CircuitBuilder, reg: pim_arch::RegId) -> Result<Unpacked, DriverError> {
    let bits = b.reg_bits(reg);
    let sign = bits[31];
    let exp: Bits = bits[23..31].to_vec();
    let man: Bits = bits[..23].to_vec();
    let exp_nz = {
        let z = b.nor_many(&exp)?;
        let nz = b.not(z)?;
        b.release(z);
        nz
    };
    let exp_all1 = b.and_many(&exp)?;
    let man_nz = {
        let z = b.nor_many(&man)?;
        let nz = b.not(z)?;
        b.release(z);
        nz
    };
    let is_nan = b.and(exp_all1, man_nz)?;
    let is_inf = b.and_not(exp_all1, man_nz)?;
    let nz_any = b.or(exp_nz, man_nz)?;
    let is_zero = b.not(nz_any)?;
    b.release(nz_any);
    Ok(Unpacked {
        sign,
        exp,
        man,
        exp_nz,
        exp_all1,
        man_nz,
        is_nan,
        is_inf,
        is_zero,
    })
}

impl Unpacked {
    /// Releases the owned flag cells.
    pub fn release(self, b: &mut CircuitBuilder) {
        b.release_all([
            self.exp_nz,
            self.exp_all1,
            self.man_nz,
            self.is_nan,
            self.is_inf,
            self.is_zero,
        ]);
    }

    /// The *effective* biased exponent (8 bits): `max(exp, 1)`, i.e. the
    /// exponent field with bit 0 forced when the operand is subnormal/zero.
    /// Only bit 0 is a fresh cell; the rest reference the source register.
    pub fn exp_eff(&self, b: &mut CircuitBuilder) -> Result<Bits, DriverError> {
        let sub = b.not(self.exp_nz)?; // exp == 0
        let bit0 = b.or(self.exp[0], sub)?;
        b.release(sub);
        let mut e = self.exp.clone();
        e[0] = bit0;
        Ok(e)
    }

    /// The 24-bit significand `[man, implicit]` where the implicit bit is
    /// `exp != 0` (LSB first).
    pub fn mant24(&self) -> Bits {
        let mut m = self.man.clone();
        m.push(self.exp_nz);
        m
    }
}

/// Increments `bits` by `cond` (0 or 1) into fresh bits — a half-adder
/// chain with carry-in `cond`.
pub fn inc_if(
    b: &mut CircuitBuilder,
    bits: &[ColAddr],
    cond: ColAddr,
) -> Result<Bits, DriverError> {
    let mut out = Vec::with_capacity(bits.len());
    let mut carry = cond;
    let mut owned = false;
    for &bit in bits {
        let s = b.xor(bit, carry)?;
        let c = b.and(bit, carry)?;
        if owned {
            b.release(carry);
        }
        carry = c;
        owned = true;
        out.push(s);
    }
    if owned {
        b.release(carry);
    }
    Ok(out)
}

/// Zero-extends `bits` to `width` with the shared constant-0 cell.
pub fn zero_extend(
    b: &mut CircuitBuilder,
    bits: &[ColAddr],
    width: usize,
) -> Result<Bits, DriverError> {
    let z = b.zero()?;
    let mut out = bits.to_vec();
    while out.len() < width {
        out.push(z);
    }
    Ok(out)
}

/// Rounds and packs a finite, normalized intermediate result:
///
/// * `sign` — result sign cell.
/// * `e` — signed biased exponent ([`EXP_BITS`] bits, two's complement)
///   *assuming* the significand MSB is `w26[25]` (the implicit-bit
///   position). `e <= 0` triggers the gradual-underflow right shift.
/// * `w26` — `[round, guard, mant24…]` LSB first, with the significand's
///   MSB at index 25. For exact-zero significands the caller must gate the
///   output separately (the exponent is meaningless then).
/// * `sticky` — OR of all lower-order bits.
///
/// Returns the 32 owned result bits, handling round-to-nearest-even
/// (with carry propagating from the mantissa into the exponent — which also
/// realizes subnormal→normal and 254→∞ promotions, since the IEEE bit
/// patterns are ordered), subnormal encoding, and overflow to ±∞.
pub fn round_pack(
    b: &mut CircuitBuilder,
    sign: ColAddr,
    e: &[ColAddr],
    w26: &[ColAddr],
    sticky: ColAddr,
) -> Result<Bits, DriverError> {
    assert_eq!(e.len(), EXP_BITS);
    assert_eq!(w26.len(), 26);
    let e_msb = e[EXP_BITS - 1];
    // Underflow: e <= 0 (negative or zero).
    let e_zero = b.nor_many(e)?;
    let under = b.or(e_msb, e_zero)?;
    b.release(e_zero);

    // Right-shift amount for subnormals: 1 - e = !e + 2 (two's complement).
    let ne: Bits = e.iter().map(|&c| b.not(c)).collect::<Result<_, _>>()?;
    let amt = common::add_const(b, &ne, 2)?;
    b.release_all(ne);
    // Effective 5-bit amount, gated by `under`; shifts >= 32 drain fully.
    let amt5: Bits = amt[..5]
        .iter()
        .map(|&c| b.and(c, under))
        .collect::<Result<_, _>>()?;
    let amt_hi = b.or_many(&amt[5..])?;
    let big = b.and(amt_hi, under)?;
    b.release(amt_hi);
    b.release_all(amt);

    let (shifted, sticky1) = common::shift_right_sticky(b, w26, &amt5, Some(sticky))?;
    b.release_all(amt5);
    // `big` drains everything into the sticky bit.
    let all_w = b.or_many(w26)?;
    let lost_big = b.and(all_w, big)?;
    let sticky2 = b.or(sticky1, lost_big)?;
    b.release_all([all_w, lost_big, sticky1]);
    let w: Bits = shifted
        .iter()
        .map(|&c| b.and_not(c, big))
        .collect::<Result<_, _>>()?;
    b.release_all(shifted);
    b.release(big);

    // Exponent field: 0 when subnormal, else e[0..8].
    let not_under = b.not(under)?;
    let ef: Bits = e[..8]
        .iter()
        .map(|&c| b.and(c, not_under))
        .collect::<Result<_, _>>()?;
    // Pre-round overflow: e >= 255 (positive): e[8] | e[9] | (e[0..8] all 1).
    let all_low = b.and_many(&e[..8])?;
    let hi = b.or(e[8], e[9])?;
    let big_e = b.or(all_low, hi)?;
    let ovf = b.and(big_e, not_under)?;
    b.release_all([all_low, hi, big_e, not_under]);

    // Round to nearest even: W = [round, guard, mant24...]; the bit below
    // the mantissa LSB is `guard = w[1]`, the rest is `round|sticky`.
    let guard = w[1];
    let rs = b.or(w[0], sticky2)?;
    let lsb = w[2];
    let rs_or_lsb = b.or(rs, lsb)?;
    let round_up = b.and(guard, rs_or_lsb)?;
    b.release_all([rs, rs_or_lsb, sticky2]);

    // packed31 = [mant23, exp8] then increment by round_up. Mantissa
    // overflow carries into the exponent — the IEEE-ordered bit pattern
    // makes subnormal→normal and 254→inf promotions automatic.
    let mut packed: Bits = w[2..25].to_vec();
    packed.extend(ef.iter().copied());
    let rounded = inc_if(b, &packed, round_up)?;
    b.release(round_up);
    b.release_all(ef);

    // Overflow to infinity: force exponent 255, mantissa 0.
    let mut out: Bits = Vec::with_capacity(32);
    for (i, &c) in rounded.iter().enumerate() {
        if i < 23 {
            out.push(b.and_not(c, ovf)?);
        } else {
            out.push(b.or(c, ovf)?);
        }
    }
    b.release_all(rounded);
    b.release_all(w);
    b.release(ovf);
    b.release(under);
    // Sign: copy so the caller owns every returned cell.
    let ns = b.not(sign)?;
    let s = b.not(ns)?;
    b.release(ns);
    out.push(s);
    Ok(out)
}

/// Overrides `bits` with an IEEE special pattern where `cond` holds:
/// `cond ? pattern(sign_cell) : bits`. The pattern has exponent 255 and a
/// compile-time mantissa (`0` for ∞, `0x40_0000` for the canonical quiet
/// NaN); pass `None` as `sign_cell` for a positive pattern. Consumes and
/// replaces the owned `bits`.
pub fn override_special(
    b: &mut CircuitBuilder,
    bits: Bits,
    cond: ColAddr,
    man_pattern: u32,
    sign_cell: Option<ColAddr>,
) -> Result<Bits, DriverError> {
    let mut out: Bits = Vec::with_capacity(32);
    for (i, &c) in bits.iter().enumerate() {
        let new = if i == 31 {
            match sign_cell {
                Some(s) => b.mux(cond, s, c)?,
                None => b.and_not(c, cond)?,
            }
        } else if i >= 23 || (man_pattern >> i) & 1 == 1 {
            // Exponent bits and set mantissa-pattern bits -> 1 under cond.
            b.or(c, cond)?
        } else {
            // Cleared mantissa bits -> 0 under cond.
            b.and_not(c, cond)?
        };
        out.push(new);
    }
    b.release_all(bits);
    Ok(out)
}

/// Zeroes `bits` where `cond` holds, with sign `zero_sign`:
/// `cond ? (zero_sign << 31) : bits`. Consumes and replaces `bits`.
pub fn override_zero(
    b: &mut CircuitBuilder,
    bits: Bits,
    cond: ColAddr,
    zero_sign: ColAddr,
) -> Result<Bits, DriverError> {
    let mut out: Bits = Vec::with_capacity(32);
    for (i, &c) in bits.iter().enumerate() {
        if i == 31 {
            out.push(b.mux(cond, zero_sign, c)?);
        } else {
            out.push(b.and_not(c, cond)?);
        }
    }
    b.release_all(bits);
    Ok(out)
}
