//! Bitwise routines on raw words (Table II "Bitwise", both datatypes):
//! fully partition-parallel — a handful of whole-register micro-operations
//! regardless of the word width, the cheapest operations in the ISA.

use crate::builder::CircuitBuilder;
use crate::DriverError;
use pim_arch::RegId;
use pim_isa::RegOp;

/// Compiles `not`/`and`/`or`/`xor`. All variants defer writing `dst` until
/// every source read has happened, so aliasing only matters for the
/// single-input `not` (where the input would also be the gate output).
pub fn compile(
    b: &mut CircuitBuilder,
    op: RegOp,
    a: RegId,
    x: RegId,
    dst: RegId,
    aliased: bool,
) -> Result<(), DriverError> {
    match op {
        RegOp::Not => {
            if aliased {
                // dst == a: route through a temporary complement.
                let t = b.alloc_reg()?;
                let t2 = b.alloc_reg()?;
                b.init_reg(t, true);
                b.par_not(a, t); // !a
                b.init_reg(t2, true);
                b.par_not(t, t2); // a
                b.init_reg(dst, true);
                b.par_not(t2, dst); // !a
                b.release_reg(t);
                b.release_reg(t2);
            } else {
                b.init_reg(dst, true);
                b.par_not(a, dst);
            }
        }
        RegOp::Or => {
            let t = b.alloc_reg()?;
            b.init_reg(t, true);
            b.par_nor(a, x, t);
            b.init_reg(dst, true);
            b.par_not(t, dst);
            b.release_reg(t);
        }
        RegOp::And => {
            let t1 = b.alloc_reg()?;
            let t2 = b.alloc_reg()?;
            b.init_reg(t1, true);
            b.par_not(a, t1);
            b.init_reg(t2, true);
            b.par_not(x, t2);
            b.init_reg(dst, true);
            b.par_nor(t1, t2, dst);
            b.release_reg(t1);
            b.release_reg(t2);
        }
        RegOp::Xor => {
            let t1 = b.alloc_reg()?;
            let t2 = b.alloc_reg()?;
            let t3 = b.alloc_reg()?;
            b.init_reg(t1, true);
            b.par_nor(a, x, t1); // !(a | x)
            b.init_reg(t2, true);
            b.par_nor(a, t1, t2); // !a & x
            b.init_reg(t3, true);
            b.par_nor(x, t1, t3); // a & !x
            b.init_reg(t1, true);
            b.par_nor(t2, t3, t1); // xnor
            b.init_reg(dst, true);
            b.par_not(t1, dst); // xor
            b.release_reg(t1);
            b.release_reg(t2);
            b.release_reg(t3);
        }
        _ => unreachable!("bitwise::compile only handles not/and/or/xor"),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::routines::testutil::{eval_binop, eval_binop_aliased, eval_unop, int_pairs};
    use crate::ParallelismMode;
    use pim_isa::{DType, RegOp};

    #[test]
    fn bitwise_matches() {
        type BitCase = (RegOp, fn(u32, u32) -> u32);
        let ops: [BitCase; 3] = [
            (RegOp::And, |a, b| a & b),
            (RegOp::Or, |a, b| a | b),
            (RegOp::Xor, |a, b| a ^ b),
        ];
        for (op, native) in ops {
            for (a, x) in int_pairs(12) {
                for dtype in [DType::Int32, DType::Float32] {
                    let got = eval_binop(op, dtype, ParallelismMode::BitSerial, a, x);
                    assert_eq!(got, native(a, x), "{op}({a:#x}, {x:#x})");
                }
            }
        }
    }

    #[test]
    fn not_matches() {
        for (a, _) in int_pairs(8) {
            assert_eq!(eval_unop(RegOp::Not, DType::Int32, a), !a);
        }
    }

    #[test]
    fn aliased_destinations() {
        for (a, x) in int_pairs(6) {
            assert_eq!(eval_binop_aliased(RegOp::And, DType::Int32, a, x), a & x);
            assert_eq!(eval_binop_aliased(RegOp::Xor, DType::Int32, a, x), a ^ x);
            assert_eq!(
                eval_binop_aliased(RegOp::Add, DType::Int32, a, x),
                a.wrapping_add(x)
            );
            assert_eq!(
                eval_binop_aliased(RegOp::Sub, DType::Int32, a, x),
                a.wrapping_sub(x)
            );
            assert_eq!(
                eval_binop_aliased(RegOp::Mul, DType::Int32, a, x),
                a.wrapping_mul(x)
            );
        }
        // Unary alias: dst == src.
        let c = crate::routines::testutil::eval_unop_aliased(RegOp::Not, DType::Int32, 0xF0F0_1234);
        assert_eq!(c, !0xF0F0_1234u32);
        let c = crate::routines::testutil::eval_unop_aliased(RegOp::Neg, DType::Int32, 77);
        assert_eq!(c as i32, -77);
    }

    #[test]
    fn bitwise_is_cheap() {
        // Bitwise ops must cost O(1) micro-operations, not O(N).
        let cfg = pim_arch::PimConfig::small();
        let r = crate::routines::compile_rtype(
            &cfg,
            crate::ParallelismMode::BitSerial,
            RegOp::Xor,
            DType::Int32,
            2,
            &[0, 1],
        )
        .unwrap();
        assert!(
            r.ops.len() <= 12,
            "xor took {} micro-operations",
            r.ops.len()
        );
    }
}
