//! Miscellaneous routines (Table II): sign, zero-test, absolute value, and
//! the three-operand multiplexer PyPIM adds to complement the AritPIM suite.

use super::{common, src_bits, write_bool, write_word};
use crate::builder::CircuitBuilder;
use crate::DriverError;
use pim_arch::{ColAddr, RegId};

/// Integer `sign(a)`: −1, 0, or +1.
pub fn sign(b: &mut CircuitBuilder, a: RegId, dst: RegId) -> Result<(), DriverError> {
    let ab = src_bits(b, a);
    let s = ab[31];
    let nz = b.or_many(&ab)?;
    // Result bits: bit0 = s | nz? No: sign = -1 (all ones) when s;
    // +1 (bit0 only) when !s && nz; 0 otherwise.
    // bit0 = s | nz; bits 1..32 = s.
    let bit0 = b.or(s, nz)?;
    b.release(nz);
    b.init_reg(dst, true);
    b.copy_into(bit0, ColAddr::new(0, dst))?;
    b.release(bit0);
    let ns = b.not(s)?;
    for i in 1..32u8 {
        b.not_into(ns, ColAddr::new(i, dst));
    }
    b.release(ns);
    Ok(())
}

/// Integer zero test: `dst = (a == 0) as int32`.
pub fn zero_int(b: &mut CircuitBuilder, a: RegId, dst: RegId) -> Result<(), DriverError> {
    let ab = src_bits(b, a);
    let z = b.nor_many(&ab)?;
    write_bool(b, dst, z)?;
    b.release(z);
    Ok(())
}

/// Float zero test: `dst = 1.0f32` when `a == ±0.0`, else `0.0`.
pub fn zero_float(b: &mut CircuitBuilder, a: RegId, dst: RegId) -> Result<(), DriverError> {
    let ab = src_bits(b, a);
    // ±0: all bits except the sign are zero.
    let z = b.nor_many(&ab[..31])?;
    b.init_reg(dst, false);
    // 1.0f32 = 0x3F80_0000: bits 23..=29 set when z.
    let nz = b.not(z)?;
    for bit in 23..=29u8 {
        let cell = ColAddr::new(bit, dst);
        b.init_cell(cell, true);
        b.not_into(nz, cell);
    }
    b.release(nz);
    b.release(z);
    Ok(())
}

/// Integer absolute value: `|a|` (streams; `|i32::MIN|` wraps to itself).
pub fn abs(b: &mut CircuitBuilder, a: RegId, dst: RegId) -> Result<(), DriverError> {
    let ab = src_bits(b, a);
    let s = ab[31];
    let neg = common::negate(b, &ab)?;
    let sel = common::mux_bits(b, s, &neg, &ab)?;
    b.release_all(neg);
    write_word(b, dst, &sel)?;
    b.release_all(sel);
    Ok(())
}

/// Three-operand multiplexer: `dst = (cond != 0) ? a : x`, bitwise select.
/// Works for both datatypes (pure bit routing). The nonzero test is hoisted
/// so the per-bit phase reads only `a_i`/`x_i`, making the routine
/// alias-safe for all three sources.
pub fn mux(
    b: &mut CircuitBuilder,
    cond: RegId,
    a: RegId,
    x: RegId,
    dst: RegId,
    aliased: bool,
) -> Result<(), DriverError> {
    let cb = src_bits(b, cond);
    let ab = src_bits(b, a);
    let xb = src_bits(b, x);
    // The nonzero test is hoisted, so the per-bit phase below reads only
    // a_i and x_i before writing dst_i — streaming is alias-safe for all
    // three sources.
    let nz = b.or_many(&cb)?;
    let out = super::StreamOut::new(b, dst, aliased);
    for i in 0..32 {
        // Compute into scratch first: the (lazily initialized) target may
        // alias this bit's inputs.
        let v = b.mux(nz, ab[i], xb[i])?;
        let t = out.target(b, i);
        b.copy_into(v, t)?;
        b.release(v);
    }
    b.release(nz);
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::routines::testutil::{eval_mux, eval_unop, int_edge_values};
    use pim_isa::DType;
    use pim_isa::RegOp;

    #[test]
    fn sign_matches() {
        for a in int_edge_values() {
            let got = eval_unop(RegOp::Sign, DType::Int32, a) as i32;
            assert_eq!(got, (a as i32).signum(), "sign({})", a as i32);
        }
    }

    #[test]
    fn zero_matches() {
        for a in int_edge_values() {
            let got = eval_unop(RegOp::Zero, DType::Int32, a);
            assert_eq!(got, (a == 0) as u32, "zero({a})");
        }
    }

    #[test]
    fn zero_float_matches() {
        for (bits, expect) in [
            (0.0f32.to_bits(), 1.0f32),
            ((-0.0f32).to_bits(), 1.0),
            (1.5f32.to_bits(), 0.0),
            (f32::NAN.to_bits(), 0.0),
            (f32::MIN_POSITIVE.to_bits() >> 1, 0.0), // subnormal
        ] {
            let got = eval_unop(RegOp::Zero, DType::Float32, bits);
            assert_eq!(f32::from_bits(got), expect, "zero({bits:#x})");
        }
    }

    #[test]
    fn abs_matches() {
        for a in int_edge_values() {
            let got = eval_unop(RegOp::Abs, DType::Int32, a) as i32;
            assert_eq!(got, (a as i32).wrapping_abs(), "abs({})", a as i32);
        }
    }

    #[test]
    fn mux_selects() {
        for cond in [0u32, 1, 0xFFFF_FFFF, 0x8000_0000] {
            let got = eval_mux(cond, 0x1234_5678, 0x9ABC_DEF0);
            let expect = if cond != 0 { 0x1234_5678 } else { 0x9ABC_DEF0 };
            assert_eq!(got, expect, "mux({cond:#x})");
        }
    }
}
