//! Shared gate-level building blocks for the arithmetic routines: ripple
//! adders/subtractors, carry-only chains, comparators, shifters, and
//! normalizers — all composed from the stateful `NOT`/`NOR` set.

use crate::builder::{Bits, CircuitBuilder};
use crate::DriverError;
use pim_arch::ColAddr;

/// A freshly allocated cell holding logical 0 (owned by the caller, unlike
/// the shared [`CircuitBuilder::zero`] constant).
pub fn owned_zero(b: &mut CircuitBuilder) -> Result<ColAddr, DriverError> {
    let c = b.alloc()?;
    b.init_cell(c, false);
    Ok(c)
}

/// Allocates `n` owned cells holding logical 0.
pub fn owned_zeros(b: &mut CircuitBuilder, n: usize) -> Result<Bits, DriverError> {
    (0..n).map(|_| owned_zero(b)).collect()
}

/// Ripple-carry addition `a + x + cin` with the sums streamed into `out`
/// (which must be pre-initialized to 1, one cell per bit). Returns the
/// carry-out cell. `9·n` gates — the bit-serial element-parallel adder of
/// AritPIM (§II-B).
///
/// Safe when `out` aliases `a` or `x` bit-for-bit: bit `i` of the inputs is
/// consumed before bit `i` of `out` is written — but in that case the caller
/// must initialize `out[i]` lazily (see `StreamOut` in the dispatch module).
pub fn ripple_add_into(
    b: &mut CircuitBuilder,
    a: &[ColAddr],
    x: &[ColAddr],
    cin: Option<ColAddr>,
    out: &mut dyn FnMut(&mut CircuitBuilder, usize) -> Result<ColAddr, DriverError>,
) -> Result<ColAddr, DriverError> {
    assert_eq!(a.len(), x.len(), "operand widths differ");
    let mut carry = match cin {
        Some(c) => c,
        None => b.zero()?,
    };
    let mut carry_owned = false;
    for i in 0..a.len() {
        // Read the inputs first: the target may alias this bit's input
        // cell, and its (lazy) initialization must not destroy it.
        let pending = b.full_adder_prep(a[i], x[i], carry)?;
        let target = out(b, i)?;
        let cout = b.full_adder_finish(pending, target)?;
        if carry_owned {
            b.release(carry);
        }
        carry = cout;
        carry_owned = true;
    }
    if !carry_owned {
        // Zero-width add: return an owned copy of cin/0.
        let c = owned_zero(b)?;
        if let Some(cin) = cin {
            b.init_cell(c, true);
            let n = b.not(cin)?;
            // c currently 1; NOT clears it when !cin is 1, i.e. c = cin.
            b.not_into(n, c);
            b.release(n);
        }
        return Ok(c);
    }
    Ok(carry)
}

/// Ripple-carry addition into freshly allocated result bits; returns
/// `(sum, carry)`.
pub fn ripple_add(
    b: &mut CircuitBuilder,
    a: &[ColAddr],
    x: &[ColAddr],
    cin: Option<ColAddr>,
) -> Result<(Bits, ColAddr), DriverError> {
    let mut sums: Bits = Vec::with_capacity(a.len());
    for _ in 0..a.len() {
        sums.push(b.alloc()?);
    }
    let s = sums.clone();
    let carry = ripple_add_into(b, a, x, cin, &mut move |_b, i| Ok(s[i]))?;
    Ok((sums, carry))
}

/// Two's-complement subtraction `a - x` into fresh bits; returns
/// `(difference, carry)` where `carry == 1` iff `a >= x` (unsigned).
/// `10·n` gates.
pub fn ripple_sub(
    b: &mut CircuitBuilder,
    a: &[ColAddr],
    x: &[ColAddr],
) -> Result<(Bits, ColAddr), DriverError> {
    let nx: Bits = x.iter().map(|&c| b.not(c)).collect::<Result<_, _>>()?;
    let one = b.one()?;
    let (diff, carry) = ripple_add(b, a, &nx, Some(one))?;
    b.release_all(nx);
    Ok((diff, carry))
}

/// Carry-only chain: the carry-out of `a + x + cin` without computing sums
/// (6 gates per bit). With `x = !y, cin = 1` this is the `a >= y` unsigned
/// comparator.
pub fn carry_chain(
    b: &mut CircuitBuilder,
    a: &[ColAddr],
    x: &[ColAddr],
    cin: ColAddr,
) -> Result<ColAddr, DriverError> {
    let mut carry = cin;
    let mut carry_owned = false;
    for i in 0..a.len() {
        let t1 = b.nor(a[i], x[i])?;
        let t2 = b.nor(a[i], t1)?;
        let t3 = b.nor(x[i], t1)?;
        let t4 = b.nor(t2, t3)?; // xnor
        let t5 = b.nor(t4, carry)?;
        let cout = b.nor(t1, t5)?; // majority
        b.release_all([t1, t2, t3, t4, t5]);
        if carry_owned {
            b.release(carry);
        }
        carry = cout;
        carry_owned = true;
    }
    Ok(carry)
}

/// Unsigned `a >= x` (1 iff `a >= x`), via the borrow of `a - x`.
pub fn ge_unsigned(
    b: &mut CircuitBuilder,
    a: &[ColAddr],
    x: &[ColAddr],
) -> Result<ColAddr, DriverError> {
    let nx: Bits = x.iter().map(|&c| b.not(c)).collect::<Result<_, _>>()?;
    let one = b.one()?;
    let carry = carry_chain(b, a, &nx, one)?;
    b.release_all(nx);
    Ok(carry)
}

/// Unsigned `a < x`.
pub fn lt_unsigned(
    b: &mut CircuitBuilder,
    a: &[ColAddr],
    x: &[ColAddr],
) -> Result<ColAddr, DriverError> {
    let ge = ge_unsigned(b, a, x)?;
    let lt = b.not(ge)?;
    b.release(ge);
    Ok(lt)
}

/// Bit-equality of two operands: `and`-tree of per-bit `XNOR`s.
pub fn eq_bits(
    b: &mut CircuitBuilder,
    a: &[ColAddr],
    x: &[ColAddr],
) -> Result<ColAddr, DriverError> {
    assert_eq!(a.len(), x.len());
    let mut acc: Option<ColAddr> = None;
    for i in 0..a.len() {
        let e = b.xnor(a[i], x[i])?;
        acc = Some(match acc {
            None => e,
            Some(prev) => {
                let next = b.and(prev, e)?;
                b.release(prev);
                b.release(e);
                next
            }
        });
    }
    match acc {
        Some(c) => Ok(c),
        None => b.one(),
    }
}

/// Two's-complement negation `-a` into fresh bits (`!a + 1`).
pub fn negate(b: &mut CircuitBuilder, a: &[ColAddr]) -> Result<Bits, DriverError> {
    let na: Bits = a.iter().map(|&c| b.not(c)).collect::<Result<_, _>>()?;
    let zeros: Bits = vec![b.zero()?; a.len()];
    let one = b.one()?;
    let (sum, carry) = ripple_add(b, &na, &zeros, Some(one))?;
    b.release_all(na);
    b.release(carry);
    Ok(sum)
}

/// Conditional negation: `cond ? -a : a` into fresh bits.
pub fn negate_if(
    b: &mut CircuitBuilder,
    cond: ColAddr,
    a: &[ColAddr],
) -> Result<Bits, DriverError> {
    let neg = negate(b, a)?;
    let out = mux_bits(b, cond, &neg, a)?;
    b.release_all(neg);
    Ok(out)
}

/// Adds an unsigned constant to `a` into fresh bits (dropping the carry).
/// Cheaper than a full adder chain: 5–8 gates per bit depending on the
/// constant bit.
pub fn add_const(b: &mut CircuitBuilder, a: &[ColAddr], mut k: u64) -> Result<Bits, DriverError> {
    let mut out = Vec::with_capacity(a.len());
    let mut carry: Option<ColAddr> = None; // None = 0
    for &bit in a {
        let kb = k & 1 == 1;
        k >>= 1;
        let (s, c_new): (ColAddr, Option<ColAddr>) = match (kb, carry) {
            (false, None) => {
                // s = a, c = 0 — copy.
                let n = b.not(bit)?;
                let s = b.not(n)?;
                b.release(n);
                (s, None)
            }
            (true, None) => {
                // s = !a, c = a.
                let s = b.not(bit)?;
                let n = b.not(s)?; // a again, owned
                (s, Some(n))
            }
            (false, Some(c)) => {
                let s = b.xor(bit, c)?;
                let cn = b.and(bit, c)?;
                b.release(c);
                (s, Some(cn))
            }
            (true, Some(c)) => {
                let s = b.xnor(bit, c)?;
                let cn = b.or(bit, c)?;
                b.release(c);
                (s, Some(cn))
            }
        };
        out.push(s);
        carry = c_new;
    }
    if let Some(c) = carry {
        b.release(c);
    }
    Ok(out)
}

/// Per-bit multiplexer `cond ? a : x` into fresh bits.
pub fn mux_bits(
    b: &mut CircuitBuilder,
    cond: ColAddr,
    a: &[ColAddr],
    x: &[ColAddr],
) -> Result<Bits, DriverError> {
    assert_eq!(a.len(), x.len());
    let mut out = Vec::with_capacity(a.len());
    for i in 0..a.len() {
        out.push(b.mux(cond, a[i], x[i])?);
    }
    Ok(out)
}

/// Logical right shift by a variable 5-stage barrel (`amount` bits, LSB
/// first, shifts of 1, 2, 4, 8, 16), collecting every shifted-out bit into
/// the returned sticky cell (OR-accumulated with `sticky_in` when given).
/// Returns `(shifted, sticky)`; the result has the same width as `bits`.
pub fn shift_right_sticky(
    b: &mut CircuitBuilder,
    bits: &[ColAddr],
    amount: &[ColAddr],
    sticky_in: Option<ColAddr>,
) -> Result<(Bits, ColAddr), DriverError> {
    let zero = b.zero()?;
    let mut cur: Bits = bits.to_vec();
    let mut owned = false; // whether `cur` cells are ours to free
    let mut sticky = match sticky_in {
        Some(s) => {
            // Own a copy so the caller's cell is untouched.
            let n = b.not(s)?;
            let o = b.not(n)?;
            b.release(n);
            o
        }
        None => owned_zero(b)?,
    };
    for (stage, &amt) in amount.iter().enumerate() {
        let k = 1usize << stage;
        // Shifted-out bits: OR of the low k bits, gated by amt.
        let low = &cur[..k.min(cur.len())];
        let lost = b.or_many(low)?;
        let lost_gated = b.and(lost, amt)?;
        let new_sticky = b.or(sticky, lost_gated)?;
        b.release_all([lost, lost_gated, sticky]);
        sticky = new_sticky;
        // Mux each bit with its k-higher neighbor (zero beyond the top).
        let mut next: Bits = Vec::with_capacity(cur.len());
        for i in 0..cur.len() {
            let hi = if i + k < cur.len() { cur[i + k] } else { zero };
            next.push(b.mux(amt, hi, cur[i])?);
        }
        if owned {
            b.release_all(cur);
        }
        cur = next;
        owned = true;
    }
    if !owned {
        // No stages: return an owned copy.
        let mut copy = Vec::with_capacity(cur.len());
        for &c in &cur {
            let n = b.not(c)?;
            let o = b.not(n)?;
            b.release(n);
            copy.push(o);
        }
        cur = copy;
    }
    Ok((cur, sticky))
}

/// Normalizes `bits` so its most-significant set bit moves to the top
/// position, returning `(normalized, leading_zero_count)` where the count
/// (LSB-first) is only meaningful when `bits != 0`. Shift amounts of
/// 1, 2, 4, … up to the largest power of two below `bits.len()` are probed
/// high-to-low, so the count spans `ceil(log2(len))` bits.
pub fn normalize_left(
    b: &mut CircuitBuilder,
    bits: &[ColAddr],
) -> Result<(Bits, Bits), DriverError> {
    let n = bits.len();
    let zero = b.zero()?;
    let stages = (usize::BITS - (n - 1).leading_zeros()) as usize; // ceil(log2(n))
    let mut cur: Bits = bits.to_vec();
    let mut owned = false;
    let mut count_rev: Bits = Vec::with_capacity(stages);
    for s in (0..stages).rev() {
        let k = 1usize << s;
        // cond = the top k bits are all zero (and k < n leaves data below).
        let top = &cur[n.saturating_sub(k)..];
        let cond = b.nor_many(top)?;
        // Shift left by k where cond: bit i takes bit i-k (zero below).
        let mut next: Bits = Vec::with_capacity(n);
        for i in 0..n {
            let lo = if i >= k { cur[i - k] } else { zero };
            next.push(b.mux(cond, lo, cur[i])?);
        }
        if owned {
            b.release_all(cur);
        }
        cur = next;
        owned = true;
        count_rev.push(cond);
    }
    count_rev.reverse(); // LSB first
    Ok((cur, count_rev))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;
    use pim_arch::{Backend, MicroOp, PimConfig, RangeMask};
    use pim_sim::PimSimulator;

    fn cfg() -> PimConfig {
        // One crossbar, one row: plenty for value-level checks.
        PimConfig::small().with_crossbars(1).with_rows(4)
    }

    /// Evaluates `build` on a row where registers 0..k are preloaded with
    /// `inputs`; returns the probed cells as a u64 (LSB = first probe).
    fn eval(inputs: &[u32], build: impl FnOnce(&mut CircuitBuilder) -> Vec<ColAddr>) -> u64 {
        let c = cfg();
        let mut b = CircuitBuilder::new(&c);
        let probes = build(&mut b);
        assert!(probes.len() <= 64);
        let routine = b.finish();
        let mut sim = PimSimulator::new(c.clone()).unwrap();
        for reg in c.user_regs..c.regs {
            sim.poke(0, 0, reg, 0xDEAD_BEEF); // dirty scratch
        }
        for (reg, v) in inputs.iter().enumerate() {
            sim.poke(0, 0, reg, *v);
        }
        sim.execute(&MicroOp::XbMask(RangeMask::single(0))).unwrap();
        sim.execute(&MicroOp::RowMask(RangeMask::single(0)))
            .unwrap();
        sim.execute_batch(&routine.ops).unwrap();
        let mut out = 0u64;
        for (i, p) in probes.iter().enumerate() {
            let bit = sim.peek(0, 0, p.offset as usize) >> p.part & 1;
            out |= (bit as u64) << i;
        }
        out
    }

    fn rnd_pairs() -> Vec<(u32, u32)> {
        use rand::{Rng, SeedableRng};
        let mut r = rand::rngs::StdRng::seed_from_u64(42);
        let mut v: Vec<(u32, u32)> = (0..12).map(|_| (r.gen(), r.gen())).collect();
        v.extend([
            (0, 0),
            (u32::MAX, 1),
            (u32::MAX, u32::MAX),
            (1, u32::MAX),
            (0x8000_0000, 0x8000_0000),
        ]);
        v
    }

    #[test]
    fn ripple_add_matches_wrapping_add() {
        for (a, x) in rnd_pairs() {
            let got = eval(&[a, x], |b| {
                let ab = b.reg_bits(0);
                let xb = b.reg_bits(1);
                let (sum, carry) = ripple_add(b, &ab, &xb, None).unwrap();
                let mut probes = sum;
                probes.push(carry);
                probes
            });
            let expect = (a as u64) + (x as u64);
            assert_eq!(got, expect, "{a} + {x}");
        }
    }

    #[test]
    fn ripple_sub_and_carry() {
        for (a, x) in rnd_pairs() {
            let got = eval(&[a, x], |b| {
                let ab = b.reg_bits(0);
                let xb = b.reg_bits(1);
                let (diff, carry) = ripple_sub(b, &ab, &xb).unwrap();
                let mut probes = diff;
                probes.push(carry);
                probes
            });
            let diff = got & 0xFFFF_FFFF;
            let carry = got >> 32 & 1;
            assert_eq!(diff as u32, a.wrapping_sub(x), "{a} - {x}");
            assert_eq!(carry == 1, a >= x, "carry of {a} - {x}");
        }
    }

    #[test]
    fn comparators() {
        for (a, x) in rnd_pairs() {
            let got = eval(&[a, x], |b| {
                let ab = b.reg_bits(0);
                let xb = b.reg_bits(1);
                let ge = ge_unsigned(b, &ab, &xb).unwrap();
                let lt = lt_unsigned(b, &ab, &xb).unwrap();
                let eq = eq_bits(b, &ab, &xb).unwrap();
                vec![ge, lt, eq]
            });
            assert_eq!(got & 1 == 1, a >= x, "ge {a} {x}");
            assert_eq!(got >> 1 & 1 == 1, a < x, "lt {a} {x}");
            assert_eq!(got >> 2 & 1 == 1, a == x, "eq {a} {x}");
        }
    }

    #[test]
    fn negate_matches_wrapping_neg() {
        for (a, _) in rnd_pairs() {
            let got = eval(&[a], |b| {
                let ab = b.reg_bits(0);
                negate(b, &ab).unwrap()
            });
            assert_eq!(got as u32, (a as i32).wrapping_neg() as u32, "-{a}");
        }
    }

    #[test]
    fn negate_if_selects() {
        for (a, _) in rnd_pairs().into_iter().take(4) {
            for cond in [0u32, 1] {
                let got = eval(&[a, cond], |b| {
                    let ab = b.reg_bits(0);
                    let c = ColAddr::new(0, 1);
                    negate_if(b, c, &ab).unwrap()
                });
                let expect = if cond == 1 {
                    (a as i32).wrapping_neg() as u32
                } else {
                    a
                };
                assert_eq!(got as u32, expect, "negate_if({cond}, {a})");
            }
        }
    }

    #[test]
    fn add_const_matches() {
        for (a, _) in rnd_pairs().into_iter().take(6) {
            for k in [0u64, 1, 2, 127, 0xFFFF_FFFF, 0x8000_0001] {
                let got = eval(&[a], |b| {
                    let ab = b.reg_bits(0);
                    add_const(b, &ab, k).unwrap()
                });
                assert_eq!(got as u32, a.wrapping_add(k as u32), "{a} + {k}");
            }
        }
    }

    #[test]
    fn mux_bits_selects_words() {
        let (a, x) = (0x1234_5678u32, 0x9ABC_DEF0u32);
        for cond in [0u32, 1] {
            let got = eval(&[a, x, cond], |b| {
                let ab = b.reg_bits(0);
                let xb = b.reg_bits(1);
                let c = ColAddr::new(0, 2);
                mux_bits(b, c, &ab, &xb).unwrap()
            });
            assert_eq!(got as u32, if cond == 1 { a } else { x });
        }
    }

    #[test]
    fn shift_right_sticky_matches() {
        use rand::{Rng, SeedableRng};
        let mut r = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..12 {
            let v: u32 = r.gen::<u32>() & 0x07FF_FFFF; // 27-bit field
            let amt: u32 = r.gen_range(0..32);
            let pre_sticky = r.gen_range(0..2u32);
            let got = eval(&[v, amt, pre_sticky], |b| {
                let bits: Bits = b.reg_bits(0)[..27].to_vec();
                let amount: Bits = b.reg_bits(1)[..5].to_vec();
                let s_in = ColAddr::new(0, 2);
                let (shifted, sticky) = shift_right_sticky(b, &bits, &amount, Some(s_in)).unwrap();
                let mut probes = shifted;
                probes.push(sticky);
                probes
            });
            let shifted = if amt >= 27 { 0 } else { v >> amt };
            let lost = if amt == 0 {
                0
            } else if amt >= 27 {
                v
            } else {
                v & ((1 << amt) - 1)
            };
            let expect_sticky = (lost != 0) || pre_sticky == 1;
            assert_eq!(got & 0x07FF_FFFF, shifted as u64, "{v} >> {amt}");
            assert_eq!(got >> 27 & 1 == 1, expect_sticky, "sticky {v} >> {amt}");
        }
    }

    #[test]
    fn normalize_left_matches() {
        use rand::{Rng, SeedableRng};
        let mut r = rand::rngs::StdRng::seed_from_u64(11);
        for width in [24usize, 27, 28] {
            for _ in 0..8 {
                let v: u32 = r.gen::<u32>() & ((1 << width) - 1);
                if v == 0 {
                    continue;
                }
                let got = eval(&[v], |b| {
                    let bits: Bits = b.reg_bits(0)[..width].to_vec();
                    let (norm, count) = normalize_left(b, &bits).unwrap();
                    let mut probes = norm;
                    probes.extend(count);
                    probes
                });
                let lz = v.leading_zeros() as usize - (32 - width);
                let norm = (v as u64) << lz;
                let count_bits = (usize::BITS - (width - 1).leading_zeros()) as usize;
                assert_eq!(got & ((1 << width) - 1), norm, "normalize {v:#x} w={width}");
                assert_eq!(
                    got >> width & ((1 << count_bits) - 1),
                    lz as u64,
                    "lzc {v:#x} w={width}"
                );
            }
        }
    }
}
