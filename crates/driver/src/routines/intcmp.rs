//! Signed integer comparison routines (Table II "Comparison"): the result
//! is the integer 0/1 in the destination register.

use super::{common, src_bits, write_bool};
use crate::builder::{Bits, CircuitBuilder};
use crate::DriverError;
use pim_arch::RegId;
use pim_isa::RegOp;

/// Signed ordered comparisons (`<`, `<=`, `>`, `>=`) via the classic
/// flip-the-sign-bit trick: `a <s b ⇔ (a ^ MSB) <u (b ^ MSB)`, evaluated
/// with a 6-gate-per-bit carry-only chain.
pub fn ordered(
    b: &mut CircuitBuilder,
    op: RegOp,
    a: RegId,
    x: RegId,
    dst: RegId,
) -> Result<(), DriverError> {
    let mut ab = src_bits(b, a);
    let mut xb = src_bits(b, x);
    // Flip both sign bits (map signed order onto unsigned order).
    let na = b.not(ab[31])?;
    let nx = b.not(xb[31])?;
    ab[31] = na;
    xb[31] = nx;
    // lt(a, x) = !(a >= x); swap operands for gt/le.
    let (lhs, rhs): (&Bits, &Bits) = match op {
        RegOp::Lt | RegOp::Ge => (&ab, &xb),
        RegOp::Gt | RegOp::Le => (&xb, &ab),
        _ => unreachable!("ordered() only handles <, <=, >, >="),
    };
    let ge = common::ge_unsigned(b, lhs, rhs)?;
    let result = match op {
        RegOp::Ge | RegOp::Le => {
            // a >= x (resp. a <= x via swap) is the carry directly.
            ge
        }
        RegOp::Lt | RegOp::Gt => {
            let lt = b.not(ge)?;
            b.release(ge);
            lt
        }
        _ => unreachable!(),
    };
    write_bool(b, dst, result)?;
    b.release(result);
    b.release(na);
    b.release(nx);
    Ok(())
}

/// Equality / inequality via an XNOR-AND tree.
pub fn equality(
    b: &mut CircuitBuilder,
    op: RegOp,
    a: RegId,
    x: RegId,
    dst: RegId,
) -> Result<(), DriverError> {
    let ab = src_bits(b, a);
    let xb = src_bits(b, x);
    let eq = common::eq_bits(b, &ab, &xb)?;
    let result = match op {
        RegOp::Eq => eq,
        RegOp::Ne => {
            let ne = b.not(eq)?;
            b.release(eq);
            ne
        }
        _ => unreachable!("equality() only handles == and !="),
    };
    write_bool(b, dst, result)?;
    b.release(result);
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::routines::testutil::{eval_binop, int_pairs};
    use crate::ParallelismMode;
    use pim_isa::{DType, RegOp};

    #[test]
    fn signed_comparisons_match() {
        type CmpCase = (RegOp, fn(i32, i32) -> bool);
        let ops: [CmpCase; 6] = [
            (RegOp::Lt, |a, b| a < b),
            (RegOp::Le, |a, b| a <= b),
            (RegOp::Gt, |a, b| a > b),
            (RegOp::Ge, |a, b| a >= b),
            (RegOp::Eq, |a, b| a == b),
            (RegOp::Ne, |a, b| a != b),
        ];
        let mut pairs = int_pairs(10);
        pairs.extend([
            (5, 5),
            (0x8000_0000, 0x7FFF_FFFF),
            (0x7FFF_FFFF, 0x8000_0000),
        ]);
        for (op, native) in ops {
            for &(a, x) in &pairs {
                let got = eval_binop(op, DType::Int32, ParallelismMode::BitSerial, a, x);
                let expect = native(a as i32, x as i32) as u32;
                assert_eq!(got, expect, "{op}({}, {})", a as i32, x as i32);
            }
        }
    }
}
