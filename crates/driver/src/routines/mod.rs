//! Gate-level routine library: translates each Table II R-type operation
//! into a micro-operation sequence via the [`CircuitBuilder`].
//!
//! The integer and floating-point arithmetic follows the bit-serial
//! element-parallel AritPIM approach (§II-B): every routine is a branch-free
//! circuit executed identically by all active threads, so one compiled
//! sequence serves the whole memory. The partition-parallel
//! (bit-parallel element-parallel) adder exploits semi-parallel half-gate
//! operations instead ([`ParallelismMode::BitParallel`]).
//!
//! Aliasing: routines either stream results bit-by-bit after consuming the
//! corresponding input bits, or buffer results in scratch and write the
//! destination at the very end — so `dst` may equal any source register.

pub mod common;

#[cfg(test)]
pub(crate) mod testutil;

mod bitwise;
mod float;
mod intarith;
mod intcmp;
mod misc;

use crate::builder::{Bits, CircuitBuilder, Routine};
use crate::{DriverError, ParallelismMode};
use pim_arch::{ColAddr, PimConfig, RegId};
use pim_isa::{DType, RegOp};

/// Compiles one R-type operation into a routine (a mask-independent
/// micro-operation sequence).
///
/// # Errors
///
/// Returns [`DriverError::Unsupported`] for combinations outside Table II
/// and [`DriverError::ScratchExhausted`] if the configuration reserves too
/// few scratch registers for the requested routine.
pub fn compile_rtype(
    cfg: &PimConfig,
    mode: ParallelismMode,
    op: RegOp,
    dtype: DType,
    dst: RegId,
    srcs: &[RegId],
) -> Result<Routine, DriverError> {
    if !op.supports(dtype) {
        return Err(DriverError::Unsupported {
            what: format!("{op} on {dtype}"),
        });
    }
    assert!(
        srcs.len() >= op.arity(),
        "missing source registers for {op}"
    );
    let mut b = CircuitBuilder::new(cfg);
    let aliased = srcs[..op.arity()].contains(&dst);
    let (s0, s1, s2) = (
        srcs.first().copied().unwrap_or(0),
        srcs.get(1).copied().unwrap_or(0),
        srcs.get(2).copied().unwrap_or(0),
    );
    match (op, dtype) {
        (RegOp::Add, DType::Int32) => match mode {
            ParallelismMode::BitSerial => intarith::add_serial(&mut b, s0, s1, dst, aliased)?,
            ParallelismMode::BitParallel => intarith::add_parallel(&mut b, s0, s1, dst)?,
        },
        (RegOp::Sub, DType::Int32) => intarith::sub_serial(&mut b, s0, s1, dst, aliased)?,
        (RegOp::Mul, DType::Int32) => intarith::mul(&mut b, s0, s1, dst)?,
        (RegOp::Div, DType::Int32) => intarith::divmod(&mut b, s0, s1, dst, false)?,
        (RegOp::Mod, DType::Int32) => intarith::divmod(&mut b, s0, s1, dst, true)?,
        (RegOp::Neg, DType::Int32) => intarith::neg(&mut b, s0, dst, aliased)?,
        (RegOp::Lt | RegOp::Le | RegOp::Gt | RegOp::Ge, DType::Int32) => {
            intcmp::ordered(&mut b, op, s0, s1, dst)?
        }
        (RegOp::Eq | RegOp::Ne, DType::Int32) => intcmp::equality(&mut b, op, s0, s1, dst)?,
        (RegOp::Not | RegOp::And | RegOp::Or | RegOp::Xor, _) => {
            bitwise::compile(&mut b, op, s0, s1, dst, aliased)?
        }
        (RegOp::Sign, DType::Int32) => misc::sign(&mut b, s0, dst)?,
        (RegOp::Zero, DType::Int32) => misc::zero_int(&mut b, s0, dst)?,
        (RegOp::Abs, DType::Int32) => misc::abs(&mut b, s0, dst)?,
        (RegOp::Mux, _) => misc::mux(&mut b, s0, s1, s2, dst, aliased)?,
        (RegOp::Add, DType::Float32) => float::add(&mut b, s0, s1, dst, false)?,
        (RegOp::Sub, DType::Float32) => float::add(&mut b, s0, s1, dst, true)?,
        (RegOp::Mul, DType::Float32) => float::mul(&mut b, s0, s1, dst)?,
        (RegOp::Div, DType::Float32) => float::div(&mut b, s0, s1, dst)?,
        (RegOp::Neg, DType::Float32) => float::neg(&mut b, s0, dst)?,
        (RegOp::Abs, DType::Float32) => float::abs(&mut b, s0, dst)?,
        (RegOp::Sign, DType::Float32) => float::sign(&mut b, s0, dst)?,
        (RegOp::Zero, DType::Float32) => misc::zero_float(&mut b, s0, dst)?,
        (RegOp::Lt | RegOp::Le | RegOp::Gt | RegOp::Ge | RegOp::Eq | RegOp::Ne, DType::Float32) => {
            float::compare(&mut b, op, s0, s1, dst)?
        }
        (RegOp::Mod, DType::Float32) => {
            return Err(DriverError::Unsupported {
                what: format!("{op} on {dtype}"),
            })
        }
    }
    Ok(b.finish())
}

/// Streaming destination: hands out pre-initialized destination cells bit
/// by bit. When `dst` aliases a source register the initialization happens
/// lazily per bit (after the routine consumed that input bit); otherwise a
/// single whole-register `INIT1` covers all 32 cells.
pub(crate) struct StreamOut {
    reg: RegId,
    lazy: bool,
}

impl StreamOut {
    pub(crate) fn new(b: &mut CircuitBuilder, dst: RegId, aliased: bool) -> Self {
        if !aliased {
            b.init_reg(dst, true);
        }
        StreamOut {
            reg: dst,
            lazy: aliased,
        }
    }

    /// The destination cell for bit `i`, initialized to 1.
    pub(crate) fn target(&self, b: &mut CircuitBuilder, i: usize) -> ColAddr {
        let c = ColAddr::new(i as u8, self.reg);
        if self.lazy {
            b.init_cell(c, true);
        }
        c
    }
}

/// Writes buffered result bits into the destination register at the end of
/// a routine (safe under aliasing because every source read already
/// happened). Costs 1 INIT + 2 gates per bit.
pub(crate) fn write_word(
    b: &mut CircuitBuilder,
    dst: RegId,
    bits: &[ColAddr],
) -> Result<(), DriverError> {
    assert_eq!(bits.len(), b.config().partitions);
    b.init_reg(dst, true);
    for (i, &c) in bits.iter().enumerate() {
        b.copy_into(c, ColAddr::new(i as u8, dst))?;
    }
    Ok(())
}

/// Writes a Boolean result as the integer 0/1 into the destination.
pub(crate) fn write_bool(
    b: &mut CircuitBuilder,
    dst: RegId,
    cell: ColAddr,
) -> Result<(), DriverError> {
    b.init_reg(dst, false);
    let bit0 = ColAddr::new(0, dst);
    b.init_cell(bit0, true);
    b.copy_into(cell, bit0)
}

/// The 32 bits of a source register.
pub(crate) fn src_bits(b: &CircuitBuilder, reg: RegId) -> Bits {
    b.reg_bits(reg)
}
