//! Dependency-aware shard scheduling for [`PimCluster::execute_batch`].
//!
//! PR 1 accumulated one instruction queue per shard and, at every crossing
//! `MoveWarps`, flushed *all* of them behind a global barrier. The
//! [`BatchScheduler`] replaces that barrier with per-shard dependency
//! tracking:
//!
//! * Shard-local instructions accumulate in per-shard *pending* queues.
//! * A crossing move *drains* only the shards it touches — the owners of
//!   its crossing source and destination warps, as reported by
//!   [`ShardPlan::route_move_warps`](crate::ShardPlan::route_move_warps) —
//!   i.e. their pending queues are submitted and every one of their
//!   in-flight jobs is awaited before the host stages the transfer.
//! * Untouched shards are *launched* instead: their pending queues are
//!   submitted without waiting, so those chips keep streaming queued work
//!   concurrently with the cross-chip transfer.
//!
//! This is safe because the H-tree move rule guarantees a `MoveWarps`'
//! source and destination warp sets are disjoint, and every shard's job
//! channel is FIFO: work racing with the transfer lives entirely on shards
//! whose warps the transfer does not read or write.

use crate::cluster::JobTicket;
use crate::{ClusterError, PimCluster};
use pim_isa::Instruction;
use pim_telemetry::RequestId;

/// Per-shard dependency tracker driving one [`PimCluster::execute_batch`]
/// call: pending (not yet submitted) instruction queues plus in-flight
/// (submitted, not yet awaited) job tickets for every shard. Carries the
/// [`RequestId`] of the batch being executed so every shard job it
/// launches attributes its modeled cycles to that request.
pub(crate) struct BatchScheduler<'c> {
    cluster: &'c PimCluster,
    request: RequestId,
    pending: Vec<Vec<Instruction>>,
    inflight: Vec<Vec<JobTicket>>,
}

impl<'c> BatchScheduler<'c> {
    pub(crate) fn new(cluster: &'c PimCluster, request: RequestId) -> Self {
        let shards = cluster.shards();
        BatchScheduler {
            cluster,
            request,
            pending: vec![Vec::new(); shards],
            inflight: (0..shards).map(|_| Vec::new()).collect(),
        }
    }

    /// Queues one shard-local instruction; nothing is submitted yet.
    pub(crate) fn enqueue(&mut self, shard: usize, instr: Instruction) {
        self.pending[shard].push(instr);
    }

    /// Submits a shard's pending queue without waiting, so the shard
    /// streams it concurrently with whatever the host does next.
    fn launch(&mut self, shard: usize) -> Result<(), ClusterError> {
        if self.pending[shard].is_empty() {
            return Ok(());
        }
        let instrs = std::mem::take(&mut self.pending[shard]);
        let ticket = self.cluster.submit_request(shard, self.request, instrs)?;
        self.inflight[shard].push(ticket);
        Ok(())
    }

    /// Blocks until everything submitted to `shard` so far has executed.
    fn wait(&mut self, shard: usize) -> Result<(), ClusterError> {
        for ticket in std::mem::take(&mut self.inflight[shard]) {
            ticket.wait()?;
        }
        Ok(())
    }

    /// The drain rule. `touched[s]` marks shards the upcoming cross-chip
    /// transfer reads from or writes to: their queues are submitted and
    /// awaited (the transfer must observe their effects, and FIFO job
    /// channels alone cannot order the *gather* against pending work on
    /// destination-only shards). Every untouched shard is merely launched
    /// and keeps streaming during the transfer.
    pub(crate) fn barrier(&mut self, touched: &[bool]) -> Result<(), ClusterError> {
        debug_assert_eq!(touched.len(), self.pending.len());
        // Launch untouched shards first: their work overlaps the drain.
        for (shard, &t) in touched.iter().enumerate() {
            if !t {
                self.launch(shard)?;
            }
        }
        for (shard, &t) in touched.iter().enumerate() {
            if t {
                self.launch(shard)?;
            }
        }
        for (shard, &t) in touched.iter().enumerate() {
            if t {
                self.wait(shard)?;
            }
        }
        Ok(())
    }

    /// Number of shards with pending or in-flight work among `touched` —
    /// the queues a [`barrier`](BatchScheduler::barrier) on that set would
    /// actually drain (telemetry).
    pub(crate) fn busy(&self, touched: &[bool]) -> u64 {
        touched
            .iter()
            .enumerate()
            .filter(|&(s, &t)| t && !(self.pending[s].is_empty() && self.inflight[s].is_empty()))
            .count() as u64
    }

    /// Submits every pending queue and waits for all in-flight work — the
    /// end of the batch.
    pub(crate) fn finish(mut self) -> Result<(), ClusterError> {
        for shard in 0..self.pending.len() {
            self.launch(shard)?;
        }
        for shard in 0..self.pending.len() {
            self.wait(shard)?;
        }
        Ok(())
    }
}
