//! Modeled chip-to-chip interconnect.
//!
//! PR 1 staged every cross-chip `MoveWarps` through the host one
//! gather/scatter word pair at a time. This module models the links a real
//! multi-chip deployment would have: crossing word pairs are grouped into
//! one *message* per `(source shard, destination shard)` pair — one
//! gathered read burst and one scattered write burst — and every burst is
//! charged a modeled cycle cost
//!
//! ```text
//! cost(n words) = latency + ceil(n · WORD_BITS / link_bits)
//! ```
//!
//! accumulated into [`TrafficStats::link_cycles`]. The per-word path is
//! kept behind [`Staging::PerWord`] so benchmarks can A/B the two
//! (`BENCH_cluster.json`, group `move_cross`), and the scheduler's global
//! barrier survives behind [`DrainPolicy::Global`] for the same reason.

use crate::coalesce::Coalesce;
use crate::ShardPlan;
use std::sync::atomic::{AtomicU64, Ordering};

/// Bits per transferred word (`u32` cells).
pub const WORD_BITS: u64 = 32;

/// How crossing word pairs are staged over the links.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Staging {
    /// One message per `(source shard, destination shard)` pair carrying
    /// every word the pair exchanges: one gathered read burst on the source
    /// chip and one scattered write burst on the destination chip.
    #[default]
    Batched,
    /// One message — and one host round trip — per word pair: the PR-1
    /// behaviour, kept for A/B benchmarking against [`Staging::Batched`].
    PerWord,
}

/// Which shard queues a crossing move forces to drain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DrainPolicy {
    /// Only shards owning a crossing source or destination warp drain;
    /// untouched shards keep streaming their queued instructions while the
    /// transfer is in flight.
    #[default]
    Touched,
    /// Every shard queue drains at every crossing move: the PR-1 global
    /// barrier, kept for A/B benchmarking against [`DrainPolicy::Touched`].
    Global,
}

/// Geometry and policy of the modeled chip-to-chip interconnect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterconnectConfig {
    /// Link width: bits moved per link cycle (default 128).
    pub link_bits: u32,
    /// Fixed per-message latency in link cycles (default 8).
    pub latency: u64,
    /// Message granularity (default [`Staging::Batched`]).
    pub staging: Staging,
    /// Barrier scope at crossing moves (default [`DrainPolicy::Touched`]).
    pub drain: DrainPolicy,
    /// Whether runs of consecutive compatible crossing moves merge into
    /// one barrier + transfer (default [`Coalesce::On`]; see
    /// [`MoveCoalescer`](crate::MoveCoalescer)).
    pub coalesce: Coalesce,
}

impl Default for InterconnectConfig {
    fn default() -> Self {
        InterconnectConfig {
            link_bits: 128,
            latency: 8,
            staging: Staging::default(),
            drain: DrainPolicy::default(),
            coalesce: Coalesce::default(),
        }
    }
}

impl InterconnectConfig {
    /// Checks the configuration is usable.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when a parameter is out of range.
    pub fn validate(&self) -> Result<(), String> {
        if self.link_bits == 0 {
            return Err("interconnect link width must be at least 1 bit".into());
        }
        Ok(())
    }

    /// Modeled cycle cost of one burst of `words` words over a link.
    pub fn burst_cycles(&self, words: u64) -> u64 {
        self.latency + (words * WORD_BITS).div_ceil(u64::from(self.link_bits))
    }
}

/// One burst over a directed chip-to-chip link: every crossing word pair a
/// `MoveWarps` exchanges between one source and one destination shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MessageGroup {
    /// Shard the words are gathered from.
    pub src_shard: usize,
    /// Shard the words are scattered to.
    pub dst_shard: usize,
    /// Global `(source, destination)` warp pairs carried by this burst.
    pub pairs: Vec<(u32, u32)>,
}

/// Interconnect and scheduler traffic counters, aggregated cluster-wide.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficStats {
    /// Bursts sent over the links (in [`Staging::PerWord`] mode every word
    /// pair is its own message).
    pub messages: u64,
    /// Cross-chip words moved.
    pub cross_words: u64,
    /// Modeled link cycles spent on those messages
    /// ([`InterconnectConfig::burst_cycles`] summed over bursts).
    pub link_cycles: u64,
    /// Crossing moves that forced shard queues to drain.
    pub barriers: u64,
    /// Shard queues those barriers actually drained: shards inside the
    /// barrier's scope ([`DrainPolicy::Global`] = all shards,
    /// [`DrainPolicy::Touched`] = the crossing pairs' owners) that had
    /// pending or in-flight work to wait for. A barrier hitting only idle
    /// shards drains zero queues — the gap between the two policies on a
    /// busy cluster is the scheduler's win.
    pub drained_queues: u64,
    /// Coalesced runs flushed with at least two crossing moves — each one
    /// a group of per-move barriers/transfers collapsed into a single
    /// barrier + bulk transfer.
    pub runs_merged: u64,
    /// Crossing moves carried by those merged runs (every one of them
    /// would have paid its own barrier and messages under
    /// [`Coalesce::Off`]).
    pub moves_merged: u64,
    /// Interconnect messages the merged runs avoided: per-move burst
    /// counts summed, minus the bursts the merged transfers actually sent
    /// (zero under [`Staging::PerWord`], where messages are per word
    /// either way).
    pub bursts_saved: u64,
}

impl pim_telemetry::MetricsSource for TrafficStats {
    fn fill_metrics(&self, snap: &mut pim_telemetry::MetricsSnapshot) {
        snap.set_counter("cluster.messages", self.messages);
        snap.set_counter("cluster.cross_words", self.cross_words);
        snap.set_counter("cluster.link_cycles", self.link_cycles);
        snap.set_counter("cluster.barriers", self.barriers);
        snap.set_counter("cluster.drained_queues", self.drained_queues);
        snap.set_counter("cluster.runs_merged", self.runs_merged);
        snap.set_counter("cluster.moves_merged", self.moves_merged);
        snap.set_counter("cluster.bursts_saved", self.bursts_saved);
    }
}

/// The modeled interconnect: configuration plus live traffic accounting.
///
/// Counters are host-side atomics — recording from the cluster's `&self`
/// execution paths needs no locking.
#[derive(Debug, Default)]
pub struct Interconnect {
    cfg: InterconnectConfig,
    messages: AtomicU64,
    cross_words: AtomicU64,
    link_cycles: AtomicU64,
    barriers: AtomicU64,
    drained_queues: AtomicU64,
    runs_merged: AtomicU64,
    moves_merged: AtomicU64,
    bursts_saved: AtomicU64,
}

impl Interconnect {
    /// Builds an interconnect with the given geometry/policy.
    pub fn new(cfg: InterconnectConfig) -> Self {
        Interconnect {
            cfg,
            ..Interconnect::default()
        }
    }

    /// The interconnect's configuration.
    pub fn config(&self) -> &InterconnectConfig {
        &self.cfg
    }

    /// Groups crossing `(source, destination)` global warp pairs into one
    /// [`MessageGroup`] per `(source shard, destination shard)` pair, in
    /// first-appearance order (deterministic for a deterministic input).
    pub fn group(&self, plan: &ShardPlan, pairs: &[(u32, u32)]) -> Vec<MessageGroup> {
        let mut groups: Vec<MessageGroup> = Vec::new();
        for &(src, dst) in pairs {
            let key = (plan.shard_of_warp(src), plan.shard_of_warp(dst));
            match groups
                .iter_mut()
                .find(|g| (g.src_shard, g.dst_shard) == key)
            {
                Some(g) => g.pairs.push((src, dst)),
                None => groups.push(MessageGroup {
                    src_shard: key.0,
                    dst_shard: key.1,
                    pairs: vec![(src, dst)],
                }),
            }
        }
        groups
    }

    /// Accounts one burst of `words` words; returns its modeled cycle cost.
    /// Batched transfers record one burst per [`MessageGroup`]
    /// (`Interconnect::group`), sized by that group's word count — see
    /// `PimCluster`'s cross-transfer path.
    pub fn record_burst(&self, words: u64) -> u64 {
        let cycles = self.cfg.burst_cycles(words);
        self.messages.fetch_add(1, Ordering::Relaxed);
        self.cross_words.fetch_add(words, Ordering::Relaxed);
        self.link_cycles.fetch_add(cycles, Ordering::Relaxed);
        cycles
    }

    /// Accounts one crossing-move barrier that drained `drained` shard
    /// queues.
    pub fn record_barrier(&self, drained: u64) {
        self.barriers.fetch_add(1, Ordering::Relaxed);
        self.drained_queues.fetch_add(drained, Ordering::Relaxed);
    }

    /// Accounts one flushed coalesced run of `moves` (≥ 2) crossing moves
    /// that avoided `bursts_saved` interconnect messages.
    pub fn record_coalesced(&self, moves: u64, bursts_saved: u64) {
        self.runs_merged.fetch_add(1, Ordering::Relaxed);
        self.moves_merged.fetch_add(moves, Ordering::Relaxed);
        self.bursts_saved.fetch_add(bursts_saved, Ordering::Relaxed);
    }

    /// Snapshot of the traffic counters.
    pub fn traffic(&self) -> TrafficStats {
        TrafficStats {
            messages: self.messages.load(Ordering::Relaxed),
            cross_words: self.cross_words.load(Ordering::Relaxed),
            link_cycles: self.link_cycles.load(Ordering::Relaxed),
            barriers: self.barriers.load(Ordering::Relaxed),
            drained_queues: self.drained_queues.load(Ordering::Relaxed),
            runs_merged: self.runs_merged.load(Ordering::Relaxed),
            moves_merged: self.moves_merged.load(Ordering::Relaxed),
            bursts_saved: self.bursts_saved.load(Ordering::Relaxed),
        }
    }

    /// Zeroes the traffic counters (the start of a measurement region).
    pub fn reset(&self) {
        self.messages.store(0, Ordering::Relaxed);
        self.cross_words.store(0, Ordering::Relaxed);
        self.link_cycles.store(0, Ordering::Relaxed);
        self.barriers.store(0, Ordering::Relaxed);
        self.drained_queues.store(0, Ordering::Relaxed);
        self.runs_merged.store(0, Ordering::Relaxed);
        self.moves_merged.store(0, Ordering::Relaxed);
        self.bursts_saved.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_arch::PimConfig;

    #[test]
    fn burst_cost_model() {
        let cfg = InterconnectConfig::default();
        // 128-bit link moves 4 words per cycle on top of the fixed latency.
        assert_eq!(cfg.burst_cycles(1), 8 + 1);
        assert_eq!(cfg.burst_cycles(4), 8 + 1);
        assert_eq!(cfg.burst_cycles(5), 8 + 2);
        let narrow = InterconnectConfig {
            link_bits: 8,
            latency: 2,
            ..InterconnectConfig::default()
        };
        assert_eq!(narrow.burst_cycles(3), 2 + 12);
    }

    #[test]
    fn validate_rejects_zero_width_link() {
        let cfg = InterconnectConfig {
            link_bits: 0,
            ..InterconnectConfig::default()
        };
        assert!(cfg.validate().is_err());
        assert!(InterconnectConfig::default().validate().is_ok());
    }

    #[test]
    fn groups_by_shard_pair_in_first_appearance_order() {
        let plan = ShardPlan::new(&PimConfig::small().with_crossbars(4), 4).unwrap();
        let ic = Interconnect::default();
        // Shard pairs (0,1), (0,1), (1,2), (0,1), (3,0): three groups.
        let pairs = [(0, 5), (1, 6), (4, 9), (2, 7), (15, 0)];
        let groups = ic.group(&plan, &pairs);
        assert_eq!(groups.len(), 3);
        assert_eq!((groups[0].src_shard, groups[0].dst_shard), (0, 1));
        assert_eq!(groups[0].pairs, vec![(0, 5), (1, 6), (2, 7)]);
        assert_eq!((groups[1].src_shard, groups[1].dst_shard), (1, 2));
        assert_eq!(groups[1].pairs, vec![(4, 9)]);
        assert_eq!((groups[2].src_shard, groups[2].dst_shard), (3, 0));
        assert_eq!(groups[2].pairs, vec![(15, 0)]);
        // Grouping is pure planning: no traffic recorded yet.
        assert_eq!(ic.traffic(), TrafficStats::default());
    }

    #[test]
    fn per_group_burst_accounting() {
        // The batched-transfer recording rule: one burst per message
        // group, sized by the group's pair count — messages equal the
        // distinct shard pairs, words equal the crossing pairs.
        let plan = ShardPlan::new(&PimConfig::small().with_crossbars(4), 4).unwrap();
        let pairs = [(0, 5), (1, 6), (4, 9), (2, 7), (15, 0)];
        let ic = Interconnect::default();
        for g in ic.group(&plan, &pairs) {
            ic.record_burst(g.pairs.len() as u64);
        }
        let t = ic.traffic();
        assert_eq!(t.messages, 3);
        assert_eq!(t.cross_words, 5);
        // Two 1-word groups and one 3-word group on the default link.
        assert_eq!(t.link_cycles, 3 * (8 + 1));
    }

    #[test]
    fn counters_accumulate_and_reset() {
        let ic = Interconnect::new(InterconnectConfig {
            link_bits: 32,
            latency: 4,
            ..InterconnectConfig::default()
        });
        assert_eq!(ic.record_burst(8), 4 + 8);
        assert_eq!(ic.record_burst(1), 4 + 1);
        ic.record_barrier(2);
        ic.record_coalesced(5, 3);
        let t = ic.traffic();
        assert_eq!(t.messages, 2);
        assert_eq!(t.cross_words, 9);
        assert_eq!(t.link_cycles, 17);
        assert_eq!(t.barriers, 1);
        assert_eq!(t.drained_queues, 2);
        assert_eq!(t.runs_merged, 1);
        assert_eq!(t.moves_merged, 5);
        assert_eq!(t.bursts_saved, 3);
        ic.reset();
        assert_eq!(ic.traffic(), TrafficStats::default());
    }
}
