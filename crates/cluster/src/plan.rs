//! Shard partitioning: how the cluster's flat logical address space (warps,
//! threads, tensor elements) maps onto per-chip local addresses.
//!
//! The cluster presents `shards × crossbars` warps as one contiguous warp
//! space; shard `s` owns global warps `s·crossbars .. (s+1)·crossbars`.
//! Because every ISA mask is an arithmetic progression
//! (`{start, start+step, …, stop}`, §III-B), its intersection with a shard's
//! warp interval is again an arithmetic progression with the same step — so
//! any logical thread range splits into at most one local range per shard.

use crate::ClusterError;
use pim_arch::{PimConfig, RangeMask};
use pim_isa::ThreadRange;
use std::ops::Range;

/// A routed `MoveWarps`: the shard-local native sub-moves plus the global
/// warp pairs that cross a chip boundary, as produced by
/// [`ShardPlan::route_move_warps`]. Together they cover every
/// `(source, destination)` pair of the logical move exactly once.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MoveRoute {
    /// Shard-local sub-moves `(shard, local warp mask)` whose destinations
    /// stay on the same chip: these keep native single-cycle movement.
    pub local: Vec<(usize, RangeMask)>,
    /// Cross-shard `(source, destination)` global warp pairs: these go over
    /// the interconnect.
    pub cross: Vec<(u32, u32)>,
}

impl MoveRoute {
    /// Marks the shards the crossing pairs touch — the owners of their
    /// source and destination warps. This is exactly the set a
    /// dependency-aware scheduler must drain before staging the transfer;
    /// every other shard may keep streaming.
    ///
    /// Warps outside the plan's geometry are ignored: routing an
    /// *unvalidated* move whose destinations fall off the cluster yields
    /// pairs no shard owns (the cluster's execute paths validate against
    /// the logical geometry before routing, so they never see such pairs).
    pub fn touched_shards(&self, plan: &ShardPlan) -> Vec<bool> {
        let mut touched = vec![false; plan.shards()];
        for &(src, dst) in &self.cross {
            for warp in [src, dst] {
                if let Some(t) = touched.get_mut(plan.shard_of_warp(warp)) {
                    *t = true;
                }
            }
        }
        touched
    }
}

/// Partition of the cluster's flat element/warp range across shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    shards: usize,
    /// Crossbars (warps) per shard.
    crossbars: usize,
    /// Rows (threads) per warp.
    rows: usize,
}

impl ShardPlan {
    /// Creates the plan for `shards` chips of geometry `cfg`.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidShardCount`] for zero shards and
    /// [`ClusterError::Invalid`] if `cfg` fails validation.
    pub fn new(cfg: &PimConfig, shards: usize) -> Result<Self, ClusterError> {
        if shards == 0 {
            return Err(ClusterError::InvalidShardCount { shards });
        }
        cfg.validate()?;
        Ok(ShardPlan {
            shards,
            crossbars: cfg.crossbars,
            rows: cfg.rows,
        })
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Warps owned by each shard.
    pub fn warps_per_shard(&self) -> usize {
        self.crossbars
    }

    /// Threads (elements at stride 1) owned by each shard.
    pub fn threads_per_shard(&self) -> usize {
        self.crossbars * self.rows
    }

    /// Total warps across the cluster.
    pub fn total_warps(&self) -> usize {
        self.shards * self.crossbars
    }

    /// Total threads across the cluster.
    pub fn total_threads(&self) -> usize {
        self.shards * self.crossbars * self.rows
    }

    /// Shard owning global warp `warp`.
    pub fn shard_of_warp(&self, warp: u32) -> usize {
        warp as usize / self.crossbars
    }

    /// Local (per-chip) index of global warp `warp`.
    pub fn local_warp(&self, warp: u32) -> u32 {
        (warp as usize % self.crossbars) as u32
    }

    /// Splits a flat element range `[0, n)` (thread-dense, stride 1 from
    /// thread 0) into per-shard sub-ranges — the unit of data-parallel batch
    /// placement. Shards past the data hold empty ranges.
    pub fn partition_elements(&self, n: usize) -> Vec<Range<usize>> {
        let per = self.threads_per_shard();
        (0..self.shards)
            .map(|s| {
                let lo = (s * per).min(n);
                let hi = ((s + 1) * per).min(n);
                lo..hi
            })
            .collect()
    }

    /// Splits a global warp mask into `(shard, local mask)` pairs, covering
    /// exactly the same warp set. Shards the mask does not touch are absent.
    pub fn split_warps(&self, mask: &RangeMask) -> Vec<(usize, RangeMask)> {
        let c = self.crossbars as u32;
        let first = (mask.start() / c) as usize;
        let last = ((mask.stop() / c) as usize).min(self.shards - 1);
        let mut out = Vec::with_capacity(last.saturating_sub(first) + 1);
        for shard in first..=last {
            let lo = shard as u32 * c;
            if let Some(local) = intersect_rebase(mask, lo, lo + c) {
                out.push((shard, local));
            }
        }
        out
    }

    /// Splits a logical thread range into per-shard local thread ranges
    /// (rows are per-warp and pass through unchanged).
    pub fn split_target(&self, t: &ThreadRange) -> Vec<(usize, ThreadRange)> {
        self.split_warps(&t.warps)
            .into_iter()
            .map(|(s, warps)| (s, ThreadRange::new(warps, t.rows)))
            .collect()
    }

    /// Partitions a logical `MoveWarps` (global warp mask + uniform
    /// distance) into shard-local native sub-moves and cross-shard warp
    /// pairs. A sub-move that only partially crosses its shard boundary is
    /// split at the boundary ([`ShardPlan::split_move`]): the in-shard part
    /// stays a native single-cycle move; only the crossing warps go over
    /// the interconnect.
    pub fn route_move_warps(&self, warps: &RangeMask, dist: i32) -> MoveRoute {
        let mut local = Vec::new();
        let mut cross = Vec::new();
        for (shard, lmask) in self.split_warps(warps) {
            let (native, crossing) = self.split_move(shard, &lmask, dist);
            if let Some(mask) = native {
                local.push((shard, mask));
            }
            cross.extend(crossing);
        }
        MoveRoute { local, cross }
    }

    /// Splits one shard's local sub-move at the chip boundary.
    ///
    /// Warps whose destination `w + dist` stays inside
    /// `[0, warps_per_shard)` keep native single-micro-op movement; because
    /// the in-shard condition is an interval in `w`, they form one
    /// sub-progression of `local` (same step), so the native part is again
    /// a single [`RangeMask`] — and a same-step subset of a valid H-tree
    /// move pattern is itself valid. The remaining warps cross the chip
    /// boundary and come back as global `(source, destination)` warp pairs
    /// for host-mediated staging.
    pub fn split_move(
        &self,
        shard: usize,
        local: &RangeMask,
        dist: i32,
    ) -> (Option<RangeMask>, Vec<(u32, u32)>) {
        let c = self.crossbars as i64;
        let base = (shard * self.crossbars) as i64;
        let dist = dist as i64;
        let step = local.step() as i64;
        let (start, stop) = (local.start() as i64, local.stop() as i64);
        // In-shard destinations: max(0, -dist) <= w <= min(c-1, c-1-dist).
        let lo = 0i64.max(-dist);
        let hi = (c - 1).min(c - 1 - dist);
        // First/last mask elements inside [lo, hi] (operands of the
        // round-up divisions are nonnegative in their branches).
        let round_up = |x: i64| (x + step - 1) / step;
        let first = if lo > start {
            start + round_up(lo - start) * step
        } else {
            start
        };
        let last = if hi < stop {
            stop - round_up(stop - hi) * step
        } else {
            stop
        };
        let native = (first <= last && first <= stop && last >= start).then(|| {
            RangeMask::new(first as u32, last as u32, local.step())
                .expect("same-step sub-progression of a valid mask is valid")
        });
        let mut cross = Vec::new();
        for w in local.iter() {
            let w = w as i64;
            if native.is_none() || w < first || w > last {
                cross.push(((base + w) as u32, (base + w + dist) as u32));
            }
        }
        (native, cross)
    }
}

/// Intersects an arithmetic progression with `[lo, hi)` and rebases it to
/// `lo`; `None` when the intersection is empty.
fn intersect_rebase(mask: &RangeMask, lo: u32, hi: u32) -> Option<RangeMask> {
    let (start, stop, step) = (mask.start(), mask.stop(), mask.step());
    let first = if lo > start {
        start + (lo - start).div_ceil(step) * step
    } else {
        start
    };
    if first > stop || first >= hi {
        return None;
    }
    let last = stop.min(hi - 1);
    let count = (last - first) / step + 1;
    Some(RangeMask::strided(first - lo, count, step).expect("subset of a valid mask is valid"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn plan4() -> ShardPlan {
        ShardPlan::new(&PimConfig::small().with_crossbars(4), 4).unwrap()
    }

    #[test]
    fn geometry_accessors() {
        let p = plan4();
        assert_eq!(p.shards(), 4);
        assert_eq!(p.warps_per_shard(), 4);
        assert_eq!(p.total_warps(), 16);
        assert_eq!(p.threads_per_shard(), 4 * 64);
        assert_eq!(p.total_threads(), 16 * 64);
        assert_eq!(p.shard_of_warp(0), 0);
        assert_eq!(p.shard_of_warp(7), 1);
        assert_eq!(p.local_warp(7), 3);
    }

    #[test]
    fn rejects_zero_shards() {
        assert!(matches!(
            ShardPlan::new(&PimConfig::small(), 0),
            Err(ClusterError::InvalidShardCount { .. })
        ));
    }

    #[test]
    fn dense_mask_splits_per_shard() {
        let p = plan4();
        let m = RangeMask::dense(0, 16).unwrap();
        let parts = p.split_warps(&m);
        assert_eq!(parts.len(), 4);
        for (s, local) in parts {
            assert_eq!(local.start(), 0);
            assert_eq!(local.len(), 4, "shard {s}");
        }
    }

    #[test]
    fn strided_mask_keeps_step() {
        let p = plan4();
        // Warps {1, 4, 7, 10, 13}: shards 0..=3.
        let m = RangeMask::strided(1, 5, 3).unwrap();
        let parts = p.split_warps(&m);
        let mut covered = Vec::new();
        for (s, local) in &parts {
            assert_eq!(local.step(), 3);
            for w in local.iter() {
                covered.push(*s as u32 * 4 + w);
            }
        }
        assert_eq!(covered, vec![1, 4, 7, 10, 13]);
    }

    #[test]
    fn split_move_keeps_in_shard_prefix_native() {
        let p = plan4(); // 4 shards x 4 warps
                         // Shard 0, local warps {1, 2}, dist +2: warp 1 -> 3 stays on the
                         // shard; warp 2 -> 4 crosses into shard 1.
        let (native, cross) = p.split_move(0, &RangeMask::new(1, 2, 1).unwrap(), 2);
        assert_eq!(native, Some(RangeMask::single(1)));
        assert_eq!(cross, vec![(2, 4)]);
        // Same shape on shard 2 reports global warp ids.
        let (native, cross) = p.split_move(2, &RangeMask::new(1, 2, 1).unwrap(), 2);
        assert_eq!(native, Some(RangeMask::single(1)));
        assert_eq!(cross, vec![(10, 12)]);
    }

    #[test]
    fn split_move_negative_dist_keeps_suffix_native() {
        let p = plan4();
        // Local warps {0..3}, dist -2: warps {2, 3} land in-shard, {0, 1}
        // cross down into the previous shard.
        let (native, cross) = p.split_move(1, &RangeMask::dense(0, 4).unwrap(), -2);
        assert_eq!(native, Some(RangeMask::new(2, 3, 1).unwrap()));
        assert_eq!(cross, vec![(4, 2), (5, 3)]);
    }

    #[test]
    fn split_move_all_native_and_all_cross() {
        let p = plan4();
        let (native, cross) = p.split_move(0, &RangeMask::new(0, 1, 1).unwrap(), 2);
        assert_eq!(native, Some(RangeMask::new(0, 1, 1).unwrap()));
        assert!(cross.is_empty());
        // |dist| >= warps_per_shard: nothing can stay native.
        let (native, cross) = p.split_move(0, &RangeMask::new(0, 3, 1).unwrap(), 4);
        assert_eq!(native, None);
        assert_eq!(cross, vec![(0, 4), (1, 5), (2, 6), (3, 7)]);
    }

    #[test]
    fn split_move_preserves_step() {
        // 8 warps per shard so a strided local mask fits.
        let p = ShardPlan::new(&PimConfig::small().with_crossbars(8), 2).unwrap();
        // Local warps {1, 5} (step 4), dist +3: 1 -> 4 native, 5 -> 8
        // crosses. The native sub-mask keeps the step-4 pattern.
        let (native, cross) = p.split_move(0, &RangeMask::new(1, 5, 4).unwrap(), 3);
        assert_eq!(native, Some(RangeMask::new(1, 1, 4).unwrap()));
        assert_eq!(cross, vec![(5, 8)]);
        let (native, cross) = p.split_move(1, &RangeMask::new(1, 5, 4).unwrap(), 3);
        assert_eq!(native, Some(RangeMask::new(1, 1, 4).unwrap()));
        assert_eq!(cross, vec![(13, 16)]);
    }

    #[test]
    fn touched_shards_ignores_out_of_range_destinations() {
        // An unvalidated move off the end of the cluster must not panic
        // the planning helper: warp 15 + 4 has no owner and is skipped.
        let p = plan4();
        let route = p.route_move_warps(&RangeMask::single(15), 4);
        assert_eq!(route.touched_shards(&p), vec![false, false, false, true]);
        // Negative overflow (warp 0 - 1 wraps in u32 space) likewise.
        let route = p.route_move_warps(&RangeMask::single(0), -1);
        assert_eq!(route.touched_shards(&p), vec![true, false, false, false]);
    }

    #[test]
    fn partition_elements_covers_range() {
        let p = plan4();
        let parts = p.partition_elements(700);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts[0], 0..256);
        assert_eq!(parts[1], 256..512);
        assert_eq!(parts[2], 512..700);
        assert_eq!(parts[3], 700..700);
    }

    proptest! {
        /// Splitting never loses, duplicates, or invents warps. Mask
        /// parameters are derived to always fit the geometry, so every
        /// generated case is exercised (no rejection).
        #[test]
        fn split_is_exact_cover(
            start_raw in 0u32..1024, count_raw in 0u32..1024, step in 1u32..9,
            crossbars in 1usize..9, shards in 1usize..6,
        ) {
            let total = (crossbars * shards) as u32;
            let start = start_raw % total;
            // Largest count keeping start + (count-1)*step < total.
            let max_count = (total - 1 - start) / step + 1;
            let count = 1 + count_raw % max_count;
            let mask = RangeMask::strided(start, count, step).unwrap();
            prop_assert!(mask.stop() < total);
            let cfg = PimConfig::small().with_crossbars(crossbars);
            let p = ShardPlan::new(&cfg, shards).unwrap();
            let mut covered: Vec<u32> = Vec::new();
            for (s, local) in p.split_warps(&mask) {
                prop_assert!(s < shards);
                prop_assert!(local.stop() < crossbars as u32);
                for w in local.iter() {
                    covered.push(s as u32 * crossbars as u32 + w);
                }
            }
            let expect: Vec<u32> = mask.iter().collect();
            prop_assert_eq!(covered, expect);
        }

        /// For an arbitrary warp mask and distance, the local + cross
        /// partition of [`ShardPlan::route_move_warps`] covers every
        /// `(source, destination)` pair of the logical move exactly once,
        /// and no native sub-move straddles a shard boundary (every local
        /// destination stays inside `[0, warps_per_shard)`).
        #[test]
        fn route_move_is_exact_pair_cover(
            start_raw in 0u32..1024, count_raw in 0u32..1024, step in 1u32..9,
            crossbars in 1usize..9, shards in 1usize..6, dist_raw in 0i64..2048,
        ) {
            let total = (crossbars * shards) as u32;
            let start = start_raw % total;
            let max_count = (total - 1 - start) / step + 1;
            let count = 1 + count_raw % max_count;
            let mask = RangeMask::strided(start, count, step).unwrap();
            // Distances keeping every destination inside [0, total).
            let lo = -(mask.start() as i64);
            let hi = (total - 1 - mask.stop()) as i64;
            let dist = (lo + dist_raw % (hi - lo + 1)) as i32;
            let cfg = PimConfig::small().with_crossbars(crossbars);
            let p = ShardPlan::new(&cfg, shards).unwrap();
            let route = p.route_move_warps(&mask, dist);
            let mut pairs: Vec<(u32, u32)> = route.cross.clone();
            for &(s, d) in &route.cross {
                // Crossing pairs are the ones that change chips (unless the
                // move is degenerate, dist 0, which can never cross).
                prop_assert!(p.shard_of_warp(s) != p.shard_of_warp(d) || dist == 0);
            }
            for (shard, local) in &route.local {
                let base = (*shard * crossbars) as u32;
                prop_assert_eq!(local.step(), mask.step());
                for w in local.iter() {
                    let ld = w as i64 + dist as i64;
                    prop_assert!(
                        (0..crossbars as i64).contains(&ld),
                        "native sub-move straddles the shard boundary"
                    );
                    pairs.push((base + w, base + ld as u32));
                }
            }
            pairs.sort_unstable();
            let mut expect: Vec<(u32, u32)> = mask
                .iter()
                .map(|w| (w, (w as i64 + dist as i64) as u32))
                .collect();
            expect.sort_unstable();
            prop_assert_eq!(pairs, expect);
            // The touched-shard set is exactly the crossing pairs' owners.
            let touched = route.touched_shards(&p);
            for (s, t) in touched.iter().enumerate() {
                let expect_touched = route.cross.iter().any(|&(src, dst)| {
                    p.shard_of_warp(src) == s || p.shard_of_warp(dst) == s
                });
                prop_assert_eq!(*t, expect_touched, "shard {}", s);
            }
        }
    }
}
