//! Cross-chip move coalescing: the host-side peephole that collapses runs
//! of consecutive crossing `MoveWarps` into one bulk interconnect transfer.
//!
//! The movement layer decomposes an overlapping H-tree shift into many
//! small `MoveWarps` — one per row class, phase-split further when source
//! and destination warp sets overlap — all sharing one warp distance. Routed
//! individually, every one of those that crosses a chip boundary pays a
//! scheduler barrier and its own interconnect message, so a whole-memory
//! shift reaches the links as thousands of single-pair transfers
//! (`O(warps)`). The [`MoveCoalescer`] restores the structure the
//! decomposition erased: consecutive crossing moves with the *same
//! distance* and *no data hazard between them* merge into one run, staged
//! as a single transfer — one gathered read burst and one scattered write
//! burst per `(source, destination)` shard pair for the whole run, behind a
//! single barrier (`O(shard pairs)`).
//!
//! # Safety argument
//!
//! Merging move `B` into a run holding move `A` reorders two things
//! relative to per-move execution: `A`'s deferred transfer now happens
//! *after* `B`'s shard-local sub-moves are enqueued, and `B`'s gather
//! happens *before* `A`'s scatter. Both are sound exactly when the moves
//! are independent at the cell level, which [`MoveCoalescer::accepts`]
//! checks over the *whole* logical moves (local and crossing parts alike):
//!
//! * `writes(A) ∩ reads(B) = ∅` — `B` never reads a cell `A` has not yet
//!   written (the transfer is still pending at `B`'s turn);
//! * `reads(A) ∩ writes(B) = ∅` — `B` never clobbers a cell `A`'s deferred
//!   gather still needs to read;
//! * `writes(A) ∩ writes(B) = ∅` — no write-order ambiguity.
//!
//! A cell is a `(register, row, warp)` triple; a `MoveWarps` reads
//! `(src, row_src, warps)` and writes `(dst, row_dst, warps + dist)`, so
//! each side of every check reduces to register/row equality plus an
//! arithmetic-progression overlap test on the warp masks. Note the
//! H-tree's *warp-set* disjointness rule (which forces the phase split in
//! the first place) constrains single native micro-ops only — the merged
//! transfer is host-staged gather/scatter, so two phases whose warp sets
//! chain (`dst` of one = `src` warp of the next) coalesce whenever their
//! registers or rows differ, i.e. whenever their cells don't actually
//! collide.
//!
//! Anything that is not a crossing `MoveWarps` with the run's distance —
//! another instruction kind, a different distance, a hazard — flushes the
//! run first, so instruction-stream order is preserved around every merge.
//! [`Coalesce::Off`] turns the peephole off (runs of one) for A/B
//! benchmarking (`BENCH_cluster.json`, group `move_shift`) and equivalence
//! tests, mirroring [`Staging::PerWord`](crate::Staging) and
//! [`DrainPolicy::Global`](crate::DrainPolicy).

use crate::{MoveRoute, ShardPlan};
use pim_arch::RangeMask;
use std::collections::HashMap;

/// Whether the cluster's batch path merges runs of compatible crossing
/// moves into bulk transfers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Coalesce {
    /// Merge runs of consecutive same-distance, hazard-free crossing moves
    /// into one barrier + one burst per `(src, dst)` shard pair.
    #[default]
    On,
    /// Every crossing move pays its own barrier and transfer — the PR-3
    /// behaviour, kept for A/B benchmarking against [`Coalesce::On`].
    Off,
}

/// The cells one side of a `MoveWarps` touches: one register/row across a
/// warp mask.
#[derive(Debug, Clone, PartialEq, Eq)]
struct CellRange {
    reg: u8,
    row: u32,
    warps: RangeMask,
}

/// Whether two warp masks (arithmetic progressions) share an element.
/// Probes the coarser progression inside the masks' interval overlap and
/// membership-tests the other — at most `(hi - lo) / max_step + 1` checks,
/// and the all-dense case short-circuits on the first probe.
fn masks_overlap(a: &RangeMask, b: &RangeMask) -> bool {
    let lo = a.start().max(b.start());
    let hi = a.stop().min(b.stop());
    if lo > hi {
        return false;
    }
    let (probe, other) = if a.step() >= b.step() { (a, b) } else { (b, a) };
    // First probe element >= lo (lo >= probe.start() since lo is the max).
    let mut w = probe.start() + (lo - probe.start()).div_ceil(probe.step()) * probe.step();
    while w <= hi {
        if other.contains(w) {
            return true;
        }
        w += probe.step();
    }
    false
}

/// One routed chip-crossing `MoveWarps`: the route (crossing pairs +
/// shard-local remainder), the move's register/row parameters, and the
/// cell ranges the *whole* logical move reads and writes (the hazard
/// footprint the coalescer checks).
#[derive(Debug, Clone)]
pub struct CrossingMove {
    route: MoveRoute,
    src: u8,
    dst: u8,
    row_src: u32,
    row_dst: u32,
    dist: i32,
    reads: CellRange,
    writes: CellRange,
}

impl CrossingMove {
    /// Builds the crossing description of a validated logical `MoveWarps`
    /// (`warps`/`dist` addressed in global warp space) from its route.
    /// `None` when the move does not cross a chip boundary.
    ///
    /// # Panics
    ///
    /// Panics if a destination warp falls outside `u32` range — validated
    /// moves keep every destination inside the logical geometry.
    pub fn new(
        route: MoveRoute,
        warps: &RangeMask,
        dist: i32,
        src: u8,
        dst: u8,
        row_src: u32,
        row_dst: u32,
    ) -> Option<CrossingMove> {
        if route.cross.is_empty() {
            return None;
        }
        let dst_start = u32::try_from(i64::from(warps.start()) + i64::from(dist))
            .expect("validated move destinations stay in range");
        let dst_warps = RangeMask::strided(dst_start, warps.len() as u32, warps.step())
            .expect("shifting a valid mask by a validated distance keeps it valid");
        Some(CrossingMove {
            route,
            src,
            dst,
            row_src,
            row_dst,
            dist,
            reads: CellRange {
                reg: src,
                row: row_src,
                warps: *warps,
            },
            writes: CellRange {
                reg: dst,
                row: row_dst,
                warps: dst_warps,
            },
        })
    }

    /// The crossing `(source, destination)` global warp pairs.
    pub fn pairs(&self) -> &[(u32, u32)] {
        &self.route.cross
    }

    /// Source register of the move.
    pub fn src(&self) -> u8 {
        self.src
    }

    /// Destination register of the move.
    pub fn dst(&self) -> u8 {
        self.dst
    }

    /// Source row of the move.
    pub fn row_src(&self) -> u32 {
        self.row_src
    }

    /// Destination row of the move.
    pub fn row_dst(&self) -> u32 {
        self.row_dst
    }
}

/// The peephole itself: accumulates the current run of mergeable crossing
/// moves while [`PimCluster::execute_batch`](crate::PimCluster::execute_batch)
/// streams a batch, handing the whole run back for one bulk transfer when
/// it breaks.
///
/// Hazard lookups are bucketed in a map keyed by `(register, row)`, so
/// accepting a move into a large run checks only the masks sharing its
/// register and row — a whole-memory shift (distinct rows per member)
/// coalesces its thousands of phase moves in linear time.
#[derive(Debug)]
pub struct MoveCoalescer {
    policy: Coalesce,
    run: Vec<CrossingMove>,
    dist: i32,
    /// Read cell ranges of the run's members, keyed by `(reg, row)`.
    reads: HashMap<(u8, u32), Vec<RangeMask>>,
    /// Write cell ranges of the run's members, keyed by `(reg, row)`.
    writes: HashMap<(u8, u32), Vec<RangeMask>>,
}

fn bucket_insert(buckets: &mut HashMap<(u8, u32), Vec<RangeMask>>, cell: &CellRange) {
    buckets
        .entry((cell.reg, cell.row))
        .or_default()
        .push(cell.warps);
}

fn bucket_intersects(buckets: &HashMap<(u8, u32), Vec<RangeMask>>, cell: &CellRange) -> bool {
    buckets
        .get(&(cell.reg, cell.row))
        .is_some_and(|masks| masks.iter().any(|m| masks_overlap(m, &cell.warps)))
}

impl MoveCoalescer {
    /// A fresh coalescer under `policy`.
    pub fn new(policy: Coalesce) -> Self {
        MoveCoalescer {
            policy,
            run: Vec::new(),
            dist: 0,
            reads: HashMap::new(),
            writes: HashMap::new(),
        }
    }

    /// Whether the current run is empty.
    pub fn is_empty(&self) -> bool {
        self.run.is_empty()
    }

    /// Crossing moves accumulated in the current run.
    pub fn len(&self) -> usize {
        self.run.len()
    }

    /// Whether `mv` may join the current run: any move starts an empty
    /// run; under [`Coalesce::On`] a non-empty run additionally accepts
    /// moves with the run's distance that are cell-independent of every
    /// member (see the module docs); under [`Coalesce::Off`] a non-empty
    /// run accepts nothing, so every crossing move flushes its
    /// predecessor — the per-move PR-3 behaviour.
    pub fn accepts(&self, mv: &CrossingMove) -> bool {
        if self.run.is_empty() {
            return true;
        }
        self.policy == Coalesce::On
            && mv.dist == self.dist
            && !bucket_intersects(&self.reads, &mv.writes)
            && !bucket_intersects(&self.writes, &mv.reads)
            && !bucket_intersects(&self.writes, &mv.writes)
    }

    /// Appends `mv` to the current run.
    ///
    /// # Panics
    ///
    /// Panics if [`accepts`](MoveCoalescer::accepts) is false for `mv` —
    /// merging a hazardous move would corrupt memory.
    pub fn push(&mut self, mv: CrossingMove) {
        assert!(self.accepts(&mv), "pushed a move the coalescer rejects");
        if self.run.is_empty() {
            self.dist = mv.dist;
        }
        bucket_insert(&mut self.reads, &mv.reads);
        bucket_insert(&mut self.writes, &mv.writes);
        self.run.push(mv);
    }

    /// Takes the current run (stream order), leaving the coalescer empty.
    pub fn take(&mut self) -> Vec<CrossingMove> {
        self.reads.clear();
        self.writes.clear();
        std::mem::take(&mut self.run)
    }

    /// Union of the shards the run's crossing pairs touch — the scope of
    /// the single barrier a merged run pays.
    pub fn touched_shards(run: &[CrossingMove], plan: &ShardPlan) -> Vec<bool> {
        let mut touched = vec![false; plan.shards()];
        for mv in run {
            for (shard, t) in mv.route.touched_shards(plan).into_iter().enumerate() {
                touched[shard] = touched[shard] || t;
            }
        }
        touched
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_arch::PimConfig;

    fn plan4() -> ShardPlan {
        ShardPlan::new(&PimConfig::small().with_crossbars(4), 4).unwrap()
    }

    /// A crossing move over `warps`+`dist` with explicit registers/rows.
    fn mv(
        plan: &ShardPlan,
        warps: RangeMask,
        dist: i32,
        src: u8,
        dst: u8,
        row_src: u32,
        row_dst: u32,
    ) -> CrossingMove {
        let route = plan.route_move_warps(&warps, dist);
        CrossingMove::new(route, &warps, dist, src, dst, row_src, row_dst)
            .expect("test move must cross")
    }

    #[test]
    fn non_crossing_move_yields_none() {
        let p = plan4();
        let warps = RangeMask::new(0, 1, 1).unwrap();
        let route = p.route_move_warps(&warps, 1); // stays on shard 0
        assert!(CrossingMove::new(route, &warps, 1, 0, 1, 0, 0).is_none());
    }

    #[test]
    fn masks_overlap_cases() {
        let m = |s, l, t| RangeMask::strided(s, l, t).unwrap();
        assert!(masks_overlap(&m(0, 4, 1), &m(3, 4, 1)));
        assert!(!masks_overlap(&m(0, 4, 1), &m(4, 4, 1)));
        // Same step, incongruent phases.
        assert!(!masks_overlap(&m(0, 8, 2), &m(1, 8, 2)));
        assert!(masks_overlap(&m(0, 8, 2), &m(2, 8, 2)));
        // Different steps: {0,3,6,9} vs {4,6,8}.
        assert!(masks_overlap(&m(0, 4, 3), &m(4, 3, 2)));
        // {0,3,9} vs {4,8}: no common element.
        assert!(!masks_overlap(&m(0, 4, 3), &m(4, 2, 4)));
        // Singles.
        assert!(masks_overlap(&RangeMask::single(5), &m(1, 5, 2)));
        assert!(!masks_overlap(&RangeMask::single(6), &m(1, 5, 2)));
    }

    #[test]
    fn merges_same_distance_disjoint_rows() {
        // The shifted() decomposition: same registers, same dist, one move
        // per row class — all mergeable into one run.
        let p = plan4();
        let mut c = MoveCoalescer::new(Coalesce::On);
        for row in 0..8 {
            let m = mv(&p, RangeMask::new(8, 15, 1).unwrap(), -8, 0, 1, row, row);
            assert!(c.accepts(&m), "row {row} must merge");
            c.push(m);
        }
        assert_eq!(c.len(), 8);
        let run = c.take();
        assert!(c.is_empty());
        assert_eq!(run.len(), 8);
        // One barrier scope: shards 0..=3 all touched (src 2,3 / dst 0,1).
        assert_eq!(
            MoveCoalescer::touched_shards(&run, &p),
            vec![true, true, true, true]
        );
    }

    #[test]
    fn rejects_different_distance() {
        let p = plan4();
        let mut c = MoveCoalescer::new(Coalesce::On);
        c.push(mv(&p, RangeMask::new(8, 11, 1).unwrap(), -8, 0, 1, 0, 0));
        let other = mv(&p, RangeMask::new(12, 15, 1).unwrap(), -12, 0, 1, 1, 1);
        assert!(!c.accepts(&other), "different distances must not merge");
    }

    #[test]
    fn rejects_write_write_overlap() {
        let p = plan4();
        let mut c = MoveCoalescer::new(Coalesce::On);
        // Both write (reg 1, row 0, warps 0..=3).
        c.push(mv(&p, RangeMask::new(8, 11, 1).unwrap(), -8, 0, 1, 0, 0));
        let clash = mv(&p, RangeMask::new(8, 11, 1).unwrap(), -8, 0, 1, 1, 0);
        assert!(!c.accepts(&clash), "overlapping destination cells");
        // The same shape landing on a different destination row (and warp
        // window) is independent.
        let ok = mv(&p, RangeMask::new(12, 15, 1).unwrap(), -8, 0, 1, 1, 1);
        assert!(c.accepts(&ok));
    }

    #[test]
    fn rejects_read_write_hazards_both_directions() {
        let p = plan4();
        let mut c = MoveCoalescer::new(Coalesce::On);
        // The run reads (reg 0, row 0, warps 8..=11) and writes
        // (reg 1, row 0, warps 0..=3).
        c.push(mv(&p, RangeMask::new(8, 11, 1).unwrap(), -8, 0, 1, 0, 0));
        // Writes cells the run's deferred gather still reads.
        let clobbers_read = mv(&p, RangeMask::new(0, 3, 1).unwrap(), 8, 2, 0, 5, 0);
        assert!(!c.accepts(&clobbers_read));
        // Reads cells the run's deferred scatter has not written yet.
        let reads_pending = mv(&p, RangeMask::new(0, 3, 1).unwrap(), 8, 1, 3, 0, 0);
        assert!(!c.accepts(&reads_pending));
        // A same-distance move touching rows the run never uses is
        // independent.
        let disjoint = mv(&p, RangeMask::new(12, 15, 1).unwrap(), -8, 1, 3, 7, 7);
        assert!(c.accepts(&disjoint));
    }

    #[test]
    fn phase_chains_merge_when_registers_differ() {
        // Phase-split moves chain warp sets (destination warps of one
        // phase are source warps of the next — the overlap that forced
        // the split) but read reg 0 and write reg 1: cells never collide,
        // so the run must absorb the whole chain. One-crossbar shards make
        // every phase a crossing move.
        let p = ShardPlan::new(&PimConfig::small().with_crossbars(1), 8).unwrap();
        let mut c = MoveCoalescer::new(Coalesce::On);
        // Phase 1 of a dist-1 overlapping shift: src {0, 4} -> dst {1, 5}.
        c.push(mv(&p, RangeMask::strided(0, 2, 4).unwrap(), 1, 0, 1, 0, 0));
        // Phase 2: src {1, 5} (the previous phase's destinations) ->
        // dst {2, 6}.
        let b = mv(&p, RangeMask::strided(1, 2, 4).unwrap(), 1, 0, 1, 0, 0);
        assert!(c.accepts(&b), "register-disjoint phase chain must merge");
    }

    #[test]
    fn off_policy_never_extends_a_run() {
        let p = plan4();
        let mut c = MoveCoalescer::new(Coalesce::Off);
        let a = mv(&p, RangeMask::new(8, 11, 1).unwrap(), -8, 0, 1, 0, 0);
        let b = mv(&p, RangeMask::new(8, 11, 1).unwrap(), -8, 0, 1, 1, 1);
        assert!(c.accepts(&a), "an empty run accepts under any policy");
        c.push(a);
        assert!(!c.accepts(&b), "Coalesce::Off must keep runs at one move");
    }

    #[test]
    #[should_panic(expected = "coalescer rejects")]
    fn push_panics_on_rejected_move() {
        let p = plan4();
        let mut c = MoveCoalescer::new(Coalesce::On);
        c.push(mv(&p, RangeMask::new(8, 11, 1).unwrap(), -8, 0, 1, 0, 0));
        c.push(mv(&p, RangeMask::new(12, 15, 1).unwrap(), -12, 0, 1, 1, 1));
    }
}
