use pim_arch::ArchError;
use pim_driver::DriverError;
use std::fmt;

/// Errors raised by the sharded execution engine.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ClusterError {
    /// A shard's host driver rejected or failed an instruction.
    Shard {
        /// Shard that produced the error.
        shard: usize,
        /// Underlying driver error.
        source: DriverError,
    },
    /// A logical instruction failed validation against the cluster's
    /// aggregate geometry before routing.
    Invalid(ArchError),
    /// The cluster was built with an unusable shard count.
    InvalidShardCount {
        /// Requested number of shards.
        shards: usize,
    },
    /// The chip-to-chip interconnect model was configured with unusable
    /// parameters (e.g. a zero-width link).
    InvalidInterconnect {
        /// Human-readable description.
        reason: String,
    },
    /// A shard index was out of range.
    ShardIndex {
        /// Offending index.
        shard: usize,
        /// Number of shards in the cluster.
        shards: usize,
    },
    /// A shard worker thread is gone (its channel is closed).
    Disconnected {
        /// Shard whose worker disconnected.
        shard: usize,
    },
    /// A cluster-level protocol rule was violated (e.g. a read inside a
    /// batched submission).
    Protocol {
        /// Human-readable description.
        reason: String,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Shard { shard, source } => write!(f, "shard {shard}: {source}"),
            ClusterError::Invalid(e) => write!(f, "invalid logical instruction: {e}"),
            ClusterError::InvalidShardCount { shards } => {
                write!(f, "invalid shard count {shards} (need at least 1)")
            }
            ClusterError::InvalidInterconnect { reason } => {
                write!(f, "invalid interconnect model: {reason}")
            }
            ClusterError::ShardIndex { shard, shards } => {
                write!(f, "shard index {shard} out of range for {shards} shards")
            }
            ClusterError::Disconnected { shard } => {
                write!(f, "shard {shard} worker disconnected")
            }
            ClusterError::Protocol { reason } => write!(f, "cluster protocol violation: {reason}"),
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Shard { source, .. } => Some(source),
            ClusterError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ArchError> for ClusterError {
    fn from(e: ArchError) -> Self {
        ClusterError::Invalid(e)
    }
}
