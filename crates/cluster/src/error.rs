use pim_arch::ArchError;
use pim_driver::DriverError;
use std::fmt;

/// How an error should be handled by a caller with a retry/degradation
/// policy — the failure-semantics taxonomy shared by the whole stack
/// (`ClusterError::class`, `CoreError::class`).
///
/// * [`Transient`](ErrorClass::Transient) — the operation failed for a
///   reason that may not recur (worker crash mid-job, dropped or corrupted
///   interconnect message). Safe to retry after the supervisor recovers;
///   the serving gateway retries these with exponential backoff.
/// * [`Overload`](ErrorClass::Overload) — the system is out of a bounded
///   resource (queue depth, memory). Retrying immediately will fail again;
///   back off, shed load, or evict.
/// * [`Evicted`](ErrorClass::Evicted) — the session the work belonged to
///   was evicted or closed; the work will never complete. Re-establish a
///   session to continue.
/// * [`Fatal`](ErrorClass::Fatal) — a programming or configuration error
///   (invalid instruction, geometry mismatch, failed recovery). Retrying
///   is pointless.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorClass {
    /// May succeed on retry once the fault clears.
    Transient,
    /// A bounded resource is exhausted; shed load before retrying.
    Overload,
    /// The owning session is gone; the work will never complete.
    Evicted,
    /// Deterministic failure; do not retry.
    Fatal,
}

/// The detected failure mode of an interconnect message burst.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkFaultKind {
    /// The message was lost in flight (no data arrived).
    Dropped,
    /// The message failed its integrity check at the receiver and was
    /// discarded (no corrupt data landed).
    Corrupted,
}

impl fmt::Display for LinkFaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkFaultKind::Dropped => write!(f, "dropped"),
            LinkFaultKind::Corrupted => write!(f, "corrupted"),
        }
    }
}

/// Errors raised by the sharded execution engine.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ClusterError {
    /// A shard's host driver rejected or failed an instruction.
    Shard {
        /// Shard that produced the error.
        shard: usize,
        /// Underlying driver error.
        source: DriverError,
    },
    /// A logical instruction failed validation against the cluster's
    /// aggregate geometry before routing.
    Invalid(ArchError),
    /// The cluster was built with an unusable shard count.
    InvalidShardCount {
        /// Requested number of shards.
        shards: usize,
    },
    /// The chip-to-chip interconnect model was configured with unusable
    /// parameters (e.g. a zero-width link).
    InvalidInterconnect {
        /// Human-readable description.
        reason: String,
    },
    /// A shard index was out of range.
    ShardIndex {
        /// Offending index.
        shard: usize,
        /// Number of shards in the cluster.
        shards: usize,
    },
    /// A shard worker thread is gone (its channel is closed).
    Disconnected {
        /// Shard whose worker disconnected.
        shard: usize,
    },
    /// A shard worker died (crashed or was fault-injected to crash) while
    /// the job was queued or in flight. The job did not complete; the
    /// supervisor respawns the worker and restores its state, so a retry
    /// is expected to succeed — this is the cluster's canonical
    /// [`Transient`](ErrorClass::Transient) error.
    WorkerCrashed {
        /// Shard whose worker crashed.
        shard: usize,
    },
    /// An interconnect message burst was lost or failed its integrity
    /// check; nothing of the transfer landed (corruption is detected,
    /// never silent). Transient: a retry re-runs the transfer from intact
    /// state.
    LinkFault {
        /// Source shard of the faulted burst.
        src_shard: usize,
        /// Destination shard of the faulted burst.
        dst_shard: usize,
        /// Detected failure mode.
        kind: LinkFaultKind,
    },
    /// The supervisor could not restore a crashed shard (checkpoint replay
    /// failed). The shard stays down; this is fatal for the cluster.
    RecoveryFailed {
        /// Shard that could not be recovered.
        shard: usize,
        /// Human-readable description of the replay failure.
        reason: String,
    },
    /// A cluster-level protocol rule was violated (e.g. a read inside a
    /// batched submission).
    Protocol {
        /// Human-readable description.
        reason: String,
    },
}

impl ClusterError {
    /// The retry class of this error — see [`ErrorClass`].
    pub fn class(&self) -> ErrorClass {
        match self {
            // A disconnected or crashed worker is respawned by the
            // supervisor on the next submission, and a faulted transfer
            // left intact state behind: all safe to retry.
            ClusterError::Disconnected { .. }
            | ClusterError::WorkerCrashed { .. }
            | ClusterError::LinkFault { .. } => ErrorClass::Transient,
            _ => ErrorClass::Fatal,
        }
    }
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Shard { shard, source } => write!(f, "shard {shard}: {source}"),
            ClusterError::Invalid(e) => write!(f, "invalid logical instruction: {e}"),
            ClusterError::InvalidShardCount { shards } => {
                write!(f, "invalid shard count {shards} (need at least 1)")
            }
            ClusterError::InvalidInterconnect { reason } => {
                write!(f, "invalid interconnect model: {reason}")
            }
            ClusterError::ShardIndex { shard, shards } => {
                write!(f, "shard index {shard} out of range for {shards} shards")
            }
            ClusterError::Disconnected { shard } => {
                write!(f, "shard {shard} worker disconnected")
            }
            ClusterError::WorkerCrashed { shard } => {
                write!(
                    f,
                    "shard {shard} worker crashed (transient: retry after recovery)"
                )
            }
            ClusterError::LinkFault {
                src_shard,
                dst_shard,
                kind,
            } => {
                write!(
                    f,
                    "interconnect burst {src_shard}->{dst_shard} {kind} (transient: \
                     nothing landed, retry re-runs the transfer)"
                )
            }
            ClusterError::RecoveryFailed { shard, reason } => {
                write!(f, "shard {shard} recovery failed: {reason}")
            }
            ClusterError::Protocol { reason } => write!(f, "cluster protocol violation: {reason}"),
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Shard { source, .. } => Some(source),
            ClusterError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ArchError> for ClusterError {
    fn from(e: ArchError) -> Self {
        ClusterError::Invalid(e)
    }
}
