//! # pim-cluster
//!
//! A sharded multi-chip execution engine for the PyPIM stack: `N` simulated
//! PIM chips — each a [`pim_driver::Driver`] over its own chip backend,
//! the bit-accurate [`pim_sim::PimSimulator`] or the vectorized
//! functional [`pim_func::FuncBackend`], selected per shard through
//! [`ShardBackends`] — run on dedicated worker threads behind batched job
//! channels and present one flat address space of `N × crossbars` warps.
//!
//! The paper (conf_micro_LeitersdorfRK24) models a *single* memory chip
//! behind the micro-operation interface; this crate composes many of them
//! the way a production deployment would rack chips behind one host:
//!
//! * [`ShardPlan`] — partitions the flat warp/element range across shards.
//!   Every ISA mask is an arithmetic progression, so a logical thread range
//!   splits into at most one local range per shard.
//! * [`PimCluster::submit`]/[`JobTicket::wait`] — batched job submission:
//!   many macro-instruction batches stream to all shards concurrently, from
//!   any number of client threads.
//! * [`PimCluster::execute`]/[`PimCluster::execute_batch`] — transparent
//!   routing of logical instructions, including inter-warp moves: moves
//!   within a chip stay native, moves crossing a chip boundary go over the
//!   modeled [`Interconnect`].
//! * [`Interconnect`]/[`InterconnectConfig`] — the chip-to-chip link model:
//!   crossing word pairs batch into one message per
//!   `(source, destination)` shard pair (one gathered read burst + one
//!   scattered write burst), each charged
//!   `latency + ceil(words × 32 / link_bits)` link cycles into
//!   [`TrafficStats`].
//! * Dependency-aware scheduling — **the drain rule**: a crossing move
//!   drains only the shards owning its crossing source/destination warps
//!   (their queued work is submitted and awaited before the transfer);
//!   every untouched shard's queue is launched asynchronously and keeps
//!   streaming *during* the transfer. This is sound because the H-tree
//!   move rule keeps a move's source and destination warp sets disjoint,
//!   and each shard's job channel is FIFO — concurrent work can only live
//!   on shards whose cells the transfer neither reads nor writes.
//!   [`DrainPolicy::Global`] and [`Staging::PerWord`] preserve the PR-1
//!   behaviours for A/B benchmarks (`BENCH_cluster.json`, groups
//!   `move_cross` and `move_mixed`).
//! * [`MoveCoalescer`]/[`Coalesce`] — cross-chip move coalescing, the last
//!   stage of the **movement → coalescer → interconnect pipeline**. The
//!   movement layer (`pypim-core`'s `movement` module) lowers a tensor
//!   shift onto one `MoveWarps` per row class — phase-split further when
//!   the H-tree's disjointness rule forbids the direct move — and plans
//!   the whole decomposition as *one* batch grouped by warp distance.
//!   [`PimCluster::execute_batch`] streams that batch while the coalescer
//!   accumulates the current *run* of consecutive crossing moves that
//!   share a distance and are independent at the cell level; when the run
//!   breaks (other instruction, other distance, hazard) it flushes as a
//!   single transfer: one barrier over the union of touched shards, one
//!   gathered read burst and one scattered write burst per
//!   `(source, destination)` shard pair — `O(shard pairs)` messages and
//!   barriers for a whole-memory shift instead of `O(warps)`.
//!   [`Coalesce::Off`] keeps the per-move path for A/B benchmarks
//!   (`BENCH_cluster.json`, group `move_shift`) and equivalence tests;
//!   [`TrafficStats`] reports `runs_merged`/`moves_merged`/`bursts_saved`.
//! * [`Combine`]/[`PimCluster::reduce_f32`]/[`PimCluster::reduce_i32`] —
//!   cross-shard combining: gather per-shard partials and fold on the host.
//! * [`PimCluster::stats`] — per-shard telemetry (simulator profiler,
//!   driver issued cycles, routine-cache hit/miss counters), aggregated by
//!   [`ClusterStats`] — the observability behind the §V-B "driver is not
//!   the bottleneck" claim at cluster scale.
//!
//! The development library (`pypim-core`) builds on this crate:
//! `Device::cluster(cfg, shards)` runs every tensor program unchanged on
//! 1 or N chips with bit-identical results.
//!
//! # Example
//!
//! ```
//! use pim_arch::PimConfig;
//! use pim_cluster::PimCluster;
//! use pim_isa::{DType, Instruction, RegOp, ThreadRange};
//!
//! # fn main() -> Result<(), pim_cluster::ClusterError> {
//! // Four chips of 4 crossbars each: one flat space of 16 warps.
//! let cluster = PimCluster::new(PimConfig::small().with_crossbars(4), 4)?;
//! let all = ThreadRange::all(cluster.logical_config());
//!
//! // One logical instruction fans out to all four chips concurrently.
//! cluster.execute_batch(&[
//!     Instruction::Write { reg: 0, value: 30, target: all },
//!     Instruction::Write { reg: 1, value: 12, target: all },
//!     Instruction::RType {
//!         op: RegOp::Add,
//!         dtype: DType::Int32,
//!         dst: 2,
//!         srcs: [0, 1, 0],
//!         target: all,
//!     },
//! ])?;
//!
//! // Warp 13 lives on shard 3; the flat address space hides that.
//! let got = cluster.execute(&Instruction::Read { reg: 2, warp: 13, row: 7 })?;
//! assert_eq!(got, Some(42));
//! # Ok(())
//! # }
//! ```

mod cluster;
mod coalesce;
mod error;
mod interconnect;
mod plan;
pub(crate) mod sched;

pub use cluster::{
    fold_f32, fold_i32, ClusterOptions, ClusterStats, Combine, GatherTicket, GlobalLoc,
    GlobalWrite, JobSet, JobTicket, PimCluster, RecoveryConfig, ShardBackends, ShardStats,
    Submission, TaggedBatch,
};
pub use coalesce::{Coalesce, CrossingMove, MoveCoalescer};
pub use error::{ClusterError, ErrorClass, LinkFaultKind};
pub use interconnect::{
    DrainPolicy, Interconnect, InterconnectConfig, MessageGroup, Staging, TrafficStats, WORD_BITS,
};
pub use pim_fault::{
    FaultInjector, FaultPlan, FaultProfile, FaultStats, HostFault, HostFaultPlan, HostFaultProfile,
    LinkFault, LinkWindow, WorkerFault,
};
pub use pim_func::{AnyBackend, BackendKind};
pub use pim_telemetry::{RequestId, RequestStats, Telemetry, TelemetryConfig};
pub use plan::{MoveRoute, ShardPlan};
